//! Declarative service-level objectives over the fleet event stream.
//!
//! This module holds only the rule *specifications* — plain data a
//! [`crate::event::FleetJobSample`]-emitting control plane (`cannikin-fleet`)
//! can attach to job specs without depending on the evaluation machinery.
//! The engine that evaluates rules against records, online through the
//! subscriber API and offline over drained traces, lives in
//! `cannikin-insight::slo` (the dependency arrow runs fleet → telemetry ←
//! insight, never fleet → insight).
//!
//! Every rule watches a *closed* input set — named fleet counters,
//! admissions, faults and recoveries — and judges values that are pure
//! functions of the deterministic simulation, so online and offline
//! evaluations of the same trace produce byte-identical verdicts.

use serde::{Deserialize, Serialize};

/// One service-level objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SloRule {
    /// Fleet-wide useful-work rate (the `fleet_goodput` counter,
    /// effective samples per simulated second) must stay at or above
    /// `floor`. Zero-goodput samples before any job makes progress are
    /// not judged.
    GoodputFloor {
        /// Minimum acceptable goodput, effective samples/s.
        floor: f64,
    },
    /// The p95 (nearest-rank) of admission-queue waits across all
    /// admissions so far must stay at or below `ceiling_s`.
    QueueP95Ceiling {
        /// Maximum acceptable p95 queue wait, seconds.
        ceiling_s: f64,
    },
    /// Jain's fairness index over priority-weighted service (the
    /// `fleet_fairness` counter) must stay at or above `floor`.
    FairnessFloor {
        /// Minimum acceptable Jain index, in `(0, 1]`.
        floor: f64,
    },
    /// After a node crash, the matching group-shrink/replan recovery must
    /// land within `max_steps` training steps.
    RecoveryCeiling {
        /// Maximum acceptable crash-to-recovery distance, steps.
        max_steps: u64,
    },
    /// One job's admission-queue waits must each stay at or below
    /// `ceiling_s` (judged per admission, not in aggregate).
    JobQueueCeiling {
        /// The job the rule is scoped to.
        job: String,
        /// Maximum acceptable queue wait for one admission, seconds.
        ceiling_s: f64,
    },
}

impl SloRule {
    /// Stable rule id (the `rule` field of an emitted
    /// [`crate::event::SloViolation`]).
    pub fn id(&self) -> &'static str {
        match self {
            SloRule::GoodputFloor { .. } => "goodput_floor",
            SloRule::QueueP95Ceiling { .. } => "queue_p95_ceiling",
            SloRule::FairnessFloor { .. } => "fairness_floor",
            SloRule::RecoveryCeiling { .. } => "recovery_ceiling",
            SloRule::JobQueueCeiling { .. } => "job_queue_ceiling",
        }
    }

    /// The job the rule is scoped to, when per-job.
    pub fn job(&self) -> Option<&str> {
        match self {
            SloRule::JobQueueCeiling { job, .. } => Some(job),
            _ => None,
        }
    }

    /// The configured threshold (floor or ceiling, unit per rule).
    pub fn threshold(&self) -> f64 {
        match *self {
            SloRule::GoodputFloor { floor } | SloRule::FairnessFloor { floor } => floor,
            SloRule::QueueP95Ceiling { ceiling_s } | SloRule::JobQueueCeiling { ceiling_s, .. } => ceiling_s,
            SloRule::RecoveryCeiling { max_steps } => max_steps as f64,
        }
    }

    /// A one-line human description (report tables).
    pub fn describe(&self) -> String {
        match self {
            SloRule::GoodputFloor { floor } => format!("fleet goodput >= {floor} samples/s"),
            SloRule::QueueP95Ceiling { ceiling_s } => format!("admission-queue p95 <= {ceiling_s} s"),
            SloRule::FairnessFloor { floor } => format!("Jain fairness >= {floor}"),
            SloRule::RecoveryCeiling { max_steps } => format!("crash recovery <= {max_steps} steps"),
            SloRule::JobQueueCeiling { job, ceiling_s } => format!("job `{job}` queue wait <= {ceiling_s} s"),
        }
    }
}

/// The default fleet-wide objectives: deliberately loose floors that only
/// trip on pathological schedules, suitable as a starting point for
/// `FleetJobSpec`-level tightening.
pub fn default_fleet_slos() -> Vec<SloRule> {
    vec![
        SloRule::GoodputFloor { floor: 1.0 },
        SloRule::QueueP95Ceiling { ceiling_s: 600.0 },
        SloRule::FairnessFloor { floor: 0.2 },
        SloRule::RecoveryCeiling { max_steps: 8 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_distinct_and_stable() {
        let rules = vec![
            SloRule::GoodputFloor { floor: 1.0 },
            SloRule::QueueP95Ceiling { ceiling_s: 1.0 },
            SloRule::FairnessFloor { floor: 0.5 },
            SloRule::RecoveryCeiling { max_steps: 4 },
            SloRule::JobQueueCeiling { job: "a".into(), ceiling_s: 1.0 },
        ];
        let ids: std::collections::HashSet<&str> = rules.iter().map(SloRule::id).collect();
        assert_eq!(ids.len(), rules.len());
        assert_eq!(rules[0].id(), "goodput_floor");
        assert_eq!(rules[4].job(), Some("a"));
        assert_eq!(rules[3].threshold(), 4.0);
    }

    #[test]
    fn defaults_are_fleet_wide() {
        let defaults = default_fleet_slos();
        assert_eq!(defaults.len(), 4);
        assert!(defaults.iter().all(|r| r.job().is_none()));
    }
}
