//! Multi-tenant fleet scheduling over a shared heterogeneous pool (§6).
//!
//! ```text
//! cargo run --release --example multi_job
//! ```
//!
//! A stream of jobs — a short CIFAR-10 job, a long production ImageNet
//! job and a late-arriving best-effort NeuMF job — shares an 8-GPU pool
//! (2×A100 + 2×V100 + 4×RTX6000) under the `cannikin-fleet` control
//! plane. Each admitted job runs its own full Cannikin stack on whatever
//! node mix the fleet allocator grants it; at every epoch boundary the
//! allocator re-divides the pool as the jobs' GNS-driven batch demands
//! shift, and reallocations flow through elastic membership rather than
//! restarts. The same trace is replayed under the FIFO and
//! static-partition baselines for comparison.

use cannikin::prelude::*;
use cannikin::sim::catalog::Gpu;

fn pool() -> Vec<NodeSpec> {
    let mut out = Vec::new();
    for (gpu, count) in [(Gpu::A100, 2), (Gpu::V100, 2), (Gpu::Rtx6000, 4)] {
        for i in 0..count {
            out.push(NodeSpec::new(format!("{gpu}-{i}"), gpu));
        }
    }
    out
}

fn trace() -> Vec<FleetJobSpec> {
    vec![
        FleetJobSpec::new("cifar-short", JobSpec::resnet18_cifar10(), TrainerConfig::new(6_400, 64, 512), 3.0)
            .noise(400.0, 0.5)
            .seed(1),
        FleetJobSpec::new("imagenet-long", JobSpec::resnet50_imagenet(), TrainerConfig::new(12_800, 128, 1_024), 5.0)
            .priority(Priority::Production)
            .noise(400.0, 0.8)
            .seed(2),
        FleetJobSpec::new("neumf-late", JobSpec::neumf_movielens(), TrainerConfig::new(6_400, 64, 512), 2.0)
            .priority(Priority::BestEffort)
            .noise(250.0, 1.2)
            .arrival(40.0)
            .seed(3),
    ]
}

fn run(policy: AllocPolicy) -> FleetReport {
    let mut fleet = FleetController::new(pool(), trace(), policy).expect("valid fleet");
    fleet.run_to_completion(10_000).expect("stream drains")
}

fn main() {
    let report = run(AllocPolicy::Cannikin);

    println!("cannikin fleet over the shared 8-GPU pool:");
    for j in &report.jobs {
        println!(
            "  {:<16} [{:<11}] arrived {:>6.1}s  queued {:>6.1}s  done {:>7.1}s  {:>2} epochs, {} preemptions",
            j.name,
            j.priority,
            j.arrival,
            j.queue_delay(),
            j.finished_at,
            j.epochs_run,
            j.preemptions,
        );
    }
    println!(
        "  makespan {:.1}s | aggregate goodput {:.0} samples/s | mean queue delay {:.1}s | fairness {:.3}",
        report.makespan, report.aggregate_goodput, report.mean_queue_delay, report.fairness
    );

    println!("\npolicy comparison (same trace, same pool):");
    println!("  {:<10} {:>12} {:>18} {:>14}", "policy", "makespan", "agg goodput", "queue delay");
    for policy in [AllocPolicy::Cannikin, AllocPolicy::Fifo, AllocPolicy::Static] {
        let r = run(policy);
        println!(
            "  {:<10} {:>11.1}s {:>13.0} sm/s {:>13.1}s",
            policy.as_str(),
            r.makespan,
            r.aggregate_goodput,
            r.mean_queue_delay
        );
    }
    println!("\n(adaptive reallocation keeps every node busy: the short job's exit");
    println!(" frees capacity mid-stream, and GNS-driven demand caps stop any one");
    println!(" job from hoarding nodes past its statistical knee)");
}
