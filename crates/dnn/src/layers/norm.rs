//! Layer normalization.

use super::{Layer, Param};
use crate::tensor::Tensor;

/// Layer normalization over the last dimension of a `[batch, features]`
/// input, with learnable gain and bias.
///
/// `y = gain * (x - mean) / sqrt(var + eps) + bias`, where mean/var are
/// computed per row.
#[derive(Debug)]
pub struct LayerNorm {
    gain: Param,
    bias: Param,
    eps: f32,
    features: usize,
    cache: Option<NormCache>,
}

#[derive(Debug)]
struct NormCache {
    normalized: Tensor,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Create a layer-norm over `features` with `eps = 1e-5`.
    ///
    /// # Panics
    ///
    /// Panics if `features == 0`.
    pub fn new(features: usize) -> Self {
        assert!(features > 0, "layer norm features must be positive");
        LayerNorm {
            gain: Param::new(Tensor::ones(&[features]), "layernorm.gain"),
            bias: Param::new(Tensor::zeros(&[features]), "layernorm.bias"),
            eps: 1e-5,
            features,
            cache: None,
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let n = self.features;
        assert_eq!(x.cols(), n, "layer norm width {} != {n}", x.cols());
        let rows = x.rows();
        let mut normalized = Tensor::zeros(&[rows, n]);
        let mut inv_std = Vec::with_capacity(rows);
        let mut out = Tensor::zeros(&[rows, n]);
        for i in 0..rows {
            let row = &x.data()[i * n..(i + 1) * n];
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            inv_std.push(is);
            for j in 0..n {
                let xn = (row[j] - mean) * is;
                normalized.data_mut()[i * n + j] = xn;
                out.data_mut()[i * n + j] = self.gain.value.data()[j] * xn + self.bias.value.data()[j];
            }
        }
        self.cache = Some(NormCache { normalized, inv_std });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let n = self.features;
        let rows = grad_out.rows();
        assert_eq!(grad_out.cols(), n, "layer norm backward width mismatch");
        let mut dx = Tensor::zeros(&[rows, n]);
        for i in 0..rows {
            let g = &grad_out.data()[i * n..(i + 1) * n];
            let xn = &cache.normalized.data()[i * n..(i + 1) * n];
            // Accumulate parameter gradients.
            for j in 0..n {
                self.gain.grad.data_mut()[j] += g[j] * xn[j];
                self.bias.grad.data_mut()[j] += g[j];
            }
            // dxn_j = g_j * gain_j; the standard layer-norm backward:
            // dx = (inv_std / n) * (n*dxn - Σdxn - xn * Σ(dxn·xn))
            let dxn: Vec<f32> = (0..n).map(|j| g[j] * self.gain.value.data()[j]).collect();
            let sum_dxn: f32 = dxn.iter().sum();
            let sum_dxn_xn: f32 = dxn.iter().zip(xn).map(|(a, b)| a * b).sum();
            let is = cache.inv_std[i];
            for j in 0..n {
                dx.data_mut()[i * n + j] = is / n as f32 * (n as f32 * dxn[j] - sum_dxn - xn[j] * sum_dxn_xn);
            }
        }
        dx
    }

    fn parameters(&self) -> Vec<&Param> {
        vec![&self.gain, &self.bias]
    }

    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gain, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_rows_are_normalized() {
        let mut ln = LayerNorm::new(8);
        let x = Tensor::randn(&[4, 8], 41).scale(3.0).add_scalar(2.0);
        let y = ln.forward(&x, true);
        for i in 0..4 {
            let row = &y.data()[i * 8..(i + 1) * 8];
            let mean = row.iter().sum::<f32>() / 8.0;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5, "row {i} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {i} var {var}");
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut ln = LayerNorm::new(5);
        // Non-trivial gain/bias so the backward exercises every term.
        ln.gain.value = Tensor::randn(&[5], 42).add_scalar(1.5);
        ln.bias.value = Tensor::randn(&[5], 43);
        let x = Tensor::randn(&[3, 5], 44);
        // Loss = Σ y² to get a non-uniform upstream gradient.
        let y = ln.forward(&x, true);
        let gy = y.scale(2.0);
        let gx = ln.backward(&gy);
        let eps = 1e-2f32;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = ln.forward(&xp, true).map(|v| v * v).sum();
            let lm = ln.forward(&xm, true).map(|v| v * v).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gx.data()[idx]).abs() < 0.05, "x[{idx}]: {numeric} vs {}", gx.data()[idx]);
        }
    }

    #[test]
    fn gradient_check_gain_bias() {
        let mut ln = LayerNorm::new(4);
        let x = Tensor::randn(&[2, 4], 45);
        let y = ln.forward(&x, true);
        ln.backward(&Tensor::ones(y.shape()));
        let g_gain = ln.gain.grad.clone();
        let eps = 1e-3f32;
        for idx in 0..4 {
            let orig = ln.gain.value.data()[idx];
            ln.gain.value.data_mut()[idx] = orig + eps;
            let plus = ln.forward(&x, true).sum();
            ln.gain.value.data_mut()[idx] = orig - eps;
            let minus = ln.forward(&x, true).sum();
            ln.gain.value.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((numeric - g_gain.data()[idx]).abs() < 1e-2);
        }
        // Bias gradient with unit upstream gradient is the batch size.
        for &g in ln.bias.grad.data() {
            assert_eq!(g, 2.0);
        }
    }
}
