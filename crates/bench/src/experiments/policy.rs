//! Policy comparison experiment: the four ask/tell adaptation policies
//! ([`cannikin_core::policy`]) driving the *same* Cannikin engine across
//! the sim scenarios, so any goodput difference is attributable to the
//! policy alone. The cells come from the scenario runner under its pinned
//! seed, which keeps the table byte-stable across machines.

use crate::scenarios::{registry, run_cell, subjects};
use crate::{fmt, row};

/// Scenario ids the policy table sweeps: calm plus the two stretching
/// fault conditions every policy subject declares support for.
pub const POLICY_SCENARIOS: [&str; 3] = ["calm-baseline", "straggler-onset", "diurnal-contention"];

/// Subject ids of the policy lens, in [`cannikin_core::policy::PolicyKind`]
/// declaration order.
pub const POLICY_SUBJECTS: [&str; 4] = ["policy-optperf", "policy-even", "policy-lbbsp", "policy-rl"];

/// Rendered policy comparison (the `figures policy` experiment).
pub fn policy() -> String {
    let scenarios = registry();
    let all_subjects = subjects();
    let mut out = String::from(
        "Adaptation policies — one engine, four ask/tell brains (pinned seed)\n\n",
    );
    let widths = [20, 16, 8, 11, 9, 13];
    out += &row(
        &[
            "scenario".into(),
            "policy".into(),
            "epochs".into(),
            "goodput".into(),
            "t_target".into(),
            "final_batch".into(),
        ],
        &widths,
    );
    out.push('\n');
    for scenario_name in POLICY_SCENARIOS {
        let scenario = scenarios
            .iter()
            .find(|s| s.name == scenario_name)
            .expect("policy scenario registered");
        for subject_name in POLICY_SUBJECTS {
            let subject = all_subjects
                .iter()
                .find(|s| s.name == subject_name)
                .expect("policy subject registered");
            let cell = run_cell(scenario, subject);
            let show = |name: &str| cell.metrics.get(name).copied().map(fmt).unwrap_or_else(|| "-".into());
            out += &row(
                &[
                    cell.scenario.clone(),
                    cell.subject.trim_start_matches("policy-").to_string(),
                    show("epochs"),
                    show("goodput_eff_epochs_per_hour"),
                    show("time_to_target_s"),
                    show("final_total_batch"),
                ],
                &widths,
            );
            out.push('\n');
        }
    }
    out += "\nOptPerf is the paper's planner; `even`/`lbbsp` replay the §5.1\n\
            baseline rules through the Cannikin engine; `rl` is the seeded\n\
            bandit (reward = realized goodput).\n";
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_table_covers_every_scenario_policy_pair() {
        let text = policy();
        for scenario in POLICY_SCENARIOS {
            assert!(text.contains(scenario), "missing scenario {scenario}");
        }
        for subject in ["optperf", "even", "lbbsp", "rl"] {
            assert!(text.contains(subject), "missing policy {subject}");
        }
        // 1 header + 12 cells + prose: at least 13 table lines.
        assert!(text.lines().count() >= 13);
    }
}
