//! Raw-speed trajectory (the perf PR): SIMD GEMM microkernel throughput,
//! compressed-gradient bytes on the wire, and compute/comm overlap — the
//! three measurements behind `BENCH_perf.json`.
//!
//! The committed baseline is gated by the `perfgate` binary on *ratios*
//! (SIMD speedup over scalar, byte reduction over raw f32, overlapped vs
//! sequential epoch time), which transfer across machines far better than
//! absolute GFLOP/s, so a CI runner of a different generation still
//! catches real regressions.

use crate::{fmt, row};
use cannikin_collectives::{Codec, CommGroup, ErrorFeedback, TransportKind};
use cannikin_core::engine::ParallelTrainer;
use cannikin_telemetry::Json;
use minidnn::data::gaussian_blobs;
use minidnn::models::mlp_classifier;
use minidnn::tensor::simd::{avx2_available, with_kernel, Kernel};
use minidnn::tensor::{matmul, Tensor};
use std::thread;
use std::time::Instant;

/// Pinned seed of every measurement in the perf trajectory.
pub const PERF_SEED: u64 = 17;

/// GEMM throughput of one kernel at `m×k · k×n`, best of `reps` runs.
fn gemm_gflops(kernel: Kernel, m: usize, k: usize, n: usize, reps: usize) -> f64 {
    let a = Tensor::randn(&[m, k], PERF_SEED);
    let b = Tensor::randn(&[k, n], PERF_SEED + 1);
    // One warm-up run outside the clock (packs buffers, faults pages).
    let _ = with_kernel(kernel, || matmul(&a, &b));
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let c = with_kernel(kernel, || matmul(&a, &b));
        let dt = t.elapsed().as_secs_f64();
        std::hint::black_box(c);
        best = best.min(dt);
    }
    2.0 * (m * n * k) as f64 / best / 1e9
}

/// One compressed weighted all-reduce over `ranks` ranks of `elems`
/// elements: (bytes sent by rank 0, relative L2 error of rank 0's result
/// against the exact f64 reduction).
fn codec_exchange(codec: Codec, ranks: usize, elems: usize) -> (u64, f64) {
    let comms = CommGroup::with_options(ranks, &TransportKind::InProcess, None, codec).expect("group forms");
    let weight = 1.0 / ranks as f32;
    let handles: Vec<_> = comms
        .into_iter()
        .map(|comm| {
            thread::spawn(move || {
                let rank = comm.rank();
                let mut ef = ErrorFeedback::new(elems);
                let mut data: Vec<f32> =
                    (0..elems).map(|i| ((i * 31 + rank * 17) as f32).sin()).collect();
                comm.weighted_all_reduce_ef(&mut data, weight, Some(&mut ef));
                (rank, comm.bytes_sent(), data)
            })
        })
        .collect();
    let mut results: Vec<(usize, u64, Vec<f32>)> =
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect();
    results.sort_by_key(|(rank, _, _)| *rank);
    // Exact reference in f64.
    let ideal: Vec<f64> = (0..elems)
        .map(|i| {
            (0..results.len())
                .map(|rank| f64::from(((i * 31 + rank * 17) as f32).sin()) * f64::from(weight))
                .sum()
        })
        .collect();
    let got = &results[0].2;
    let diff: f64 = got.iter().zip(&ideal).map(|(g, w)| (f64::from(*g) - w).powi(2)).sum();
    let norm: f64 = ideal.iter().map(|w| w * w).sum();
    (results[0].1, (diff / norm.max(1e-30)).sqrt())
}

/// One 4-rank training epoch, sequential or overlapped gradient exchange:
/// (epoch wall seconds, comm seconds hidden behind backward, samples/s).
fn epoch_once(overlap: bool) -> (f64, f64, f64) {
    // Big enough that backward compute and gradient traffic are ms-scale
    // (so the per-step comm-worker spawn is noise), heterogeneous enough
    // that stragglers leave real windows to hide communication in.
    let samples = 1024;
    let mut trainer = ParallelTrainer::builder()
        .dataset(gaussian_blobs(samples, 10, 64, 19))
        .model(|seed| mlp_classifier(64, 256, 10, seed))
        .slowdowns(vec![1.0, 1.5, 2.0, 2.5])
        .batch_range(256, 256)
        .adaptive(false)
        .seed(PERF_SEED)
        .transport(TransportKind::InProcess)
        .overlap(overlap)
        .build()
        .expect("valid config");
    // Best of two epochs: wall time on a shared host is the noisiest
    // number in the trajectory, and the minimum is the honest estimate
    // of what the exchange schedule itself costs.
    let mut wall = f64::INFINITY;
    let mut hidden = 0.0;
    for _ in 0..2 {
        let start = Instant::now();
        let report = trainer.run_epoch().expect("epoch");
        let dt = start.elapsed().as_secs_f64();
        if dt < wall {
            wall = dt;
            hidden = report.comm_overlap;
        }
    }
    (wall, hidden, samples as f64 / wall)
}

/// The full perf trajectory in structured form — what `perfgate`
/// serializes into `BENCH_perf.json`.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Whether the AVX2+FMA microkernel was available on this machine.
    pub avx2: bool,
    /// Scalar-kernel GEMM throughput at 256³, GFLOP/s.
    pub scalar_gflops: f64,
    /// Dispatched-kernel GEMM throughput at 256³, GFLOP/s (equals the
    /// scalar number when AVX2 is unavailable).
    pub simd_gflops: f64,
    /// `simd_gflops / scalar_gflops` (1.0 when AVX2 is unavailable).
    pub simd_speedup: f64,
    /// Bytes sent per rank for the raw-f32 exchange.
    pub bytes_none: u64,
    /// Bytes sent per rank through the bf16 codec.
    pub bytes_bf16: u64,
    /// Bytes sent per rank through the top-10% sparsifier.
    pub bytes_topk: u64,
    /// `1 − bytes_bf16/bytes_none` (fraction of wire traffic removed).
    pub bf16_reduction: f64,
    /// `1 − bytes_topk/bytes_none`.
    pub topk_reduction: f64,
    /// Relative L2 error of one bf16 exchange against the f64 reference.
    pub bf16_rel_error: f64,
    /// Sequential-exchange epoch wall time, s (4 heterogeneous ranks).
    pub epoch_seq_s: f64,
    /// Overlapped-exchange epoch wall time, s (same work).
    pub epoch_overlap_s: f64,
    /// `epoch_seq_s / epoch_overlap_s`.
    pub overlap_speedup: f64,
    /// Comm seconds hidden behind backward compute in the overlapped run.
    pub hidden_comm_s: f64,
    /// End-to-end goodput of the overlapped run, samples/s.
    pub samples_per_s: f64,
}

impl PerfReport {
    /// Serialize for `BENCH_perf.json` (stable key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str("cannikin-perf-v1".into())),
            ("seed".into(), Json::num(PERF_SEED as f64)),
            ("avx2".into(), Json::Bool(self.avx2)),
            (
                "gemm".into(),
                Json::Obj(vec![
                    ("scalar_gflops".into(), Json::num(self.scalar_gflops)),
                    ("simd_gflops".into(), Json::num(self.simd_gflops)),
                    ("simd_speedup".into(), Json::num(self.simd_speedup)),
                ]),
            ),
            (
                "codec".into(),
                Json::Obj(vec![
                    ("bytes_none".into(), Json::num(self.bytes_none as f64)),
                    ("bytes_bf16".into(), Json::num(self.bytes_bf16 as f64)),
                    ("bytes_topk100".into(), Json::num(self.bytes_topk as f64)),
                    ("bf16_reduction".into(), Json::num(self.bf16_reduction)),
                    ("topk_reduction".into(), Json::num(self.topk_reduction)),
                    ("bf16_rel_error".into(), Json::num(self.bf16_rel_error)),
                ]),
            ),
            (
                "overlap".into(),
                Json::Obj(vec![
                    ("epoch_seq_s".into(), Json::num(self.epoch_seq_s)),
                    ("epoch_overlap_s".into(), Json::num(self.epoch_overlap_s)),
                    ("overlap_speedup".into(), Json::num(self.overlap_speedup)),
                    ("hidden_comm_s".into(), Json::num(self.hidden_comm_s)),
                ]),
            ),
            ("goodput".into(), Json::Obj(vec![("samples_per_s".into(), Json::num(self.samples_per_s))])),
        ])
    }

    /// Reconstruct a report from `BENCH_perf.json` (the `perfgate`
    /// baseline side). Missing or non-numeric fields become errors.
    pub fn from_json(json: &Json) -> Result<PerfReport, String> {
        let f = |path: &[&str]| -> Result<f64, String> {
            let mut cur = json;
            for key in path {
                cur = cur.get(key).ok_or_else(|| format!("missing `{}`", path.join(".")))?;
            }
            cur.as_f64().ok_or_else(|| format!("`{}` is not a number", path.join(".")))
        };
        Ok(PerfReport {
            avx2: json.get("avx2").and_then(Json::as_bool).unwrap_or(false),
            scalar_gflops: f(&["gemm", "scalar_gflops"])?,
            simd_gflops: f(&["gemm", "simd_gflops"])?,
            simd_speedup: f(&["gemm", "simd_speedup"])?,
            bytes_none: f(&["codec", "bytes_none"])? as u64,
            bytes_bf16: f(&["codec", "bytes_bf16"])? as u64,
            bytes_topk: f(&["codec", "bytes_topk100"])? as u64,
            bf16_reduction: f(&["codec", "bf16_reduction"])?,
            topk_reduction: f(&["codec", "topk_reduction"])?,
            bf16_rel_error: f(&["codec", "bf16_rel_error"])?,
            epoch_seq_s: f(&["overlap", "epoch_seq_s"])?,
            epoch_overlap_s: f(&["overlap", "epoch_overlap_s"])?,
            overlap_speedup: f(&["overlap", "overlap_speedup"])?,
            hidden_comm_s: f(&["overlap", "hidden_comm_s"])?,
            samples_per_s: f(&["goodput", "samples_per_s"])?,
        })
    }
}

/// Run every perf measurement (pinned seed, best-of-N clocks).
pub fn perf_report() -> PerfReport {
    let (m, k, n, reps) = (256, 256, 256, 5);
    let scalar_gflops = gemm_gflops(Kernel::Scalar, m, k, n, reps);
    let avx2 = avx2_available();
    let simd_gflops =
        if avx2 { gemm_gflops(Kernel::Avx2, m, k, n, reps) } else { scalar_gflops };
    let simd_speedup = simd_gflops / scalar_gflops;

    let (ranks, elems) = (2, 50_000);
    let (bytes_none, _) = codec_exchange(Codec::None, ranks, elems);
    let (bytes_bf16, bf16_rel_error) = codec_exchange(Codec::Bf16, ranks, elems);
    let (bytes_topk, _) = codec_exchange(Codec::TopK { permille: 100 }, ranks, elems);
    let reduction = |bytes: u64| 1.0 - bytes as f64 / bytes_none as f64;

    let (epoch_seq_s, _, _) = epoch_once(false);
    let (epoch_overlap_s, hidden_comm_s, samples_per_s) = epoch_once(true);

    PerfReport {
        avx2,
        scalar_gflops,
        simd_gflops,
        simd_speedup,
        bytes_none,
        bytes_bf16,
        bytes_topk,
        bf16_reduction: reduction(bytes_bf16),
        topk_reduction: reduction(bytes_topk),
        bf16_rel_error,
        epoch_seq_s,
        epoch_overlap_s,
        overlap_speedup: epoch_seq_s / epoch_overlap_s,
        hidden_comm_s,
        samples_per_s,
    }
}

/// Rendered perf trajectory (the `figures perf` experiment).
pub fn perf() -> String {
    let r = perf_report();
    let widths = [26, 14, 14, 12];
    let mut out = String::from("Raw-speed trajectory — SIMD GEMM, gradient codec, compute/comm overlap\n\n");
    out += &row(&["measurement".into(), "baseline".into(), "optimized".into(), "ratio".into()], &widths);
    out.push('\n');
    out += &row(
        &[
            "GEMM 256^3 (GFLOP/s)".into(),
            fmt(r.scalar_gflops),
            fmt(r.simd_gflops),
            format!("{:.2}x", r.simd_speedup),
        ],
        &widths,
    );
    out.push('\n');
    out += &row(
        &[
            "grad bytes/rank (bf16)".into(),
            r.bytes_none.to_string(),
            r.bytes_bf16.to_string(),
            format!("-{:.1}%", 100.0 * r.bf16_reduction),
        ],
        &widths,
    );
    out.push('\n');
    out += &row(
        &[
            "grad bytes/rank (topk10%)".into(),
            r.bytes_none.to_string(),
            r.bytes_topk.to_string(),
            format!("-{:.1}%", 100.0 * r.topk_reduction),
        ],
        &widths,
    );
    out.push('\n');
    out += &row(
        &[
            "4-rank epoch (s)".into(),
            fmt(r.epoch_seq_s),
            fmt(r.epoch_overlap_s),
            format!("{:.2}x", r.overlap_speedup),
        ],
        &widths,
    );
    out.push('\n');
    out += &format!(
        "\navx2 kernel: {}; bf16 one-shot rel err {:.2e}; comm hidden behind backward {:.3} s; goodput {:.0} samples/s\n",
        if r.avx2 { "active" } else { "unavailable (scalar fallback)" },
        r.bf16_rel_error,
        r.hidden_comm_s,
        r.samples_per_s,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_round_trips() {
        let report = PerfReport {
            avx2: true,
            scalar_gflops: 28.0,
            simd_gflops: 70.0,
            simd_speedup: 2.5,
            bytes_none: 400_000,
            bytes_bf16: 200_032,
            bytes_topk: 40_048,
            bf16_reduction: 0.4999,
            topk_reduction: 0.8999,
            bf16_rel_error: 1.1e-3,
            epoch_seq_s: 1.4,
            epoch_overlap_s: 1.1,
            overlap_speedup: 1.27,
            hidden_comm_s: 0.3,
            samples_per_s: 700.0,
        };
        let text = report.to_json().to_string_compact();
        let parsed = Json::parse(&text).expect("valid json");
        let back = PerfReport::from_json(&parsed).expect("complete report");
        assert_eq!(back.bytes_none, report.bytes_none);
        assert!((back.simd_speedup - report.simd_speedup).abs() < 1e-12);
        assert!((back.overlap_speedup - report.overlap_speedup).abs() < 1e-12);
        assert!(back.avx2);
    }

    #[test]
    fn codec_byte_reductions_are_deterministic() {
        // Byte counts come from frame layouts, not clocks: run twice,
        // demand identical counts, and check the headline ratios.
        let (none_a, _) = codec_exchange(Codec::None, 2, 10_000);
        let (none_b, _) = codec_exchange(Codec::None, 2, 10_000);
        assert_eq!(none_a, none_b);
        let (bf16, rel) = codec_exchange(Codec::Bf16, 2, 10_000);
        assert!(
            (1.0 - bf16 as f64 / none_a as f64) > 0.45,
            "bf16 must cut ≥45% of wire bytes: {bf16} vs {none_a}"
        );
        assert!(rel < 5e-3, "bf16 one-shot error should be sub-0.5%: {rel}");
        // Survivors ride as (index, value) pairs — 8 bytes each — so the
        // top-10% sparsifier lands just under 80% reduction, not 90%.
        let (topk, _) = codec_exchange(Codec::TopK { permille: 100 }, 2, 10_000);
        assert!(
            (1.0 - topk as f64 / none_a as f64) > 0.75,
            "top-10% must cut ≥75% of wire bytes: {topk} vs {none_a}"
        );
    }
}
