//! The `slo` experiment: fleet mission control end-to-end. A pinned
//! fleet trace runs with the live SLO monitor and the time-series
//! recorder attached; afterwards the drained trace is replayed offline
//! and the report shows (a) the exported gauge values, (b) the SLO
//! compliance table, and (c) the online/offline verdict agreement the
//! determinism contract promises.

use super::fleet::fleet_pool;
use super::tables::next_session_tag;
use cannikin_fleet::{synthetic_trace, AllocPolicy, FleetController};
use cannikin_insight::{replay_slos, SloMonitor};
use cannikin_telemetry::{self as telemetry, Labels, Record, SeriesRecorder};

/// Seed of the pinned arrival trace (the first `fleetgate` seed).
const SEED: u64 = 7;

/// Jobs in the trace (matches the fleet trajectory).
const JOBS: usize = 6;

/// Per-job admission-wait ceiling attached to every submission, s. Tight
/// enough that late arrivals into the contended pool trip it, so the
/// report shows real violations, not an empty table.
const QUEUE_CEILING_S: f64 = 30.0;

/// Run the monitored fleet and render gauges, compliance and agreement.
pub fn slo() -> String {
    let tag = next_session_tag();
    let trace: Vec<_> =
        synthetic_trace(SEED, JOBS, 30.0).into_iter().map(|s| s.queue_slo(QUEUE_CEILING_S)).collect();
    let mut controller =
        FleetController::new(fleet_pool(), trace, AllocPolicy::Cannikin).expect("valid fleet");
    let rules = controller.slo_rules();

    let monitor = SloMonitor::install_with(rules.clone(), Some(tag));
    let series = SeriesRecorder::install_with(256, Some(tag));
    let session = telemetry::Session::start();
    let records: Vec<Record> = {
        let _identity = telemetry::set_thread_identity(0, tag);
        controller.run_to_completion(50_000).expect("stream drains");
        telemetry::flush_thread();
        session.drain().into_iter().filter(|r| r.rank == tag).collect()
    };
    drop(session);

    let store = series.store();
    let none = Labels::default();
    let mut out = format!(
        "slo — fleet mission control over the s{SEED} trace ({} events, {} rules)\n\n",
        records.len(),
        rules.len()
    );
    out += "final gauges (series store):\n";
    for name in ["fleet_goodput", "fleet_fairness", "fleet_pool_util", "fleet_queue_depth"] {
        if let Some(value) = store.last(name, &none) {
            out += &format!("  {name} = {value:.4}\n");
        }
    }
    out += &format!(
        "  fleet_decisions_total = {}\n\n",
        store.counter_total("fleet_decisions_total", &none).unwrap_or(0.0)
    );

    let offline = replay_slos(&records, &rules);
    out += &offline.render();
    let online = monitor.violations();
    out += &format!(
        "\nonline monitor: {} violations — agreement {}\n",
        online.len(),
        if offline.verdicts_match() && online == offline.online { "EXACT" } else { "MISMATCH" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_and_offline_verdicts_agree_on_the_pinned_trace() {
        let out = slo();
        assert!(out.contains("agreement EXACT"), "{out}");
        assert!(out.contains("verdicts agree"), "{out}");
        assert!(out.contains("fleet_goodput ="), "{out}");
        assert!(out.contains("job_queue_ceiling") || out.contains("queue wait"), "{out}");
    }
}
