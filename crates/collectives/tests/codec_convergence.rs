//! Property tests for the gradient codec layer (satellite of the perf PR):
//!
//! 1. With error feedback, training through a lossy codec converges to the
//!    uncompressed accumulated update within a codec-specific tolerance
//!    over N steps — the EF-SGD invariant that makes compression safe.
//! 2. `Codec::None` is bitwise identical to the legacy path over *both*
//!    transports, so turning the codec machinery off really is free.

use cannikin_collectives::{Codec, CommGroup, ErrorFeedback, TransportKind};
use proptest::prelude::*;
use std::thread;

const WORLD: usize = 2;
const STEPS: usize = 20;

/// Deterministic pseudo-gradient for (rank, step, index): bounded, sign-
/// alternating, with enough dynamic range to exercise quantization and
/// top-k selection.
fn grad(seed: u64, rank: usize, step: usize, i: usize, len: usize) -> f32 {
    let h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((rank as u64) << 40)
        .wrapping_add((step as u64) << 20)
        .wrapping_add(i as u64)
        .wrapping_mul(0x2545_F491_4F6C_DD1D);
    let unit = (h >> 40) as f32 / (1u64 << 24) as f32; // [0, 1)
    let sign = if h & 1 == 0 { 1.0 } else { -1.0 };
    // A spread of magnitudes: a few large coordinates, a long small tail.
    let scale = if i % 7 == 0 { 4.0 } else { 0.25 };
    sign * (0.05 + unit) * scale * (1.0 + i as f32 / len as f32)
}

/// Accumulated update Σ_t Σ_r w_r·g_r(t) a rank applies over the run,
/// exchanged through `codec` with per-rank error feedback. Returns rank
/// 0's accumulated buffer.
fn accumulate_with_codec(seed: u64, len: usize, codec: Codec) -> Vec<f32> {
    let weights = [0.6f32, 0.4];
    let comms = CommGroup::with_options(WORLD, &TransportKind::InProcess, None, codec).expect("group");
    let handles: Vec<_> = comms
        .into_iter()
        .enumerate()
        .map(|(rank, comm)| {
            thread::spawn(move || {
                let mut ef = ErrorFeedback::new(len);
                let mut acc = vec![0.0f32; len];
                for step in 0..STEPS {
                    let mut g: Vec<f32> =
                        (0..len).map(|i| grad(seed, rank, step, i, len)).collect();
                    comm.weighted_all_reduce_ef(&mut g, weights[rank], Some(&mut ef));
                    for (a, v) in acc.iter_mut().zip(&g) {
                        *a += v;
                    }
                }
                (rank, acc)
            })
        })
        .collect();
    let mut results: Vec<(usize, Vec<f32>)> =
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect();
    results.sort_by_key(|(rank, _)| *rank);
    // Replica consistency: every rank must hold the same accumulated
    // update bit-for-bit, lossy codec or not.
    let bits0: Vec<u32> = results[0].1.iter().map(|v| v.to_bits()).collect();
    for (rank, acc) in &results[1..] {
        let bits: Vec<u32> = acc.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits0, bits, "rank {rank} diverged from rank 0 under {codec}");
    }
    results.swap_remove(0).1
}

/// The uncompressed reference: exact f64 accumulation of Σ_t Σ_r w_r·g_r(t).
fn accumulate_ideal(seed: u64, len: usize) -> Vec<f64> {
    let weights = [0.6f64, 0.4];
    let mut acc = vec![0.0f64; len];
    for step in 0..STEPS {
        for (rank, w) in weights.iter().enumerate() {
            for (i, a) in acc.iter_mut().enumerate() {
                *a += w * f64::from(grad(seed, rank, step, i, len));
            }
        }
    }
    acc
}

fn l2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn relative_error(got: &[f32], want: &[f64]) -> f64 {
    let diff: Vec<f64> = got.iter().zip(want).map(|(g, w)| f64::from(*g) - w).collect();
    l2(&diff) / l2(want).max(1e-12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn error_feedback_converges_to_uncompressed(seed in 0u64..512, len in 24usize..72) {
        let ideal = accumulate_ideal(seed, len);
        // (codec, tolerated relative L2 error of the accumulated update).
        // bf16/f16 round to ≥8 effective mantissa bits, so even the
        // uncompensated in-flight rounding stays far below 1%. Top-k drops
        // whole coordinates; error feedback re-injects them on later
        // steps, keeping the accumulated update close — but chunk-level
        // re-sparsification inside the ring is not fed back, so its
        // tolerance is the loosest.
        for (codec, tol) in [
            (Codec::Bf16, 0.01),
            (Codec::F16, 0.01),
            (Codec::TopK { permille: 500 }, 0.25),
        ] {
            let acc = accumulate_with_codec(seed, len, codec);
            let rel = relative_error(&acc, &ideal);
            prop_assert!(
                rel <= tol,
                "{codec}: accumulated update off by {rel:.4} (tolerance {tol}) at seed {seed}, len {len}"
            );
        }
        // The lossless codec must match the f64 reference to f32 rounding.
        let acc = accumulate_with_codec(seed, len, Codec::None);
        let rel = relative_error(&acc, &ideal);
        prop_assert!(rel <= 1e-5, "codec=none drifted by {rel}");
    }

    #[test]
    fn lossy_codecs_beat_a_no_feedback_floor(seed in 0u64..256, len in 24usize..48) {
        // Error feedback must actually help: top-k *without* feedback on
        // the same workload leaves a markedly larger gap. (bf16/f16 are
        // near-lossless here, so the contrast test uses top-k only.)
        let ideal = accumulate_ideal(seed, len);
        let with_ef = {
            let acc = accumulate_with_codec(seed, len, Codec::TopK { permille: 250 });
            relative_error(&acc, &ideal)
        };
        let without_ef = {
            let codec = Codec::TopK { permille: 250 };
            let comms = CommGroup::with_options(WORLD, &TransportKind::InProcess, None, codec).expect("group");
            let weights = [0.6f32, 0.4];
            let handles: Vec<_> = comms
                .into_iter()
                .enumerate()
                .map(|(rank, comm)| {
                    thread::spawn(move || {
                        let mut acc = vec![0.0f32; len];
                        for step in 0..STEPS {
                            let mut g: Vec<f32> =
                                (0..len).map(|i| grad(seed, rank, step, i, len)).collect();
                            comm.weighted_all_reduce_ef(&mut g, weights[rank], None);
                            for (a, v) in acc.iter_mut().zip(&g) {
                                *a += v;
                            }
                        }
                        (rank, acc)
                    })
                })
                .collect();
            let mut results: Vec<(usize, Vec<f32>)> =
                handles.into_iter().map(|h| h.join().expect("rank panicked")).collect();
            results.sort_by_key(|(rank, _)| *rank);
            relative_error(&results.swap_remove(0).1, &ideal)
        };
        prop_assert!(
            with_ef < without_ef,
            "feedback must shrink the gap: with {with_ef:.4} vs without {without_ef:.4} (seed {seed}, len {len})"
        );
    }

    #[test]
    fn codec_none_is_bitwise_identical_across_transports(seed in 0u64..256, len in 8usize..48) {
        // `codec=none` through the EF entry point must equal the legacy
        // weighted_all_reduce bit-for-bit over both backends.
        let run = |kind: TransportKind, use_ef: bool| -> Vec<Vec<u32>> {
            let comms = CommGroup::with_options(WORLD, &kind, None, Codec::None).expect("group");
            let weights = [0.6f32, 0.4];
            let handles: Vec<_> = comms
                .into_iter()
                .enumerate()
                .map(|(rank, comm)| {
                    thread::spawn(move || {
                        let mut ef = ErrorFeedback::new(len);
                        let mut g: Vec<f32> = (0..len).map(|i| grad(seed, rank, 0, i, len)).collect();
                        if use_ef {
                            comm.weighted_all_reduce_ef(&mut g, weights[rank], Some(&mut ef));
                        } else {
                            comm.weighted_all_reduce(&mut g, weights[rank]);
                        }
                        (rank, g.iter().map(|v| v.to_bits()).collect::<Vec<u32>>())
                    })
                })
                .collect();
            let mut results: Vec<(usize, Vec<u32>)> =
                handles.into_iter().map(|h| h.join().expect("rank panicked")).collect();
            results.sort_by_key(|(rank, _)| *rank);
            results.into_iter().map(|(_, bits)| bits).collect()
        };
        let legacy = run(TransportKind::InProcess, false);
        let in_process = run(TransportKind::InProcess, true);
        let over_tcp = run(TransportKind::tcp(), true);
        prop_assert_eq!(&legacy, &in_process, "EF entry point with codec=none must match legacy");
        prop_assert_eq!(&legacy, &over_tcp, "backends must agree bitwise");
    }
}
