//! Property-based tests for the OptPerf solver (Algorithm 1).
//!
//! The solver's claims are checked against randomized adversaries:
//! no feasible split may beat the plan's predicted time, the continuous
//! relaxation lower-bounds everything, classifications must agree with the
//! `(1−γ)P vs T_o` criterion, and predictions must match the event-driven
//! simulator exactly on oracle inputs.

use cannikin::core::optperf::{predict_batch_time, Bottleneck, NodePerf, OptPerfSolver, SolverInput};
use cannikin::sim::Simulator;
use proptest::prelude::*;

/// Random heterogeneous solver input: n nodes with slopes spanning up to
/// ~6x, γ in (0.05, 0.5), communication comparable to compute.
fn arbitrary_input() -> impl Strategy<Value = SolverInput> {
    (2usize..8, 0.05f64..0.5)
        .prop_flat_map(|(n, gamma)| {
            let node = (0.05e-3f64..1.0e-3, 0.1e-3f64..4e-3, 0.1e-3f64..2e-3, 0.1e-3f64..4e-3).prop_map(
                |(q, s, k, m)| NodePerf { q, s, k, m, max_batch: None },
            );
            (
                proptest::collection::vec(node, n),
                Just(gamma),
                1e-3f64..80e-3,
                0.2e-3f64..8e-3,
            )
        })
        .prop_map(|(nodes, gamma, t_o, t_u)| SolverInput { nodes, gamma, t_o, t_u })
}

/// A random feasible integer split of `total` across `n` nodes.
fn random_split(total: u64, weights: &[f64]) -> Vec<u64> {
    let n = weights.len();
    let sum: f64 = weights.iter().sum();
    let mut out: Vec<u64> = weights.iter().map(|w| ((w / sum) * total as f64).floor() as u64).map(|b| b.max(1)).collect();
    let mut s: u64 = out.iter().sum();
    let mut i = 0;
    while s < total {
        out[i % n] += 1;
        s += 1;
        i += 1;
    }
    while s > total {
        if out[i % n] > 1 {
            out[i % n] -= 1;
            s -= 1;
        }
        i += 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plan_sums_and_floors(input in arbitrary_input(), total_mult in 2u64..200) {
        let n = input.len() as u64;
        let total = n * total_mult;
        let mut solver = OptPerfSolver::new(input);
        let plan = solver.solve(total).expect("feasible");
        prop_assert_eq!(plan.local_batches.iter().sum::<u64>(), total);
        prop_assert!(plan.local_batches.iter().all(|&b| b >= 1));
    }

    #[test]
    fn no_random_split_beats_the_plan(
        input in arbitrary_input(),
        total_mult in 2u64..200,
        weights in proptest::collection::vec(0.05f64..1.0, 8),
    ) {
        let n = input.len();
        let total = n as u64 * total_mult;
        let mut solver = OptPerfSolver::new(input.clone());
        let plan = solver.solve(total).expect("feasible");
        let rival = random_split(total, &weights[..n]);
        let rival_time = predict_batch_time(&input, &rival);
        // Integer rounding gives the plan at most a whisker of slack.
        prop_assert!(
            plan.opt_perf <= rival_time * 1.02 + 1e-9,
            "plan {} loses to random split {:?} at {}",
            plan.opt_perf,
            rival,
            rival_time
        );
    }

    #[test]
    fn continuous_relaxation_is_a_lower_bound(input in arbitrary_input(), total_mult in 2u64..200) {
        let n = input.len() as u64;
        let total = n * total_mult;
        let mut solver = OptPerfSolver::new(input);
        let plan = solver.solve(total).expect("feasible");
        prop_assert!(plan.continuous_opt <= plan.opt_perf * (1.0 + 1e-9));
    }

    #[test]
    fn pattern_matches_overlap_criterion(input in arbitrary_input(), total_mult in 2u64..200) {
        let n = input.len() as u64;
        let total = n * total_mult;
        let mut solver = OptPerfSolver::new(input.clone());
        let plan = solver.solve(total).expect("feasible");
        for node in 0..input.len() {
            let b = plan.local_batches[node] as f64;
            let headroom = (1.0 - input.gamma) * input.nodes[node].p(b);
            let expected = if headroom >= input.t_o { Bottleneck::Compute } else { Bottleneck::Communication };
            prop_assert_eq!(plan.pattern[node], expected, "node {}", node);
        }
        // Boundary equals the compute count.
        let computes = plan.pattern.iter().filter(|p| **p == Bottleneck::Compute).count();
        prop_assert_eq!(plan.boundary, computes);
    }

    #[test]
    fn warm_start_agrees_with_cold_solve(input in arbitrary_input(), total_mult in 2u64..100) {
        let n = input.len() as u64;
        let total = n * total_mult;
        let mut warm = OptPerfSolver::new(input.clone());
        let _ = warm.solve(total / 2 + n).expect("feasible warmup");
        let plan_warm = warm.solve(total).expect("feasible");
        let mut cold = OptPerfSolver::new(input);
        let plan_cold = cold.solve(total).expect("feasible");
        prop_assert!((plan_warm.opt_perf - plan_cold.opt_perf).abs() <= plan_cold.opt_perf * 1e-9);
    }
}

/// Oracle check on the real clusters: prediction equals event simulation.
#[test]
fn predictions_match_event_simulator_on_paper_clusters() {
    use cannikin::workloads::{clusters, profiles};
    for cluster in [clusters::cluster_a(), clusters::cluster_b(), clusters::cluster_c_default()] {
        for profile in profiles::all() {
            let input = SolverInput::from_ground_truth(&cluster, &profile.job);
            let mut solver = OptPerfSolver::new(input);
            let sim = Simulator::new(cluster.clone(), profile.job.clone(), 0).with_noise(0.0, 0.0);
            let n = cluster.len() as u64;
            for total in [2 * n, 8 * n, 64 * n] {
                let Ok(plan) = solver.solve(total) else { continue };
                let simulated = sim.ideal_batch_time(&plan.local_batches);
                assert!(
                    (plan.opt_perf - simulated).abs() / simulated < 1e-9,
                    "{} / {} at B={total}: {} vs {}",
                    cluster.name,
                    profile.name(),
                    plan.opt_perf,
                    simulated
                );
            }
        }
    }
}

/// Appendix A optimality conditions, checked on the returned plans:
/// all-compute plans equalize `t_compute`, all-communication plans
/// equalize `syncStart`, and mixed plans satisfy
/// `t_compute = syncStart' + T_o` across the boundary.
#[test]
fn appendix_a_equalization_conditions_hold() {
    use cannikin::workloads::{clusters, profiles};
    let cluster = clusters::cluster_b();
    let profile = profiles::imagenet_resnet50();
    let input = SolverInput::from_ground_truth(&cluster, &profile.job);
    let mut solver = OptPerfSolver::new(input.clone());

    // All-compute regime (huge batch): equal compute times (A.1).
    let plan = solver.solve(8000).expect("feasible");
    assert!(plan.pattern.iter().all(|p| *p == Bottleneck::Compute));
    let computes: Vec<f64> = input
        .nodes
        .iter()
        .zip(&plan.local_batches)
        .map(|(node, &b)| node.compute(b as f64))
        .collect();
    let max = computes.iter().copied().fold(f64::MIN, f64::max);
    let min = computes.iter().copied().fold(f64::MAX, f64::min);
    // Integer rounding leaves at most one sample's worth of spread.
    let slope = input.nodes.iter().map(|n| n.compute_slope()).fold(0.0f64, f64::max);
    assert!(max - min <= 2.0 * slope, "compute spread {} vs slope {slope}", max - min);

    // All-communication regime (tiny batch): equal sync starts (A.2).
    let plan = solver.solve(48).expect("feasible");
    assert!(plan.pattern.iter().all(|p| *p == Bottleneck::Communication), "{:?}", plan.pattern);
    let syncs: Vec<f64> = input
        .nodes
        .iter()
        .zip(&plan.local_batches)
        .map(|(node, &b)| node.sync_start(b as f64, input.gamma))
        .collect();
    let max = syncs.iter().copied().fold(f64::MIN, f64::max);
    let min = syncs.iter().copied().fold(f64::MAX, f64::min);
    let sync_slope = input.nodes.iter().map(|n| n.sync_slope(input.gamma)).fold(0.0f64, f64::max);
    assert!(max - min <= 2.0 * sync_slope, "sync spread {} vs slope {sync_slope}", max - min);

    // Mixed regime (A.3): compute-bottleneck nodes' t_compute equals the
    // communication-bottleneck nodes' syncStart + T_o (both get ready for
    // the last bucket simultaneously), up to rounding.
    let mut mixed = None;
    for total in (64..2000).step_by(32) {
        let plan = solver.solve(total).expect("feasible");
        let computes = plan.pattern.iter().filter(|p| **p == Bottleneck::Compute).count();
        if computes > 0 && computes < cluster.len() {
            mixed = Some(plan);
            break;
        }
    }
    let plan = mixed.expect("a mixed regime exists in the sweep");
    let mut compute_finish = Vec::new();
    let mut comm_finish = Vec::new();
    for (i, node) in input.nodes.iter().enumerate() {
        let b = plan.local_batches[i] as f64;
        match plan.pattern[i] {
            Bottleneck::Compute => compute_finish.push(node.compute(b)),
            Bottleneck::Communication => comm_finish.push(node.sync_start(b, input.gamma) + input.t_o),
        }
    }
    let all: Vec<f64> = compute_finish.iter().chain(&comm_finish).copied().collect();
    let max = all.iter().copied().fold(f64::MIN, f64::max);
    let min = all.iter().copied().fold(f64::MAX, f64::min);
    let worst_slope = input
        .nodes
        .iter()
        .map(|n| n.compute_slope().max(n.sync_slope(input.gamma)))
        .fold(0.0f64, f64::max);
    assert!(
        max - min <= 3.0 * worst_slope,
        "mixed-regime finish spread {} vs slope {worst_slope}",
        max - min
    );
}

/// Edge-of-domain inputs the online-learned models can realistically
/// produce: near-degenerate γ, negligible communication, extreme
/// heterogeneity and large clusters.
#[test]
fn solver_survives_edge_inputs() {
    let node = |speed: f64| NodePerf {
        q: 0.2e-3 / speed,
        s: 1e-3,
        k: 0.4e-3 / speed,
        m: 0.5e-3,
        max_batch: None,
    };

    // γ close to its clamp boundaries.
    for gamma in [1e-3, 0.999 - 1e-6] {
        let input = SolverInput { nodes: vec![node(1.0), node(3.0)], gamma, t_o: 5e-3, t_u: 1e-3 };
        let mut solver = OptPerfSolver::new(input.clone());
        let plan = solver.solve(200).expect("feasible");
        assert_eq!(plan.local_batches.iter().sum::<u64>(), 200);
        assert!(plan.opt_perf.is_finite() && plan.opt_perf > 0.0, "gamma {gamma}");
    }

    // Essentially free communication: pure load balancing.
    let input = SolverInput { nodes: vec![node(1.0), node(2.0), node(4.0)], gamma: 0.1, t_o: 1e-12, t_u: 1e-12 };
    let mut solver = OptPerfSolver::new(input.clone());
    let plan = solver.solve(700).expect("feasible");
    // Shares ∝ speed.
    assert!(plan.local_batches[2] > plan.local_batches[1] && plan.local_batches[1] > plan.local_batches[0]);
    let even = predict_batch_time(&input, &[234, 233, 233]);
    assert!(plan.opt_perf < even);

    // 100x heterogeneity: the slow node still gets ≥ 1 sample.
    let input = SolverInput { nodes: vec![node(100.0), node(1.0)], gamma: 0.1, t_o: 2e-3, t_u: 0.5e-3 };
    let mut solver = OptPerfSolver::new(input);
    let plan = solver.solve(1000).expect("feasible");
    assert!(plan.local_batches[1] >= 1);
    assert!(plan.local_batches[0] > 900, "{:?}", plan.local_batches);

    // 64-node cluster: solves quickly and correctly.
    let nodes: Vec<NodePerf> = (0..64).map(|i| node(1.0 + (i % 8) as f64)).collect();
    let input = SolverInput { nodes, gamma: 0.15, t_o: 30e-3, t_u: 3e-3 };
    let mut solver = OptPerfSolver::new(input.clone());
    let started = std::time::Instant::now();
    let plan = solver.solve(6400).expect("feasible");
    assert!(started.elapsed().as_millis() < 200, "64-node solve took {:?}", started.elapsed());
    assert_eq!(plan.local_batches.iter().sum::<u64>(), 6400);
    // Same-speed nodes get near-identical shares.
    for i in (8..64).step_by(8) {
        assert!(plan.local_batches[i].abs_diff(plan.local_batches[0]) <= 1);
    }
}
