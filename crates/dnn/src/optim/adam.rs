//! Adam and AdamW.

use super::Optimizer;
use crate::layers::Param;
use crate::tensor::Tensor;

#[derive(Debug)]
struct AdamState {
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl AdamState {
    fn ensure(&mut self, params: &[&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| Tensor::zeros(p.value.shape())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.value.shape())).collect();
            self.t = 0;
        }
    }
}

macro_rules! adam_impl {
    ($(#[$meta:meta])* $name:ident, decoupled = $decoupled:expr) => {
        $(#[$meta])*
        #[derive(Debug)]
        pub struct $name {
            lr: f64,
            beta1: f64,
            beta2: f64,
            eps: f64,
            weight_decay: f64,
            state: AdamState,
        }

        impl $name {
            /// Create the optimizer with standard betas `(0.9, 0.999)` and
            /// `eps = 1e-8`.
            ///
            /// # Panics
            ///
            /// Panics if `lr <= 0`.
            pub fn new(lr: f64) -> Self {
                assert!(lr > 0.0, "learning rate must be positive");
                Self {
                    lr,
                    beta1: 0.9,
                    beta2: 0.999,
                    eps: 1e-8,
                    weight_decay: 0.0,
                    state: AdamState { m: Vec::new(), v: Vec::new(), t: 0 },
                }
            }

            /// Set the exponential-decay coefficients (builder style).
            #[must_use]
            pub fn betas(mut self, beta1: f64, beta2: f64) -> Self {
                assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2), "betas must be in [0, 1)");
                self.beta1 = beta1;
                self.beta2 = beta2;
                self
            }

            /// Set weight decay (builder style). For `AdamW` the decay is
            /// decoupled (applied directly to the weights); for `Adam` it is
            /// added to the gradient.
            #[must_use]
            pub fn weight_decay(mut self, wd: f64) -> Self {
                assert!(wd >= 0.0, "weight decay must be non-negative");
                self.weight_decay = wd;
                self
            }
        }

        impl Optimizer for $name {
            fn step(&mut self, params: &mut [&mut Param]) {
                self.state.ensure(params);
                self.state.t += 1;
                let t = self.state.t as i32;
                let bc1 = 1.0 - self.beta1.powi(t);
                let bc2 = 1.0 - self.beta2.powi(t);
                let (b1, b2) = (self.beta1 as f32, self.beta2 as f32);
                let lr = self.lr as f32;
                let eps = self.eps as f32;
                let wd = self.weight_decay as f32;
                for ((p, m), v) in params.iter_mut().zip(&mut self.state.m).zip(&mut self.state.v) {
                    for (((mv, vv), &g0), th) in m
                        .data_mut()
                        .iter_mut()
                        .zip(v.data_mut())
                        .zip(p.grad.data())
                        .zip(p.value.data_mut())
                    {
                        let g = if $decoupled { g0 } else { g0 + wd * *th };
                        *mv = b1 * *mv + (1.0 - b1) * g;
                        *vv = b2 * *vv + (1.0 - b2) * g * g;
                        let mhat = *mv / bc1 as f32;
                        let vhat = *vv / bc2 as f32;
                        if $decoupled {
                            *th -= lr * wd * *th;
                        }
                        *th -= lr * mhat / (vhat.sqrt() + eps);
                    }
                }
            }

            fn learning_rate(&self) -> f64 {
                self.lr
            }

            fn set_learning_rate(&mut self, lr: f64) {
                assert!(lr > 0.0, "learning rate must be positive");
                self.lr = lr;
            }
        }
    };
}

adam_impl!(
    /// Adam with coupled (gradient-space) weight decay — the optimizer used
    /// by the NeuMF/MovieLens workload in Table 5.
    Adam,
    decoupled = false
);

adam_impl!(
    /// AdamW with decoupled weight decay — the optimizer used by the
    /// BERT/SQuAD workload in Table 5.
    AdamW,
    decoupled = true
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::test_util::fit_line;

    #[test]
    fn adam_fits_linear_function() {
        let mut opt = Adam::new(0.05);
        let loss = fit_line(&mut opt, 300);
        assert!(loss < 1e-3, "final loss {loss}");
    }

    #[test]
    fn adamw_fits_linear_function() {
        let mut opt = AdamW::new(0.05);
        let loss = fit_line(&mut opt, 300);
        assert!(loss < 1e-3, "final loss {loss}");
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // With bias correction, the first Adam step has magnitude ≈ lr
        // regardless of gradient scale.
        let mut p = Param::new(Tensor::zeros(&[1]), "w");
        p.grad.data_mut()[0] = 1234.0;
        let mut opt = Adam::new(0.1);
        opt.step(&mut [&mut p]);
        assert!((p.value.data()[0] + 0.1).abs() < 1e-4, "got {}", p.value.data()[0]);
    }

    #[test]
    fn adamw_decay_is_decoupled() {
        // With zero gradient, AdamW still shrinks weights; Adam does not.
        let mut pw = Param::new(Tensor::ones(&[1]), "w");
        let mut opt_w = AdamW::new(0.1).weight_decay(0.5);
        opt_w.step(&mut [&mut pw]);
        assert!(pw.value.data()[0] < 1.0);

        let mut pa = Param::new(Tensor::ones(&[1]), "w");
        let mut opt_a = Adam::new(0.1).weight_decay(0.0);
        opt_a.step(&mut [&mut pa]);
        assert_eq!(pa.value.data()[0], 1.0);
    }

    #[test]
    fn state_resets_when_param_count_changes() {
        let mut opt = Adam::new(0.1);
        let mut p1 = Param::new(Tensor::ones(&[2]), "a");
        p1.grad.data_mut().fill(1.0);
        opt.step(&mut [&mut p1]);
        // Now step with two params; must not panic.
        let mut p2 = Param::new(Tensor::ones(&[3]), "b");
        p2.grad.data_mut().fill(1.0);
        let mut p3 = Param::new(Tensor::ones(&[4]), "c");
        opt.step(&mut [&mut p2, &mut p3]);
    }
}
