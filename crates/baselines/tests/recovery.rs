//! Baseline step-time pins and the crash-recovery comparison (§5.4).
//!
//! Two kinds of coverage:
//!
//! 1. the baselines' step-time models are pinned against the simulator's
//!    deterministic `ideal_batch_time` ground truth, so a regression in
//!    either side of the comparison shows up here before it skews a figure;
//! 2. the headline elastic-recovery claim — Cannikin absorbs a mid-training
//!    crash in-band (evict, re-solve, continue) while static DDP pays a
//!    checkpoint-restart round trip — is asserted end to end.

use cannikin_baselines::{time_to_target, DdpTrainer, HetPipeTrainer, LbBspTrainer};
use cannikin_core::engine::{CannikinTrainer, LinearNoiseGrowth, NoiseModel, TrainerConfig};
use cannikin_core::optperf::even_split;
use hetsim::catalog::Gpu;
use hetsim::cluster::{ClusterSpec, NodeSpec};
use hetsim::job::JobSpec;
use hetsim::{FaultPlan, Simulator};

fn cluster() -> ClusterSpec {
    ClusterSpec::new(
        "recovery",
        vec![
            NodeSpec::new("a100", Gpu::A100),
            NodeSpec::new("v100", Gpu::V100),
            NodeSpec::new("rtx", Gpu::Rtx6000),
        ],
    )
}

fn noise() -> Box<dyn NoiseModel> {
    Box::new(LinearNoiseGrowth { initial: 400.0, rate: 0.1 })
}

#[test]
fn even_split_is_bottlenecked_by_the_slowest_node() {
    let sim = Simulator::new(cluster(), JobSpec::resnet50_imagenet(), 7);
    // The step-time model must charge the even split the straggler's time:
    // shifting load from the RTX 6000 to the A100 strictly helps.
    let even = sim.ideal_batch_time(&[40, 40, 40]);
    let skewed = sim.ideal_batch_time(&[60, 40, 20]);
    assert!(even > 0.0 && skewed > 0.0);
    assert!(skewed < even, "skewed {skewed} should beat even {even} on a heterogeneous cluster");
}

#[test]
fn ddp_mean_batch_time_tracks_the_ideal_model() {
    let sim = Simulator::new(cluster(), JobSpec::resnet50_imagenet(), 7);
    let ideal = sim.ideal_batch_time(&even_split(120, 3));
    let mut ddp = DdpTrainer::new(sim, noise(), 12_000, 120, 120);
    let r = ddp.run_epoch();
    let rel = (r.mean_batch_time - ideal).abs() / ideal;
    assert!(rel < 0.25, "measured {} vs ideal {ideal}: off by {rel}", r.mean_batch_time);
}

#[test]
fn hetpipe_step_time_model_is_closed_form() {
    let sim = Simulator::new(cluster(), JobSpec::resnet50_imagenet(), 7);
    let mut hp = HetPipeTrainer::new(sim, noise(), 12_000, 120, 120);
    let pinned = hp.batch_time();
    assert!(pinned > 0.0);
    // A fixed-batch pipeline has no run-to-run variance: every epoch's
    // mean batch time equals the closed-form model exactly.
    let r0 = hp.run_epoch();
    let r1 = hp.run_epoch();
    assert_eq!(r0.mean_batch_time, pinned);
    assert_eq!(r1.mean_batch_time, pinned);
}

#[test]
fn lbbsp_rebalancing_reduces_step_time() {
    let sim = Simulator::new(cluster(), JobSpec::resnet50_imagenet(), 7);
    let mut lb = LbBspTrainer::new(sim, noise(), 12_000, 120, 120);
    let records = lb.run_epochs(12);
    let first = records[0].mean_batch_time;
    let settled: f64 = records[9..].iter().map(|r| r.mean_batch_time).sum::<f64>() / 3.0;
    assert!(settled < first * 0.98, "Δ-bounded rebalancing should shed the straggler: first {first}, settled {settled}");
}

#[test]
fn cannikin_recovers_from_a_crash_faster_than_static_ddp() {
    let job = JobSpec::resnet18_cifar10();
    let target = 3.0;

    // Cannikin: node 1 crashes at step 150 (mid-epoch 1). The trainer
    // evicts it, re-solves the split over the survivors at the same total
    // and keeps going — the only losses are the detection timeout and the
    // retried step.
    let plan = FaultPlan::new(77).crash_at(150, 1);
    let sim = Simulator::new(cluster(), job.clone(), 21).with_fault_plan(plan);
    let mut config = TrainerConfig::new(6_400, 64, 512);
    config.adaptive_batch = false;
    let mut cannikin = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(noise())
        .config(config)
        .build()
        .expect("valid config");
    let records = cannikin.train_until(target, 60).expect("cannikin run");
    let t_cannikin = time_to_target(&records, target).expect("cannikin reaches the target");
    assert!(records.iter().any(|r| r.faults > 0), "the crash must register");
    assert_eq!(records.last().unwrap().local_batches.len(), 2, "survivor split");

    // Static DDP: the same crash kills the job halfway through epoch 1;
    // the half epoch is lost and a restart round trip is charged before
    // training resumes (even split) on the survivors.
    let sim = Simulator::new(cluster(), job, 21);
    let mut ddp = DdpTrainer::new(sim, noise(), 6_400, 64, 64);
    let mut ddp_records = vec![ddp.run_epoch()];
    ddp.handle_crash(1, 0.5, 30.0);
    ddp_records.extend(ddp.train_until(target, 60));
    let t_ddp = time_to_target(&ddp_records, target).expect("ddp reaches the target");

    assert!(
        t_cannikin < t_ddp,
        "elastic recovery should beat checkpoint-restart: cannikin {t_cannikin}s vs ddp {t_ddp}s"
    );
}
