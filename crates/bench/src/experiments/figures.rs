//! Figures 5–10.

use crate::runners::{convergence_time, metric_trajectory, run_to_target, System};
use crate::{fmt, row};
use cannikin_core::engine::{CannikinTrainer, TrainerConfig};
use cannikin_core::optperf::{bootstrap_split, even_split, OptPerfSolver, SolverInput};
use cannikin_baselines::LbBspTrainer;
use cannikin_workloads::{clusters, profiles, WorkloadProfile};
use hetsim::Simulator;

/// Fig. 5: global and per-node local batch sizes over the epochs of a
/// CIFAR-10 run on cluster B. The global batch grows with the gradient
/// noise; the per-GPU shares track each GPU's speed, with `r_opt`
/// shifting as nodes cross between communication- and compute-bottleneck.
pub fn fig5() -> String {
    let profile = profiles::cifar10_resnet18();
    let cluster = clusters::cluster_b();
    let sim = Simulator::new(cluster, profile.job.clone(), 41);
    let config = TrainerConfig::new(profile.dataset_size, profile.base_batch, profile.max_batch);
    let mut trainer = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(Box::new(profile.noise))
        .config(config)
        .build()
        .expect("valid config");
    let records = trainer.train_until(profile.target_effective_epochs(), 400).expect("run");

    let mut out = String::from("Fig 5 — batch sizes during CIFAR-10 training on cluster B (Cannikin)\n");
    let widths = [6, 8, 10, 10, 10];
    out += &row(
        &["epoch".into(), "global".into(), "b[a100-0]".into(), "b[v100-0]".into(), "b[rtx-0]".into()],
        &widths,
    );
    out.push('\n');
    let stride = (records.len() / 20).max(1);
    for r in records.iter().step_by(stride) {
        out += &row(
            &[
                r.epoch.to_string(),
                r.total_batch.to_string(),
                r.local_batches[0].to_string(),
                r.local_batches[4].to_string(),
                r.local_batches[8].to_string(),
            ],
            &widths,
        );
        out.push('\n');
    }
    out
}

/// Fig. 6: Cannikin vs AdaptDL on CIFAR-10 — (a) batch size per epoch,
/// (b) accuracy per epoch, (c) accuracy vs wall time.
pub fn fig6() -> String {
    let profile = profiles::cifar10_resnet18();
    let cluster = clusters::cluster_b();
    let cannikin = run_to_target(System::Cannikin, &profile, &cluster, 61, 1000);
    let adaptdl = run_to_target(System::Adaptdl, &profile, &cluster, 61, 1000);

    let mut out = String::from("Fig 6 — Cannikin vs AdaptDL, CIFAR-10 on cluster B\n");
    let widths = [6, 9, 9, 9, 9, 10, 10];
    out += &row(
        &[
            "epoch".into(),
            "B(can)".into(),
            "B(adl)".into(),
            "acc(can)".into(),
            "acc(adl)".into(),
            "t(can)s".into(),
            "t(adl)s".into(),
        ],
        &widths,
    );
    out.push('\n');
    let epochs = cannikin.len().max(adaptdl.len());
    let stride = (epochs / 20).max(1);
    for e in (0..epochs).step_by(stride) {
        let c = cannikin.get(e);
        let a = adaptdl.get(e);
        out += &row(
            &[
                e.to_string(),
                c.map_or("-".into(), |r| r.total_batch.to_string()),
                a.map_or("-".into(), |r| r.total_batch.to_string()),
                c.map_or("-".into(), |r| fmt(profile.metric_at(r.effective_epochs))),
                a.map_or("-".into(), |r| fmt(profile.metric_at(r.effective_epochs))),
                c.map_or("-".into(), |r| fmt(r.cumulative_time)),
                a.map_or("-".into(), |r| fmt(r.cumulative_time)),
            ],
            &widths,
        );
        out.push('\n');
    }
    let tc = convergence_time(&cannikin, &profile).expect("cannikin converged");
    let ta = convergence_time(&adaptdl, &profile).expect("adaptdl converged");
    out += &format!(
        "time to 94% top-1: Cannikin {}s, AdaptDL {}s (reduction {:.0}%)\n",
        fmt(tc),
        fmt(ta),
        (1.0 - tc / ta) * 100.0
    );
    out
}

/// Fig. 7: convergence (metric vs wall time) of every system on CIFAR-10
/// and ImageNet over cluster B.
pub fn fig7() -> String {
    let mut out = String::from("Fig 7 — convergence processes on cluster B\n");
    for profile in [profiles::cifar10_resnet18(), profiles::imagenet_resnet50()] {
        out += &format!("\n[{}] metric vs time (sampled)\n", profile.name());
        let cluster = clusters::cluster_b();
        for system in System::all() {
            let records = run_to_target(system, &profile, &cluster, 71, 5000);
            let traj = metric_trajectory(&records, &profile);
            let stride = (traj.len() / 8).max(1);
            let series: Vec<String> = traj
                .iter()
                .step_by(stride)
                .map(|(t, m)| format!("({}, {})", fmt(*t), fmt(*m)))
                .collect();
            let conv = convergence_time(&records, &profile)
                .map_or("did not converge".into(), |t| format!("target at {}s", fmt(t)));
            out += &format!("  {:12} {}  [{}]\n", system.label(), conv, series.join(" "));
        }
    }
    out
}

/// Fig. 8: normalized convergence time of all five tasks under every
/// system (normalized to PyTorch DDP = 1.0; lower is better).
pub fn fig8() -> String {
    let mut out = String::from("Fig 8 — normalized convergence time, cluster B (DDP = 1.0)\n");
    let widths = [24, 12, 12, 12, 12, 12];
    let mut header = vec!["task".to_string()];
    header.extend(System::all().iter().map(|s| s.label().to_string()));
    out += &row(&header, &widths);
    out.push('\n');
    for profile in profiles::all() {
        let cluster = clusters::cluster_b();
        let mut times = Vec::new();
        for system in System::all() {
            let records = run_to_target(system, &profile, &cluster, 81, 20_000);
            times.push(convergence_time(&records, &profile));
        }
        let ddp = times[0].expect("DDP converged");
        let mut cells = vec![profile.name()];
        cells.extend(times.iter().map(|t| t.map_or("-".into(), |t| fmt(t / ddp))));
        out += &row(&cells, &widths);
        out.push('\n');
    }
    out
}

/// Fig. 9: batch processing time per epoch when training ImageNet on
/// cluster A at fixed total batch 128 from an even-split start — Cannikin
/// reaches OptPerf by epoch 3 (two bootstrap epochs), LB-BSP needs many
/// Δ-bounded rounds.
pub fn fig9() -> String {
    let profile = profiles::imagenet_resnet50();
    let cluster = clusters::cluster_a();
    let epochs = 16;
    // Small dataset slice: Fig. 9 is about per-epoch batch time, not
    // convergence, so 40 batches per epoch keeps it cheap.
    let dataset = 128 * 40;

    let sim = Simulator::new(cluster.clone(), profile.job.clone(), 91);
    let mut config = TrainerConfig::new(dataset, 128, 128);
    config.adaptive_batch = false;
    let mut cannikin = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(Box::new(profile.noise))
        .config(config)
        .build()
        .expect("valid config");
    let can_records = cannikin.run_epochs(epochs).expect("cannikin run");

    let sim = Simulator::new(cluster.clone(), profile.job.clone(), 91);
    let mut lbbsp = LbBspTrainer::new(sim, Box::new(profile.noise), dataset, 128, 128);
    let lb_records = lbbsp.run_epochs(epochs);

    // Oracle OptPerf for reference.
    let oracle_sim = Simulator::new(cluster.clone(), profile.job.clone(), 0).with_noise(0.0, 0.0);
    let mut oracle = OptPerfSolver::new(SolverInput::from_ground_truth(&cluster, &profile.job));
    let opt = oracle_sim.ideal_batch_time(&oracle.solve(128).expect("feasible").local_batches);

    let mut out = String::from("Fig 9 — ImageNet on cluster A, fixed B=128, even init\n");
    let widths = [6, 16, 16, 14];
    out += &row(&["epoch".into(), "Cannikin (s)".into(), "LB-BSP (s)".into(), "OptPerf (s)".into()], &widths);
    out.push('\n');
    for e in 0..epochs {
        out += &row(
            &[
                e.to_string(),
                fmt(can_records[e].mean_batch_time),
                fmt(lb_records[e].mean_batch_time),
                fmt(opt),
            ],
            &widths,
        );
        out.push('\n');
    }
    out
}

/// Fig. 10: normalized batch processing time vs total batch size for each
/// task on cluster B — OptPerf (= 1.0) vs LB-BSP's converged split,
/// LB-BSP right after a 10%-of-range batch-size increase, and DDP's even
/// split.
pub fn fig10() -> String {
    let mut out = String::from("Fig 10 — normalized batch processing time vs total batch (OptPerf = 1.0), cluster B\n");
    for profile in profiles::all() {
        out += &format!("\n[{}]\n", profile.name());
        let widths = [9, 10, 10, 13, 10];
        out += &row(
            &["B".into(), "OptPerf".into(), "LB-BSP".into(), "LB-BSP-adapt".into(), "DDP".into()],
            &widths,
        );
        out.push('\n');
        for (b, cols) in fig10_series(&profile) {
            out += &row(
                &[b.to_string(), fmt(cols[0]), fmt(cols[1]), fmt(cols[2]), fmt(cols[3])],
                &widths,
            );
            out.push('\n');
        }
    }
    out
}

/// The Fig. 10 series for one workload: `(B, [optperf, lbbsp, lbbsp_adaptive, ddp])`,
/// all normalized to OptPerf.
pub fn fig10_series(profile: &WorkloadProfile) -> Vec<(u64, [f64; 4])> {
    let cluster = clusters::cluster_b();
    let sim = Simulator::new(cluster.clone(), profile.job.clone(), 0).with_noise(0.0, 0.0);
    let mut solver = OptPerfSolver::new(SolverInput::from_ground_truth(&cluster, &profile.job));
    let n = cluster.len();
    let lo = profile.base_batch.max(2 * n as u64);
    let hi = profile.max_batch;
    let range_width = (hi - lo) as f64;
    let points = 8usize;
    let mut out = Vec::new();
    for i in 0..points {
        let b = (lo as f64 * (hi as f64 / lo as f64).powf(i as f64 / (points - 1) as f64)).round() as u64;
        let Ok(plan) = solver.solve(b) else { continue };
        let opt = sim.ideal_batch_time(&plan.local_batches);

        // LB-BSP's asymptote: equal compute times, overlap-blind.
        let lb_split = lbbsp_balanced_split(&sim, b);
        let lb = sim.ideal_batch_time(&lb_split);

        // LB-BSP right after the batch grew by 10% of the range: it still
        // uses the (rescaled) split balanced for the previous size.
        let prev = (b as f64 - 0.1 * range_width).max(n as f64) as u64;
        let prev_split = lbbsp_balanced_split(&sim, prev.max(n as u64));
        let prev_total: u64 = prev_split.iter().sum();
        let mut scaled: Vec<u64> = prev_split
            .iter()
            .map(|&x| ((x as f64 / prev_total as f64 * b as f64).round() as u64).max(1))
            .collect();
        let mut sum: u64 = scaled.iter().sum();
        while sum != b {
            let i = if sum < b {
                (0..n).max_by_key(|&i| scaled[i]).expect("nodes")
            } else {
                (0..n).filter(|&i| scaled[i] > 1).max_by_key(|&i| scaled[i]).expect("nodes")
            };
            if sum < b {
                scaled[i] += 1;
                sum += 1;
            } else {
                scaled[i] -= 1;
                sum -= 1;
            }
        }
        let lb_adapt = sim.ideal_batch_time(&scaled);

        let ddp = sim.ideal_batch_time(&even_split(b, n));
        out.push((b, [1.0, lb / opt, lb_adapt / opt, ddp / opt]));
    }
    out
}

/// LB-BSP's fixed point: local batches inversely proportional to the
/// per-sample compute time at the operating point (iterated to settle the
/// batch-size dependence of per-sample time).
fn lbbsp_balanced_split(sim: &Simulator, total: u64) -> Vec<u64> {
    let n = sim.cluster().len();
    let mut split = even_split(total, n);
    for _ in 0..12 {
        let t_sample: Vec<f64> = (0..n)
            .map(|i| {
                let c = sim.true_coefficients(i);
                c.compute(split[i].max(1) as f64) / split[i].max(1) as f64
            })
            .collect();
        split = bootstrap_split(&t_sample, total);
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_shape_holds() {
        let text = fig9();
        // Parse the per-epoch columns back out.
        let lines: Vec<&str> = text.lines().skip(2).collect();
        let parse = |line: &str| -> (f64, f64, f64) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            (cols[1].parse().unwrap(), cols[2].parse().unwrap(), cols[3].parse().unwrap())
        };
        let (can0, lb0, opt) = parse(lines[0]);
        // Both start even → identical batch time (up to noise).
        assert!((can0 / lb0 - 1.0).abs() < 0.1, "even starts should match: {can0} vs {lb0}");
        // Cannikin reaches within 5% of OptPerf by epoch 3.
        let (can3, _, _) = parse(lines[3]);
        assert!(can3 < opt * 1.05, "cannikin epoch 3: {can3} vs optperf {opt}");
        // LB-BSP is still far away at epoch 3 but close by epoch 15.
        let (_, lb3, _) = parse(lines[3]);
        assert!(lb3 > opt * 1.08, "LB-BSP should still lag at epoch 3: {lb3} vs {opt}");
        let (_, lb15, _) = parse(lines[15]);
        assert!(lb15 < opt * 1.10, "LB-BSP should approach OptPerf eventually: {lb15} vs {opt}");
    }

    #[test]
    fn fig10_relationships() {
        let series = fig10_series(&profiles::imagenet_resnet50());
        assert!(series.len() >= 6);
        for (b, cols) in &series {
            // OptPerf is the floor.
            assert!(cols[1] >= 0.999, "LB-BSP beat OptPerf at B={b}: {}", cols[1]);
            assert!(cols[3] >= 0.999, "DDP beat OptPerf at B={b}: {}", cols[3]);
            // Post-growth LB-BSP is no better than converged LB-BSP (up to
            // integer-rounding slack in the rescaled split).
            assert!(cols[2] >= cols[1] - 0.02, "B={b}");
        }
        // DDP's even split is clearly worse somewhere (paper: up to 53%).
        assert!(series.iter().any(|(_, c)| c[3] > 1.3), "DDP should lose significantly somewhere");
        // LB-BSP approaches OptPerf at the largest batch (both equalize
        // compute when everything is compute-bound).
        let last = series.last().unwrap();
        assert!(last.1[1] < 1.05, "LB-BSP at large B should approach OptPerf: {}", last.1[1]);
    }
}
