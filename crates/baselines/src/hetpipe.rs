//! HetPipe baseline (pipelined model parallelism).

use cannikin_core::engine::{EpochRecord, NoiseModel};
use cannikin_core::gns::statistical_efficiency;
use hetsim::timing::node_coefficients;
use hetsim::Simulator;

/// Pipelined model parallelism over heterogeneous nodes (§5.1).
///
/// HetPipe partitions the model across nodes proportionally to their
/// speed, so — unlike data parallelism — no node waits for a straggler:
/// with an ideal partition every pipeline stage takes the same time. The
/// costs that remain, and that the evaluation exposes, are
///
/// - the **pipeline bubble**: with `m` microbatches and `n` stages a batch
///   takes `(m + n − 1)/m` stage-times instead of `m`;
/// - **activation transfers** between stages each microbatch;
/// - a **fixed batch size**: adaptive batch sizing over a pipeline would
///   invalidate the partition (§2.2), so HetPipe forgoes the statistical
///   speedup entirely.
///
/// The stage-time model is derived from the same ground-truth physics as
/// the data-parallel simulator: the cluster's aggregate per-sample compute
/// capacity bounds an ideally partitioned pipeline.
pub struct HetPipeTrainer {
    sim: Simulator,
    noise: Box<dyn NoiseModel>,
    dataset_size: usize,
    total_batch: u64,
    base_batch: u64,
    microbatches: u64,
    epoch: usize,
    effective_epochs: f64,
    cumulative_time: f64,
}

impl HetPipeTrainer {
    /// Create a HetPipe run at fixed `total_batch`; the microbatch count
    /// is chosen to minimize the pipelined batch time (fill/drain bubble
    /// vs per-microbatch overhead).
    ///
    /// # Panics
    ///
    /// Panics if `total_batch == 0`.
    pub fn new(sim: Simulator, noise: Box<dyn NoiseModel>, dataset_size: usize, total_batch: u64, base_batch: u64) -> Self {
        assert!(total_batch > 0, "total batch must be positive");
        let mut trainer = HetPipeTrainer {
            sim,
            noise,
            dataset_size,
            total_batch,
            base_batch,
            microbatches: 1,
            epoch: 0,
            effective_epochs: 0.0,
            cumulative_time: 0.0,
        };
        trainer.microbatches = trainer.best_microbatch_count();
        trainer
    }

    /// The microbatch count that minimizes the pipelined batch time,
    /// searched over powers of two up to `8n` (HetPipe tunes this per
    /// deployment).
    fn best_microbatch_count(&self) -> u64 {
        let n = self.sim.cluster().len() as u64;
        let mut best = (1u64, f64::INFINITY);
        let mut m = 1u64;
        while m <= (8 * n).max(1) {
            let t = self.batch_time_with(m.min(self.total_batch));
            if t < best.1 {
                best = (m.min(self.total_batch), t);
            }
            m *= 2;
        }
        best.0
    }

    /// Predicted time of one pipelined batch at the chosen microbatch
    /// count.
    pub fn batch_time(&self) -> f64 {
        self.batch_time_with(self.microbatches)
    }

    fn batch_time_with(&self, microbatches: u64) -> f64 {
        let n = self.sim.cluster().len();
        let job = self.sim.job();
        // Ideal speed-proportional partition: per-sample stage time equals
        // the whole model's per-sample compute divided across the summed
        // capacity. Use each node's ground-truth slopes as the capacity
        // proxy (1 / (q + k) is samples/sec through a full replica).
        let caps: f64 = self
            .sim
            .cluster()
            .nodes
            .iter()
            .map(|node| {
                let c = node_coefficients(node, job);
                1.0 / (c.q + c.k)
            })
            .sum();
        let per_sample_stage = 1.0 / caps;
        let micro = (self.total_batch as f64 / microbatches as f64).max(1.0);
        // Discrete layers cannot be split exactly proportionally across
        // many heterogeneous stages; the slowest stage runs ~25% over the
        // ideal share.
        let imbalance = 1.25;
        let stage_time = per_sample_stage * micro * imbalance + 0.2e-3; // + per-microbatch launch
        let bubbles = (microbatches + n as u64 - 1) as f64;
        // Activation transfer between stages per microbatch.
        let act_bytes = job.boundary_bytes_per_sample * micro;
        let net = self.sim.cluster().network;
        let hop = act_bytes / net.bottleneck_bandwidth + net.link_latency;
        let pipeline = bubbles * (stage_time + hop);
        // HetPipe is pipeline parallelism *plus* data parallelism across
        // virtual workers, synchronized through a parameter server (wave
        // synchronous parallel). The PS push/pull of the full gradient
        // overlaps with roughly half of the pipeline's compute; only the
        // remainder extends the batch.
        let ps_total = job.gradient_bytes() / net.bottleneck_bandwidth;
        let ps_sync = (ps_total - 0.5 * pipeline).max(0.0);
        pipeline + ps_sync
    }

    /// Run one epoch.
    pub fn run_epoch(&mut self) -> EpochRecord {
        let phi = self.noise.noise_scale(self.effective_epochs);
        let steps = (self.dataset_size / self.total_batch as usize).max(1);
        let batch_time = self.batch_time();
        let epoch_time = batch_time * steps as f64;
        let efficiency = statistical_efficiency(phi, self.base_batch, self.total_batch);
        self.effective_epochs += steps as f64 * self.total_batch as f64 * efficiency / self.dataset_size as f64;
        self.cumulative_time += epoch_time;
        let record = EpochRecord {
            epoch: self.epoch,
            total_batch: self.total_batch,
            local_batches: vec![self.total_batch], // one pipeline, one logical replica
            steps,
            accumulation: 1,
            epoch_time,
            mean_batch_time: batch_time,
            noise_scale: phi,
            efficiency,
            effective_epochs: self.effective_epochs,
            cumulative_time: self.cumulative_time,
            overhead_seconds: 0.0,
            pattern: None,
            used_model: false,
            faults: 0,
            recoveries: 0,
        };
        self.epoch += 1;
        record
    }

    /// Run until `target` effective epochs or `max_epochs`.
    pub fn train_until(&mut self, target: f64, max_epochs: usize) -> Vec<EpochRecord> {
        let mut out = Vec::new();
        while self.effective_epochs < target && out.len() < max_epochs {
            out.push(self.run_epoch());
        }
        out
    }

    /// Run a fixed number of epochs.
    pub fn run_epochs(&mut self, n: usize) -> Vec<EpochRecord> {
        (0..n).map(|_| self.run_epoch()).collect()
    }
}

impl cannikin_core::engine::TrainingSubject for HetPipeTrainer {
    fn next_epoch(&mut self) -> Result<EpochRecord, cannikin_core::error::CannikinError> {
        Ok(self.run_epoch())
    }

    fn progress(&self) -> f64 {
        self.effective_epochs
    }
}

impl std::fmt::Debug for HetPipeTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HetPipeTrainer(B={}, {} microbatches)", self.total_batch, self.microbatches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cannikin_core::engine::LinearNoiseGrowth;
    use cannikin_core::optperf::even_split;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::job::JobSpec;

    fn sim() -> Simulator {
        let cluster = ClusterSpec::new(
            "t",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        );
        Simulator::new(cluster, JobSpec::resnet50_imagenet(), 6)
    }

    #[test]
    fn beats_even_data_parallel_at_large_compute_bound_batches() {
        // HetPipe's pitch: in a heterogeneous cluster, pipelining with
        // proportional partitioning beats straggler-bound even-split data
        // parallelism — once batches are large enough that its fill/drain
        // bubble and parameter-server sync amortize. CIFAR's small
        // stage-boundary activations make it the pipeline-friendly case
        // (ImageNet activations over 10 GbE favor data parallelism).
        let cluster = ClusterSpec::new(
            "t",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        );
        let s = Simulator::new(cluster, JobSpec::resnet18_cifar10(), 6);
        let noise = Box::new(LinearNoiseGrowth { initial: 300.0, rate: 1.0 });
        let t = HetPipeTrainer::new(s, noise, 76_800, 768, 768);
        let dp_sim = sim();
        let dp_sim = {
            let cluster = dp_sim.cluster().clone();
            Simulator::new(cluster, JobSpec::resnet18_cifar10(), 6).with_noise(0.0, 0.0)
        };
        let even = dp_sim.ideal_batch_time(&even_split(768, 3));
        assert!(t.batch_time() < even, "hetpipe {} vs even DP {even}", t.batch_time());
    }

    #[test]
    fn fixed_batch_never_changes() {
        let noise = Box::new(LinearNoiseGrowth { initial: 300.0, rate: 1.0 });
        let mut t = HetPipeTrainer::new(sim(), noise, 12_800, 128, 128);
        let records = t.run_epochs(5);
        assert!(records.iter().all(|r| r.total_batch == 128));
    }

    #[test]
    fn progress_accumulates() {
        let noise = Box::new(LinearNoiseGrowth { initial: 300.0, rate: 1.0 });
        let mut t = HetPipeTrainer::new(sim(), noise, 12_800, 128, 128);
        let records = t.train_until(2.0, 100);
        assert!(records.last().unwrap().effective_epochs >= 2.0);
    }
}
