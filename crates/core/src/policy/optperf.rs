//! The paper's planner as a [`Policy`]: OptPerf splits + goodput-driven
//! total batch selection.

use super::{EpochPlan, EpochObservation, Policy, PolicyContext};
use crate::error::CannikinError;
use crate::goodput::GoodputEngine;
use crate::optperf::{bootstrap_split, ensure_distinct_split, even_split, OptPerfSolver};
use cannikin_telemetry::SplitSource;

/// How the engine measures — the two engines historically planned with
/// slightly different machinery, preserved here branch for branch.
enum Mode {
    /// Simulation-driven ([`crate::engine::CannikinTrainer`]): stateful
    /// [`GoodputEngine`] over the geometric candidate grid, warm-start
    /// attribution, and the Eq. (8) growth bootstrap before models fit.
    Simulated {
        goodput: GoodputEngine,
        base_batch: u64,
        max_batch: u64,
        warm_started: bool,
    },
    /// Measured ([`crate::engine::ParallelTrainer`]): stateless
    /// doubling-grid total search that tolerates an absent GNS estimate,
    /// with a fixed-base bootstrap.
    Measured,
}

/// Extraction of the previously-inline `run_epoch` planning logic —
/// bitwise-identical to it under pinned seed (`tests/policy.rs`).
pub struct OptPerfGoodput {
    mode: Mode,
}

impl OptPerfGoodput {
    /// Planner for a simulation-driven engine over `[base_batch,
    /// max_batch]` on `nodes` nodes.
    pub fn simulated(base_batch: u64, nodes: usize, max_batch: u64) -> Self {
        OptPerfGoodput {
            mode: Mode::Simulated {
                goodput: GoodputEngine::new(base_batch, base_batch.max(nodes as u64), max_batch),
                base_batch,
                max_batch,
                warm_started: false,
            },
        }
    }

    /// Planner for a measured engine.
    pub fn measured() -> Self {
        OptPerfGoodput { mode: Mode::Measured }
    }

    fn ask_simulated(ctx: &PolicyContext, goodput: &mut GoodputEngine, warm_started: &mut bool) -> Result<EpochPlan, CannikinError> {
        let n = ctx.nodes;
        let phi = ctx.phi.unwrap_or(0.0);
        let mut used_model = false;
        let mut pattern = None;
        let mut accumulation = 1u64;
        let mut predicted_t = None;
        let mut source = SplitSource::Bootstrap;
        let (total, local) = if let Some(input) = ctx.solver_input.clone() {
            let mut solver = OptPerfSolver::new(input);
            source = if *warm_started { SplitSource::WarmStart } else { SplitSource::Solver };
            *warm_started = false;
            if ctx.adaptive {
                let sel = goodput.select(&mut solver, phi)?;
                used_model = true;
                pattern = Some(sel.plan.pattern.clone());
                accumulation = sel.accumulation;
                predicted_t = Some(sel.plan.opt_perf);
                (sel.total, sel.plan.local_batches)
            } else {
                let plan = solver.solve(ctx.base_batch)?;
                used_model = true;
                pattern = Some(plan.pattern.clone());
                predicted_t = Some(plan.opt_perf);
                (ctx.base_batch, plan.local_batches)
            }
        } else if ctx.epoch == 0 || ctx.last_split.is_empty() {
            source = SplitSource::EvenInit;
            (ctx.base_batch, even_split(ctx.base_batch, n))
        } else {
            // Growth bootstrap: perturb the total once so the linear models
            // see two batch sizes, then hold it until the solver takes over.
            let total = if ctx.epoch == 1 && ctx.adaptive {
                ((ctx.base_batch as f64 * 1.5).round() as u64).min(ctx.max_batch)
            } else if ctx.epoch >= 2 {
                ctx.last_split.iter().sum::<u64>()
            } else {
                ctx.base_batch
            };
            let split = bootstrap_split(&ctx.per_sample_times, total);
            (total, ensure_distinct_split(&ctx.last_split, split))
        };
        Ok(EpochPlan { total, local, accumulation, source, used_model, pattern, predicted_t })
    }

    fn ask_measured(ctx: &PolicyContext) -> EpochPlan {
        let n = ctx.nodes;
        let mut used_model = false;
        let mut predicted_t = None;
        let mut pattern = None;
        let mut source = SplitSource::Bootstrap;
        let (total, local) = if let Some(input) = ctx.solver_input.clone() {
            let mut solver = OptPerfSolver::new(input);
            let total = if ctx.adaptive { pick_total(ctx, &mut solver) } else { ctx.base_batch };
            match solver.solve(total) {
                Ok(plan) => {
                    used_model = true;
                    source = SplitSource::Solver;
                    predicted_t = Some(plan.opt_perf);
                    pattern = Some(plan.pattern.clone());
                    (total, plan.local_batches)
                }
                Err(_) => {
                    source = SplitSource::EvenInit;
                    (ctx.base_batch, even_split(ctx.base_batch, n))
                }
            }
        } else if ctx.epoch == 0 || ctx.last_split.is_empty() {
            source = SplitSource::EvenInit;
            (ctx.base_batch, even_split(ctx.base_batch, n))
        } else {
            let split = bootstrap_split(&ctx.per_sample_times, ctx.base_batch);
            (ctx.base_batch, ensure_distinct_split(&ctx.last_split, split))
        };
        EpochPlan { total, local, accumulation: 1, source, used_model, pattern, predicted_t }
    }
}

/// Goodput-style total-batch pick over a tiny doubling grid (the measured
/// datasets are small, so the full cache machinery of [`GoodputEngine`]
/// is unnecessary).
fn pick_total(ctx: &PolicyContext, solver: &mut OptPerfSolver) -> u64 {
    let Some(phi) = ctx.phi else {
        return ctx.base_batch;
    };
    let n = ctx.nodes as u64;
    let mut best = (ctx.base_batch, f64::MIN);
    let mut b = ctx.base_batch.max(n);
    while b <= ctx.max_batch && (b as usize) <= ctx.dataset_size {
        if let Ok(plan) = solver.solve(b) {
            let g = crate::gns::goodput(phi, ctx.base_batch, b, plan.opt_perf);
            if g > best.1 {
                best = (b, g);
            }
        }
        b *= 2;
    }
    best.0
}

impl Policy for OptPerfGoodput {
    fn name(&self) -> &'static str {
        "optperf"
    }

    fn ask(&mut self, ctx: &PolicyContext) -> Result<EpochPlan, CannikinError> {
        match &mut self.mode {
            Mode::Simulated { goodput, warm_started, .. } => Self::ask_simulated(ctx, goodput, warm_started),
            Mode::Measured => Ok(Self::ask_measured(ctx)),
        }
    }

    fn tell(&mut self, _obs: &EpochObservation) {
        // The goodput engine learns through the analyzer models the engine
        // passes back via `PolicyContext::solver_input`; realized timings
        // carry no extra signal for this planner.
    }

    fn on_warm_start(&mut self) {
        if let Mode::Simulated { warm_started, .. } = &mut self.mode {
            *warm_started = true;
        }
    }

    fn on_membership_change(&mut self, nodes: usize) {
        if let Mode::Simulated { goodput, base_batch, max_batch, .. } = &mut self.mode {
            // Same rebuild the engines performed inline: new candidate
            // floor at the new node count, caches invalidated.
            *goodput = GoodputEngine::new(*base_batch, (*base_batch).max(nodes as u64), *max_batch);
        }
    }
}
