//! Real-socket ring transport over localhost TCP.
//!
//! Frames are length-prefixed: a little-endian `u32` byte count followed by
//! the payload. Connection setup goes through a [`Rendezvous`] listener so a
//! group can be formed with one address: each rank dials the rendezvous,
//! announces the address of its own data listener, and is told its rank,
//! the world size, and the data address of the *next* rank in the ring. The
//! rendezvous assigns ranks in connection-arrival order, which is all the
//! SPMD contract needs — every rank then runs the same collective schedule.
//!
//! Per-receive deadlines are implemented with `set_read_timeout`; a timeout
//! or peer loss surfaces as the same [`CommError`] variants the resilient
//! collectives and [`crate::RetryPolicy`] already consume. Note that a
//! timeout fired mid-frame leaves the stream desynchronised — like the
//! in-process backend, a group that timed out must be rebuilt, not reused.

use crate::resilience::CommError;
use crate::transport::Transport;
use std::cell::Cell;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Refuse frames above this size — a corrupt length prefix would otherwise
/// ask for a multi-gigabyte allocation.
const MAX_FRAME: u32 = 1 << 30;

/// How long connection setup (rendezvous dial, ring accept) may take before
/// the group is declared unformable.
const SETUP_DEADLINE: Duration = Duration::from_secs(10);

fn io_err(rank: usize, context: &str, e: &std::io::Error) -> CommError {
    CommError::Io { rank, detail: format!("{context}: {e}") }
}

/// The group-formation listener: binds an address, hands out ranks, and
/// tells each joiner where its ring successor listens.
pub struct Rendezvous {
    addr: SocketAddr,
    handle: Option<thread::JoinHandle<Result<(), CommError>>>,
    done: Arc<AtomicBool>,
}

impl Rendezvous {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving a
    /// group of `world` ranks in a background thread.
    ///
    /// # Errors
    ///
    /// [`CommError::Io`] if the listener cannot bind.
    pub fn bind(addr: &str, world: usize) -> Result<Rendezvous, CommError> {
        assert!(world > 0, "rendezvous world must be at least one rank");
        let listener = TcpListener::bind(addr).map_err(|e| io_err(0, "rendezvous bind", &e))?;
        let addr = listener.local_addr().map_err(|e| io_err(0, "rendezvous local_addr", &e))?;
        let done = Arc::new(AtomicBool::new(false));
        let done_flag = Arc::clone(&done);
        let handle = thread::spawn(move || {
            let result = serve(&listener, world);
            done_flag.store(true, Ordering::SeqCst);
            result
        });
        Ok(Rendezvous { addr, handle: Some(handle), done })
    }

    /// The bound address joiners should dial (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the group to finish forming.
    ///
    /// # Errors
    ///
    /// Propagates any setup failure the serve thread hit.
    pub fn wait(mut self) -> Result<(), CommError> {
        match self.handle.take() {
            Some(h) => h
                .join()
                .unwrap_or(Err(CommError::Io { rank: 0, detail: "rendezvous thread panicked".into() })),
            None => Ok(()),
        }
    }
}

impl Drop for Rendezvous {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            // Only block if the group already formed; otherwise detach so a
            // failed setup doesn't hang the caller on an accept() nobody
            // will complete.
            if self.done.load(Ordering::SeqCst) {
                let _ = h.join();
            }
        }
    }
}

impl fmt::Debug for Rendezvous {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rendezvous({})", self.addr)
    }
}

/// Accept `world` joiners, then tell each its rank and successor address.
fn serve(listener: &TcpListener, world: usize) -> Result<(), CommError> {
    let mut joiners: Vec<(TcpStream, SocketAddr)> = Vec::with_capacity(world);
    for _ in 0..world {
        let (mut stream, _) = listener.accept().map_err(|e| io_err(0, "rendezvous accept", &e))?;
        stream
            .set_read_timeout(Some(SETUP_DEADLINE))
            .map_err(|e| io_err(0, "rendezvous set timeout", &e))?;
        let mut buf = [0u8; 2];
        stream.read_exact(&mut buf).map_err(|e| io_err(0, "rendezvous read addr len", &e))?;
        let len = usize::from(u16::from_le_bytes(buf));
        let mut addr_bytes = vec![0u8; len];
        stream.read_exact(&mut addr_bytes).map_err(|e| io_err(0, "rendezvous read addr", &e))?;
        let text = String::from_utf8(addr_bytes)
            .map_err(|e| CommError::Io { rank: 0, detail: format!("rendezvous addr not utf-8: {e}") })?;
        let data_addr: SocketAddr = text
            .parse()
            .map_err(|e| CommError::Io { rank: 0, detail: format!("rendezvous bad addr `{text}`: {e}") })?;
        joiners.push((stream, data_addr));
    }
    for rank in 0..world {
        let next_addr = joiners[(rank + 1) % world].1;
        let reply = format!("{rank};{world};{next_addr}");
        let stream = &mut joiners[rank].0;
        let len = u16::try_from(reply.len())
            .map_err(|_| CommError::Io { rank, detail: "rendezvous reply too long".into() })?;
        stream.write_all(&len.to_le_bytes()).map_err(|e| io_err(rank, "rendezvous write len", &e))?;
        stream.write_all(reply.as_bytes()).map_err(|e| io_err(rank, "rendezvous write reply", &e))?;
    }
    Ok(())
}

/// One rank's endpoint of a TCP ring: a stream to the successor and a
/// stream from the predecessor, with wire-byte counters.
pub struct TcpTransport {
    rank: usize,
    world: usize,
    next: TcpStream,
    prev: TcpStream,
    sent: Cell<u64>,
    received: Cell<u64>,
}

impl fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TcpTransport(rank {}/{})", self.rank, self.world)
    }
}

impl TcpTransport {
    /// Join the group forming at `rendezvous_addr`; blocks until the full
    /// ring is wired (every rank connected to its successor).
    ///
    /// # Errors
    ///
    /// [`CommError::Io`] on any setup failure (dial, bind, accept,
    /// protocol violation) and [`CommError::Timeout`] if the ring does not
    /// form within the setup deadline.
    pub fn join(rendezvous_addr: &str) -> Result<TcpTransport, CommError> {
        // Bind the data listener first so its address can be announced and
        // the predecessor's connect lands in the backlog even before we
        // start accepting.
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| io_err(0, "data listener bind", &e))?;
        let data_addr = listener.local_addr().map_err(|e| io_err(0, "data local_addr", &e))?;

        let mut control = connect_with_retry(rendezvous_addr, 0)?;
        control
            .set_read_timeout(Some(SETUP_DEADLINE))
            .map_err(|e| io_err(0, "control set timeout", &e))?;
        let announce = data_addr.to_string();
        let len = u16::try_from(announce.len())
            .map_err(|_| CommError::Io { rank: 0, detail: "data addr too long".into() })?;
        control.write_all(&len.to_le_bytes()).map_err(|e| io_err(0, "announce len", &e))?;
        control.write_all(announce.as_bytes()).map_err(|e| io_err(0, "announce addr", &e))?;

        let mut buf = [0u8; 2];
        control.read_exact(&mut buf).map_err(|e| io_err(0, "assignment len", &e))?;
        let mut reply = vec![0u8; usize::from(u16::from_le_bytes(buf))];
        control.read_exact(&mut reply).map_err(|e| io_err(0, "assignment", &e))?;
        let reply = String::from_utf8(reply)
            .map_err(|e| CommError::Io { rank: 0, detail: format!("assignment not utf-8: {e}") })?;
        let mut parts = reply.splitn(3, ';');
        let parse_field = |part: Option<&str>, what: &str| -> Result<String, CommError> {
            part.map(str::to_string).ok_or_else(|| CommError::Io {
                rank: 0,
                detail: format!("assignment `{reply}` missing {what}"),
            })
        };
        let rank: usize = parse_field(parts.next(), "rank")?
            .parse()
            .map_err(|e| CommError::Io { rank: 0, detail: format!("bad rank in `{reply}`: {e}") })?;
        let world: usize = parse_field(parts.next(), "world")?
            .parse()
            .map_err(|e| CommError::Io { rank, detail: format!("bad world in `{reply}`: {e}") })?;
        let next_addr = parse_field(parts.next(), "next addr")?;

        // Wire the ring: dial the successor while accepting the predecessor.
        // TCP's listen backlog makes the ordering safe — the predecessor's
        // SYN queues on our listener even if we dial first.
        let next = if world == 1 {
            // Self-loop: dial our own listener and accept the connection.
            let stream = connect_with_retry(&next_addr, rank)?;
            let (_accepted, _) = listener.accept().map_err(|e| io_err(rank, "self accept", &e))?;
            // Use the dialing end for send and the accepted end for recv so
            // frames round-trip through a real socket even at world 1.
            let prev = _accepted;
            return Self::finish(rank, world, stream, prev);
        } else {
            connect_with_retry(&next_addr, rank)?
        };
        let prev = accept_with_deadline(&listener, rank)?;
        Self::finish(rank, world, next, prev)
    }

    fn finish(
        rank: usize,
        world: usize,
        next: TcpStream,
        prev: TcpStream,
    ) -> Result<TcpTransport, CommError> {
        next.set_nodelay(true).map_err(|e| io_err(rank, "set nodelay", &e))?;
        prev.set_read_timeout(None).map_err(|e| io_err(rank, "clear read timeout", &e))?;
        Ok(TcpTransport { rank, world, next, prev, sent: Cell::new(0), received: Cell::new(0) })
    }

    fn read_frame(&self) -> Result<Vec<u8>, CommError> {
        let mut prefix = [0u8; 4];
        (&self.prev).read_exact(&mut prefix).map_err(|e| self.map_recv_err(&e))?;
        let len = u32::from_le_bytes(prefix);
        if len > MAX_FRAME {
            return Err(CommError::Io {
                rank: self.rank,
                detail: format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
            });
        }
        let mut payload = vec![0u8; len as usize];
        (&self.prev).read_exact(&mut payload).map_err(|e| self.map_recv_err(&e))?;
        self.received.set(self.received.get() + 4 + u64::from(len));
        Ok(payload)
    }

    fn map_recv_err(&self, e: &std::io::Error) -> CommError {
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                CommError::Timeout { rank: self.rank, waited_ms: 0 }
            }
            ErrorKind::UnexpectedEof | ErrorKind::ConnectionReset | ErrorKind::BrokenPipe
            | ErrorKind::ConnectionAborted => CommError::Dropped { rank: self.rank },
            _ => io_err(self.rank, "recv", e),
        }
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn send(&self, frame: &[u8]) -> Result<(), CommError> {
        let len = u32::try_from(frame.len()).map_err(|_| CommError::Io {
            rank: self.rank,
            detail: format!("frame of {} bytes exceeds u32 framing", frame.len()),
        })?;
        if len > MAX_FRAME {
            return Err(CommError::Io {
                rank: self.rank,
                detail: format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
            });
        }
        let map = |e: std::io::Error| match e.kind() {
            ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted => {
                CommError::Dropped { rank: self.rank }
            }
            _ => io_err(self.rank, "send", &e),
        };
        (&self.next).write_all(&len.to_le_bytes()).map_err(map)?;
        (&self.next).write_all(frame).map_err(map)?;
        self.sent.set(self.sent.get() + 4 + u64::from(len));
        Ok(())
    }

    fn recv(&self) -> Result<Vec<u8>, CommError> {
        self.prev
            .set_read_timeout(None)
            .map_err(|e| io_err(self.rank, "clear read timeout", &e))?;
        self.read_frame()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, CommError> {
        // A zero Duration means "no timeout" to set_read_timeout; clamp up.
        let effective = timeout.max(Duration::from_millis(1));
        self.prev
            .set_read_timeout(Some(effective))
            .map_err(|e| io_err(self.rank, "set read timeout", &e))?;
        self.read_frame().map_err(|e| match e {
            CommError::Timeout { rank, .. } => {
                CommError::Timeout { rank, waited_ms: timeout.as_millis() as u64 }
            }
            other => other,
        })
    }

    fn barrier(&self) -> Result<(), CommError> {
        // n-1 rounds of an empty frame around the ring: after round k every
        // rank has transitively heard from k+1 predecessors, so after n-1
        // rounds everyone has entered the barrier.
        for _ in 0..self.world.saturating_sub(1) {
            self.send(&[])?;
            let frame = self.recv()?;
            if !frame.is_empty() {
                return Err(CommError::Io {
                    rank: self.rank,
                    detail: format!("barrier expected empty frame, got {} bytes", frame.len()),
                });
            }
        }
        Ok(())
    }

    fn bytes_sent(&self) -> u64 {
        self.sent.get()
    }

    fn bytes_received(&self) -> u64 {
        self.received.get()
    }
}

/// Dial `addr`, retrying while the listener may still be binding.
fn connect_with_retry(addr: &str, rank: usize) -> Result<TcpStream, CommError> {
    let deadline = Instant::now() + SETUP_DEADLINE;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io_err(rank, &format!("connect {addr}"), &e));
                }
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Accept one connection with an overall deadline (poll in non-blocking
/// mode so a missing peer cannot hang the join forever).
fn accept_with_deadline(listener: &TcpListener, rank: usize) -> Result<TcpStream, CommError> {
    listener.set_nonblocking(true).map_err(|e| io_err(rank, "listener nonblocking", &e))?;
    let deadline = Instant::now() + SETUP_DEADLINE;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).map_err(|e| io_err(rank, "stream blocking", &e))?;
                return Ok(stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(CommError::Timeout {
                        rank,
                        waited_ms: SETUP_DEADLINE.as_millis() as u64,
                    });
                }
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(io_err(rank, "ring accept", &e)),
        }
    }
}

/// Form a full TCP ring on localhost: bind an ephemeral rendezvous, join
/// `world` transports from scratch threads, and return them rank-ordered.
///
/// # Errors
///
/// Propagates any join failure.
pub fn tcp_ring(addr: &str, world: usize) -> Result<Vec<TcpTransport>, CommError> {
    let rendezvous = Rendezvous::bind(addr, world)?;
    let target = rendezvous.addr().to_string();
    let joiners: Vec<_> = (0..world)
        .map(|_| {
            let target = target.clone();
            thread::spawn(move || TcpTransport::join(&target))
        })
        .collect();
    let mut transports = Vec::with_capacity(world);
    for joiner in joiners {
        transports.push(joiner.join().map_err(|_| CommError::Io {
            rank: 0,
            detail: "tcp join thread panicked".into(),
        })??);
    }
    rendezvous.wait()?;
    transports.sort_by_key(|t| t.rank());
    Ok(transports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_forms_and_frames_round_trip() {
        let transports = tcp_ring("127.0.0.1:0", 3).expect("ring forms");
        assert_eq!(transports.len(), 3);
        let handles: Vec<_> = transports
            .into_iter()
            .map(|t| {
                thread::spawn(move || {
                    let payload = vec![t.rank() as u8; 8];
                    t.send(&payload).unwrap();
                    let got = t.recv().unwrap();
                    let prev = (t.rank() + t.world_size() - 1) % t.world_size();
                    assert_eq!(got, vec![prev as u8; 8]);
                    t.barrier().unwrap();
                    assert!(t.bytes_sent() > 0);
                    assert!(t.bytes_received() > 0);
                    // 8-byte payload + 4-byte prefix, plus 2 barrier rounds
                    // of empty frames (4 bytes each).
                    assert_eq!(t.bytes_sent(), 12 + 8);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn recv_timeout_fires_without_a_sender() {
        let transports = tcp_ring("127.0.0.1:0", 2).expect("ring forms");
        let t = &transports[0];
        let err = t.recv_timeout(Duration::from_millis(30)).unwrap_err();
        assert!(matches!(err, CommError::Timeout { .. }), "got {err:?}");
    }

    #[test]
    fn dropped_peer_is_detected() {
        let mut transports = tcp_ring("127.0.0.1:0", 2).expect("ring forms");
        let b = transports.pop().unwrap();
        let a = transports.pop().unwrap();
        drop(b);
        // a's predecessor hung up: recv reports the drop.
        let err = a.recv().unwrap_err();
        assert!(matches!(err, CommError::Dropped { rank: 0 }), "got {err:?}");
    }

    #[test]
    fn world_of_one_loops_back() {
        let transports = tcp_ring("127.0.0.1:0", 1).expect("ring forms");
        let t = &transports[0];
        t.send(&[7, 7]).unwrap();
        assert_eq!(t.recv().unwrap(), vec![7, 7]);
        t.barrier().unwrap();
    }
}
