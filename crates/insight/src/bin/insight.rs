//! `cannikin-insight` — replay and report on recorded JSONL telemetry
//! traces.
//!
//! ```text
//! cannikin-insight <trace.jsonl> [--only-rank N]
//! cannikin-insight report <trace.jsonl> [--html PATH] [--only-rank N]
//! ```
//!
//! The first form loads a trace (as exported via
//! `CANNIKIN_TELEMETRY=jsonl:/path` or `telemetry::export::write_jsonl`),
//! reconstructs per-node and per-plan timelines, reruns the online
//! detectors offline, and prints the calibration + anomaly report. Exits
//! 0 when the trace is healthy, 1 on usage or parse errors, 2 when
//! anomalies were found (so scripts can gate on run health).
//!
//! The `report` form renders the fleet mission-control report instead:
//! per-job allocation timelines, SLO compliance against the default
//! fleet objectives, and the anomaly list — as deterministic text on
//! stdout plus, with `--html`, a self-contained single-file HTML page.
//! Exits 0 on success, 1 on usage or parse errors, 2 when the offline
//! SLO/anomaly reruns disagree with the online verdicts recorded in the
//! trace (a determinism defect, not a mere violation).

use cannikin_insight::{replay, report, InsightConfig};
use cannikin_telemetry::export::parse_jsonl;
use cannikin_telemetry::{default_fleet_slos, Record};
use std::process::ExitCode;

const USAGE: &str = "usage: cannikin-insight <trace.jsonl> [--only-rank N]\n       cannikin-insight report <trace.jsonl> [--html PATH] [--only-rank N]";

fn load(path: &str, only_rank: Option<u32>) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut records = parse_jsonl(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))?;
    if let Some(rank) = only_rank {
        records.retain(|r| r.rank == rank);
    }
    Ok(records)
}

fn run() -> Result<ExitCode, String> {
    let mut path = None;
    let mut html = None;
    let mut only_rank = None;
    let mut report_mode = false;
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("report") {
        report_mode = true;
        args.next();
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--only-rank" => {
                let value = args.next().ok_or("--only-rank needs a value")?;
                let rank = value.parse::<u32>().map_err(|e| format!("bad --only-rank `{value}`: {e}"))?;
                only_rank = Some(rank);
            }
            "--html" if report_mode => {
                html = Some(args.next().ok_or("--html needs a path")?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let path = path.ok_or(USAGE)?;

    if report_mode {
        // The rank filter is applied while loading (the report walks raw
        // records); the detector config gets no extra filter.
        let records = load(&path, only_rank)?;
        let fleet = report::build(&records, InsightConfig::default(), &default_fleet_slos());
        print!("{}", fleet.render_text());
        if let Some(html_path) = html {
            std::fs::write(&html_path, fleet.render_html())
                .map_err(|e| format!("cannot write `{html_path}`: {e}"))?;
        }
        return Ok(if fleet.verdicts_match() { ExitCode::SUCCESS } else { ExitCode::from(2) });
    }

    let records = load(&path, None)?;
    let config = InsightConfig { only_rank, ..InsightConfig::default() };
    let report = replay::analyze(&records, config);
    print!("{}", report.render());
    if report.offline.is_empty() && report.online.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(2))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("cannikin-insight: {message}");
            ExitCode::FAILURE
        }
    }
}
