//! Fleet mission control (ISSUE 8 acceptance): concurrent subscribers
//! observe fleet runs without losing, duplicating or reordering events,
//! and the SLO engine's online verdicts replay offline byte-for-byte —
//! including over crash-recovery traces.

use std::sync::{Arc, Mutex, MutexGuard};

use cannikin::core::engine::TrainerConfig;
use cannikin::fleet::{AllocPolicy, FleetController, FleetJobSpec};
use cannikin::insight::{replay_slos, InsightConfig, Monitor, SloMonitor};
use cannikin::sim::catalog::Gpu;
use cannikin::sim::cluster::NodeSpec;
use cannikin::sim::job::JobSpec;
use cannikin::sim::FaultPlan;
use cannikin::telemetry::{
    self as telemetry, Event, Labels, Record, SeriesRecorder, SloRule, Subscriber,
};

/// The telemetry recorder is process-global; every test that opens a
/// session takes this lock so sessions never interleave.
static TELEMETRY: Mutex<()> = Mutex::new(());

fn telemetry_lock() -> MutexGuard<'static, ()> {
    TELEMETRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// A raw subscriber that keeps every record batch delivery, filtered to
/// one rank so concurrent tests sharing the recorder stay invisible.
struct Counting {
    only_rank: u32,
    seen: Mutex<Vec<Record>>,
}

impl Subscriber for Counting {
    fn on_records(&self, batch: &[Record]) {
        let mut seen = self.seen.lock().unwrap();
        seen.extend(batch.iter().filter(|r| r.rank == self.only_rank).cloned());
    }
}

fn pool4() -> Vec<NodeSpec> {
    vec![
        NodeSpec::new("a100-0", Gpu::A100),
        NodeSpec::new("v100-0", Gpu::V100),
        NodeSpec::new("v100-1", Gpu::V100),
        NodeSpec::new("rtx-0", Gpu::Rtx6000),
    ]
}

fn two_jobs() -> Vec<FleetJobSpec> {
    vec![
        FleetJobSpec::new("alpha", JobSpec::resnet18_cifar10(), TrainerConfig::new(6_400, 64, 512), 2.0)
            .node_range(1, 3)
            .noise(300.0, 1.0)
            .seed(5),
        FleetJobSpec::new("beta", JobSpec::neumf_movielens(), TrainerConfig::new(6_400, 64, 512), 1.5)
            .arrival(10.0)
            .noise(250.0, 1.2)
            .seed(6),
    ]
}

fn key(r: &Record) -> Option<String> {
    match &r.event {
        Event::FleetDecision(d) => Some(format!("decision:{}", d.decision)),
        Event::NodeGranted(g) => Some(format!("grant:{}:{}", g.job, g.node)),
        _ => None,
    }
}

#[test]
fn concurrent_subscribers_see_fleet_events_exactly_once_in_order() {
    let _serial = telemetry_lock();
    const RANK: u32 = 6161;

    // Three observers at once: the raw counting subscriber, the series
    // recorder and the anomaly monitor — plus the sink itself.
    let counting = Arc::new(Counting { only_rank: RANK, seen: Mutex::new(Vec::new()) });
    let _guard = telemetry::subscribe(counting.clone() as Arc<dyn Subscriber>);
    let series = SeriesRecorder::install_with(1024, Some(RANK));
    let monitor = Monitor::install(InsightConfig { only_rank: Some(RANK), ..InsightConfig::default() });

    let session = telemetry::Session::start();
    let records: Vec<Record> = {
        let _id = telemetry::set_thread_identity(0, RANK);
        FleetController::new(pool4(), two_jobs(), AllocPolicy::Cannikin)
            .expect("valid fleet")
            .run_to_completion(50_000)
            .expect("stream drains");
        telemetry::flush_thread();
        session.drain().into_iter().filter(|r| r.rank == RANK).collect()
    };
    drop(session);

    // The sink's FleetDecision/NodeGranted sequence is ground truth; the
    // subscriber must have received exactly the same events in the same
    // order — no loss, no duplication, no reorder.
    let truth: Vec<String> = records.iter().filter_map(key).collect();
    let observed: Vec<String> = counting.seen.lock().unwrap().iter().filter_map(key).collect();
    assert!(!truth.is_empty(), "the run must produce decisions and grants");
    assert_eq!(observed, truth, "subscriber delivery must match the sink exactly");

    // Decisions are 1-based and consecutive — a dropped or doubled batch
    // would break the arithmetic.
    let decisions: Vec<u64> = records
        .iter()
        .filter_map(|r| match &r.event {
            Event::FleetDecision(d) => Some(d.decision),
            _ => None,
        })
        .collect();
    assert_eq!(decisions, (1..=decisions.len() as u64).collect::<Vec<_>>());

    // The series store folded the same stream: its totals equal the
    // sink's event counts.
    let store = series.store();
    let none = Labels::default();
    assert_eq!(store.counter_total("fleet_decisions_total", &none), Some(decisions.len() as f64));
    let grants = truth.iter().filter(|k| k.starts_with("grant:")).count();
    let granted_total: f64 = ["alpha", "beta"]
        .iter()
        .filter_map(|j| store.counter_total("fleet_node_grants_total", &none.clone().with("job", *j)))
        .sum();
    assert_eq!(granted_total, grants as f64);

    // The monitor saw every *emitted* record exactly once. Injected
    // records (its own anomalies and their counter) reach the sink but
    // never loop back through subscribers.
    let injected = records
        .iter()
        .filter(|r| match &r.event {
            Event::AnomalyDetected(_) | Event::SloViolation(_) => true,
            Event::Counter(c) => c.name == "insight_anomalies",
            _ => false,
        })
        .count();
    assert_eq!(monitor.report().events_seen as usize, records.len() - injected);
}

#[test]
fn per_thread_emission_order_survives_concurrent_flushes() {
    let _serial = telemetry_lock();
    // Two emitting threads with distinct ranks interleave arbitrarily;
    // each thread's own sequence must still arrive in order at every
    // subscriber and in the drained trace.
    const RANKS: [u32; 2] = [7171, 7272];
    let counters: Vec<Arc<Counting>> = RANKS
        .iter()
        .map(|&r| Arc::new(Counting { only_rank: r, seen: Mutex::new(Vec::new()) }))
        .collect();
    let _guards: Vec<_> =
        counters.iter().map(|c| telemetry::subscribe(c.clone() as Arc<dyn Subscriber>)).collect();

    let session = telemetry::Session::start();
    let handles: Vec<_> = RANKS
        .iter()
        .map(|&rank| {
            std::thread::spawn(move || {
                let _id = telemetry::set_thread_identity(rank, rank);
                for i in 1..=500u64 {
                    telemetry::emit(Event::FleetDecision(cannikin::telemetry::FleetDecision {
                        decision: i,
                        running: 1,
                        queued: 0,
                        reassigned: 0,
                        pool: 1,
                    }));
                }
                telemetry::flush_thread();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let records = session.drain();
    drop(session);

    for (counting, &rank) in counters.iter().zip(&RANKS) {
        let ordinal = |r: &Record| match &r.event {
            Event::FleetDecision(d) => Some(d.decision),
            _ => None,
        };
        let subscribed: Vec<u64> =
            counting.seen.lock().unwrap().iter().filter_map(ordinal).collect();
        let drained: Vec<u64> =
            records.iter().filter(|r| r.rank == rank).filter_map(ordinal).collect();
        let expect: Vec<u64> = (1..=500).collect();
        assert_eq!(subscribed, expect, "rank {rank}: subscriber order");
        assert_eq!(drained, expect, "rank {rank}: sink order");
    }
}

#[test]
fn slo_verdicts_replay_exactly_over_a_crash_trace() {
    let _serial = telemetry_lock();
    const RANK: u32 = 8181;

    let jobs = vec![
        FleetJobSpec::new("alpha", JobSpec::resnet18_cifar10(), TrainerConfig::new(6_400, 64, 512), 2.0)
            .node_range(2, 3)
            .noise(300.0, 1.0)
            .seed(5)
            .fault_plan(FaultPlan::new(5).crash_at(40, 0)),
        // Beta arrives mid-alpha and demands more nodes than alpha
        // leaves free, so it queues until alpha finishes — guaranteeing
        // its (nanosecond) queue ceiling fires.
        FleetJobSpec::new("beta", JobSpec::neumf_movielens(), TrainerConfig::new(6_400, 64, 512), 1.5)
            .arrival(0.5)
            .node_range(3, 3)
            .noise(250.0, 1.2)
            .seed(6)
            .queue_slo(1e-9),
    ];
    let mut controller =
        FleetController::new(pool4(), jobs, AllocPolicy::Cannikin).expect("valid fleet");
    // Tighten the defaults with the per-job rules and a zero-step
    // recovery ceiling so the crash path actually produces violations.
    let mut rules = controller.slo_rules();
    rules.push(SloRule::RecoveryCeiling { max_steps: 0 });

    let monitor = SloMonitor::install_with(rules.clone(), Some(RANK));
    let session = telemetry::Session::start();
    let records: Vec<Record> = {
        let _id = telemetry::set_thread_identity(0, RANK);
        controller.run_to_completion(50_000).expect("stream drains past the crash");
        telemetry::flush_thread();
        session.drain().into_iter().filter(|r| r.rank == RANK).collect()
    };
    drop(session);

    assert!(
        records.iter().any(|r| matches!(r.event, Event::FaultInjected(_))),
        "the crash must surface in the trace"
    );
    let report = replay_slos(&records, &rules);
    assert!(report.verdicts_match(), "offline rerun must reproduce the online verdicts");
    assert_eq!(report.online, monitor.violations(), "trace carries the monitor's verdicts");
    assert!(
        report.count_for("job_queue_ceiling", Some("beta")) >= 1,
        "the nanosecond queue ceiling must fire on admission: {:?}",
        report.offline
    );
}
