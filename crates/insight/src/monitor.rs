//! The live monitor: a recorder [`Subscriber`] hosting the detector
//! suite.
//!
//! [`Monitor::install`] registers a tap on the telemetry sink; from then
//! on every flushed batch runs through the [`DetectorSet`] on the
//! emitting thread. Each anomaly is injected back into the event stream
//! as a typed [`AnomalyDetected`] record (plus an `insight_anomalies`
//! counter), so exported traces carry the online verdicts, and is queued
//! for the engine: [`Monitor::drain_new`] hands back anomalies found
//! since the last drain, and [`Monitor::report`] summarizes the whole
//! run as a [`HealthReport`].
//!
//! Emission from inside the subscriber callback uses
//! [`cannikin_telemetry::inject`] exclusively — callbacks can run during
//! a thread-exit flush, where touching the thread-local buffer would be
//! undefined (see the recorder docs).

use crate::detectors::{DetectorSet, InsightConfig};
use cannikin_telemetry::{self as telemetry, AnomalyDetected, AnomalyKind, Counter, Event, Record, Subscriber};
use parking_lot::Mutex;
use std::sync::Arc;

struct State {
    set: DetectorSet,
    events_seen: u64,
    /// Every anomaly since installation (the cumulative report).
    anomalies: Vec<AnomalyDetected>,
    /// Anomalies since the last [`Monitor::drain_new`].
    fresh: Vec<AnomalyDetected>,
}

struct Inner {
    state: Mutex<State>,
}

impl Subscriber for Inner {
    fn on_records(&self, batch: &[Record]) {
        let mut state = self.state.lock();
        for record in batch {
            state.events_seen += 1;
            let found = state.set.observe(record);
            for anomaly in found {
                telemetry::inject(
                    anomaly.node.unwrap_or(record.node),
                    record.rank,
                    Event::AnomalyDetected(anomaly.clone()),
                );
                state.anomalies.push(anomaly.clone());
                state.fresh.push(anomaly);
                telemetry::inject(
                    record.node,
                    record.rank,
                    Event::Counter(Counter {
                        name: "insight_anomalies".to_string(),
                        value: state.anomalies.len() as f64,
                    }),
                );
            }
        }
    }
}

/// A live diagnostics tap on the telemetry stream. Cheap to clone; the
/// subscription lasts until the last clone drops.
#[derive(Clone)]
pub struct Monitor {
    inner: Arc<Inner>,
    _guard: Arc<telemetry::SubscriberGuard>,
}

impl Monitor {
    /// Register a monitor with the given thresholds. It observes every
    /// record flushed from now on (recording itself still requires a live
    /// `telemetry::Session`).
    pub fn install(config: InsightConfig) -> Monitor {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                set: DetectorSet::new(config),
                events_seen: 0,
                anomalies: Vec::new(),
                fresh: Vec::new(),
            }),
        });
        let guard = telemetry::subscribe(inner.clone() as Arc<dyn Subscriber>);
        Monitor { inner, _guard: Arc::new(guard) }
    }

    /// Anomalies detected since the previous call (the engine's per-epoch
    /// poll). Call `telemetry::flush_thread()` first so the current
    /// thread's buffered events have reached the detectors.
    pub fn drain_new(&self) -> Vec<AnomalyDetected> {
        std::mem::take(&mut self.inner.state.lock().fresh)
    }

    /// Cumulative health summary since installation.
    pub fn report(&self) -> HealthReport {
        let state = self.inner.state.lock();
        let mut straggling: Vec<u32> =
            state.anomalies.iter().filter(|a| a.kind == AnomalyKind::Straggler).filter_map(|a| a.node).collect();
        straggling.sort_unstable();
        straggling.dedup();
        HealthReport {
            events_seen: state.events_seen,
            anomalies: state.anomalies.clone(),
            straggling_nodes: straggling,
            latest_calibration_error: state.set.latest_calibration_error(),
            latest_noise_scale: state.set.smoothed_noise_scale(),
        }
    }
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.lock();
        write!(f, "Monitor({} events, {} anomalies)", state.events_seen, state.anomalies.len())
    }
}

/// What the monitor knows about the run's health — the summary the
/// engine logs per epoch and tests assert on.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Records observed since installation.
    pub events_seen: u64,
    /// Every anomaly fired, in detection order.
    pub anomalies: Vec<AnomalyDetected>,
    /// Distinct nodes flagged as stragglers, ascending.
    pub straggling_nodes: Vec<u32>,
    /// Relative OptPerf error of the most recently completed plan.
    pub latest_calibration_error: Option<f64>,
    /// Smoothed gradient-noise-scale trajectory, when GNS events flow.
    pub latest_noise_scale: Option<f64>,
}

impl HealthReport {
    /// No anomalies of any kind.
    pub fn healthy(&self) -> bool {
        self.anomalies.is_empty()
    }

    /// A short multi-line text rendering (the engine's per-epoch log
    /// line and the CLI's online section).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "health: {} events, {} anomalies ({})",
            self.events_seen,
            self.anomalies.len(),
            if self.healthy() { "healthy" } else { "DEGRADED" }
        );
        if !self.straggling_nodes.is_empty() {
            let _ = writeln!(out, "  straggling nodes: {:?}", self.straggling_nodes);
        }
        if let Some(err) = self.latest_calibration_error {
            let _ = writeln!(out, "  plan calibration error: {:.1}%", err * 100.0);
        }
        if let Some(phi) = self.latest_noise_scale {
            let _ = writeln!(out, "  smoothed noise scale: {phi:.1}");
        }
        for a in &self.anomalies {
            let _ = writeln!(
                out,
                "  [{}] step {} node {} expected {:.4} observed {:.4} ({:.2}x)",
                a.kind.as_str(),
                a.step,
                a.node.map_or_else(|| "-".to_string(), |n| n.to_string()),
                a.expected,
                a.observed,
                a.severity
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cannikin_telemetry::{Session, StepTiming};

    /// Monitor tests share the process-global recorder with the rest of
    /// the test binary; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn emit_timing(step: u64, rank: u32, b: u64, t: f64) {
        telemetry::emit(Event::StepTiming(StepTiming {
            step,
            rank,
            b_i: b,
            t_compute: t,
            t_comm: 0.0,
            overlap: 0.0,
        }));
    }

    #[test]
    fn monitor_detects_and_injects_anomalies_online() {
        let _serial = TEST_LOCK.lock();
        let monitor = Monitor::install(InsightConfig::default());
        let session = Session::start();
        let law = |b: f64| 0.01 * b + 0.05;
        let mut step = 0u64;
        for _ in 0..6 {
            for b in [32u64, 48] {
                emit_timing(step, 0, b, law(b as f64));
                step += 1;
            }
        }
        for _ in 0..4 {
            emit_timing(step, 0, 32, 2.0 * law(32.0));
            step += 1;
        }
        telemetry::flush_thread();

        let fresh = monitor.drain_new();
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].kind, AnomalyKind::Straggler);
        assert_eq!(fresh[0].node, Some(0));
        assert!(monitor.drain_new().is_empty(), "drain_new must not replay");

        let report = monitor.report();
        assert!(!report.healthy());
        assert_eq!(report.straggling_nodes, vec![0]);
        assert_eq!(report.anomalies, fresh, "report keeps what drain_new handed out");

        // The anomaly (and its counter) were injected into the stream.
        let records = session.drain();
        let injected: Vec<&AnomalyDetected> = records
            .iter()
            .filter_map(|r| match &r.event {
                Event::AnomalyDetected(a) => Some(a),
                _ => None,
            })
            .collect();
        assert_eq!(injected.len(), 1);
        assert_eq!(*injected[0], fresh[0]);
        assert!(records.iter().any(|r| matches!(
            &r.event,
            Event::Counter(c) if c.name == "insight_anomalies" && (c.value - 1.0).abs() < 1e-12
        )));
        let rendered = report.render();
        assert!(rendered.contains("DEGRADED"));
        assert!(rendered.contains("straggler"));
    }

    #[test]
    fn healthy_run_reports_healthy() {
        let _serial = TEST_LOCK.lock();
        let monitor = Monitor::install(InsightConfig::default());
        let session = Session::start();
        let law = |b: f64| 0.02 * b + 0.1;
        for step in 0..30u64 {
            let b = if step % 2 == 0 { 16 } else { 24 };
            emit_timing(step, 0, b, law(b as f64));
        }
        telemetry::flush_thread();
        let report = monitor.report();
        assert!(report.healthy());
        assert_eq!(report.events_seen, 30);
        assert!(report.render().contains("healthy"));
        drop(session);
    }

    #[test]
    fn dropped_monitor_unsubscribes() {
        let _serial = TEST_LOCK.lock();
        let session = Session::start();
        {
            let _monitor = Monitor::install(InsightConfig::default());
        }
        emit_timing(0, 0, 32, 0.5);
        telemetry::flush_thread();
        // No panic, no injected events: the tap is gone.
        let records = session.drain();
        assert_eq!(records.len(), 1);
    }
}
