//! Inverted dropout.

use super::{Layer, Param};
use crate::rng;
use crate::tensor::Tensor;

use rand::rngs::StdRng;
use rand::RngExt;

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1 / (1 - p)` so that the
/// expected activation is unchanged; during evaluation the layer is the
/// identity.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Create a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1), got {p}");
        Dropout { p, rng: rng::seeded(seed), mask: None }
    }

    /// The configured drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> = (0..x.len())
            .map(|_| if self.rng.random::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let mask = Tensor::from_vec(mask_data, x.shape()).expect("dropout mask shape");
        let y = x.mul(&mask);
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => grad_out.mul(mask),
            None => grad_out.clone(),
        }
    }

    fn parameters(&self) -> Vec<&Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::randn(&[4, 4], 2);
        assert_eq!(d.forward(&x, false), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn expected_activation_preserved() {
        let mut d = Dropout::new(0.3, 3);
        let x = Tensor::ones(&[1000, 10]);
        let y = d.forward(&x, true);
        // E[y] = 1; check the sample mean is close.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 4);
        let x = Tensor::ones(&[8, 8]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones(&[8, 8]));
        // Gradient is zero exactly where the forward output is zero.
        for (yo, go) in y.data().iter().zip(g.data()) {
            assert_eq!(*yo == 0.0, *go == 0.0);
        }
    }

    #[test]
    fn zero_probability_never_drops() {
        let mut d = Dropout::new(0.0, 5);
        let x = Tensor::randn(&[16], 6);
        assert_eq!(d.forward(&x, true), x);
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_p_one() {
        let _ = Dropout::new(1.0, 7);
    }
}
