//! GNS-driven node demand: how many nodes a job is worth *right now*.
//!
//! Pollux-style goodput is throughput × statistical efficiency,
//! η(B) = (B₀+φ)/(B+φ). Model per-step time as t(B) = t_fix + t_samp·B
//! with the fixed overhead normalized to B₀ compute-equivalents
//! (t_fix/t_samp = B₀ — one reference batch's worth of per-step setup
//! and synchronization). Then goodput
//!
//! ```text
//! g(B) ∝ B·η(B)/t(B) ∝ B·(B₀+φ) / ((B+φ)(B₀+B))
//! ```
//!
//! is maximized at **B\* = √(φ·B₀)** — the knee of the statistical-
//! efficiency curve. Early in training (φ ≈ B₀) the optimal batch is B₀
//! and the job wants few nodes; as the gradient noise scale grows, B\*
//! grows as √φ and the job is *starved of statistical efficiency* on a
//! small allocation. The closed form reads this as node demand directly:
//! a job wants ⌈B\*/B₀⌉ nodes, one reference batch per node
//! ([`desired_nodes`]).
//!
//! The closed form is blind to communication, though: on small workloads
//! an extra node's all-reduce overhead can cost more step time than its
//! compute contribution saves, and such a job runs *faster on fewer
//! nodes*. [`profiled_nodes`] is the fleet's production demand model —
//! OptPerf one level up. It reuses the job-level machinery (the OptPerf
//! solver plus the goodput engine) to predict, for each candidate node
//! count `k`, the goodput the job would deliver on the pool's `k` best
//! nodes at the current φ, and asks for the smallest `k` within
//! diminishing returns of the best. Comm-bound jobs correctly demand one
//! node; compute-bound jobs demand more as √φ pushes B\* up.
//!
//! Even the one-shot goodput prediction is optimistic at high node
//! counts: it scores steady state, while a real (short) job spends a
//! meaningful fraction of its life in the Eq. (8) bootstrap with
//! suboptimal splits, and its batch follows the evolving φ rather than
//! sitting at the prediction's optimum. So the production demand is
//! clamped by a *measured* scaling knee: [`measured_scaling_curve`]
//! replays the job's own trainer to target on the pool's `k` fastest
//! nodes (deterministic, same seed the job will run with — milliseconds
//! per job in the simulator) and [`scaling_knee`] reads off the smallest
//! `k` within diminishing returns of the fastest completion. The
//! controller takes `min(profiled, knee)` — a job never asks past what
//! its gradient noise justifies *or* past where realized scaling stops
//! paying.

use cannikin_core::engine::{CannikinTrainer, LinearNoiseGrowth, TrainerConfig};
use cannikin_core::goodput::GoodputEngine;
use cannikin_core::optperf::{OptPerfSolver, SolverInput};
use hetsim::cluster::{ClusterSpec, NodeSpec};
use hetsim::job::JobSpec;
use hetsim::Simulator;

/// The goodput-optimal total batch √(φ·B₀), clamped into `[base, max]`.
pub fn optimal_batch(phi: f64, base: u64, max: u64) -> u64 {
    let b = (phi.max(0.0) * base as f64).sqrt().round() as u64;
    b.clamp(base, max.max(base))
}

/// GNS-driven desired node count: the goodput-optimal batch at one
/// reference batch `B₀` per node, clamped into the job's `[min, max]`
/// node range.
pub fn desired_nodes(phi: f64, base: u64, max_batch: u64, min_nodes: usize, max_nodes: usize) -> usize {
    let b_star = optimal_batch(phi, base, max_batch);
    let want = b_star.div_ceil(base.max(1)) as usize;
    want.clamp(min_nodes.max(1), max_nodes.max(min_nodes.max(1)))
}

/// Keep asking for nodes only while each one buys at least this much
/// predicted goodput relative to the best candidate. 5% stops jobs from
/// hoarding nodes for marginal gains another tenant could use outright.
pub const DIMINISHING_RETURNS: f64 = 0.95;

/// Predicted-goodput node demand: score every candidate node count
/// `k ∈ [min_nodes, cap]` by the goodput the job's own machinery (an
/// OptPerf solve per batch candidate, ranked by the goodput engine at
/// noise scale `phi`) predicts on the `k` fastest pool nodes, and return
/// the smallest `k` within [`DIMINISHING_RETURNS`] of the best score.
///
/// `ranked_pool` is the pool's live nodes, fastest first (see
/// `NodePool::ranked_live`) — a reference ranking, not the exact nodes
/// the job will receive; it keeps the demand signal independent of who
/// currently holds what, which keeps allocations stable. Candidates the
/// solver rejects outright score zero; if every candidate is rejected
/// the job asks for its minimum.
pub fn profiled_nodes(
    job: &JobSpec,
    config: &TrainerConfig,
    ranked_pool: &[NodeSpec],
    phi: f64,
    min_nodes: usize,
    cap: usize,
) -> usize {
    let cap = cap.min(ranked_pool.len()).max(1);
    let min_nodes = min_nodes.clamp(1, cap);
    let mut scores: Vec<(usize, f64)> = Vec::with_capacity(cap - min_nodes + 1);
    let mut best = 0.0f64;
    for k in min_nodes..=cap {
        let cluster = ClusterSpec::new("fleet-demand", ranked_pool[..k].to_vec());
        let mut solver = OptPerfSolver::new(SolverInput::from_ground_truth(&cluster, job));
        let mut engine = GoodputEngine::new(config.base_batch, config.base_batch, config.max_batch);
        let goodput = engine.select(&mut solver, phi).map_or(0.0, |sel| sel.goodput);
        best = best.max(goodput);
        scores.push((k, goodput));
    }
    if best <= 0.0 {
        return min_nodes;
    }
    scores
        .iter()
        .find(|(_, g)| *g >= DIMINISHING_RETURNS * best)
        .map_or(min_nodes, |&(k, _)| k)
}

/// Epoch cap for one scaling-curve replay; a job that cannot reach its
/// target inside this many epochs on some node count scores `∞` there.
const MEASURE_EPOCH_BUDGET: usize = 10_000;

/// Measured time-to-target for every node count `k ∈ [1, cap]`: replay
/// the job's own trainer (bootstrap profiling, GNS-driven batch growth,
/// re-planning — everything) on the `k` fastest pool nodes and record
/// the simulated seconds until `target_effective_epochs`. Entry `k - 1`
/// holds the time for `k` nodes; infeasible or non-converging counts
/// hold `f64::INFINITY`.
///
/// The replay is deterministic (the job's own seed) and runs entirely in
/// simulated time, so it is the fleet's profiling pass: what Cannikin's
/// adaptive profiler measures on hardware in a few epochs, the control
/// plane measures here in a few milliseconds per job.
pub fn measured_scaling_curve(
    job: &JobSpec,
    config: &TrainerConfig,
    noise: LinearNoiseGrowth,
    seed: u64,
    target_effective_epochs: f64,
    ranked_pool: &[NodeSpec],
    cap: usize,
) -> Vec<f64> {
    let cap = cap.min(ranked_pool.len()).max(1);
    let mut times = Vec::with_capacity(cap);
    for k in 1..=cap {
        let cluster = ClusterSpec::new("fleet-profile", ranked_pool[..k].to_vec());
        let sim = Simulator::new(cluster, job.clone(), seed);
        let time = CannikinTrainer::builder()
            .simulator(sim)
            .noise(noise)
            .config(config.clone())
            .build()
            .ok()
            .and_then(|mut trainer| {
                let mut elapsed = 0.0;
                for _ in 0..MEASURE_EPOCH_BUDGET {
                    elapsed += trainer.run_epoch().ok()?.epoch_time;
                    if trainer.effective_epochs() >= target_effective_epochs {
                        return Some(elapsed);
                    }
                }
                None
            })
            .unwrap_or(f64::INFINITY);
        times.push(time);
    }
    times
}

/// The knee of a measured scaling curve: the smallest node count whose
/// time-to-target is within [`DIMINISHING_RETURNS`] of the fastest
/// completion, clamped into `[min_nodes, cap]`. An all-infinite curve
/// (nothing converged) falls back to `min_nodes`.
pub fn scaling_knee(curve: &[f64], min_nodes: usize, cap: usize) -> usize {
    let curve = &curve[..curve.len().min(cap)];
    let best = curve.iter().copied().fold(f64::INFINITY, f64::min);
    if !best.is_finite() {
        return min_nodes;
    }
    let limit = best / DIMINISHING_RETURNS;
    curve
        .iter()
        .position(|&t| t <= limit)
        .map_or(min_nodes, |i| (i + 1).clamp(min_nodes, cap.max(min_nodes)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::catalog::Gpu;

    #[test]
    fn optimal_batch_grows_as_sqrt_of_noise() {
        let base = 64;
        assert_eq!(optimal_batch(64.0, base, 4096), 64, "φ = B₀ → B* = B₀");
        let b1 = optimal_batch(400.0, base, 4096);
        let b2 = optimal_batch(1600.0, base, 4096);
        assert!(b2 > b1, "demand grows with noise: {b1} vs {b2}");
        assert_eq!(b2, 320, "√(1600·64) = 320");
        assert_eq!(optimal_batch(1e12, base, 4096), 4096, "clamped to max");
    }

    #[test]
    fn desired_nodes_tracks_the_knee() {
        // φ = B₀: one node's worth of batch.
        assert_eq!(desired_nodes(64.0, 64, 4096, 1, 16), 1);
        // φ = 1600: B* = 320 → 5 nodes.
        assert_eq!(desired_nodes(1600.0, 64, 4096, 1, 16), 5);
        // Clamped by the job's node range.
        assert_eq!(desired_nodes(1600.0, 64, 4096, 1, 3), 3);
        assert_eq!(desired_nodes(64.0, 64, 4096, 2, 16), 2);
    }

    fn mixed_pool() -> Vec<NodeSpec> {
        let mut out = Vec::new();
        for (gpu, count) in [(Gpu::A100, 2), (Gpu::V100, 2), (Gpu::Rtx6000, 4)] {
            for i in 0..count {
                out.push(NodeSpec::new(format!("{gpu}-{i}"), gpu));
            }
        }
        out.sort_by(|a, b| b.effective_flops().total_cmp(&a.effective_flops()));
        out
    }

    #[test]
    fn profiled_demand_sees_the_communication_wall() {
        // NeuMF on a shrunk dataset is communication-bound: every extra
        // node costs more all-reduce time than it saves in compute, so
        // the profiler must ask for a single node — where the closed
        // form, blind to communication, would ask for two or more.
        let pool = mixed_pool();
        let config = TrainerConfig::new(6_400, 64, 512);
        let want = profiled_nodes(&JobSpec::neumf_movielens(), &config, &pool, 250.0, 1, 8);
        assert_eq!(want, 1, "comm-bound job demands one node");
        assert!(desired_nodes(250.0, 64, 512, 1, 8) >= 2, "the closed form over-asks here");
    }

    #[test]
    fn profiled_demand_scales_compute_bound_jobs() {
        // ResNet-50/ImageNet is compute-heavy per sample: parallelism
        // pays, and demand must grow with the gradient noise scale.
        let pool = mixed_pool();
        let config = TrainerConfig::new(12_800, 128, 1_024);
        let early = profiled_nodes(&JobSpec::resnet50_imagenet(), &config, &pool, 400.0, 1, 8);
        assert!(early >= 2, "compute-bound job wants real parallelism: {early}");
        let late = profiled_nodes(&JobSpec::resnet50_imagenet(), &config, &pool, 6_400.0, 1, 8);
        assert!(late >= early, "demand is monotone in φ here: {early} → {late}");
    }

    #[test]
    fn profiled_demand_respects_bounds() {
        let pool = mixed_pool();
        let config = TrainerConfig::new(6_400, 64, 512);
        let want = profiled_nodes(&JobSpec::neumf_movielens(), &config, &pool, 250.0, 3, 5);
        assert_eq!(want, 3, "floor binds even past the knee");
        let capped = profiled_nodes(&JobSpec::resnet50_imagenet(), &config, &pool[..2], 6_400.0, 1, 8);
        assert!(capped <= 2, "cap clamps to the ranked pool size");
    }
}
