//! Criterion bench: the in-process bucketed ring all-reduce.
//!
//! Measures the functional collective (threads + channels) across payload
//! sizes and world sizes — the substrate under the parallel trainer.

use cannikin_collectives::CommGroup;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::thread;

fn run_all_reduce(world: usize, len: usize, buckets: usize) {
    let comms = CommGroup::create(world);
    let handles: Vec<_> = comms
        .into_iter()
        .map(|comm| {
            thread::spawn(move || {
                let mut data = vec![comm.rank() as f32 + 1.0; len];
                if buckets <= 1 {
                    comm.all_reduce_sum(&mut data);
                } else {
                    comm.all_reduce_buckets(&mut data, buckets);
                }
                data[0]
            })
        })
        .collect();
    for h in handles {
        black_box(h.join().expect("rank"));
    }
}

fn bench_payloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_all_reduce_4ranks");
    for len in [1_000usize, 100_000, 1_000_000] {
        group.throughput(Throughput::Bytes((len * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter(|| run_all_reduce(4, len, 1));
        });
    }
    group.finish();
}

fn bench_world_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_all_reduce_100k_floats");
    for world in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(world), &world, |b, &world| {
            b.iter(|| run_all_reduce(world, 100_000, 1));
        });
    }
    group.finish();
}

fn bench_bucketed(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucketed_vs_flat_1m_floats");
    for buckets in [1usize, 10, 25] {
        group.bench_with_input(BenchmarkId::from_parameter(buckets), &buckets, |b, &buckets| {
            b.iter(|| run_all_reduce(4, 1_000_000, buckets));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_payloads, bench_world_sizes, bench_bucketed);
criterion_main!(benches);
