//! Pluggable adaptation policies behind an ask/tell protocol.
//!
//! The paper's control loop — profile, solve OptPerf, pick the
//! goodput-maximizing `(B, split)`, observe, repeat (Fig. 4) — is a
//! *policy* decision layered on mechanism the engines own (simulation,
//! measurement, telemetry, fault handling). This module factors the
//! decision into a [`Policy`] trait with the kurobako solver-protocol
//! shape: each epoch the engine calls [`Policy::ask`] with a
//! [`PolicyContext`] describing the declared problem (node count, batch
//! range, learned models, GNS state) and receives an [`EpochPlan`]; after
//! running the epoch it calls [`Policy::tell`] with an
//! [`EpochObservation`] carrying realized timings and goodput so the
//! policy can learn across epochs.
//!
//! Four implementations ship:
//!
//! - [`OptPerfGoodput`] — the paper's planner, extracted verbatim from the
//!   engines' previously-inline logic (bitwise-identical under pinned
//!   seed, proven by `tests/policy.rs` goldens);
//! - [`EvenSplit`] — AdaptDL/Pollux: goodput-adaptive total batch, always
//!   split evenly (the homogeneous-cluster assumption);
//! - [`LbBspIterative`] — LB-BSP: fixed total, Δ-bounded iterative moves
//!   toward the equal-compute-time split;
//! - [`RlBatchPolicy`] — a DYNAMIX-flavored seeded ε-greedy bandit over
//!   batch-size actions, reward = realized goodput from `tell`.

mod even;
mod lbbsp;
mod optperf;
mod rl;

pub use even::EvenSplit;
pub use lbbsp::{LbBspIterative, DEFAULT_STEP as LBBSP_DEFAULT_STEP};
pub use optperf::OptPerfGoodput;
pub use rl::RlBatchPolicy;

use crate::error::CannikinError;
use crate::optperf::{Bottleneck, SolverInput};
use cannikin_telemetry::SplitSource;
use serde::{Deserialize, Serialize};

/// Everything a policy may consult when proposing an epoch plan.
///
/// The engine assembles this fresh each epoch from its own state; the
/// context is a *snapshot* — reading it has no side effects on the
/// engine, which is what makes the `OptPerfGoodput` extraction a pure
/// refactor.
#[derive(Debug, Clone)]
pub struct PolicyContext {
    /// Epoch index about to run (0-based).
    pub epoch: usize,
    /// Current cluster size.
    pub nodes: usize,
    /// Whether the engine allows the total batch to adapt; when `false`
    /// the policy must pin `total == base_batch`.
    pub adaptive: bool,
    /// The job's base batch size `B0` (statistical-efficiency reference).
    pub base_batch: u64,
    /// Upper bound on the total batch size.
    pub max_batch: u64,
    /// Samples per epoch (bounds useful batch sizes).
    pub dataset_size: usize,
    /// Gradient noise scale φ, when an estimate exists. Simulation-driven
    /// engines always supply it; the measured engine reports `None` until
    /// its GNS tracker warms up.
    pub phi: Option<f64>,
    /// The split the previous epoch actually ran (empty before epoch 0).
    pub last_split: Vec<u64>,
    /// Fitted per-node linear models, once the analyzer can produce them.
    pub solver_input: Option<SolverInput>,
    /// Latest observed per-sample time per node (1.0 where unobserved) —
    /// the Eq. (8) bootstrap signal.
    pub per_sample_times: Vec<f64>,
}

/// A policy's answer for one epoch: the plan the engine will execute,
/// plus the bookkeeping fields the engine records and emits as telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPlan {
    /// Total batch size `B`.
    pub total: u64,
    /// Local batch per node, summing to `total`.
    pub local: Vec<u64>,
    /// Gradient-accumulation factor (1 = none).
    pub accumulation: u64,
    /// Provenance of the split, for the `split_decision` telemetry event.
    pub source: SplitSource,
    /// Whether fitted performance models informed the plan.
    pub used_model: bool,
    /// Bottleneck classification per node, when the solver produced one.
    pub pattern: Option<Vec<Bottleneck>>,
    /// Predicted synchronized batch time, when the solver produced one.
    pub predicted_t: Option<f64>,
}

/// Realized outcome of an epoch, fed back through [`Policy::tell`].
#[derive(Debug, Clone)]
pub struct EpochObservation {
    /// Epoch index that ran.
    pub epoch: usize,
    /// Total batch size that ran.
    pub total: u64,
    /// Local split that ran.
    pub local: Vec<u64>,
    /// Realized epoch time, s.
    pub epoch_time: f64,
    /// Realized mean synchronized batch time, s.
    pub mean_batch_time: f64,
    /// Statistical efficiency at the epoch's φ and `B`.
    pub efficiency: f64,
    /// Realized goodput — effective epochs gained per second of training
    /// time (the RL reward signal).
    pub goodput: f64,
    /// φ the epoch planned under, when known.
    pub phi: Option<f64>,
    /// Observed per-sample time per node from the epoch's last batch.
    pub per_sample_times: Vec<f64>,
}

/// An adaptation policy: `ask` proposes `(B, split)`, `tell` feeds back
/// what actually happened.
///
/// Policies are stateful — they accumulate learned state across
/// `ask`/`tell` rounds — and must be [`Send`] so measured engines can own
/// them across thread scopes and the fleet can move jobs between
/// scheduler ticks.
pub trait Policy: Send {
    /// Stable short name, recorded in `policy_decision` telemetry.
    fn name(&self) -> &'static str;

    /// Propose the next epoch's plan.
    ///
    /// # Errors
    ///
    /// Solver-backed policies propagate [`CannikinError`] from infeasible
    /// plans (e.g. a total batch no split can satisfy under node caps).
    fn ask(&mut self, ctx: &PolicyContext) -> Result<EpochPlan, CannikinError>;

    /// Feed back the realized outcome of the epoch `ask` planned.
    fn tell(&mut self, obs: &EpochObservation);

    /// The engine warm-started from a checkpointed model: the next
    /// solver-backed plan should be attributed to
    /// [`SplitSource::WarmStart`].
    fn on_warm_start(&mut self) {}

    /// Cluster membership changed to `nodes` nodes: drop state keyed to
    /// the old cluster shape (candidate caches, per-node vectors).
    fn on_membership_change(&mut self, _nodes: usize) {}
}

/// Which built-in policy to construct — the parse/display surface behind
/// the builders' `.policy()` knob and the `CANNIKIN_POLICY` environment
/// variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PolicyKind {
    /// The paper's planner: OptPerf splits + goodput-maximizing `B`.
    #[default]
    OptPerf,
    /// AdaptDL-style: adaptive `B`, even split.
    Even,
    /// LB-BSP: fixed `B`, Δ-bounded iterative rebalancing.
    LbBsp,
    /// Seeded ε-greedy bandit over batch-size actions.
    Rl,
}

impl PolicyKind {
    /// A short stable label (`optperf` / `even` / `lbbsp` / `rl`), e.g.
    /// for telemetry tags and experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::OptPerf => "optperf",
            PolicyKind::Even => "even",
            PolicyKind::LbBsp => "lbbsp",
            PolicyKind::Rl => "rl",
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    /// Parse `optperf` / `cannikin`, `even` / `adaptdl`, `lbbsp` /
    /// `lb-bsp`, or `rl` / `bandit`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "optperf" | "cannikin" | "goodput" => Ok(PolicyKind::OptPerf),
            "even" | "even-split" | "adaptdl" => Ok(PolicyKind::Even),
            "lbbsp" | "lb-bsp" => Ok(PolicyKind::LbBsp),
            "rl" | "bandit" => Ok(PolicyKind::Rl),
            other => Err(format!("unknown policy `{other}` (expected `optperf`, `even`, `lbbsp` or `rl`)")),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Default seed for [`PolicyKind::Rl`] when no explicit seed is given
/// (builders construct from a kind, which carries no seed).
pub const DEFAULT_RL_SEED: u64 = 0x5EED_CA11;

/// Construct a policy for a simulation-driven engine
/// ([`crate::engine::CannikinTrainer`]): `OptPerf` gets the stateful
/// goodput engine over the geometric candidate grid.
pub fn build_sim_policy(kind: PolicyKind, base_batch: u64, nodes: usize, max_batch: u64) -> Box<dyn Policy> {
    match kind {
        PolicyKind::OptPerf => Box::new(OptPerfGoodput::simulated(base_batch, nodes, max_batch)),
        PolicyKind::Even => Box::new(EvenSplit::new()),
        PolicyKind::LbBsp => Box::new(LbBspIterative::new(lbbsp::DEFAULT_STEP)),
        PolicyKind::Rl => Box::new(RlBatchPolicy::new(DEFAULT_RL_SEED)),
    }
}

/// Construct a policy for a measured engine
/// ([`crate::engine::ParallelTrainer`]): `OptPerf` gets the doubling-grid
/// total search that tolerates an absent GNS estimate.
pub fn build_measured_policy(kind: PolicyKind) -> Box<dyn Policy> {
    match kind {
        PolicyKind::OptPerf => Box::new(OptPerfGoodput::measured()),
        PolicyKind::Even => Box::new(EvenSplit::new()),
        PolicyKind::LbBsp => Box::new(LbBspIterative::new(lbbsp::DEFAULT_STEP)),
        PolicyKind::Rl => Box::new(RlBatchPolicy::new(DEFAULT_RL_SEED)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn kind_parse_display_roundtrip() {
        for kind in [PolicyKind::OptPerf, PolicyKind::Even, PolicyKind::LbBsp, PolicyKind::Rl] {
            assert_eq!(PolicyKind::from_str(&kind.to_string()).unwrap(), kind);
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(PolicyKind::from_str("AdaptDL").unwrap(), PolicyKind::Even);
        assert_eq!(PolicyKind::from_str(" lb-bsp ").unwrap(), PolicyKind::LbBsp);
        assert_eq!(PolicyKind::from_str("bandit").unwrap(), PolicyKind::Rl);
        assert_eq!(PolicyKind::default(), PolicyKind::OptPerf);
    }

    #[test]
    fn kind_parse_error_lists_alternatives() {
        let err = PolicyKind::from_str("alphago").unwrap_err();
        for alt in ["optperf", "even", "lbbsp", "rl"] {
            assert!(err.contains(alt), "{err} should list `{alt}`");
        }
        assert!(err.contains("alphago"), "{err} should echo the bad value");
    }

    #[test]
    fn factories_name_their_kind() {
        for kind in [PolicyKind::OptPerf, PolicyKind::Even, PolicyKind::LbBsp, PolicyKind::Rl] {
            assert_eq!(build_sim_policy(kind, 64, 3, 512).name(), kind.label());
            assert_eq!(build_measured_policy(kind).name(), kind.label());
        }
    }
}
