//! # cannikin-bench — experiment harness
//!
//! Shared plumbing for the Criterion benches (`benches/`) and the
//! `figures` binary (`src/bin/figures.rs`), which regenerates every table
//! and figure of the paper's evaluation section. See `DESIGN.md` §4 for
//! the experiment index and `EXPERIMENTS.md` for recorded outputs.

pub mod experiments;
pub mod gate;
pub mod runners;
pub mod scenarios;

/// Render a row of a fixed-width text table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Format a float with 4 significant-ish digits for table output.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_aligns_right() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }

    #[test]
    fn fmt_scales() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(123.456), "123.5");
        assert_eq!(fmt(1.23456), "1.235");
        assert_eq!(fmt(0.012345), "0.0123");
    }
}
