//! Property-based tests for the heterogeneous gradient-noise-scale
//! machinery (Eq. 10, Theorem 4.1) and the goodput model.

use cannikin::core::gns::{
    estimate_gns, local_estimates, optimal_weights, statistical_efficiency, Aggregation,
    GradientSample, WeightKind,
};
use proptest::prelude::*;

fn batch_vector() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..64, 2..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Exactness identity: if every node's |gᵢ|² sits exactly at its
    /// expectation |G|² + tr(Σ)/bᵢ (and |g|² likewise), the Eq. (10)
    /// estimators recover |G|² and tr(Σ) *exactly*, for any batch profile.
    #[test]
    fn estimators_invert_expectations_exactly(
        batches in batch_vector(),
        g_sq in 0.01f64..100.0,
        trace in 0.01f64..1000.0,
    ) {
        let total: u64 = batches.iter().sum();
        prop_assume!(batches.iter().all(|&b| b < total));
        let samples: Vec<GradientSample> = batches
            .iter()
            .map(|&b| GradientSample { local_batch: b, local_sq_norm: g_sq + trace / b as f64 })
            .collect();
        let global = g_sq + trace / total as f64;
        let locals = local_estimates(&samples, global).expect("valid");
        for l in &locals {
            prop_assert!((l.g - g_sq).abs() < 1e-6 * g_sq.max(1.0), "g {} vs {}", l.g, g_sq);
            prop_assert!((l.s - trace).abs() < 1e-6 * trace.max(1.0), "s {} vs {}", l.s, trace);
        }
        // Any convex combination therefore recovers the exact noise scale.
        for aggregation in [Aggregation::MinimumVariance, Aggregation::NaiveMean] {
            let est = estimate_gns(&samples, global, aggregation).expect("estimate");
            let phi = est.noise_scale().expect("positive");
            prop_assert!((phi - trace / g_sq).abs() < 1e-5 * (trace / g_sq), "{aggregation:?}");
        }
    }

    /// Theorem 4.1 weights always form a convex-combination weight vector
    /// (sum 1) and are permutation-equivariant.
    #[test]
    fn weights_sum_to_one_and_are_equivariant(batches in batch_vector()) {
        let total: u64 = batches.iter().sum();
        prop_assume!(batches.iter().all(|&b| b < total));
        let b: Vec<f64> = batches.iter().map(|&x| x as f64).collect();
        for kind in [WeightKind::GradNorm, WeightKind::Variance] {
            let w = optimal_weights(&b, total as f64, kind).expect("weights");
            prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // Reverse the node order: weights must reverse with it.
            let mut rb = b.clone();
            rb.reverse();
            let mut rw = optimal_weights(&rb, total as f64, kind).expect("weights");
            rw.reverse();
            for (a, c) in w.iter().zip(&rw) {
                prop_assert!((a - c).abs() < 1e-9);
            }
        }
    }

    /// Statistical efficiency is 1 at B₀, monotone decreasing in B, and
    /// monotone increasing in φ (for B > B₀).
    #[test]
    fn efficiency_monotonicity(phi in 1.0f64..1e5, b0 in 1u64..512, mult in 2u64..64) {
        let b = b0 * mult;
        prop_assert!((statistical_efficiency(phi, b0, b0) - 1.0).abs() < 1e-12);
        let e1 = statistical_efficiency(phi, b0, b);
        let e2 = statistical_efficiency(phi, b0, b * 2);
        prop_assert!(e2 < e1 && e1 < 1.0);
        let noisier = statistical_efficiency(phi * 4.0, b0, b);
        prop_assert!(noisier > e1);
    }
}

/// Monte-Carlo variance comparison: the Theorem 4.1 combination never has
/// materially larger spread than naive averaging, and is strictly better
/// for strongly skewed batch profiles.
#[test]
fn minimum_variance_beats_naive_on_skewed_batches() {
    use cannikin::dnn::rng;
    let dim = 64usize;
    let g_true: Vec<f64> = (0..dim).map(|i| 0.1 * ((i as f64).sin() + 0.3)).collect();
    let sigma2 = 0.05f64;
    let batches = [2u64, 3, 59]; // heavily skewed
    let total: u64 = batches.iter().sum();
    let mut r = rng::seeded(2024);
    let trials = 4000;
    let mut sums = [0.0f64; 2];
    let mut sq = [0.0f64; 2];
    let mut counts = [0usize; 2];
    for _ in 0..trials {
        let mut global = vec![0.0f64; dim];
        let mut locals = Vec::new();
        for &b in &batches {
            let gi: Vec<f64> = g_true
                .iter()
                .map(|&g| g + f64::from(rng::normal(&mut r)) * (sigma2 / b as f64).sqrt())
                .collect();
            for (acc, v) in global.iter_mut().zip(&gi) {
                *acc += b as f64 / total as f64 * v;
            }
            locals.push(gi);
        }
        let global_sq: f64 = global.iter().map(|v| v * v).sum();
        let samples: Vec<GradientSample> = batches
            .iter()
            .zip(&locals)
            .map(|(&b, gi)| GradientSample { local_batch: b, local_sq_norm: gi.iter().map(|v| v * v).sum() })
            .collect();
        for (idx, agg) in [Aggregation::MinimumVariance, Aggregation::NaiveMean].into_iter().enumerate() {
            let est = estimate_gns(&samples, global_sq, agg).expect("estimate");
            sums[idx] += est.trace;
            sq[idx] += est.trace * est.trace;
            counts[idx] += 1;
        }
    }
    let var = |idx: usize| {
        let mean = sums[idx] / counts[idx] as f64;
        sq[idx] / counts[idx] as f64 - mean * mean
    };
    let (mv, naive) = (var(0), var(1));
    assert!(mv < naive, "minimum-variance {mv} should beat naive {naive}");
    // Both stay unbiased for tr(Σ) = dim·σ².
    let truth = dim as f64 * sigma2;
    for idx in 0..2 {
        let mean = sums[idx] / counts[idx] as f64;
        assert!((mean / truth - 1.0).abs() < 0.05, "agg {idx} mean {mean} vs {truth}");
    }
}
