//! Ring all-reduce over crossbeam channels.

use cannikin_telemetry::{self as telemetry, AllReduceBucket, Event};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// Factory for a group of ring-connected [`Communicator`]s.
#[derive(Debug)]
pub struct CommGroup;

impl CommGroup {
    /// Create `n` communicators arranged in a ring. Move each one onto its
    /// own thread.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn create(n: usize) -> Vec<Communicator> {
        assert!(n > 0, "communicator group must have at least one rank");
        let barrier = Arc::new(Barrier::new(n));
        // Channel i carries messages from rank i to rank (i+1) % n.
        let mut senders: Vec<Option<Sender<Vec<f64>>>> = Vec::with_capacity(n);
        let mut receivers: Vec<Option<Receiver<Vec<f64>>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(Some(tx));
            receivers.push(Some(rx));
        }
        (0..n)
            .map(|rank| Communicator {
                rank,
                world: n,
                send_next: senders[rank].take().expect("sender taken once"),
                recv_prev: receivers[(rank + n - 1) % n].take().expect("receiver taken once"),
                barrier: Arc::clone(&barrier),
            })
            .collect()
    }
}

/// One rank's endpoint in a ring-connected group.
///
/// All methods are collective: every rank of the group must call them in
/// the same order or the group deadlocks (the standard SPMD contract).
#[derive(Debug)]
pub struct Communicator {
    rank: usize,
    world: usize,
    send_next: Sender<Vec<f64>>,
    recv_prev: Receiver<Vec<f64>>,
    barrier: Arc<Barrier>,
}

impl Communicator {
    /// This rank's id, `0..world_size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// Block until every rank reaches the barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    fn send(&self, data: Vec<f64>) {
        self.send_next.send(data).expect("ring peer disconnected");
    }

    fn recv(&self) -> Vec<f64> {
        self.recv_prev.recv().expect("ring peer disconnected")
    }

    /// In-place sum all-reduce via ring reduce-scatter + all-gather.
    ///
    /// Every rank ends with the elementwise sum across ranks. The algorithm
    /// moves `2(n−1)/n` of the buffer per rank, the bandwidth-optimal
    /// schedule of Patarasuk & Yuan that NCCL implements.
    pub fn all_reduce_sum(&self, data: &mut [f32]) {
        if self.world == 1 {
            return;
        }
        let n = self.world;
        let chunks = ring_chunks(data.len(), n);
        // Reduce-scatter: after step s, rank r holds the running sum of
        // chunk (r - s) for s+1 ranks.
        for s in 0..n - 1 {
            let send_idx = (self.rank + n - s) % n;
            let recv_idx = (self.rank + n - s - 1) % n;
            let payload: Vec<f64> = data[chunks[send_idx].clone()].iter().map(|&v| f64::from(v)).collect();
            self.send(payload);
            let incoming = self.recv();
            for (d, v) in data[chunks[recv_idx].clone()].iter_mut().zip(incoming) {
                *d += v as f32;
            }
        }
        // All-gather: circulate the fully reduced chunks.
        for s in 0..n - 1 {
            let send_idx = (self.rank + n - s + 1) % n;
            let recv_idx = (self.rank + n - s) % n;
            let payload: Vec<f64> = data[chunks[send_idx].clone()].iter().map(|&v| f64::from(v)).collect();
            self.send(payload);
            let incoming = self.recv();
            for (d, v) in data[chunks[recv_idx].clone()].iter_mut().zip(incoming) {
                *d = v as f32;
            }
        }
    }

    /// In-place mean all-reduce: [`Communicator::all_reduce_sum`] divided by
    /// the world size — the homogeneous DDP aggregation (Eq. (2) of the
    /// paper).
    pub fn all_reduce_mean(&self, data: &mut [f32]) {
        self.all_reduce_sum(data);
        let inv = 1.0 / self.world as f32;
        for v in data.iter_mut() {
            *v *= inv;
        }
    }

    /// Weighted all-reduce (Eq. (9)): every rank contributes `weight *
    /// data` and receives `Σᵢ wᵢ · dataᵢ`. With `wᵢ = bᵢ/B` this turns
    /// per-node *mean* gradients over unequal local batches into the exact
    /// global-batch mean gradient.
    pub fn weighted_all_reduce(&self, data: &mut [f32], weight: f32) {
        for v in data.iter_mut() {
            *v *= weight;
        }
        self.all_reduce_sum(data);
    }

    /// Bucketed all-reduce: reduce the buffer bucket by bucket in *reverse*
    /// bucket order (DDP reduces buckets as backpropagation produces them,
    /// i.e. from the output layers backwards). Returns the bucket ranges in
    /// the order they were reduced.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn all_reduce_buckets(&self, data: &mut [f32], buckets: usize) -> Vec<std::ops::Range<usize>> {
        let ranges = super::bucket_ranges(data.len(), buckets);
        let mut order = Vec::with_capacity(ranges.len());
        let record = telemetry::enabled();
        for (i, r) in ranges.into_iter().rev().enumerate() {
            let bucket_started = record.then(std::time::Instant::now);
            self.all_reduce_sum(&mut data[r.clone()]);
            if let Some(started) = bucket_started {
                telemetry::emit(Event::AllReduceBucket(AllReduceBucket {
                    bucket: i as u32,
                    elems: r.len() as u64,
                    wall_ns: started.elapsed().as_nanos() as u64,
                }));
            }
            order.push(r);
        }
        order
    }

    /// Broadcast `data` from rank 0 to every rank (in place).
    pub fn broadcast(&self, data: &mut [f32]) {
        if self.world == 1 {
            return;
        }
        // Pass rank 0's buffer around the ring; the last hop (into rank 0)
        // is skipped.
        if self.rank == 0 {
            self.send(data.iter().map(|&v| f64::from(v)).collect());
        } else {
            let incoming = self.recv();
            for (d, v) in data.iter_mut().zip(&incoming) {
                *d = *v as f32;
            }
            if self.rank + 1 < self.world {
                self.send(incoming);
            }
        }
        self.barrier();
    }

    /// Gather one `f64` from every rank; the result is indexed by rank on
    /// every rank. Used for metric collection (per-node timings, gradient
    /// norms).
    pub fn all_gather_scalar(&self, value: f64) -> Vec<f64> {
        if self.world == 1 {
            return vec![value];
        }
        let mut out = vec![0.0f64; self.world];
        out[self.rank] = value;
        // Circulate: after n-1 hops every rank has seen every value.
        let mut carry = vec![self.rank as f64, value];
        for _ in 0..self.world - 1 {
            self.send(carry);
            carry = self.recv();
            out[carry[0] as usize] = carry[1];
        }
        out
    }

    /// Gather a fixed-length `f64` vector from every rank; result is a
    /// `world_size × len` row-major matrix identical on every rank.
    ///
    /// # Panics
    ///
    /// Panics if ranks pass different lengths (detected as a length
    /// mismatch on receive).
    pub fn all_gather_vec(&self, values: &[f64]) -> Vec<Vec<f64>> {
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); self.world];
        out[self.rank] = values.to_vec();
        if self.world == 1 {
            return out;
        }
        let mut carry = Vec::with_capacity(values.len() + 1);
        carry.push(self.rank as f64);
        carry.extend_from_slice(values);
        for _ in 0..self.world - 1 {
            self.send(carry);
            carry = self.recv();
            assert_eq!(carry.len(), values.len() + 1, "all_gather_vec length mismatch across ranks");
            out[carry[0] as usize] = carry[1..].to_vec();
        }
        out
    }
}

/// Split `len` elements into exactly `n` ranges whose sizes differ by at
/// most one; ranges may be empty when `len < n`. Unlike
/// [`super::bucket_ranges`], the range *count* is guaranteed, which the
/// ring schedule requires (every rank must own a chunk index).
fn ring_chunks(len: usize, n: usize) -> Vec<std::ops::Range<usize>> {
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_group<F, T>(n: usize, f: F) -> Vec<T>
    where
        F: Fn(Communicator) -> T + Send + Sync + Clone + 'static,
        T: Send + 'static,
    {
        let comms = CommGroup::create(n);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    }

    #[test]
    fn all_reduce_sum_matches_serial() {
        for n in [1usize, 2, 3, 5, 8] {
            let len = 37;
            let results = run_group(n, move |c| {
                let mut data: Vec<f32> = (0..len).map(|i| (i + c.rank() * 100) as f32).collect();
                c.all_reduce_sum(&mut data);
                data
            });
            let expected: Vec<f32> = (0..len)
                .map(|i| (0..n).map(|r| (i + r * 100) as f32).sum())
                .collect();
            for r in &results {
                assert_eq!(r, &expected, "n={n}");
            }
        }
    }

    #[test]
    fn all_reduce_mean_divides() {
        let results = run_group(4, |c| {
            let mut data = vec![(c.rank() * 4) as f32; 3];
            c.all_reduce_mean(&mut data);
            data
        });
        for r in results {
            assert_eq!(r, vec![6.0; 3]); // (0+4+8+12)/4
        }
    }

    #[test]
    fn weighted_all_reduce_matches_eq9() {
        // Ratios 0.5, 0.3, 0.2 times per-rank constant gradients.
        let weights = [0.5f32, 0.3, 0.2];
        let results = run_group(3, move |c| {
            let mut data = vec![(c.rank() + 1) as f32; 5];
            c.weighted_all_reduce(&mut data, weights[c.rank()]);
            data
        });
        let expected = 0.5 * 1.0 + 0.3 * 2.0 + 0.2 * 3.0;
        for r in results {
            for v in r {
                assert!((v - expected).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bucketed_all_reduce_equals_plain() {
        let results = run_group(3, |c| {
            let mut a: Vec<f32> = (0..50).map(|i| (i * (c.rank() + 1)) as f32).collect();
            let mut b = a.clone();
            c.all_reduce_buckets(&mut a, 7);
            c.all_reduce_sum(&mut b);
            (a, b)
        });
        for (a, b) in results {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bucket_order_is_reverse() {
        let results = run_group(2, |c| {
            let mut data = vec![1.0f32; 10];
            c.all_reduce_buckets(&mut data, 3)
        });
        for order in results {
            assert!(order[0].end == 10, "last (output-side) bucket first: {order:?}");
            assert_eq!(order.last().unwrap().start, 0);
        }
    }

    #[test]
    fn broadcast_from_root() {
        let results = run_group(4, |c| {
            let mut data = if c.rank() == 0 { vec![3.5f32, -1.0] } else { vec![0.0, 0.0] };
            c.broadcast(&mut data);
            data
        });
        for r in results {
            assert_eq!(r, vec![3.5, -1.0]);
        }
    }

    #[test]
    fn all_gather_scalar_is_rank_indexed() {
        let results = run_group(5, |c| c.all_gather_scalar((c.rank() * 10) as f64));
        for r in results {
            assert_eq!(r, vec![0.0, 10.0, 20.0, 30.0, 40.0]);
        }
    }

    #[test]
    fn all_gather_vec_collects_rows() {
        let results = run_group(3, |c| c.all_gather_vec(&[c.rank() as f64, 1.0]));
        for r in results {
            assert_eq!(r, vec![vec![0.0, 1.0], vec![1.0, 1.0], vec![2.0, 1.0]]);
        }
    }

    #[test]
    fn single_rank_is_noop() {
        let results = run_group(1, |c| {
            let mut data = vec![1.0f32, 2.0];
            c.all_reduce_sum(&mut data);
            c.broadcast(&mut data);
            (data, c.all_gather_scalar(7.0))
        });
        assert_eq!(results[0].0, vec![1.0, 2.0]);
        assert_eq!(results[0].1, vec![7.0]);
    }

    #[test]
    fn ring_chunks_exact_count_and_cover() {
        for (len, n) in [(0usize, 3usize), (2, 5), (10, 3), (16, 4)] {
            let chunks = ring_chunks(len, n);
            assert_eq!(chunks.len(), n);
            let mut cursor = 0;
            for c in &chunks {
                assert_eq!(c.start, cursor);
                cursor = c.end;
            }
            assert_eq!(cursor, len);
        }
    }

    #[test]
    fn all_reduce_shorter_than_world() {
        // Buffer smaller than the rank count must still reduce correctly.
        let results = run_group(5, |c| {
            let mut data = vec![c.rank() as f32 + 1.0; 2];
            c.all_reduce_sum(&mut data);
            data
        });
        for r in results {
            assert_eq!(r, vec![15.0, 15.0]);
        }
    }

    #[test]
    fn repeated_collectives_do_not_interleave() {
        // Two back-to-back reduces must not mix payloads.
        let results = run_group(3, |c| {
            let mut a = vec![1.0f32; 8];
            let mut b = vec![10.0f32; 8];
            c.all_reduce_sum(&mut a);
            c.all_reduce_sum(&mut b);
            (a[0], b[0])
        });
        for (a, b) in results {
            assert_eq!(a, 3.0);
            assert_eq!(b, 30.0);
        }
    }
}

impl Communicator {
    /// Ring reduce-scatter: after the call, rank `r` owns the fully
    /// reduced chunk `r` of the buffer (chunk boundaries from the same
    /// even partition the all-reduce uses); other chunks hold partial
    /// sums and must be treated as scratch. Returns this rank's chunk
    /// range.
    pub fn reduce_scatter(&self, data: &mut [f32]) -> std::ops::Range<usize> {
        let n = self.world;
        let chunks = ring_chunks(data.len(), n);
        if n == 1 {
            return chunks[0].clone();
        }
        for s in 0..n - 1 {
            let send_idx = (self.rank + n - s) % n;
            let recv_idx = (self.rank + n - s - 1) % n;
            let payload: Vec<f64> = data[chunks[send_idx].clone()].iter().map(|&v| f64::from(v)).collect();
            self.send(payload);
            let incoming = self.recv();
            for (d, v) in data[chunks[recv_idx].clone()].iter_mut().zip(incoming) {
                *d += v as f32;
            }
        }
        // After n−1 steps rank r holds the complete sum of chunk (r+1) % n.
        chunks[(self.rank + 1) % n].clone()
    }

    /// Ring all-gather over the chunk layout produced by
    /// [`Communicator::reduce_scatter`]: every rank contributes its owned
    /// chunk and receives everyone else's, completing an all-reduce.
    pub fn all_gather_chunks(&self, data: &mut [f32]) {
        let n = self.world;
        if n == 1 {
            return;
        }
        let chunks = ring_chunks(data.len(), n);
        for s in 0..n - 1 {
            let send_idx = (self.rank + n - s + 1) % n;
            let recv_idx = (self.rank + n - s) % n;
            let payload: Vec<f64> = data[chunks[send_idx].clone()].iter().map(|&v| f64::from(v)).collect();
            self.send(payload);
            let incoming = self.recv();
            for (d, v) in data[chunks[recv_idx].clone()].iter_mut().zip(incoming) {
                *d = v as f32;
            }
        }
    }
}

#[cfg(test)]
mod scatter_gather_tests {
    use super::*;
    use std::thread;

    fn run_group<F, T>(n: usize, f: F) -> Vec<T>
    where
        F: Fn(Communicator) -> T + Send + Sync + Clone + 'static,
        T: Send + 'static,
    {
        let comms = CommGroup::create(n);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    }

    #[test]
    fn reduce_scatter_owns_the_right_chunk() {
        let n = 4;
        let len = 20;
        let results = run_group(n, move |c| {
            let mut data: Vec<f32> = (0..len).map(|i| (i * (c.rank() + 1)) as f32).collect();
            let owned = c.reduce_scatter(&mut data);
            (c.rank(), owned.clone(), data[owned].to_vec())
        });
        let total_weight: f32 = (1..=n).map(|r| r as f32).sum();
        for (rank, range, chunk) in results {
            for (offset, v) in chunk.iter().enumerate() {
                let i = range.start + offset;
                assert_eq!(*v, i as f32 * total_weight, "rank {rank} element {i}");
            }
        }
    }

    #[test]
    fn reduce_scatter_plus_all_gather_equals_all_reduce() {
        let results = run_group(3, |c| {
            let mut a: Vec<f32> = (0..31).map(|i| (i + c.rank() * 7) as f32).collect();
            let mut b = a.clone();
            c.reduce_scatter(&mut a);
            c.all_gather_chunks(&mut a);
            c.all_reduce_sum(&mut b);
            (a, b)
        });
        for (composed, fused) in results {
            assert_eq!(composed, fused);
        }
    }

    #[test]
    fn single_rank_scatter_gather_noop() {
        let results = run_group(1, |c| {
            let mut data = vec![5.0f32, 6.0];
            let owned = c.reduce_scatter(&mut data);
            c.all_gather_chunks(&mut data);
            (owned, data)
        });
        assert_eq!(results[0].0, 0..2);
        assert_eq!(results[0].1, vec![5.0, 6.0]);
    }
}
