//! The shared node pool: stable node identities across grants,
//! preemptions and deaths.
//!
//! A pool node's id is its index at construction and never changes —
//! unlike a job simulator's node indices, which renumber on eviction.
//! The controller keeps the two views consistent by mirroring each job's
//! simulator node order in its granted-id list and diffing by *name*
//! after every epoch (names are unique by construction).

use hetsim::cluster::NodeSpec;

#[derive(Debug)]
struct PoolNode {
    spec: NodeSpec,
    assigned: Option<usize>,
    dead: bool,
}

/// The fleet's shared heterogeneous node pool.
#[derive(Debug)]
pub struct NodePool {
    nodes: Vec<PoolNode>,
}

impl NodePool {
    /// Build a pool from node specs.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or two nodes share a name (names are
    /// the stable identity the death-reconciliation path keys on).
    pub fn new(specs: Vec<NodeSpec>) -> Self {
        assert!(!specs.is_empty(), "a fleet needs at least one node");
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "pool node names must be unique");
        NodePool {
            nodes: specs.into_iter().map(|spec| PoolNode { spec, assigned: None, dead: false }).collect(),
        }
    }

    /// Total node count, dead nodes included.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool holds no nodes (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Live (non-dead) node count.
    pub fn live(&self) -> usize {
        self.nodes.iter().filter(|n| !n.dead).count()
    }

    /// The spec of one node.
    pub fn spec(&self, id: usize) -> &NodeSpec {
        &self.nodes[id].spec
    }

    /// The pool id of the node with this name, if any.
    pub fn id_of(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.spec.name == name)
    }

    /// Live, unassigned node ids — fastest first (descending effective
    /// FLOPS, name as the deterministic tie-break), so grants hand out
    /// the most productive spare capacity.
    pub fn free_ids(&self) -> Vec<usize> {
        let mut free: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.dead && n.assigned.is_none())
            .map(|(i, _)| i)
            .collect();
        free.sort_by(|&a, &b| {
            self.nodes[b]
                .spec
                .effective_flops()
                .total_cmp(&self.nodes[a].spec.effective_flops())
                .then_with(|| self.nodes[a].spec.name.cmp(&self.nodes[b].spec.name))
        });
        free
    }

    /// Every live node id — assigned or free — fastest first (same order
    /// as [`NodePool::free_ids`]). This is the reference node ranking the
    /// demand profiler scores scaling curves against: "what would this
    /// job deliver on the pool's `k` best nodes?".
    pub fn ranked_live(&self) -> Vec<usize> {
        let mut live: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.dead)
            .map(|(i, _)| i)
            .collect();
        live.sort_by(|&a, &b| {
            self.nodes[b]
                .spec
                .effective_flops()
                .total_cmp(&self.nodes[a].spec.effective_flops())
                .then_with(|| self.nodes[a].spec.name.cmp(&self.nodes[b].spec.name))
        });
        live
    }

    /// The job currently holding a node, if any.
    pub fn assigned(&self, id: usize) -> Option<usize> {
        self.nodes[id].assigned
    }

    /// Whether a node has been marked dead.
    pub fn is_dead(&self, id: usize) -> bool {
        self.nodes[id].dead
    }

    /// Grant one free node to a job.
    ///
    /// # Panics
    ///
    /// Panics if the node is dead or already assigned — the invariant
    /// the handoff tests pin (no node serves two jobs in one epoch).
    pub fn assign(&mut self, id: usize, job: usize) {
        let node = &mut self.nodes[id];
        assert!(!node.dead, "cannot assign dead node {}", node.spec.name);
        assert!(node.assigned.is_none(), "node {} is already assigned to job {:?}", node.spec.name, node.assigned);
        node.assigned = Some(job);
    }

    /// Return a node to the free pool (preemption or job completion).
    pub fn release(&mut self, id: usize) {
        self.nodes[id].assigned = None;
    }

    /// Mark a node dead (fault-plan crash/leave surfaced by a job's
    /// simulator). Dead nodes never return to the free pool.
    pub fn mark_dead(&mut self, id: usize) {
        self.nodes[id].assigned = None;
        self.nodes[id].dead = true;
    }

    /// Snapshot of every node's owner (`None` = free or dead).
    pub fn assignments(&self) -> Vec<Option<usize>> {
        self.nodes.iter().map(|n| if n.dead { None } else { n.assigned }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::catalog::Gpu;

    fn pool3() -> NodePool {
        NodePool::new(vec![
            NodeSpec::new("rtx-0", Gpu::Rtx6000),
            NodeSpec::new("a100-0", Gpu::A100),
            NodeSpec::new("v100-0", Gpu::V100),
        ])
    }

    #[test]
    fn free_ids_are_fastest_first() {
        let pool = pool3();
        let free = pool.free_ids();
        let flops: Vec<f64> = free.iter().map(|&i| pool.spec(i).effective_flops()).collect();
        for pair in flops.windows(2) {
            assert!(pair[0] >= pair[1], "descending: {flops:?}");
        }
        assert_eq!(pool.spec(free[0]).name, "a100-0");
    }

    #[test]
    fn lifecycle_assign_release_dead() {
        let mut pool = pool3();
        pool.assign(1, 0);
        assert_eq!(pool.assigned(1), Some(0));
        assert_eq!(pool.free_ids().len(), 2);
        pool.release(1);
        assert_eq!(pool.free_ids().len(), 3);
        pool.mark_dead(1);
        assert_eq!(pool.live(), 2);
        assert!(!pool.free_ids().contains(&1), "dead nodes never come back");
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn double_assignment_panics() {
        let mut pool = pool3();
        pool.assign(0, 0);
        pool.assign(0, 1);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_names_rejected() {
        NodePool::new(vec![NodeSpec::new("n", Gpu::A100), NodeSpec::new("n", Gpu::V100)]);
    }
}
