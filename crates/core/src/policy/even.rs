//! AdaptDL/Pollux-style policy: adaptive total batch, always-even split.

use super::{EpochPlan, EpochObservation, Policy, PolicyContext};
use crate::error::CannikinError;
use crate::gns::goodput;
use crate::optperf::{even_split, predict_batch_time};
use cannikin_telemetry::SplitSource;

/// The state-of-the-art *homogeneous* adaptive planner: maximize goodput
/// over the total batch — exactly like Cannikin — but give every rank
/// `B/n` samples. In a homogeneous cluster this *is* Cannikin (§6); in a
/// heterogeneous one every batch still waits for the straggler.
#[derive(Debug, Default)]
pub struct EvenSplit;

impl EvenSplit {
    /// Create the (stateless) even-split policy.
    pub fn new() -> Self {
        EvenSplit
    }
}

/// The same geometric candidate grid Cannikin's goodput engine uses, for
/// a fair comparison.
fn candidates(base_batch: u64, max_batch: u64, n: usize) -> Vec<u64> {
    let lo = (base_batch.max(n as u64)) as f64;
    let hi = max_batch as f64;
    let count = ((hi / lo).log10() * 12.0).ceil().clamp(2.0, 40.0) as usize;
    let mut out: Vec<u64> = (0..=count).map(|i| (lo * (hi / lo).powf(i as f64 / count as f64)).round() as u64).collect();
    out.dedup();
    out
}

impl Policy for EvenSplit {
    fn name(&self) -> &'static str {
        "even"
    }

    fn ask(&mut self, ctx: &PolicyContext) -> Result<EpochPlan, CannikinError> {
        let n = ctx.nodes;
        let used_model = ctx.solver_input.is_some();
        let total = if !ctx.adaptive {
            ctx.base_batch
        } else if let (Some(input), Some(phi)) = (&ctx.solver_input, ctx.phi) {
            // Goodput over candidates, throughput predicted for the
            // homogeneous (even) split.
            candidates(ctx.base_batch, ctx.max_batch, n)
                .into_iter()
                .max_by(|&a, &b| {
                    let ga = goodput(phi, ctx.base_batch, a, predict_batch_time(input, &even_split(a, n)));
                    let gb = goodput(phi, ctx.base_batch, b, predict_batch_time(input, &even_split(b, n)));
                    ga.total_cmp(&gb)
                })
                .unwrap_or(ctx.base_batch)
        } else if ctx.epoch == 0 || ctx.solver_input.is_some() {
            // Models without a GNS estimate pin the base batch; so does
            // the very first epoch.
            ctx.base_batch
        } else {
            // The throughput model needs two batch sizes to fit; perturb
            // the batch upward once.
            ((ctx.base_batch as f64 * 1.5).round() as u64).min(ctx.max_batch)
        };
        let source = if used_model { SplitSource::Solver } else { SplitSource::EvenInit };
        Ok(EpochPlan {
            total,
            local: even_split(total, n),
            accumulation: 1,
            source,
            used_model,
            pattern: None,
            predicted_t: None,
        })
    }

    fn tell(&mut self, _obs: &EpochObservation) {
        // Stateless: the fitted models arrive through the next context.
    }
}
