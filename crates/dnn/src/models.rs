//! Small reference models used by examples and integration tests.

use crate::layers::{
    AvgPool2d, BasicBlock, BatchNorm2d, Conv2d, Embedding, Gru, Layer, Linear, MeanOverTime,
    Param, Relu, Sequential, TimeDistributed, TransformerBlock,
};
use crate::loss::{BceWithLogits, Loss};
use crate::tensor::{matmul, Tensor};

/// Build a multi-layer perceptron classifier: `dim → hidden → hidden → classes`.
///
/// # Examples
///
/// ```
/// use minidnn::layers::Layer;
/// use minidnn::models::mlp_classifier;
/// use minidnn::tensor::Tensor;
///
/// let mut net = mlp_classifier(10, 32, 4, 1);
/// let y = net.forward(&Tensor::randn(&[2, 10], 2), true);
/// assert_eq!(y.shape(), &[2, 4]);
/// ```
pub fn mlp_classifier(dim: usize, hidden: usize, classes: usize, seed: u64) -> Sequential {
    Sequential::new()
        .push(Linear::new(dim, hidden, seed))
        .push(Relu::new())
        .push(Linear::new(hidden, hidden, seed.wrapping_add(1)))
        .push(Relu::new())
        .push(Linear::new(hidden, classes, seed.wrapping_add(2)))
}

/// Build a small CNN for `[batch, channels, side, side]` images: two conv
/// blocks, global average pooling and a linear head. A miniature stand-in
/// for ResNet-18 in the functional tests.
pub fn mini_cnn(channels: usize, side: usize, classes: usize, seed: u64) -> Sequential {
    let _ = side; // architecture is size-agnostic thanks to global pooling
    Sequential::new()
        .push(Conv2d::new(channels, 8, 3, 1, 1, seed))
        .push(Relu::new())
        .push(Conv2d::new(8, 16, 3, 2, 1, seed.wrapping_add(1)))
        .push(Relu::new())
        .push(AvgPool2d::new())
        .push(Linear::new(16, classes, seed.wrapping_add(2)))
}

/// A miniature NeuMF-style two-tower recommender: user and item embeddings
/// feed an elementwise (GMF) branch and an MLP branch whose outputs are
/// summed into a single interaction logit.
///
/// The model composes [`Embedding`] tables explicitly (they take id lists,
/// not tensors) and therefore does not implement [`Layer`]; use
/// [`NeuMf::train_step`] / [`NeuMf::score`].
#[derive(Debug)]
pub struct NeuMf {
    user_emb: Embedding,
    item_emb: Embedding,
    mlp: Sequential,
    gmf_head: Linear,
    dim: usize,
    cache: Option<NeuMfCache>,
}

#[derive(Debug)]
struct NeuMfCache {
    u: Tensor,
    v: Tensor,
}

impl NeuMf {
    /// Create a NeuMF model with embedding dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(num_users: usize, num_items: usize, dim: usize, seed: u64) -> Self {
        NeuMf {
            user_emb: Embedding::new(num_users, dim, seed),
            item_emb: Embedding::new(num_items, dim, seed.wrapping_add(1)),
            mlp: Sequential::new()
                .push(Linear::new(2 * dim, dim, seed.wrapping_add(2)))
                .push(Relu::new())
                .push(Linear::new(dim, 1, seed.wrapping_add(3))),
            gmf_head: Linear::new(dim, 1, seed.wrapping_add(4)),
            dim,
            cache: None,
        }
    }

    /// Forward pass: interaction logits `[batch]` for user/item id pairs.
    ///
    /// # Panics
    ///
    /// Panics if `users.len() != items.len()`.
    pub fn forward(&mut self, users: &[usize], items: &[usize]) -> Tensor {
        assert_eq!(users.len(), items.len(), "user/item batch mismatch");
        let u = self.user_emb.forward(users); // [b, d]
        let v = self.item_emb.forward(items); // [b, d]
        let gmf = u.mul(&v);
        let gmf_logit = self.gmf_head.forward(&gmf, true); // [b, 1]
        let concat = concat_cols(&u, &v);
        let mlp_logit = self.mlp.forward(&concat, true); // [b, 1]
        self.cache = Some(NeuMfCache { u, v });
        gmf_logit.add(&mlp_logit).reshape(&[users.len()])
    }

    /// One training step on a batch: computes BCE-with-logits loss,
    /// backpropagates and accumulates gradients. Returns the loss.
    ///
    /// # Panics
    ///
    /// Panics if batch lengths disagree.
    pub fn train_step(&mut self, users: &[usize], items: &[usize], labels: &Tensor) -> f32 {
        let logits = self.forward(users, items);
        let (loss, grad) = BceWithLogits.loss(&logits, labels);
        self.backward(&grad.reshape(&[users.len(), 1]));
        loss
    }

    fn backward(&mut self, grad_logit: &Tensor) {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let (u, v) = (cache.u.clone(), cache.v.clone());
        // Both heads receive the same upstream gradient (their outputs add).
        let d_gmf = self.gmf_head.backward(grad_logit); // [b, d]
        let d_concat = self.mlp.backward(grad_logit); // [b, 2d]
        let (d_u_mlp, d_v_mlp) = split_cols(&d_concat, self.dim);
        // GMF branch: d/du (u∘v) = grad ∘ v.
        let d_u = d_gmf.mul(&v).add(&d_u_mlp);
        let d_v = d_gmf.mul(&u).add(&d_v_mlp);
        self.user_emb.backward(&d_u);
        self.item_emb.backward(&d_v);
    }

    /// Score user/item pairs without caching training state.
    pub fn score(&mut self, users: &[usize], items: &[usize]) -> Tensor {
        self.forward(users, items)
    }

    /// All trainable parameters.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        let mut out = vec![self.user_emb.param_mut(), self.item_emb.param_mut()];
        out.extend(self.mlp.parameters_mut());
        out.extend(self.gmf_head.parameters_mut());
        out
    }

    /// Immutable access to all trainable parameters.
    pub fn parameters(&self) -> Vec<&Param> {
        let mut out = vec![self.user_emb.param(), self.item_emb.param()];
        out.extend(self.mlp.parameters());
        out.extend(self.gmf_head.parameters());
        out
    }
}

fn concat_cols(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows(), b.rows(), "concat_cols row mismatch");
    let (ac, bc) = (a.cols(), b.cols());
    let mut out = Vec::with_capacity(a.rows() * (ac + bc));
    for i in 0..a.rows() {
        out.extend_from_slice(&a.data()[i * ac..(i + 1) * ac]);
        out.extend_from_slice(&b.data()[i * bc..(i + 1) * bc]);
    }
    Tensor::from_vec(out, &[a.rows(), ac + bc]).expect("concat shape")
}

fn split_cols(x: &Tensor, at: usize) -> (Tensor, Tensor) {
    let c = x.cols();
    assert!(at <= c, "split point {at} beyond width {c}");
    let rows = x.rows();
    let mut left = Vec::with_capacity(rows * at);
    let mut right = Vec::with_capacity(rows * (c - at));
    for i in 0..rows {
        left.extend_from_slice(&x.data()[i * c..i * c + at]);
        right.extend_from_slice(&x.data()[i * c + at..(i + 1) * c]);
    }
    (
        Tensor::from_vec(left, &[rows, at]).expect("split left"),
        Tensor::from_vec(right, &[rows, c - at]).expect("split right"),
    )
}

/// Classification accuracy of a model over a feature/label batch.
pub fn accuracy(model: &mut dyn Layer, x: &Tensor, labels: &[usize]) -> f64 {
    let logits = model.forward(x, false);
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

/// Top-k classification accuracy of a model over a feature/label batch
/// (ImageNet recipes report top-1 and top-5).
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the class count.
pub fn topk_accuracy(model: &mut dyn Layer, x: &Tensor, labels: &[usize], k: usize) -> f64 {
    let logits = model.forward(x, false);
    let top = logits.topk_rows(k);
    let correct = top.iter().zip(labels).filter(|(t, l)| t.contains(l)).count();
    correct as f64 / labels.len() as f64
}

/// Matrix-factorization helper kept for the recommendation examples: score
/// every item for one user embedding via a single matmul.
pub fn score_all_items(user_vec: &Tensor, item_table: &Tensor) -> Tensor {
    matmul(user_vec, &item_table.transpose2d())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{gaussian_blobs, two_tower_interactions};
    use crate::layers::zero_grads;
    use crate::loss::SoftmaxCrossEntropy;
    use crate::optim::{Adam, Optimizer, Sgd};

    #[test]
    fn mlp_learns_blobs() {
        let ds = gaussian_blobs(256, 4, 8, 1);
        let mut net = mlp_classifier(8, 32, 4, 2);
        let mut opt = Sgd::new(0.1).momentum(0.9);
        let idx: Vec<usize> = (0..256).collect();
        let (x, y) = ds.batch(&idx);
        for _ in 0..60 {
            zero_grads(&mut net.parameters_mut());
            let logits = net.forward(&x, true);
            let (_, grad) = SoftmaxCrossEntropy.loss(&logits, &y);
            net.backward(&grad);
            opt.step(&mut net.parameters_mut());
        }
        let acc = accuracy(&mut net, &x, &y);
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn cnn_shapes_and_one_step() {
        let mut net = mini_cnn(3, 8, 5, 3);
        let x = Tensor::randn(&[4, 3, 8, 8], 4);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[4, 5]);
        let (_, grad) = SoftmaxCrossEntropy.loss(&y, &[0, 1, 2, 3]);
        net.backward(&grad);
        let mut opt = Sgd::new(0.01);
        opt.step(&mut net.parameters_mut());
    }

    #[test]
    fn neumf_learns_interactions() {
        let ds = two_tower_interactions(30, 40, 300, 5);
        let mut model = NeuMf::new(30, 40, 8, 6);
        let mut opt = Adam::new(0.01);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let (users, items, labels) = ds.batch(&idx);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..80 {
            for p in model.parameters_mut() {
                p.zero_grad();
            }
            let loss = model.train_step(&users, &items, &labels);
            if step == 0 {
                first = loss;
            }
            last = loss;
            opt.step(&mut model.parameters_mut());
        }
        assert!(last < first * 0.8, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = Tensor::randn(&[3, 2], 7);
        let b = Tensor::randn(&[3, 4], 8);
        let c = concat_cols(&a, &b);
        let (a2, b2) = split_cols(&c, 2);
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }
}

/// Build a miniature CIFAR-style ResNet: a stem convolution followed by
/// three residual stages (8→16→32 channels, downsampling twice), global
/// average pooling and a linear head — the structural shape of ResNet-18
/// at toy scale, batch norm and projection shortcuts included.
pub fn mini_resnet(channels: usize, classes: usize, seed: u64) -> Sequential {
    Sequential::new()
        .push(Conv2d::new(channels, 8, 3, 1, 1, seed))
        .push(BatchNorm2d::new(8))
        .push(Relu::new())
        .push(BasicBlock::new(8, 8, 1, seed.wrapping_add(1)))
        .push(BasicBlock::new(8, 16, 2, seed.wrapping_add(2)))
        .push(BasicBlock::new(16, 32, 2, seed.wrapping_add(3)))
        .push(AvgPool2d::new())
        .push(Linear::new(32, classes, seed.wrapping_add(4)))
}

/// A miniature BERT-style sequence classifier: token + learned positional
/// embeddings, a stack of pre-norm [`TransformerBlock`]s, mean pooling
/// over the sequence and a linear head.
///
/// Like [`NeuMf`], the model composes [`Embedding`] tables explicitly (its
/// input is token ids, not a tensor) and therefore exposes
/// [`MiniBert::train_step`] / [`MiniBert::logits`] instead of implementing
/// [`Layer`].
pub struct MiniBert {
    token_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<TransformerBlock>,
    head: Linear,
    dim: usize,
    seq_len: usize,
    last_batch: usize,
}

impl std::fmt::Debug for MiniBert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MiniBert({} blocks, dim {}, seq {})", self.blocks.len(), self.dim, self.seq_len)
    }
}

impl MiniBert {
    /// Create a model for sequences of exactly `seq_len` tokens.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `dim` is not a multiple of
    /// `heads`.
    pub fn new(vocab: usize, seq_len: usize, dim: usize, heads: usize, layers: usize, classes: usize, seed: u64) -> Self {
        assert!(layers > 0 && seq_len > 0, "model dimensions must be positive");
        MiniBert {
            token_emb: Embedding::new(vocab, dim, seed),
            pos_emb: Embedding::new(seq_len, dim, seed.wrapping_add(1)),
            blocks: (0..layers)
                .map(|l| TransformerBlock::new(dim, heads, seed.wrapping_add(100 + l as u64)))
                .collect(),
            head: Linear::new(dim, classes, seed.wrapping_add(2)),
            dim,
            seq_len,
            last_batch: 0,
        }
    }

    /// Forward pass: classification logits `[batch, classes]`.
    ///
    /// # Panics
    ///
    /// Panics if any sequence length differs from the configured one.
    pub fn logits(&mut self, sequences: &[Vec<usize>]) -> Tensor {
        let batch = sequences.len();
        assert!(sequences.iter().all(|s| s.len() == self.seq_len), "sequence length mismatch");
        self.last_batch = batch;
        let flat_tokens: Vec<usize> = sequences.iter().flatten().copied().collect();
        let positions: Vec<usize> = (0..batch).flat_map(|_| 0..self.seq_len).collect();
        let tok = self.token_emb.forward(&flat_tokens); // [batch·seq, dim]
        let pos = self.pos_emb.forward(&positions);
        let mut x = tok.add(&pos).reshape(&[batch, self.seq_len, self.dim]);
        for block in &mut self.blocks {
            x = block.forward(&x, true);
        }
        // Mean-pool over the sequence.
        let flat = x.reshape(&[batch * self.seq_len, self.dim]);
        let mut pooled = Tensor::zeros(&[batch, self.dim]);
        for b in 0..batch {
            for t in 0..self.seq_len {
                for d in 0..self.dim {
                    pooled.data_mut()[b * self.dim + d] +=
                        flat.data()[(b * self.seq_len + t) * self.dim + d] / self.seq_len as f32;
                }
            }
        }
        self.head.forward(&pooled, true)
    }

    /// One training step: softmax cross-entropy loss, full backward pass,
    /// gradient accumulation. Returns the loss.
    pub fn train_step(&mut self, sequences: &[Vec<usize>], labels: &[usize]) -> f32 {
        let logits = self.logits(sequences);
        let (loss, grad) = crate::loss::SoftmaxCrossEntropy.loss(&logits, labels);
        self.backward(&grad);
        loss
    }

    fn backward(&mut self, grad_logits: &Tensor) {
        let batch = self.last_batch;
        let d_pooled = self.head.backward(grad_logits); // [batch, dim]
        // Un-pool: every timestep receives grad/seq_len.
        let mut dx = Tensor::zeros(&[batch * self.seq_len, self.dim]);
        for b in 0..batch {
            for t in 0..self.seq_len {
                for d in 0..self.dim {
                    dx.data_mut()[(b * self.seq_len + t) * self.dim + d] =
                        d_pooled.data()[b * self.dim + d] / self.seq_len as f32;
                }
            }
        }
        let mut g = dx.reshape(&[batch, self.seq_len, self.dim]);
        for block in self.blocks.iter_mut().rev() {
            g = block.backward(&g);
        }
        let flat = g.reshape(&[batch * self.seq_len, self.dim]);
        self.token_emb.backward(&flat);
        self.pos_emb.backward(&flat);
    }

    /// All trainable parameters.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        let mut out = vec![self.token_emb.param_mut(), self.pos_emb.param_mut()];
        for block in &mut self.blocks {
            out.extend(block.parameters_mut());
        }
        out.extend(self.head.parameters_mut());
        out
    }

    /// Immutable access to all trainable parameters.
    pub fn parameters(&self) -> Vec<&Param> {
        let mut out = vec![self.token_emb.param(), self.pos_emb.param()];
        for block in &self.blocks {
            out.extend(block.parameters());
        }
        out.extend(self.head.parameters());
        out
    }

    /// Classification accuracy over a batch of sequences.
    pub fn accuracy(&mut self, sequences: &[Vec<usize>], labels: &[usize]) -> f64 {
        let logits = self.logits(sequences);
        let preds = logits.argmax_rows();
        preds.iter().zip(labels).filter(|(p, l)| p == l).count() as f64 / labels.len() as f64
    }
}

#[cfg(test)]
mod zoo_tests {
    use super::*;
    use crate::data::{gaussian_blob_images, token_sequences};
    use crate::layers::zero_grads;
    use crate::loss::SoftmaxCrossEntropy;
    use crate::optim::{AdamW, Optimizer, Sgd};

    #[test]
    fn mini_resnet_learns_blob_images() {
        let ds = gaussian_blob_images(96, 3, 3, 8, 81);
        let idx: Vec<usize> = (0..96).collect();
        let (x, y) = ds.batch(&idx);
        let mut net = mini_resnet(3, 3, 82);
        let mut opt = Sgd::new(0.05).momentum(0.9);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..25 {
            zero_grads(&mut net.parameters_mut());
            let logits = net.forward(&x, true);
            let (loss, grad) = SoftmaxCrossEntropy.loss(&logits, &y);
            net.backward(&grad);
            opt.step(&mut net.parameters_mut());
            if step == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(last < first * 0.5, "resnet loss {first} -> {last}");
        let acc = accuracy(&mut net, &x, &y);
        assert!(acc > 0.8, "train accuracy {acc}");
    }

    #[test]
    fn mini_bert_learns_token_signatures() {
        let ds = token_sequences(128, 32, 8, 4, 83);
        let idx: Vec<usize> = (0..128).collect();
        let (seqs, labels) = ds.batch(&idx);
        let mut model = MiniBert::new(32, 8, 16, 2, 2, 4, 84);
        let mut opt = AdamW::new(5e-3);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..40 {
            for p in model.parameters_mut() {
                p.zero_grad();
            }
            let loss = model.train_step(&seqs, &labels);
            opt.step(&mut model.parameters_mut());
            if step == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(last < first * 0.5, "bert loss {first} -> {last}");
        assert!(model.accuracy(&seqs, &labels) > 0.8);
    }

    #[test]
    fn mini_bert_gradients_flow_to_every_parameter() {
        let ds = token_sequences(8, 16, 6, 2, 85);
        let (seqs, labels) = ds.batch(&(0..8).collect::<Vec<_>>());
        let mut model = MiniBert::new(16, 6, 8, 2, 1, 2, 86);
        let _ = model.train_step(&seqs, &labels);
        for p in model.parameters() {
            assert!(p.grad.sq_l2() > 0.0, "no gradient reached {}", p.name);
        }
    }
}

/// Build a miniature DeepSpeech2-style utterance classifier for
/// `[batch, time, features]` frame sequences: a per-frame linear
/// featurizer, a GRU over time, mean pooling and a linear head. (The real
/// DeepSpeech2 ends in CTC over characters; the reproduction's synthetic
/// speech task is utterance classification, which exercises the same
/// conv/recurrent compute shape.)
pub fn mini_deepspeech(features: usize, hidden: usize, classes: usize, seed: u64) -> Sequential {
    Sequential::new()
        .push(TimeDistributed::new(Linear::new(features, hidden, seed)))
        .push(Relu::new())
        .push(Gru::new(hidden, hidden, seed.wrapping_add(1)))
        .push(MeanOverTime::new())
        .push(Linear::new(hidden, classes, seed.wrapping_add(2)))
}

#[cfg(test)]
mod speech_tests {
    use super::*;
    use crate::data::frame_sequences;
    use crate::layers::zero_grads;
    use crate::loss::SoftmaxCrossEntropy;
    use crate::optim::{Optimizer, Sgd};

    #[test]
    fn mini_deepspeech_learns_frame_dynamics() {
        let ds = frame_sequences(96, 16, 6, 3, 87);
        let idx: Vec<usize> = (0..96).collect();
        let (x, y) = ds.batch(&idx);
        let mut net = mini_deepspeech(6, 16, 3, 88);
        let mut opt = Sgd::new(0.08).momentum(0.9);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..60 {
            zero_grads(&mut net.parameters_mut());
            let logits = net.forward(&x, true);
            let (loss, grad) = SoftmaxCrossEntropy.loss(&logits, &y);
            net.backward(&grad);
            opt.step(&mut net.parameters_mut());
            if step == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(last < first * 0.5, "speech loss {first} -> {last}");
        let acc = accuracy(&mut net, &x, &y);
        assert!(acc > 0.7, "train accuracy {acc}");
    }

    #[test]
    fn mini_deepspeech_shapes() {
        let mut net = mini_deepspeech(5, 8, 4, 89);
        let x = Tensor::randn(&[3, 7, 5], 90);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[3, 4]);
        let gx = net.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
    }
}

#[cfg(test)]
mod topk_tests {
    use super::*;
    use crate::data::gaussian_blobs;
    use crate::layers::zero_grads;
    use crate::loss::SoftmaxCrossEntropy;
    use crate::optim::{Optimizer, Sgd};

    #[test]
    fn topk_accuracy_dominates_top1() {
        let ds = gaussian_blobs(200, 5, 6, 21);
        let idx: Vec<usize> = (0..200).collect();
        let (x, y) = ds.batch(&idx);
        let mut net = mlp_classifier(6, 16, 5, 22);
        // A few steps: partially trained, so top-1 < top-3 < 1.
        let mut opt = Sgd::new(0.05);
        for _ in 0..5 {
            zero_grads(&mut net.parameters_mut());
            let logits = net.forward(&x, true);
            let (_, grad) = SoftmaxCrossEntropy.loss(&logits, &y);
            net.backward(&grad);
            opt.step(&mut net.parameters_mut());
        }
        let top1 = topk_accuracy(&mut net, &x, &y, 1);
        let top3 = topk_accuracy(&mut net, &x, &y, 3);
        let top5 = topk_accuracy(&mut net, &x, &y, 5);
        assert!(top1 <= top3 + 1e-12 && top3 <= top5 + 1e-12);
        assert!((top5 - 1.0).abs() < 1e-12, "top-5 of 5 classes is always 1");
        assert!((top1 - accuracy(&mut net, &x, &y)).abs() < 1e-12, "top-1 equals plain accuracy");
    }
}
