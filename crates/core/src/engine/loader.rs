//! The `HeteroDataLoader` (§4.5).
//!
//! PyTorch's `DistributedSampler` deals every rank the same number of
//! samples; Cannikin's loader deals rank `i` exactly `bᵢ` samples per
//! step, following the OptPerf ratios, while still covering each epoch's
//! shuffled dataset without overlap.

use minidnn::data::EpochPlan;

/// Uneven epoch-sharding data loader.
///
/// # Examples
///
/// ```
/// use cannikin_core::engine::HeteroDataLoader;
///
/// let mut loader = HeteroDataLoader::new(10_000, 42);
/// let plan = loader.next_epoch(&[96, 32]);
/// assert_eq!(plan.steps(), 10_000 / 128);
/// assert_eq!(plan.node_batches(0)[0].len(), 96);
/// ```
#[derive(Debug, Clone)]
pub struct HeteroDataLoader {
    dataset_len: usize,
    seed: u64,
    epoch: usize,
}

impl HeteroDataLoader {
    /// Create a loader over a dataset of `dataset_len` samples.
    ///
    /// # Panics
    ///
    /// Panics if `dataset_len == 0`.
    pub fn new(dataset_len: usize, seed: u64) -> Self {
        assert!(dataset_len > 0, "dataset must be non-empty");
        HeteroDataLoader { dataset_len, seed, epoch: 0 }
    }

    /// Number of epochs already planned.
    pub fn epochs_planned(&self) -> usize {
        self.epoch
    }

    /// Dataset size.
    pub fn dataset_len(&self) -> usize {
        self.dataset_len
    }

    /// Produce the next epoch's shard plan for the given local batch
    /// sizes. Each call reshuffles with a fresh (deterministic) seed.
    ///
    /// # Panics
    ///
    /// Panics if `local_batches` is empty or sums to zero.
    pub fn next_epoch(&mut self, local_batches: &[u64]) -> EpochPlan {
        let plan = EpochPlan::new(self.dataset_len, local_batches, self.seed.wrapping_add(self.epoch as u64));
        self.epoch += 1;
        plan
    }

    /// Produce an epoch plan alternating between two splits (even/odd
    /// steps) — the measurement pattern of the functional trainer, which
    /// needs each node at two batch sizes under identical conditions.
    ///
    /// # Panics
    ///
    /// Panics if the splits are invalid (see
    /// [`EpochPlan::new_alternating`]).
    pub fn next_epoch_alternating(&mut self, split_even: &[u64], split_odd: &[u64]) -> EpochPlan {
        let plan = EpochPlan::new_alternating(
            self.dataset_len,
            split_even,
            split_odd,
            self.seed.wrapping_add(self.epoch as u64),
        );
        self.epoch += 1;
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_reshuffle() {
        let mut loader = HeteroDataLoader::new(256, 1);
        let a = loader.next_epoch(&[8, 8]);
        let b = loader.next_epoch(&[8, 8]);
        assert_ne!(a.node_batches(0), b.node_batches(0));
        assert_eq!(loader.epochs_planned(), 2);
    }

    #[test]
    fn uneven_shares_respected() {
        let mut loader = HeteroDataLoader::new(1000, 2);
        let plan = loader.next_epoch(&[7, 2, 1]);
        assert_eq!(plan.node_batches(0)[0].len(), 7);
        assert_eq!(plan.node_batches(1)[0].len(), 2);
        assert_eq!(plan.node_batches(2)[0].len(), 1);
        assert_eq!(plan.steps(), 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = HeteroDataLoader::new(100, 9);
        let mut b = HeteroDataLoader::new(100, 9);
        assert_eq!(a.next_epoch(&[4, 4]).node_batches(1), b.next_epoch(&[4, 4]).node_batches(1));
    }
}
