//! The anomaly detectors — one pass over a [`Record`] stream, online or
//! offline.
//!
//! Every detector is a small incremental model over one event kind:
//!
//! * **Straggler** — per-node least-squares fit of the paper's
//!   `t = c·b + d` compute law over `StepTiming` observations; an
//!   observation far above the fitted line starts a streak, and a streak
//!   of `straggler_patience` consecutive outliers fires (so a sustained
//!   slowdown is flagged within `straggler_patience` steps while an
//!   isolated GC-pause spike is not).
//! * **Calibration** — each `SplitDecision` carries the solver's
//!   `predicted_t`; the realized step times under that plan are averaged
//!   and compared against the prediction when the *next* decision
//!   arrives. OptPerf error beyond `calibration_band` fires.
//! * **GNS drift** — an EWMA over `GnsEstimated.b_noise`; estimates that
//!   jump relative to the smoothed trajectory for `gns_patience`
//!   consecutive observations fire.
//! * **Bucket imbalance** — ns/element of each `AllReduceBucket` against
//!   the cluster-wide running mean; a bucket persistently slower by
//!   `bucket_factor`× fires.
//!
//! Determinism matters: the same record sequence must produce the same
//! anomalies whether the detectors run inside a live [`crate::Monitor`]
//! or over a parsed JSONL trace — the round-trip tests assert exactly
//! that. Detectors therefore keep no wall-clock state and ignore
//! `AnomalyDetected` records (a replayed trace already contains the
//! online verdicts).

use cannikin_telemetry::{AnomalyDetected, AnomalyKind, Event, Record};
use std::collections::BTreeMap;

/// Detection thresholds. The defaults are deliberately loose: every band
/// is far wider than the simulator's measurement noise, so a healthy run
/// stays silent while a genuine regime change (the §6 contention
/// scenario) fires within a few steps.
#[derive(Debug, Clone, PartialEq)]
pub struct InsightConfig {
    /// Relative band above the fitted compute law before a `StepTiming`
    /// counts as an outlier.
    pub straggler_band: f64,
    /// Consecutive outlier steps before a [`AnomalyKind::Straggler`]
    /// fires (the "detect within N steps" bound).
    pub straggler_patience: u32,
    /// Observations a node's fit needs (at two or more distinct batch
    /// sizes) before it can judge outliers.
    pub straggler_min_points: usize,
    /// Relative OptPerf prediction error before
    /// [`AnomalyKind::CalibrationDrift`] fires.
    pub calibration_band: f64,
    /// Relative deviation from the GNS EWMA that counts as a jump.
    pub gns_band: f64,
    /// GNS observations absorbed before drift is judged.
    pub gns_warmup: u32,
    /// Consecutive GNS jumps before [`AnomalyKind::GnsDrift`] fires.
    pub gns_patience: u32,
    /// Factor over the mean ns/element before a bucket counts as slow.
    pub bucket_factor: f64,
    /// Bucket observations absorbed before imbalance is judged.
    pub bucket_warmup: u64,
    /// Consecutive slow observations of one bucket before
    /// [`AnomalyKind::BucketImbalance`] fires.
    pub bucket_patience: u32,
    /// When set, records whose envelope rank differs are ignored — the
    /// session-tag pattern the bench experiments use to shut out events
    /// from concurrently running tests.
    pub only_rank: Option<u32>,
}

impl Default for InsightConfig {
    fn default() -> Self {
        InsightConfig {
            straggler_band: 0.40,
            straggler_patience: 3,
            straggler_min_points: 8,
            calibration_band: 0.35,
            gns_band: 1.0,
            gns_warmup: 5,
            gns_patience: 2,
            bucket_factor: 4.0,
            bucket_warmup: 64,
            bucket_patience: 3,
            only_rank: None,
        }
    }
}

/// Incremental least-squares fit of `t_compute = c·b + d` for one node,
/// with an outlier streak counter.
#[derive(Debug, Clone, Default)]
struct StragglerFit {
    n: f64,
    sum_b: f64,
    sum_bb: f64,
    sum_t: f64,
    sum_bt: f64,
    b_min: f64,
    b_max: f64,
    streak: u32,
}

impl StragglerFit {
    fn absorb(&mut self, b: f64, t: f64) {
        if self.n == 0.0 {
            self.b_min = b;
            self.b_max = b;
        } else {
            self.b_min = self.b_min.min(b);
            self.b_max = self.b_max.max(b);
        }
        self.n += 1.0;
        self.sum_b += b;
        self.sum_bb += b * b;
        self.sum_t += t;
        self.sum_bt += b * t;
    }

    /// Predicted compute time at batch size `b`, once the fit has enough
    /// leverage (two distinct sizes) and is physically plausible.
    fn predict(&self, b: f64, min_points: usize) -> Option<f64> {
        if self.n < min_points as f64 || self.b_max <= self.b_min {
            return None;
        }
        let denom = self.n * self.sum_bb - self.sum_b * self.sum_b;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (self.n * self.sum_bt - self.sum_b * self.sum_t) / denom;
        let intercept = (self.sum_t - slope * self.sum_b) / self.n;
        let pred = slope * b + intercept;
        (pred > 0.0).then_some(pred)
    }

    fn reset(&mut self) {
        *self = StragglerFit::default();
    }
}

/// Plan-calibration state: the pending prediction and the realized step
/// aggregates accumulated under it.
#[derive(Debug, Clone, Default)]
struct CalibrationTrack {
    /// `predicted_t` of the plan currently being executed.
    pending: Option<f64>,
    /// Per-step realized aggregates since the pending plan was announced.
    steps: BTreeMap<u64, StepAgg>,
    /// Relative error of the most recently evaluated plan.
    last_error: Option<f64>,
}

#[derive(Debug, Clone, Default)]
struct StepAgg {
    max_compute: f64,
    max_comm: f64,
    sum_overlap: f64,
    count: u64,
}

impl CalibrationTrack {
    fn observe_step(&mut self, step: u64, t_compute: f64, t_comm: f64, overlap: f64) {
        let agg = self.steps.entry(step).or_default();
        agg.max_compute = agg.max_compute.max(t_compute);
        agg.max_comm = agg.max_comm.max(t_comm);
        agg.sum_overlap += overlap;
        agg.count += 1;
    }

    /// Mean realized batch time of the accumulated steps: straggler
    /// compute plus the non-overlapped share of synchronization (the
    /// Eq. (7) shape without bucket-level detail).
    fn realized(&self) -> Option<(f64, u64)> {
        if self.steps.is_empty() {
            return None;
        }
        let mut total = 0.0;
        for agg in self.steps.values() {
            let overlap = if agg.count > 0 { agg.sum_overlap / agg.count as f64 } else { 0.0 };
            total += agg.max_compute + (1.0 - overlap.clamp(0.0, 1.0)) * agg.max_comm;
        }
        let last_step = *self.steps.keys().next_back().expect("non-empty");
        Some((total / self.steps.len() as f64, last_step))
    }
}

/// EWMA drift tracking over the GNS series.
#[derive(Debug, Clone, Default)]
struct GnsTrack {
    ewma: Option<f64>,
    seen: u32,
    streak: u32,
}

/// Cluster-wide ns/element baseline with per-bucket slow streaks.
#[derive(Debug, Clone, Default)]
struct BucketTrack {
    count: u64,
    mean_npe: f64,
    streaks: BTreeMap<u32, u32>,
}

/// The full detector suite: feed it every record, collect anomalies.
#[derive(Debug, Clone)]
pub struct DetectorSet {
    config: InsightConfig,
    stragglers: BTreeMap<u32, StragglerFit>,
    calibration: CalibrationTrack,
    gns: GnsTrack,
    buckets: BucketTrack,
    /// Most recent step index seen, stamped on anomalies whose trigger
    /// event carries no step of its own.
    last_step: u64,
}

impl DetectorSet {
    /// A fresh suite with the given thresholds.
    pub fn new(config: InsightConfig) -> Self {
        DetectorSet {
            config,
            stragglers: BTreeMap::new(),
            calibration: CalibrationTrack::default(),
            gns: GnsTrack::default(),
            buckets: BucketTrack::default(),
            last_step: 0,
        }
    }

    /// The thresholds this suite runs under.
    pub fn config(&self) -> &InsightConfig {
        &self.config
    }

    /// Relative OptPerf error of the most recently completed plan.
    pub fn latest_calibration_error(&self) -> Option<f64> {
        self.calibration.last_error
    }

    /// The smoothed gradient-noise-scale trajectory.
    pub fn smoothed_noise_scale(&self) -> Option<f64> {
        self.gns.ewma
    }

    /// Feed one record through every detector; returns the anomalies it
    /// triggered (usually none).
    pub fn observe(&mut self, record: &Record) -> Vec<AnomalyDetected> {
        if let Some(rank) = self.config.only_rank {
            if record.rank != rank {
                return Vec::new();
            }
        }
        let mut out = Vec::new();
        match &record.event {
            Event::StepTiming(t) => {
                self.last_step = t.step;
                self.calibration.observe_step(t.step, t.t_compute, t.t_comm, t.overlap);
                self.observe_compute(t.rank, t.step, t.b_i as f64, t.t_compute, &mut out);
            }
            Event::SplitDecision(d) => {
                self.evaluate_calibration(&mut out);
                self.calibration.pending = d.predicted_t;
                self.calibration.steps.clear();
            }
            Event::GnsEstimated(g) => self.observe_gns(g.b_noise, &mut out),
            Event::AllReduceBucket(b) => self.observe_bucket(record.rank, b.bucket, b.elems, b.wall_ns, &mut out),
            // Anomalies (replayed traces carry the online verdicts),
            // counters, spans, solver and goodput events carry nothing the
            // detectors model.
            _ => {}
        }
        out
    }

    fn observe_compute(&mut self, rank: u32, step: u64, b: f64, t: f64, out: &mut Vec<AnomalyDetected>) {
        if b <= 0.0 || !t.is_finite() || t <= 0.0 {
            return;
        }
        let band = self.config.straggler_band;
        let patience = self.config.straggler_patience;
        let min_points = self.config.straggler_min_points;
        let fit = self.stragglers.entry(rank).or_default();
        match fit.predict(b, min_points) {
            Some(pred) if t > pred * (1.0 + band) => {
                // Outside the band: extend the streak without letting the
                // outlier drag the fit toward the new regime.
                fit.streak += 1;
                if fit.streak >= patience {
                    out.push(AnomalyDetected {
                        kind: AnomalyKind::Straggler,
                        node: Some(rank),
                        step,
                        expected: pred,
                        observed: t,
                        severity: t / pred,
                    });
                    // The old law is dead; relearn in the new regime.
                    fit.reset();
                    fit.absorb(b, t);
                }
            }
            _ => {
                fit.streak = 0;
                fit.absorb(b, t);
            }
        }
    }

    fn evaluate_calibration(&mut self, out: &mut Vec<AnomalyDetected>) {
        let (Some(predicted), Some((realized, last_step))) =
            (self.calibration.pending, self.calibration.realized())
        else {
            return;
        };
        if predicted <= 0.0 {
            return;
        }
        let rel_err = (realized - predicted).abs() / predicted;
        self.calibration.last_error = Some(rel_err);
        if rel_err > self.config.calibration_band {
            out.push(AnomalyDetected {
                kind: AnomalyKind::CalibrationDrift,
                node: None,
                step: last_step,
                expected: predicted,
                observed: realized,
                severity: realized / predicted,
            });
        }
    }

    fn observe_gns(&mut self, b_noise: f64, out: &mut Vec<AnomalyDetected>) {
        if !b_noise.is_finite() || b_noise <= 0.0 {
            return;
        }
        let Some(ewma) = self.gns.ewma else {
            self.gns.ewma = Some(b_noise);
            self.gns.seen = 1;
            return;
        };
        if self.gns.seen < self.config.gns_warmup {
            self.gns.seen += 1;
            self.gns.ewma = Some(ewma + 0.3 * (b_noise - ewma));
            return;
        }
        let rel_dev = (b_noise - ewma).abs() / ewma;
        if rel_dev > self.config.gns_band {
            self.gns.streak += 1;
            if self.gns.streak >= self.config.gns_patience {
                out.push(AnomalyDetected {
                    kind: AnomalyKind::GnsDrift,
                    node: None,
                    step: self.last_step,
                    expected: ewma,
                    observed: b_noise,
                    severity: b_noise / ewma,
                });
                // Re-baseline on the new regime.
                self.gns.ewma = Some(b_noise);
                self.gns.streak = 0;
            }
        } else {
            self.gns.streak = 0;
            self.gns.ewma = Some(ewma + 0.3 * (b_noise - ewma));
        }
    }

    fn observe_bucket(&mut self, rank: u32, bucket: u32, elems: u64, wall_ns: u64, out: &mut Vec<AnomalyDetected>) {
        if elems == 0 {
            return;
        }
        let npe = wall_ns as f64 / elems as f64;
        if self.buckets.count >= self.config.bucket_warmup && npe > self.config.bucket_factor * self.buckets.mean_npe
        {
            let streak = self.buckets.streaks.entry(bucket).or_insert(0);
            *streak += 1;
            if *streak >= self.config.bucket_patience {
                out.push(AnomalyDetected {
                    kind: AnomalyKind::BucketImbalance,
                    node: Some(rank),
                    step: self.last_step,
                    expected: self.buckets.mean_npe,
                    observed: npe,
                    severity: npe / self.buckets.mean_npe,
                });
                *streak = 0;
            }
            // Slow observations stay out of the baseline, mirroring the
            // straggler fit's outlier gating.
            return;
        }
        self.buckets.streaks.insert(bucket, 0);
        self.buckets.count += 1;
        self.buckets.mean_npe += (npe - self.buckets.mean_npe) / self.buckets.count as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cannikin_telemetry::{
        AllReduceBucket, GnsEstimated, SplitDecision, SplitSource, StepTiming,
    };

    fn rec(event: Event) -> Record {
        Record { ts_ns: 0, node: 0, rank: 0, event }
    }

    fn timing(step: u64, rank: u32, b: u64, t: f64) -> Record {
        rec(Event::StepTiming(StepTiming { step, rank, b_i: b, t_compute: t, t_comm: 0.0, overlap: 0.0 }))
    }

    /// Feed a clean linear law at two batch sizes, then slow the node 2x:
    /// the straggler must fire on exactly the `straggler_patience`-th
    /// slowed step.
    #[test]
    fn straggler_fires_within_patience_steps() {
        let mut set = DetectorSet::new(InsightConfig::default());
        let law = |b: f64| 0.01 * b + 0.05;
        let mut step = 0u64;
        for _ in 0..6 {
            for b in [32u64, 48] {
                assert!(set.observe(&timing(step, 0, b, law(b as f64))).is_empty());
                step += 1;
            }
        }
        // Node slows down 2x.
        let mut fired_at = None;
        for i in 0..5u64 {
            let anomalies = set.observe(&timing(step, 0, 32, 2.0 * law(32.0)));
            step += 1;
            if !anomalies.is_empty() {
                fired_at = Some((i + 1, anomalies));
                break;
            }
        }
        let (slow_steps, anomalies) = fired_at.expect("straggler must fire");
        assert_eq!(slow_steps, 3, "fires on the patience-th slowed step");
        assert_eq!(anomalies.len(), 1);
        let a = &anomalies[0];
        assert_eq!(a.kind, AnomalyKind::Straggler);
        assert_eq!(a.node, Some(0));
        assert!((a.severity - 2.0).abs() < 0.1, "severity {} should be near 2x", a.severity);
    }

    /// One isolated spike (a GC pause) must not fire, and must not poison
    /// the fit for subsequent healthy steps.
    #[test]
    fn isolated_spike_does_not_fire() {
        let mut set = DetectorSet::new(InsightConfig::default());
        let law = |b: f64| 0.01 * b + 0.05;
        let mut step = 0u64;
        for _ in 0..6 {
            for b in [32u64, 48] {
                assert!(set.observe(&timing(step, 0, b, law(b as f64))).is_empty());
                step += 1;
            }
        }
        assert!(set.observe(&timing(step, 0, 32, 3.0 * law(32.0))).is_empty(), "one spike is not a straggler");
        for i in 0..10u64 {
            let b = if i % 2 == 0 { 32 } else { 48 };
            assert!(set.observe(&timing(step + 1 + i, 0, b, law(b as f64))).is_empty());
        }
    }

    /// Per-node isolation: slowing node 1 must not implicate node 0.
    #[test]
    fn stragglers_are_tracked_per_node() {
        let mut set = DetectorSet::new(InsightConfig::default());
        let mut step = 0u64;
        for _ in 0..6 {
            for b in [32u64, 48] {
                for rank in 0..2u32 {
                    let t = (0.01 + 0.005 * f64::from(rank)) * b as f64 + 0.05;
                    assert!(set.observe(&timing(step, rank, b, t)).is_empty());
                }
                step += 1;
            }
        }
        let mut fired = Vec::new();
        for _ in 0..4 {
            assert!(set.observe(&timing(step, 0, 32, 0.01 * 32.0 + 0.05)).is_empty());
            fired.extend(set.observe(&timing(step, 1, 32, 3.0 * (0.015 * 32.0 + 0.05))));
            step += 1;
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].node, Some(1));
    }

    fn decision(predicted: Option<f64>) -> Record {
        rec(Event::SplitDecision(SplitDecision {
            total: 64,
            local: vec![32, 32],
            predicted_t: predicted,
            source: SplitSource::Solver,
        }))
    }

    #[test]
    fn calibration_drift_fires_when_realized_leaves_the_band() {
        let mut set = DetectorSet::new(InsightConfig::default());
        // Plan predicts 0.4 s/batch; realized is 0.39 — calibrated.
        assert!(set.observe(&decision(Some(0.4))).is_empty());
        for step in 0..5 {
            set.observe(&timing(step, 0, 32, 0.39));
        }
        // Next plan evaluates the previous one: within the band, silent.
        assert!(set.observe(&decision(Some(0.4))).is_empty());
        assert!(set.latest_calibration_error().unwrap() < 0.05);
        // Under the second plan the cluster is 2x slower than predicted.
        for step in 0..5 {
            set.observe(&timing(step, 0, 32, 0.8));
        }
        let fired = set.observe(&decision(Some(0.4)));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AnomalyKind::CalibrationDrift);
        assert_eq!(fired[0].node, None);
        assert!((fired[0].severity - 2.0).abs() < 0.05);
    }

    #[test]
    fn model_free_plans_do_not_evaluate_calibration() {
        let mut set = DetectorSet::new(InsightConfig::default());
        assert!(set.observe(&decision(None)).is_empty());
        for step in 0..5 {
            set.observe(&timing(step, 0, 32, 0.9));
        }
        assert!(set.observe(&decision(Some(0.4))).is_empty(), "no prediction, nothing to calibrate");
        assert_eq!(set.latest_calibration_error(), None);
    }

    fn gns(b_noise: f64) -> Record {
        rec(Event::GnsEstimated(GnsEstimated { b_noise, grad_sq: 1.0, variance: b_noise, weights: vec![1.0] }))
    }

    #[test]
    fn gns_drift_needs_a_sustained_jump() {
        let mut set = DetectorSet::new(InsightConfig::default());
        for _ in 0..8 {
            assert!(set.observe(&gns(300.0)).is_empty());
        }
        // One wild estimate: streak 1 of 2 — silent.
        assert!(set.observe(&gns(900.0)).is_empty());
        // Second in a row fires and re-baselines.
        let fired = set.observe(&gns(950.0));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AnomalyKind::GnsDrift);
        assert!(fired[0].severity > 2.0);
        // The new regime is now the baseline: more ~950s stay silent.
        for _ in 0..5 {
            assert!(set.observe(&gns(940.0)).is_empty());
        }
    }

    fn bucket(rank: u32, bucket_ix: u32, elems: u64, wall_ns: u64) -> Record {
        let mut r = rec(Event::AllReduceBucket(AllReduceBucket { bucket: bucket_ix, elems, wall_ns, bytes: elems * 4 }));
        r.rank = rank;
        r
    }

    #[test]
    fn bucket_imbalance_flags_a_persistently_slow_bucket() {
        let mut set = DetectorSet::new(InsightConfig::default());
        // Healthy baseline: 1 ns/elem across 3 buckets.
        for i in 0..70u64 {
            assert!(set.observe(&bucket(0, (i % 3) as u32, 1_000, 1_000)).is_empty());
        }
        // Bucket 1 turns 10x slow; patience is 3.
        let mut fired = Vec::new();
        for _ in 0..3 {
            fired.extend(set.observe(&bucket(0, 1, 1_000, 10_000)));
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AnomalyKind::BucketImbalance);
        assert!(fired[0].severity > 5.0);
    }

    #[test]
    fn only_rank_filter_ignores_foreign_records() {
        let config = InsightConfig { only_rank: Some(7), ..InsightConfig::default() };
        let mut set = DetectorSet::new(config);
        let mut r = gns(300.0);
        r.rank = 3;
        set.observe(&r);
        assert_eq!(set.smoothed_noise_scale(), None, "foreign rank must be invisible");
        let mut r = gns(300.0);
        r.rank = 7;
        set.observe(&r);
        assert_eq!(set.smoothed_noise_scale(), Some(300.0));
    }

    /// Determinism: two suites fed the same sequence agree exactly — the
    /// property the online/offline round trip rests on.
    #[test]
    fn identical_streams_produce_identical_anomalies() {
        let mut records = vec![decision(Some(0.4))];
        let law = |b: f64| 0.01 * b + 0.05;
        for step in 0..20u64 {
            let b = if step % 2 == 0 { 32 } else { 48 };
            let slow = if step >= 14 { 2.5 } else { 1.0 };
            records.push(timing(step, 0, b, slow * law(b as f64)));
        }
        records.push(decision(Some(0.4)));
        let run = |records: &[Record]| {
            let mut set = DetectorSet::new(InsightConfig::default());
            records.iter().flat_map(|r| set.observe(r)).collect::<Vec<_>>()
        };
        let a = run(&records);
        let b = run(&records);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }
}
