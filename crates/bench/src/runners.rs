//! Uniform runners for the five systems under evaluation.

use cannikin_baselines::{AdaptdlTrainer, DdpTrainer, HetPipeTrainer, LbBspTrainer};
use cannikin_core::engine::{CannikinTrainer, EpochRecord, LinearNoiseGrowth, NoiseModel, TrainerConfig};
use cannikin_workloads::WorkloadProfile;
use hetsim::cluster::ClusterSpec;
use hetsim::Simulator;

/// The systems compared throughout §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// This paper's system.
    Cannikin,
    /// AdaptDL/Pollux (adaptive batch, even split).
    Adaptdl,
    /// PyTorch DistributedDataParallel (fixed batch, even split).
    Ddp,
    /// LB-BSP (fixed batch, iterative split tuning, Δ = 5).
    LbBsp,
    /// HetPipe (pipelined model parallelism, fixed batch).
    HetPipe,
}

impl System {
    /// All systems in figure order.
    pub fn all() -> [System; 5] {
        [System::Ddp, System::Adaptdl, System::LbBsp, System::HetPipe, System::Cannikin]
    }

    /// Display name used in figure output.
    pub fn label(&self) -> &'static str {
        match self {
            System::Cannikin => "Cannikin",
            System::Adaptdl => "AdaptDL",
            System::Ddp => "PyTorch-DDP",
            System::LbBsp => "LB-BSP",
            System::HetPipe => "HetPipe",
        }
    }
}

fn noise_box(profile: &WorkloadProfile) -> Box<dyn NoiseModel> {
    Box::new(LinearNoiseGrowth { initial: profile.noise.initial, rate: profile.noise.rate })
}

/// Run `system` on `profile` over `cluster` until the Table 5 target (or
/// `max_epochs`), returning the per-epoch records.
pub fn run_to_target(
    system: System,
    profile: &WorkloadProfile,
    cluster: &ClusterSpec,
    seed: u64,
    max_epochs: usize,
) -> Vec<EpochRecord> {
    let target = profile.target_effective_epochs();
    let sim = Simulator::new(cluster.clone(), profile.job.clone(), seed);
    // Table 5's B₀ can be smaller than the node count (BERT: 9, DeepSpeech2:
    // 12, cluster B: 16 GPUs); data parallelism needs at least one sample
    // per node, and learning a per-node linear model needs at least two
    // distinct local batch sizes, so the effective reference batch is
    // max(B₀, 2n) — the same floor the paper's systems face on 16 GPUs.
    let base = profile.base_batch.max(2 * cluster.len() as u64);
    match system {
        System::Cannikin => {
            let config = TrainerConfig::new(profile.dataset_size, base, profile.max_batch);
            let mut t = CannikinTrainer::builder()
                .simulator(sim)
                .noise_boxed(noise_box(profile))
                .config(config)
                .build()
                .expect("valid config");
            t.train_until(target, max_epochs).expect("cannikin run failed")
        }
        System::Adaptdl => {
            let mut t = AdaptdlTrainer::new(sim, noise_box(profile), profile.dataset_size, base, profile.max_batch);
            t.train_until(target, max_epochs)
        }
        System::Ddp => {
            let mut t = DdpTrainer::new(sim, noise_box(profile), profile.dataset_size, base, base);
            t.train_until(target, max_epochs)
        }
        System::LbBsp => {
            let mut t = LbBspTrainer::new(sim, noise_box(profile), profile.dataset_size, base, base);
            t.train_until(target, max_epochs)
        }
        System::HetPipe => {
            let mut t = HetPipeTrainer::new(sim, noise_box(profile), profile.dataset_size, base, base);
            t.train_until(target, max_epochs)
        }
    }
}

/// A noise-free simulator for oracle evaluations.
pub fn noiseless_sim(cluster: &ClusterSpec, job: &hetsim::job::JobSpec) -> Simulator {
    Simulator::new(cluster.clone(), job.clone(), 0).with_noise(0.0, 0.0)
}

/// Wall-clock convergence time of a finished run (time of the record that
/// crossed the target), or `None` if the run hit its epoch cap first.
pub fn convergence_time(records: &[EpochRecord], profile: &WorkloadProfile) -> Option<f64> {
    let target = profile.target_effective_epochs();
    records.iter().find(|r| r.effective_epochs >= target).map(|r| r.cumulative_time)
}

/// The (time, metric) trajectory of a run under the profile's calibrated
/// metric curve — the raw series behind Figs. 6(c) and 7.
pub fn metric_trajectory(records: &[EpochRecord], profile: &WorkloadProfile) -> Vec<(f64, f64)> {
    records
        .iter()
        .map(|r| (r.cumulative_time, profile.metric_at(r.effective_epochs)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cannikin_workloads::{clusters, profiles};

    #[test]
    fn all_systems_run_cifar_on_cluster_b() {
        let profile = profiles::cifar10_resnet18();
        let cluster = clusters::cluster_b();
        for system in System::all() {
            let records = run_to_target(system, &profile, &cluster, 1, 4000);
            assert!(!records.is_empty(), "{}", system.label());
            let t = convergence_time(&records, &profile);
            assert!(t.is_some(), "{} did not converge", system.label());
        }
    }

    #[test]
    fn cannikin_converges_fastest_on_cifar() {
        // The headline comparison behind Figs. 7–8.
        let profile = profiles::cifar10_resnet18();
        let cluster = clusters::cluster_b();
        let mut times = std::collections::HashMap::new();
        for system in System::all() {
            let records = run_to_target(system, &profile, &cluster, 2, 4000);
            times.insert(system, convergence_time(&records, &profile).expect("converged"));
        }
        let cannikin = times[&System::Cannikin];
        for (system, t) in &times {
            assert!(cannikin <= *t * 1.001, "{} beat Cannikin: {t} vs {cannikin}", system.label());
        }
        // And the adaptive-batch gap over DDP must be large (paper: up to 85%).
        assert!(cannikin < times[&System::Ddp] * 0.6, "cannikin {cannikin} vs ddp {}", times[&System::Ddp]);
    }

    #[test]
    fn trajectory_is_monotone() {
        let profile = profiles::cifar10_resnet18();
        let cluster = clusters::cluster_b();
        let records = run_to_target(System::Cannikin, &profile, &cluster, 3, 4000);
        let traj = metric_trajectory(&records, &profile);
        for pair in traj.windows(2) {
            assert!(pair[1].0 > pair[0].0);
            assert!(pair[1].1 >= pair[0].1);
        }
    }
}
