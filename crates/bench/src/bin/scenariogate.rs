//! Regression gate over the `BENCH_scenarios.json` scenario matrix.
//!
//! Re-runs the capability-tagged matrix under the pinned seed and fails
//! if the fresh report regressed against the committed baseline:
//!
//! - every `adaptive_vs_static` goodput ratio must stay at or above
//!   `max(1.0, baseline·(1−tol))` — Cannikin losing to a static subject
//!   on any fault/churn scenario fails outright, whatever the baseline;
//! - every baseline cell must still exist (a vanished cell means the
//!   registry silently shrank);
//! - per surviving cell, `goodput_eff_epochs_per_hour` floors and
//!   `comm_bytes` ceilings at the tolerance.
//!
//! Every number is simulated time, frame bytes or event counts — no wall
//! clock — so the default tolerance is tight: the gate flags behavior
//! changes, not machine noise.
//!
//! ```text
//! scenariogate [--baseline PATH] [--out PATH] [--max-regression FRAC] [--write-baseline PATH]
//! ```
//!
//! With `--write-baseline` the fresh report is written to that path and
//! no comparison happens (how the committed baseline is produced).

use cannikin_bench::gate::{compare_metric_maps, load_baseline_json, render_all, Bound, GateCheck};
use cannikin_bench::scenarios::{scenario_report, ScenarioBenchReport};
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Args {
    baseline: Option<String>,
    out: Option<String>,
    max_regression: f64,
    write_baseline: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { baseline: None, out: None, max_regression: 0.02, write_baseline: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--out" => args.out = Some(value("--out")?),
            "--write-baseline" => args.write_baseline = Some(value("--write-baseline")?),
            "--max-regression" => {
                let raw = value("--max-regression")?;
                let frac: f64 =
                    raw.parse().map_err(|_| format!("--max-regression: `{raw}` is not a number"))?;
                if !(0.0..1.0).contains(&frac) {
                    return Err(format!("--max-regression must be in [0, 1), got {frac}"));
                }
                args.max_regression = frac;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.baseline.is_none() && args.write_baseline.is_none() {
        return Err("need --baseline PATH (gate mode) or --write-baseline PATH".into());
    }
    Ok(args)
}

fn load_baseline(path: &str) -> Result<ScenarioBenchReport, String> {
    let regen = format!("cargo run --release -p cannikin-bench --bin scenariogate -- --write-baseline {path}");
    let json = load_baseline_json(path, &regen)?;
    ScenarioBenchReport::from_json(&json).map_err(|e| format!("{path}: {e}\n{regen}"))
}

fn gates(fresh: &ScenarioBenchReport, base: &ScenarioBenchReport, tol: f64) -> Vec<GateCheck> {
    let mut checks = Vec::new();
    // Headline claim first: adaptive beats static on every fault/churn
    // scenario, floored at 1.0 no matter how generous the baseline was.
    for (scenario, &baseline) in &base.ratios {
        match fresh.ratios.get(scenario) {
            Some(&current) => checks.push(GateCheck::floor(
                format!("{scenario}.adaptive_vs_static"),
                current,
                baseline,
                (baseline * (1.0 - tol)).max(1.0),
                tol,
            )),
            None => checks.push(GateCheck::floor(
                format!("{scenario}.adaptive_vs_static"),
                f64::NAN, // ratio vanished: fails either bound
                baseline,
                (baseline * (1.0 - tol)).max(1.0),
                tol,
            )),
        }
    }
    for cell in &base.cells {
        let label = format!("{}/{}", cell.scenario, cell.subject);
        let Some(current) = fresh.cell(&cell.scenario, &cell.subject) else {
            checks.push(GateCheck::floor(format!("{label}.present"), f64::NAN, 1.0, 1.0, 0.0));
            continue;
        };
        let pick = |metrics: &BTreeMap<String, f64>, name: &str| -> BTreeMap<String, f64> {
            metrics.get(name).map(|&v| BTreeMap::from([(name.to_string(), v)])).unwrap_or_default()
        };
        checks.extend(compare_metric_maps(
            &format!("{label}."),
            &pick(&current.metrics, "goodput_eff_epochs_per_hour"),
            &pick(&cell.metrics, "goodput_eff_epochs_per_hour"),
            Bound::Floor,
            tol,
        ));
        checks.extend(compare_metric_maps(
            &format!("{label}."),
            &pick(&current.metrics, "comm_bytes"),
            &pick(&cell.metrics, "comm_bytes"),
            Bound::Ceiling,
            tol,
        ));
    }
    checks
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("scenariogate: {e}");
            eprintln!(
                "usage: scenariogate [--baseline PATH] [--out PATH] [--max-regression FRAC] [--write-baseline PATH]"
            );
            return ExitCode::from(2);
        }
    };

    eprintln!("scenariogate: running the compatible scenario matrix (pinned seed)...");
    let fresh = scenario_report();
    let rendered = fresh.to_json().to_string_compact();

    for path in args.write_baseline.iter().chain(args.out.iter()) {
        if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
            eprintln!("scenariogate: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("scenariogate: wrote {path}");
    }
    if args.write_baseline.is_some() {
        return ExitCode::SUCCESS;
    }

    let base = match load_baseline(args.baseline.as_deref().expect("checked in parse_args")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("scenariogate: {e}");
            return ExitCode::from(2);
        }
    };

    let checks = gates(&fresh, &base, args.max_regression);
    let (rendered_checks, all_pass) = render_all(&checks);
    print!("{rendered_checks}");
    if all_pass {
        println!("scenariogate: all cells within tolerance");
        ExitCode::SUCCESS
    } else {
        eprintln!("scenariogate: scenario matrix regressed against the committed baseline");
        ExitCode::FAILURE
    }
}
