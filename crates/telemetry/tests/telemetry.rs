//! End-to-end smoke tests for the telemetry pipeline: concurrent emitters
//! with per-thread identities → session drain → JSONL round-trip and a
//! structurally valid Chrome trace.

use cannikin_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::Arc;
use telemetry::{
    AllReduceBucket, Counter, Event, Json, Record, Session, SolverInvocation, StepTiming, Subscriber,
};

/// Tests share the process and the global recorder; each takes this lock
/// so an emit from one test can't land in another's session.
static TEST_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

fn run_multithreaded_session() -> Vec<Record> {
    let session = Session::start();
    {
        let _run = telemetry::span("run");
        let workers: Vec<_> = (0..4u32)
            .map(|rank| {
                std::thread::spawn(move || {
                    let _id = telemetry::set_thread_identity(rank, rank);
                    for step in 0..20u64 {
                        let _step_span = telemetry::span("step");
                        telemetry::emit(Event::StepTiming(StepTiming {
                            step,
                            rank,
                            b_i: 8 + u64::from(rank),
                            t_compute: 0.01 * (step + 1) as f64,
                            t_comm: 0.002,
                            overlap: 0.5,
                        }));
                        telemetry::emit(Event::AllReduceBucket(AllReduceBucket {
                            bucket: 0,
                            elems: 1024,
                            wall_ns: 5_000,
                            bytes: 4096,
                        }));
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        telemetry::emit(Event::SolverInvocation(SolverInvocation {
            wall_ns: 42_000,
            total: 64,
            candidates: 1,
            solves: 3,
            boundary: 2,
        }));
        telemetry::counter("epoch_time_s", 1.25);
    }
    session.drain()
}

#[test]
fn multithreaded_session_preserves_per_rank_step_order() {
    let _serial = TEST_LOCK.lock();
    let records = run_multithreaded_session();
    // 4 ranks × 20 steps × (span B + timing + bucket + span E) + run span B/E
    // + solver invocation + counter.
    assert_eq!(records.len(), 4 * 20 * 4 + 2 + 2);
    assert!(records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns), "drain must be time-sorted");
    for rank in 0..4u32 {
        let steps: Vec<u64> = records
            .iter()
            .filter_map(|r| match &r.event {
                Event::StepTiming(t) if r.rank == rank => Some(t.step),
                _ => None,
            })
            .collect();
        let expected: Vec<u64> = (0..20).collect();
        assert_eq!(steps, expected, "rank {rank} steps interleaved or lost");
    }
}

/// A monitor-shaped subscriber: accumulates every record it is handed.
struct TapSubscriber {
    seen: parking_lot::Mutex<Vec<Record>>,
}

impl Subscriber for TapSubscriber {
    fn on_records(&self, batch: &[Record]) {
        self.seen.lock().extend_from_slice(batch);
    }
}

#[test]
fn subscriber_observes_concurrent_emitters_exactly_once_in_thread_order() {
    let _serial = TEST_LOCK.lock();
    let tap = Arc::new(TapSubscriber { seen: parking_lot::Mutex::new(Vec::new()) });
    let _guard = telemetry::subscribe(tap.clone());
    let session = Session::start();
    let workers: Vec<_> = (0..8u32)
        .map(|rank| {
            std::thread::spawn(move || {
                let _id = telemetry::set_thread_identity(rank, rank);
                for i in 0..500u64 {
                    telemetry::emit(Event::Counter(Counter {
                        name: "seq".to_string(),
                        value: (u64::from(rank) * 1_000 + i) as f64,
                    }));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let drained = session.drain();
    assert_eq!(drained.len(), 8 * 500);

    let seen = tap.seen.lock();
    // Exactly once: the subscriber saw the same multiset the sink did.
    assert_eq!(seen.len(), drained.len());
    let mut seen_values: Vec<u64> = seen
        .iter()
        .map(|r| match &r.event {
            Event::Counter(c) => c.value as u64,
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    seen_values.sort_unstable();
    let expected: Vec<u64> =
        (0..8u64).flat_map(|t| (0..500u64).map(move |i| t * 1_000 + i)).collect();
    assert_eq!(seen_values, expected, "every event exactly once");

    // Per-thread order: in the delivered stream, each rank's values are
    // strictly increasing (batches arrive in flush order; records within a
    // batch in emission order).
    for rank in 0..8u32 {
        let values: Vec<f64> = seen
            .iter()
            .filter(|r| r.rank == rank)
            .map(|r| match &r.event {
                Event::Counter(c) => c.value,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(values.len(), 500);
        assert!(values.windows(2).all(|w| w[0] < w[1]), "rank {rank} delivered out of order");
    }
}

#[test]
fn jsonl_export_round_trips_a_real_session() {
    let _serial = TEST_LOCK.lock();
    let records = run_multithreaded_session();
    let text = telemetry::export::jsonl_string(&records);
    let back = telemetry::export::parse_jsonl(&text).expect("every line parses");
    assert_eq!(back, records);
}

#[test]
fn chrome_trace_is_valid_json_with_matching_span_pairs() {
    let _serial = TEST_LOCK.lock();
    let records = run_multithreaded_session();
    let trace = telemetry::export::chrome_trace_string(&records);
    let parsed = Json::parse(&trace).expect("chrome trace must be valid JSON");
    let events = parsed.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
    assert_eq!(events.len(), records.len());

    // Every B must close with a matching E on the same (pid, tid), LIFO.
    let mut open: HashMap<(u64, u64), Vec<String>> = HashMap::new();
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).expect("ph");
        let name = event.get("name").and_then(Json::as_str).expect("name").to_string();
        let key = (
            event.get("pid").and_then(Json::as_u64).expect("pid"),
            event.get("tid").and_then(Json::as_u64).expect("tid"),
        );
        match ph {
            "B" => open.entry(key).or_default().push(name),
            "E" => {
                let top = open.get_mut(&key).and_then(Vec::pop);
                assert_eq!(top.as_deref(), Some(name.as_str()), "unbalanced span on {key:?}");
            }
            "i" | "C" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    for (key, stack) in &open {
        assert!(stack.is_empty(), "spans left open on {key:?}: {stack:?}");
    }

    // Timestamps are microseconds and non-decreasing.
    let ts: Vec<f64> = events.iter().map(|e| e.get("ts").and_then(Json::as_f64).unwrap()).collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn env_spec_exports_both_formats() {
    let _serial = TEST_LOCK.lock();
    let records = run_multithreaded_session();
    let dir = std::env::temp_dir().join("cannikin-telemetry-int-test");
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("session.jsonl");
    let chrome = dir.join("session.trace.json");
    let spec = format!("jsonl:{},chrome:{}", jsonl.display(), chrome.display());
    let written = telemetry::export_to(&spec, &records).expect("export succeeds");
    assert_eq!(written.len(), 2);
    let back = telemetry::export::parse_jsonl(&std::fs::read_to_string(&jsonl).unwrap()).unwrap();
    assert_eq!(back.len(), records.len());
    assert!(Json::parse(&std::fs::read_to_string(&chrome).unwrap()).is_ok());
    std::fs::remove_file(jsonl).ok();
    std::fs::remove_file(chrome).ok();
}
