//! # Cannikin — optimal adaptive distributed DNN training over heterogeneous clusters
//!
//! This meta-crate re-exports every crate of the Cannikin reproduction
//! workspace so that examples and downstream users can depend on a single
//! package:
//!
//! - [`core`] (`cannikin-core`) — the paper's contribution: performance
//!   models, the *OptPerf* solver (Algorithm 1), the heterogeneity-correct
//!   gradient-noise-scale estimators (Theorem 4.1), the goodput engine and
//!   the [`core::engine::CannikinTrainer`] orchestration loop.
//! - [`dnn`] (`minidnn`) — a from-scratch CPU tensor/autograd library with
//!   layers, losses, optimizers and learning-rate scalers.
//! - [`collectives`] (`cannikin-collectives`) — in-process bucketed ring
//!   all-reduce and the batch-ratio-weighted gradient aggregation of Eq. (9).
//! - [`sim`] (`hetsim`) — a discrete-event heterogeneous GPU cluster
//!   simulator with bucket-level compute/communication overlap.
//! - [`baselines`] (`cannikin-baselines`) — PyTorch-DDP-, AdaptDL-, LB-BSP-
//!   and HetPipe-style comparison systems.
//! - [`workloads`] (`cannikin-workloads`) — the paper's five evaluation
//!   workload profiles and the clusters A/B/C used in the evaluation.
//! - [`telemetry`] (`cannikin-telemetry`) — the workspace-wide observability
//!   layer: a low-overhead structured-event recorder, histograms, and
//!   JSONL / Chrome-trace exporters (enable file export with
//!   `CANNIKIN_TELEMETRY=jsonl:/path[,chrome:/path]`).
//! - [`insight`] (`cannikin-insight`) — online diagnostics over the
//!   telemetry stream (straggler/calibration/GNS-drift/bucket-imbalance
//!   detectors behind [`insight::Monitor`]) plus the `cannikin-insight`
//!   trace-replay CLI that reruns the same detectors offline.
//! - [`fleet`] (`cannikin-fleet`) — the multi-tenant cluster control
//!   plane (§6 direction): an admission queue with priority classes, a
//!   fleet allocator that generalizes OptPerf from "a batch over n GPUs"
//!   to "a node pool over m jobs", and epoch-boundary preemption through
//!   the trainers' elastic-membership path.
//!
//! ## Quickstart
//!
//! Everyday types live in the [`prelude`]; trainers are constructed with
//! fluent builders:
//!
//! ```
//! use cannikin::prelude::*;
//! use cannikin::workloads::{clusters, profiles};
//!
//! // Train the paper's 16-GPU cluster B on ResNet-18/CIFAR-10 for two
//! // epochs under the full Cannikin pipeline.
//! let profile = profiles::cifar10_resnet18();
//! let mut trainer = CannikinTrainer::builder()
//!     .simulator(Simulator::new(clusters::cluster_b(), profile.job, 7))
//!     .noise(profile.noise)
//!     .dataset_size(profile.dataset_size)
//!     .batch_range(profile.base_batch, profile.max_batch)
//!     .transport(TransportKind::InProcess) // or TransportKind::tcp()
//!     .build()
//!     .expect("valid configuration");
//! let records = trainer.run_epochs(2).expect("training runs");
//! assert_eq!(records.len(), 2);
//! ```
//!
//! The lower layers remain directly accessible, e.g. one OptPerf solve:
//!
//! ```
//! use cannikin::prelude::*;
//! use cannikin::workloads::{clusters, profiles};
//!
//! let cluster = clusters::cluster_b();
//! let profile = profiles::cifar10_resnet18();
//! let input = SolverInput::from_ground_truth(&cluster, &profile.job);
//! let plan = OptPerfSolver::new(input).solve(512).expect("feasible batch size");
//! assert_eq!(plan.local_batches.iter().sum::<u64>(), 512);
//! ```

pub use cannikin_baselines as baselines;
pub use cannikin_collectives as collectives;
pub use cannikin_core as core;
pub use cannikin_fleet as fleet;
pub use cannikin_insight as insight;
pub use cannikin_telemetry as telemetry;
pub use cannikin_workloads as workloads;
pub use hetsim as sim;
pub use minidnn as dnn;

/// The everyday API in one import: `use cannikin::prelude::*;`.
///
/// Re-exports the two trainers and their builders, their config/report
/// types, the error type, the runtime-options struct, the OptPerf solver,
/// the ask/tell adaptation policies (the [`Policy`](prelude::Policy)
/// trait, [`PolicyKind`](prelude::PolicyKind), and the four shipped
/// implementations), the simulator and cluster-description types, the
/// collective layer (including the pluggable
/// [`TransportKind`](prelude::TransportKind)), and the health monitor. Specialized types stay at their crate paths
/// (`cannikin::core::gns`, `cannikin::telemetry`, …).
pub mod prelude {
    pub use cannikin_collectives::{
        CommError, CommFaultPlan, CommGroup, Communicator, RetryPolicy, Transport, TransportKind,
    };
    pub use cannikin_core::engine::{
        CannikinTrainer, CannikinTrainerBuilder, EpochRecord, LinearNoiseGrowth, NoiseModel, ParallelConfig,
        ParallelEpochReport, ParallelTrainer, ParallelTrainerBuilder, TrainerConfig, TrainingSubject,
    };
    pub use cannikin_core::optperf::{OptPerfSolver, SolverInput};
    pub use cannikin_core::policy::{
        EpochObservation, EpochPlan, EvenSplit, LbBspIterative, OptPerfGoodput, Policy, PolicyContext,
        PolicyKind, RlBatchPolicy,
    };
    pub use cannikin_core::{CannikinError, RuntimeOptions};
    pub use cannikin_fleet::{AllocPolicy, FleetController, FleetJobSpec, FleetReport, Priority};
    pub use cannikin_insight::Monitor;
    pub use cannikin_telemetry::Session;
    pub use hetsim::catalog::Gpu;
    pub use hetsim::cluster::{ClusterSpec, NodeSpec};
    pub use hetsim::job::JobSpec;
    pub use hetsim::{FaultPlan, Simulator};
    pub use minidnn::lr::LrScaler;
}
