//! Loss functions.
//!
//! Each loss returns `(mean loss, gradient w.r.t. the input)` where the
//! gradient is already divided by the batch size, matching the PyTorch
//! `reduction="mean"` convention that the paper's training loops use. This
//! matters for Cannikin: Eq. (1) of the paper defines the local gradient as
//! the *mean* over the local mini batch, and the weighted aggregation of
//! Eq. (9) relies on that normalization.

use crate::tensor::Tensor;

/// A differentiable loss over a batch.
pub trait Loss<Target: ?Sized> {
    /// Compute the mean loss and the gradient w.r.t. `input`.
    fn loss(&self, input: &Tensor, target: &Target) -> (f32, Tensor);
}

/// Softmax + cross-entropy over integer class labels.
///
/// # Examples
///
/// ```
/// use minidnn::loss::{Loss, SoftmaxCrossEntropy};
/// use minidnn::tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 0.0, 3.0, 0.0], &[2, 3]).unwrap();
/// let (loss, grad) = SoftmaxCrossEntropy::default().loss(&logits, &[0usize, 1]);
/// assert!(loss > 0.0);
/// assert_eq!(grad.shape(), &[2, 3]);
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct SoftmaxCrossEntropy;

impl Loss<[usize]> for SoftmaxCrossEntropy {
    /// # Panics
    ///
    /// Panics if `target.len() != input.rows()` or a label is out of range.
    fn loss(&self, input: &Tensor, target: &[usize]) -> (f32, Tensor) {
        let (rows, cols) = (input.rows(), input.cols());
        assert_eq!(target.len(), rows, "label count {} != batch {rows}", target.len());
        let mut grad = Tensor::zeros(&[rows, cols]);
        let mut total = 0.0f64;
        for i in 0..rows {
            let row = &input.data()[i * cols..(i + 1) * cols];
            let label = target[i];
            assert!(label < cols, "label {label} out of range {cols}");
            // Numerically stable log-softmax.
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let sum_exp: f32 = row.iter().map(|&v| (v - max).exp()).sum();
            let log_z = f64::from(max) + f64::from(sum_exp.ln());
            total += log_z - f64::from(row[label]);
            for j in 0..cols {
                let softmax = ((row[j] - max).exp()) / sum_exp;
                grad.data_mut()[i * cols + j] = (softmax - if j == label { 1.0 } else { 0.0 }) / rows as f32;
            }
        }
        ((total / rows as f64) as f32, grad)
    }
}

/// Mean squared error against a target tensor of identical shape.
#[derive(Debug, Default, Clone, Copy)]
pub struct Mse;

impl Loss<Tensor> for Mse {
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn loss(&self, input: &Tensor, target: &Tensor) -> (f32, Tensor) {
        assert_eq!(input.shape(), target.shape(), "mse shape mismatch");
        let n = input.len() as f32;
        let diff = input.sub(target);
        let loss = (diff.sq_l2() / f64::from(n)) as f32;
        let grad = diff.scale(2.0 / n);
        (loss, grad)
    }
}

/// Binary cross-entropy on logits (sigmoid folded in for stability),
/// targets in `{0, 1}` (or soft labels in `[0, 1]`).
#[derive(Debug, Default, Clone, Copy)]
pub struct BceWithLogits;

impl Loss<Tensor> for BceWithLogits {
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn loss(&self, input: &Tensor, target: &Tensor) -> (f32, Tensor) {
        assert_eq!(input.shape(), target.shape(), "bce shape mismatch");
        let n = input.len() as f32;
        let mut total = 0.0f64;
        let mut grad = Tensor::zeros(input.shape());
        for (idx, (&x, &t)) in input.data().iter().zip(target.data()).enumerate() {
            // log(1 + e^{-|x|}) + max(x, 0) - x·t  is the stable form.
            let loss = (1.0 + (-x.abs()).exp()).ln() + x.max(0.0) - x * t;
            total += f64::from(loss);
            let sigmoid = 1.0 / (1.0 + (-x).exp());
            grad.data_mut()[idx] = (sigmoid - t) / n;
        }
        ((total / f64::from(n)) as f32, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        // Uniform logits over k classes give loss = ln(k).
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, grad) = SoftmaxCrossEntropy.loss(&logits, &[0, 1, 2, 3]);
        assert!((loss - 10f32.ln()).abs() < 1e-5);
        // Gradient sums to zero per row (softmax sums to 1, one-hot sums to 1).
        for i in 0..4 {
            let row_sum: f32 = grad.data()[i * 10..(i + 1) * 10].iter().sum();
            assert!(row_sum.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.data_mut()[0] = 20.0;
        let (loss, _) = SoftmaxCrossEntropy.loss(&logits, &[0]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let logits = Tensor::randn(&[3, 4], 51);
        let labels = [1usize, 3, 0];
        let (_, grad) = SoftmaxCrossEntropy.loss(&logits, &labels);
        let eps = 1e-2f32;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let numeric = (SoftmaxCrossEntropy.loss(&lp, &labels).0 - SoftmaxCrossEntropy.loss(&lm, &labels).0) / (2.0 * eps);
            assert!((numeric - grad.data()[idx]).abs() < 1e-3, "idx {idx}");
        }
    }

    #[test]
    fn mse_known_value_and_gradcheck() {
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let (loss, grad) = Mse.loss(&x, &t);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn bce_stability_at_extreme_logits() {
        let x = Tensor::from_slice(&[100.0, -100.0]);
        let t = Tensor::from_slice(&[1.0, 0.0]);
        let (loss, grad) = BceWithLogits.loss(&x, &t);
        assert!(loss.is_finite() && loss < 1e-6);
        assert!(grad.data().iter().all(|g| g.is_finite()));
        // Wrong confident predictions produce large loss but stay finite.
        let (loss, _) = BceWithLogits.loss(&x, &Tensor::from_slice(&[0.0, 1.0]));
        assert!(loss.is_finite() && loss > 50.0);
    }

    #[test]
    fn bce_gradcheck() {
        let x = Tensor::randn(&[6], 52);
        let t = Tensor::from_slice(&[1.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
        let (_, grad) = BceWithLogits.loss(&x, &t);
        let eps = 1e-2f32;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let numeric = (BceWithLogits.loss(&xp, &t).0 - BceWithLogits.loss(&xm, &t).0) / (2.0 * eps);
            assert!((numeric - grad.data()[idx]).abs() < 1e-3);
        }
    }
}
