//! Softmax as a standalone layer.

use super::{Layer, Param};
use crate::tensor::Tensor;

/// Row-wise softmax layer (for pipelines that need explicit probabilities
/// rather than the fused [`crate::loss::SoftmaxCrossEntropy`]).
///
/// The backward pass applies the softmax Jacobian per row:
/// `dx = y ∘ (dy − ⟨dy, y⟩)`.
#[derive(Debug, Default)]
pub struct Softmax {
    output: Option<Tensor>,
}

impl Softmax {
    /// Create a softmax layer.
    pub fn new() -> Self {
        Softmax { output: None }
    }
}

impl Layer for Softmax {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let y = x.softmax_rows();
        self.output = Some(y.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.output.as_ref().expect("backward called before forward");
        assert_eq!(grad_out.shape(), y.shape(), "softmax backward shape mismatch");
        let (r, c) = (y.rows(), y.cols());
        let mut dx = Tensor::zeros(y.shape());
        for i in 0..r {
            let yr = &y.data()[i * c..(i + 1) * c];
            let gr = &grad_out.data()[i * c..(i + 1) * c];
            let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
            for j in 0..c {
                dx.data_mut()[i * c + j] = yr[j] * (gr[j] - dot);
            }
        }
        dx
    }

    fn parameters(&self) -> Vec<&Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_produces_distributions() {
        let mut sm = Softmax::new();
        let y = sm.forward(&Tensor::randn(&[3, 5], 61), true);
        for i in 0..3 {
            let sum: f32 = y.data()[i * 5..(i + 1) * 5].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_check() {
        let mut sm = Softmax::new();
        let x = Tensor::randn(&[2, 4], 62);
        // Loss = Σ w∘y with fixed weights to get a non-trivial gradient.
        let w = Tensor::randn(&[2, 4], 63);
        let y = sm.forward(&x, true);
        let _ = y;
        let gx = sm.backward(&w);
        let eps = 1e-3f32;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = sm.forward(&xp, true).mul(&w).sum();
            let lm = sm.forward(&xm, true).mul(&w).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gx.data()[idx]).abs() < 1e-3, "x[{idx}]: {numeric} vs {}", gx.data()[idx]);
        }
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        // The softmax Jacobian annihilates constants: rows of dx sum to 0.
        let mut sm = Softmax::new();
        let _ = sm.forward(&Tensor::randn(&[4, 6], 64), true);
        let dx = sm.backward(&Tensor::randn(&[4, 6], 65));
        for i in 0..4 {
            let s: f32 = dx.data()[i * 6..(i + 1) * 6].iter().sum();
            assert!(s.abs() < 1e-5, "row {i} sums to {s}");
        }
    }
}
