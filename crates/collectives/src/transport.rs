//! The point-to-point substrate under the ring collectives.
//!
//! Every collective in this crate is written once against [`Transport`]:
//! a rank's identity (`rank`/`world_size`), a unidirectional byte-frame
//! channel to the *next* rank in the ring, a matching receive side fed by
//! the *previous* rank, a group barrier, and wire-byte accounting. Two
//! backends ship in-tree:
//!
//! - [`InProcessTransport`] — crossbeam channels between OS threads of one
//!   process (the original backend, still the default);
//! - [`crate::tcp::TcpTransport`] — real localhost TCP sockets with
//!   length-prefixed frames and per-receive deadlines, built via a
//!   rendezvous listener (see [`crate::tcp`]).
//!
//! Frames are opaque byte strings at this layer; the typed layer above
//! ([`crate::Communicator`]) encodes gradients as little-endian `f32`s and
//! metric gathers as little-endian `f64`s, so a value crosses either
//! backend bit-for-bit — the property the transport-equivalence tests pin
//! down.

use crate::resilience::CommError;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::cell::Cell;
use std::fmt;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Point-to-point ring transport: send to the next rank, receive from the
/// previous one.
///
/// Implementations are owned by exactly one rank thread (`Send`, not
/// necessarily `Sync`); interior mutability covers the byte counters and
/// any socket state.
pub trait Transport: Send + fmt::Debug {
    /// This rank's id, `0..world_size`.
    fn rank(&self) -> usize;

    /// Number of ranks in the group.
    fn world_size(&self) -> usize;

    /// Send one byte frame to the next rank in the ring.
    ///
    /// # Errors
    ///
    /// [`CommError::Dropped`] (or [`CommError::Io`]) when the peer is gone.
    fn send(&self, frame: &[u8]) -> Result<(), CommError>;

    /// Block until a frame arrives from the previous rank.
    ///
    /// # Errors
    ///
    /// [`CommError::Dropped`] / [`CommError::Io`] when the peer is gone.
    fn recv(&self) -> Result<Vec<u8>, CommError>;

    /// Receive with a deadline.
    ///
    /// # Errors
    ///
    /// [`CommError::Timeout`] when no frame arrives within `timeout`;
    /// otherwise as [`Transport::recv`].
    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, CommError>;

    /// Block until every rank of the group reaches the barrier.
    ///
    /// # Errors
    ///
    /// Backend-specific: socket transports surface peer loss, the
    /// in-process backend cannot fail.
    fn barrier(&self) -> Result<(), CommError>;

    /// Cumulative bytes this rank has put on the wire (frame payloads plus
    /// any backend framing overhead, e.g. TCP length prefixes).
    fn bytes_sent(&self) -> u64;

    /// Cumulative bytes received from the wire.
    fn bytes_received(&self) -> u64;
}

/// Which transport backs a [`crate::CommGroup`].
///
/// Parsed from the `CANNIKIN_TRANSPORT` environment variable by the
/// engines' runtime options (`inprocess`, `tcp`, or `tcp:HOST:PORT`);
/// builder settings take precedence over the environment, which takes
/// precedence over the [`TransportKind::InProcess`] default.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Crossbeam channels between threads of this process.
    #[default]
    InProcess,
    /// Localhost TCP sockets, coordinated through a rendezvous listener.
    Tcp {
        /// Address the rendezvous listener binds (`127.0.0.1:0` picks an
        /// ephemeral port).
        rendezvous: String,
    },
}

impl TransportKind {
    /// TCP over an ephemeral localhost rendezvous port.
    pub fn tcp() -> Self {
        TransportKind::Tcp { rendezvous: "127.0.0.1:0".to_string() }
    }

    /// A short stable label (`inprocess` / `tcp`), e.g. for telemetry tags
    /// and experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            TransportKind::InProcess => "inprocess",
            TransportKind::Tcp { .. } => "tcp",
        }
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    /// Parse `inprocess` / `in-process` / `local`, `tcp`, or `tcp:ADDR`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        match s.to_ascii_lowercase().as_str() {
            "inprocess" | "in-process" | "local" | "channel" => Ok(TransportKind::InProcess),
            "tcp" => Ok(TransportKind::tcp()),
            _ => match s.split_once(':') {
                Some(("tcp", addr)) if !addr.is_empty() => {
                    Ok(TransportKind::Tcp { rendezvous: addr.to_string() })
                }
                _ => Err(format!("unknown transport `{s}` (expected `inprocess`, `tcp` or `tcp:HOST:PORT`)")),
            },
        }
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportKind::InProcess => write!(f, "inprocess"),
            TransportKind::Tcp { rendezvous } => write!(f, "tcp:{rendezvous}"),
        }
    }
}

/// The original backend: unbounded crossbeam channels between the threads
/// of one process, plus a shared [`Barrier`].
pub struct InProcessTransport {
    rank: usize,
    world: usize,
    send_next: Sender<Vec<u8>>,
    recv_prev: Receiver<Vec<u8>>,
    barrier: Arc<Barrier>,
    sent: Cell<u64>,
    received: Cell<u64>,
}

impl InProcessTransport {
    /// Build `n` ring-connected endpoints (index == rank).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn ring(n: usize) -> Vec<InProcessTransport> {
        assert!(n > 0, "transport ring must have at least one rank");
        let barrier = Arc::new(Barrier::new(n));
        // Channel i carries frames from rank i to rank (i+1) % n.
        let mut senders: Vec<Option<Sender<Vec<u8>>>> = Vec::with_capacity(n);
        let mut receivers: Vec<Option<Receiver<Vec<u8>>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(Some(tx));
            receivers.push(Some(rx));
        }
        (0..n)
            .map(|rank| InProcessTransport {
                rank,
                world: n,
                send_next: senders[rank].take().expect("sender taken once"),
                recv_prev: receivers[(rank + n - 1) % n].take().expect("receiver taken once"),
                barrier: Arc::clone(&barrier),
                sent: Cell::new(0),
                received: Cell::new(0),
            })
            .collect()
    }
}

impl fmt::Debug for InProcessTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InProcessTransport(rank {}/{})", self.rank, self.world)
    }
}

impl Transport for InProcessTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn send(&self, frame: &[u8]) -> Result<(), CommError> {
        self.sent.set(self.sent.get() + frame.len() as u64);
        self.send_next
            .send(frame.to_vec())
            .map_err(|_| CommError::Dropped { rank: self.rank })
    }

    fn recv(&self) -> Result<Vec<u8>, CommError> {
        let frame = self.recv_prev.recv().map_err(|_| CommError::Dropped { rank: self.rank })?;
        self.received.set(self.received.get() + frame.len() as u64);
        Ok(frame)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, CommError> {
        let frame = self.recv_prev.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => CommError::Timeout {
                rank: self.rank,
                waited_ms: timeout.as_millis() as u64,
            },
            RecvTimeoutError::Disconnected => CommError::Dropped { rank: self.rank },
        })?;
        self.received.set(self.received.get() + frame.len() as u64);
        Ok(frame)
    }

    fn barrier(&self) -> Result<(), CommError> {
        self.barrier.wait();
        Ok(())
    }

    fn bytes_sent(&self) -> u64 {
        self.sent.get()
    }

    fn bytes_received(&self) -> u64 {
        self.received.get()
    }
}

/// Encode values as little-endian `f32` bytes (the gradient wire format).
pub(crate) fn encode_f32(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a little-endian `f32` frame.
pub(crate) fn decode_f32(frame: &[u8]) -> Result<Vec<f32>, String> {
    if !frame.len().is_multiple_of(4) {
        return Err(format!("frame of {} bytes is not a whole number of f32s", frame.len()));
    }
    Ok(frame
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Encode values as little-endian `f64` bytes (the metric-gather format).
pub(crate) fn encode_f64(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a little-endian `f64` frame.
pub(crate) fn decode_f64(frame: &[u8]) -> Result<Vec<f64>, String> {
    if !frame.len().is_multiple_of(8) {
        return Err(format!("frame of {} bytes is not a whole number of f64s", frame.len()));
    }
    Ok(frame
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_codec_round_trips_bitwise() {
        let values = vec![0.0f32, -1.5, f32::MIN_POSITIVE, 3.25e30, f32::NEG_INFINITY];
        let decoded = decode_f32(&encode_f32(&values)).unwrap();
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f64_codec_round_trips_bitwise() {
        let values = vec![0.0f64, -2.75, 1e-300, 7.0];
        let decoded = decode_f64(&encode_f64(&values)).unwrap();
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn misaligned_frames_are_rejected() {
        assert!(decode_f32(&[0u8; 5]).is_err());
        assert!(decode_f64(&[0u8; 12]).is_err());
    }

    #[test]
    fn transport_kind_parses_and_displays() {
        use std::str::FromStr;
        assert_eq!(TransportKind::from_str("inprocess").unwrap(), TransportKind::InProcess);
        assert_eq!(TransportKind::from_str("In-Process").unwrap(), TransportKind::InProcess);
        assert_eq!(TransportKind::from_str("tcp").unwrap(), TransportKind::tcp());
        assert_eq!(
            TransportKind::from_str("tcp:127.0.0.1:4040").unwrap(),
            TransportKind::Tcp { rendezvous: "127.0.0.1:4040".to_string() }
        );
        assert!(TransportKind::from_str("carrier-pigeon").is_err());
        assert_eq!(TransportKind::tcp().to_string(), "tcp:127.0.0.1:0");
        assert_eq!(TransportKind::InProcess.label(), "inprocess");
    }

    #[test]
    fn transport_parse_error_names_the_value_and_lists_alternatives() {
        use std::str::FromStr;
        // The message is user-facing (it surfaces verbatim through
        // CANNIKIN_TRANSPORT config errors), so it must echo the rejected
        // value and enumerate every accepted spelling.
        for bad in ["carrier-pigeon", "udp", "tcp:", ""] {
            let err = TransportKind::from_str(bad).unwrap_err();
            assert!(err.contains(&format!("`{}`", bad.trim())), "value missing from: {err}");
            for accepted in ["`inprocess`", "`tcp`", "`tcp:HOST:PORT`"] {
                assert!(err.contains(accepted), "{accepted} missing from: {err}");
            }
        }
    }

    #[test]
    fn in_process_ring_counts_bytes() {
        let mut ring = InProcessTransport::ring(2);
        let b = ring.pop().unwrap();
        let a = ring.pop().unwrap();
        a.send(&[1, 2, 3]).unwrap();
        b.send(&[9]).unwrap();
        assert_eq!(b.recv().unwrap(), vec![1, 2, 3]);
        assert_eq!(a.recv_timeout(Duration::from_millis(100)).unwrap(), vec![9]);
        assert_eq!(a.bytes_sent(), 3);
        assert_eq!(b.bytes_received(), 3);
        assert_eq!(b.bytes_sent(), 1);
        assert_eq!(a.bytes_received(), 1);
    }

    #[test]
    fn in_process_timeout_is_typed() {
        let mut ring = InProcessTransport::ring(2);
        let _b = ring.pop().unwrap();
        let a = ring.pop().unwrap();
        let err = a.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, CommError::Timeout { rank: 0, .. }));
    }
}
