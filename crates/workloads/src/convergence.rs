//! Metric-vs-progress curves.
//!
//! The simulator measures *time*; statistical progress is measured in
//! effective epochs (samples weighted by statistical efficiency). The
//! remaining link to the paper's figures is a map from progress to the
//! task metric. A single saturating-exponential family covers all five
//! workloads — rising metrics (accuracy, F1, hit rate) and falling ones
//! (word error rate) alike — and is calibrated per workload to the
//! published epochs-to-target.

use serde::{Deserialize, Serialize};

/// `value(t) = limit + (start − limit)·exp(−rate·t)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturatingCurve {
    /// Metric value at zero progress.
    pub start: f64,
    /// Asymptotic metric value.
    pub limit: f64,
    /// Exponential approach rate per effective epoch.
    pub rate: f64,
}

impl SaturatingCurve {
    /// Create a curve.
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0` or `start == limit`.
    pub fn new(start: f64, limit: f64, rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!(start != limit, "start and limit must differ");
        SaturatingCurve { start, limit, rate }
    }

    /// Metric value after `effective_epochs` of progress.
    pub fn value_at(&self, effective_epochs: f64) -> f64 {
        self.limit + (self.start - self.limit) * (-self.rate * effective_epochs.max(0.0)).exp()
    }

    /// Progress needed to reach `target`, or `None` if the target lies
    /// outside `(start, limit)` (unreachable or already surpassed).
    pub fn progress_to(&self, target: f64) -> Option<f64> {
        let num = self.start - self.limit;
        let den = target - self.limit;
        // target strictly between start and limit ⇔ den has the same sign
        // as num and |den| < |num|.
        if den == 0.0 || num.signum() != den.signum() || den.abs() >= num.abs() {
            return None;
        }
        Some((num / den).ln() / self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rising_curve_roundtrip() {
        let c = SaturatingCurve::new(0.3, 0.95, 0.05);
        assert!((c.value_at(0.0) - 0.3).abs() < 1e-12);
        assert!(c.value_at(1e9) > 0.9499);
        let t = c.progress_to(0.9).unwrap();
        assert!((c.value_at(t) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn falling_curve_roundtrip() {
        // WER-style: starts at 1.0, saturates at 0.25.
        let c = SaturatingCurve::new(1.0, 0.25, 0.06);
        let t = c.progress_to(0.40).unwrap();
        assert!((c.value_at(t) - 0.40).abs() < 1e-12);
        assert!(c.value_at(t + 1.0) < 0.40, "metric keeps falling");
    }

    #[test]
    fn unreachable_targets() {
        let c = SaturatingCurve::new(0.3, 0.95, 0.05);
        assert!(c.progress_to(0.96).is_none(), "beyond the limit");
        assert!(c.progress_to(0.2).is_none(), "behind the start");
        assert!(c.progress_to(0.95).is_none(), "exactly the limit");
    }

    #[test]
    fn monotone_in_progress() {
        let c = SaturatingCurve::new(0.1, 0.8, 0.1);
        let mut prev = c.value_at(0.0);
        for i in 1..50 {
            let v = c.value_at(i as f64);
            assert!(v > prev);
            prev = v;
        }
    }
}
