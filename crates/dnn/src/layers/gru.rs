//! Gated recurrent unit (the DeepSpeech2 building block).

use super::{Layer, Param};
use crate::tensor::{gemm_a_bt, gemm_at_b, matmul, matmul_a_bt, Tensor};

/// A single-direction GRU over `[batch, time, features]` inputs, returning
/// the full hidden sequence `[batch, time, hidden]`.
///
/// Per timestep (PyTorch gate convention):
///
/// ```text
/// r_t = σ(x_t W_xr + h_{t−1} W_hr + b_r)
/// z_t = σ(x_t W_xz + h_{t−1} W_hz + b_z)
/// n_t = tanh(x_t W_xn + r_t ∘ (h_{t−1} W_hn) + b_n)
/// h_t = (1 − z_t) ∘ n_t + z_t ∘ h_{t−1}
/// ```
///
/// The backward pass is full backpropagation-through-time with explicit
/// gate Jacobians — the most stateful hand-differentiated layer in
/// `minidnn`.
#[derive(Debug)]
pub struct Gru {
    wx: [Param; 3], // r, z, n : [in, hidden]
    wh: [Param; 3], // r, z, n : [hidden, hidden]
    b: [Param; 3],  // r, z, n : [hidden]
    input_dim: usize,
    hidden: usize,
    cache: Option<GruCache>,
}

#[derive(Debug)]
struct GruCache {
    x: Vec<Tensor>,       // per t: [batch, in]
    h_prev: Vec<Tensor>,  // per t: [batch, hidden] (h_{t−1})
    r: Vec<Tensor>,
    z: Vec<Tensor>,
    n: Vec<Tensor>,
    hn_prev: Vec<Tensor>, // per t: h_{t−1} W_hn (pre-gate)
    batch: usize,
    time: usize,
}

impl Gru {
    /// Create a GRU mapping `input_dim` features to `hidden` units.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(input_dim: usize, hidden: usize, seed: u64) -> Self {
        assert!(input_dim > 0 && hidden > 0, "GRU dimensions must be positive");
        let wx = |i: u64| Param::new(Tensor::xavier(&[input_dim, hidden], input_dim, hidden, seed.wrapping_add(i)), "gru.wx");
        let wh = |i: u64| Param::new(Tensor::xavier(&[hidden, hidden], hidden, hidden, seed.wrapping_add(10 + i)), "gru.wh");
        Gru {
            wx: [wx(0), wx(1), wx(2)],
            wh: [wh(0), wh(1), wh(2)],
            b: [
                Param::new(Tensor::zeros(&[hidden]), "gru.br"),
                Param::new(Tensor::zeros(&[hidden]), "gru.bz"),
                Param::new(Tensor::zeros(&[hidden]), "gru.bn"),
            ],
            input_dim,
            hidden,
            cache: None,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

fn sigmoid(t: &Tensor) -> Tensor {
    t.map(|x| 1.0 / (1.0 + (-x).exp()))
}

impl Layer for Gru {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "GRU input must be [batch, time, features]");
        assert_eq!(shape[2], self.input_dim, "GRU feature dim mismatch");
        let (batch, time) = (shape[0], shape[1]);
        let mut h = Tensor::zeros(&[batch, self.hidden]);
        let mut cache = GruCache {
            x: Vec::with_capacity(time),
            h_prev: Vec::with_capacity(time),
            r: Vec::with_capacity(time),
            z: Vec::with_capacity(time),
            n: Vec::with_capacity(time),
            hn_prev: Vec::with_capacity(time),
            batch,
            time,
        };
        let mut out = Vec::with_capacity(batch * time * self.hidden);
        // The input is [batch, time, features]; gather per-timestep slices
        // [batch, features].
        let xt_slice = |t: usize| -> Tensor {
            let mut data = Vec::with_capacity(batch * self.input_dim);
            for b in 0..batch {
                let base = (b * time + t) * self.input_dim;
                data.extend_from_slice(&x.data()[base..base + self.input_dim]);
            }
            Tensor::from_vec(data, &[batch, self.input_dim]).expect("timestep slice")
        };
        let mut per_t_h: Vec<Tensor> = Vec::with_capacity(time);
        for t in 0..time {
            let xt = xt_slice(t);
            let r = sigmoid(&matmul(&xt, &self.wx[0].value).add(&matmul(&h, &self.wh[0].value)).add_row_broadcast(&self.b[0].value));
            let z = sigmoid(&matmul(&xt, &self.wx[1].value).add(&matmul(&h, &self.wh[1].value)).add_row_broadcast(&self.b[1].value));
            let hn_prev = matmul(&h, &self.wh[2].value);
            let n = matmul(&xt, &self.wx[2].value).add(&r.mul(&hn_prev)).add_row_broadcast(&self.b[2].value).map(f32::tanh);
            let one_minus_z = z.map(|v| 1.0 - v);
            let h_next = one_minus_z.mul(&n).add(&z.mul(&h));
            cache.x.push(xt);
            cache.h_prev.push(h.clone());
            cache.r.push(r);
            cache.z.push(z);
            cache.n.push(n);
            cache.hn_prev.push(hn_prev);
            h = h_next;
            per_t_h.push(h.clone());
        }
        for b in 0..batch {
            for t in 0..time {
                out.extend_from_slice(&per_t_h[t].data()[b * self.hidden..(b + 1) * self.hidden]);
            }
        }
        self.cache = Some(cache);
        Tensor::from_vec(out, &[batch, time, self.hidden]).expect("gru output")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward called before forward");
        let (batch, time) = (cache.batch, cache.time);
        assert_eq!(grad_out.shape(), &[batch, time, self.hidden], "GRU backward shape mismatch");
        // Per-timestep upstream gradient slices [batch, hidden].
        let gt_slice = |t: usize| -> Tensor {
            let mut data = Vec::with_capacity(batch * self.hidden);
            for b in 0..batch {
                let base = (b * time + t) * self.hidden;
                data.extend_from_slice(&grad_out.data()[base..base + self.hidden]);
            }
            Tensor::from_vec(data, &[batch, self.hidden]).expect("grad slice")
        };

        let mut dx_all = Tensor::zeros(&[batch, time, self.input_dim]);
        let mut dh_next = Tensor::zeros(&[batch, self.hidden]);
        for t in (0..time).rev() {
            // Total gradient reaching h_t: from the output at t plus the
            // recurrent path from t+1.
            let dh = gt_slice(t).add(&dh_next);
            let (r, z, n, h_prev, hn_prev, xt) =
                (&cache.r[t], &cache.z[t], &cache.n[t], &cache.h_prev[t], &cache.hn_prev[t], &cache.x[t]);

            // h_t = (1−z)∘n + z∘h_{t−1}
            let dn = dh.mul(&z.map(|v| 1.0 - v));
            let dz = dh.mul(&h_prev.sub(n));
            let mut dh_prev = dh.mul(z);

            // n = tanh(pre_n); d pre_n = dn ∘ (1 − n²)
            let dpre_n = dn.mul(&n.map(|v| 1.0 - v * v));
            // pre_n = x W_xn + r ∘ (h_prev W_hn) + b_n. All parameter
            // gradients accumulate in place through the slice kernels — no
            // per-timestep temporaries.
            gemm_at_b(self.input_dim, self.hidden, batch, xt.data(), dpre_n.data(), self.wx[2].grad.data_mut(), true);
            self.b[2].grad.add_assign(&dpre_n.sum_rows());
            let dr = dpre_n.mul(hn_prev);
            let d_hn_prev = dpre_n.mul(r);
            gemm_at_b(self.hidden, self.hidden, batch, h_prev.data(), d_hn_prev.data(), self.wh[2].grad.data_mut(), true);
            gemm_a_bt(batch, self.hidden, self.hidden, d_hn_prev.data(), self.wh[2].value.data(), dh_prev.data_mut(), true);
            let mut dx = matmul_a_bt(&dpre_n, &self.wx[2].value);

            // Gate pre-activations: σ'(pre) = g(1−g).
            let dpre_r = dr.mul(&r.mul(&r.map(|v| 1.0 - v)));
            let dpre_z = dz.mul(&z.mul(&z.map(|v| 1.0 - v)));
            gemm_at_b(self.input_dim, self.hidden, batch, xt.data(), dpre_r.data(), self.wx[0].grad.data_mut(), true);
            gemm_at_b(self.input_dim, self.hidden, batch, xt.data(), dpre_z.data(), self.wx[1].grad.data_mut(), true);
            gemm_at_b(self.hidden, self.hidden, batch, h_prev.data(), dpre_r.data(), self.wh[0].grad.data_mut(), true);
            gemm_at_b(self.hidden, self.hidden, batch, h_prev.data(), dpre_z.data(), self.wh[1].grad.data_mut(), true);
            self.b[0].grad.add_assign(&dpre_r.sum_rows());
            self.b[1].grad.add_assign(&dpre_z.sum_rows());
            gemm_a_bt(batch, self.input_dim, self.hidden, dpre_r.data(), self.wx[0].value.data(), dx.data_mut(), true);
            gemm_a_bt(batch, self.input_dim, self.hidden, dpre_z.data(), self.wx[1].value.data(), dx.data_mut(), true);
            gemm_a_bt(batch, self.hidden, self.hidden, dpre_r.data(), self.wh[0].value.data(), dh_prev.data_mut(), true);
            gemm_a_bt(batch, self.hidden, self.hidden, dpre_z.data(), self.wh[1].value.data(), dh_prev.data_mut(), true);

            // Scatter dx into [batch, time, features].
            for b in 0..batch {
                let base = (b * time + t) * self.input_dim;
                for c in 0..self.input_dim {
                    dx_all.data_mut()[base + c] = dx.data()[b * self.input_dim + c];
                }
            }
            dh_next = dh_prev;
        }
        dx_all
    }

    fn parameters(&self) -> Vec<&Param> {
        let mut out: Vec<&Param> = self.wx.iter().collect();
        out.extend(self.wh.iter());
        out.extend(self.b.iter());
        out
    }

    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        let mut out: Vec<&mut Param> = self.wx.iter_mut().collect();
        out.extend(self.wh.iter_mut());
        out.extend(self.b.iter_mut());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_and_state_flow() {
        let mut gru = Gru::new(5, 7, 91);
        let x = Tensor::randn(&[3, 4, 5], 92);
        let y = gru.forward(&x, true);
        assert_eq!(y.shape(), &[3, 4, 7]);
        let gx = gru.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn gradient_check_through_time() {
        let mut gru = Gru::new(3, 4, 93);
        let x = Tensor::randn(&[2, 3, 3], 94);
        let y = gru.forward(&x, true);
        let gy = y.scale(2.0); // loss = Σ y²
        let gx = gru.backward(&gy);
        let eps = 1e-2f32;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = gru.forward(&xp, true).map(|v| v * v).sum();
            let lm = gru.forward(&xm, true).map(|v| v * v).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gx.data()[idx]).abs() < 0.05,
                "x[{idx}]: numeric {numeric} vs analytic {}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn gradient_check_recurrent_weights() {
        let mut gru = Gru::new(2, 3, 95);
        let x = Tensor::randn(&[1, 4, 2], 96);
        let y = gru.forward(&x, true);
        gru.backward(&y.scale(2.0));
        let eps = 1e-2f32;
        for (widx, pick) in [(0usize, 1usize), (1, 4), (2, 7)] {
            let analytic = gru.wh[widx].grad.data()[pick];
            let orig = gru.wh[widx].value.data()[pick];
            gru.wh[widx].value.data_mut()[pick] = orig + eps;
            let lp = gru.forward(&x, true).map(|v| v * v).sum();
            gru.wh[widx].value.data_mut()[pick] = orig - eps;
            let lm = gru.forward(&x, true).map(|v| v * v).sum();
            gru.wh[widx].value.data_mut()[pick] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 0.05,
                "wh[{widx}][{pick}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn zero_input_keeps_state_near_zero() {
        // With zero input and zero initial state, gates see only biases
        // (zero) → n = 0 → h stays exactly 0.
        let mut gru = Gru::new(2, 3, 97);
        let y = gru.forward(&Tensor::zeros(&[1, 5, 2]), true);
        assert!(y.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn memory_across_timesteps() {
        // A strong input at t=0 must influence the output at the last
        // timestep (state is carried).
        let mut gru = Gru::new(1, 4, 98);
        let mut x = Tensor::zeros(&[1, 6, 1]);
        x.data_mut()[0] = 3.0;
        let y = gru.forward(&x, true);
        let last = &y.data()[5 * 4..6 * 4];
        let baseline = gru.forward(&Tensor::zeros(&[1, 6, 1]), true);
        let last_baseline = &baseline.data()[5 * 4..6 * 4];
        let diff: f32 = last.iter().zip(last_baseline).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "t=0 impulse should persist to t=5 (diff {diff})");
    }
}
