//! Criterion bench: end-to-end epoch machinery.
//!
//! One Cannikin control-loop epoch on the 16-GPU cluster B (simulated
//! batches + analyzer + solver + goodput selection) and one epoch of the
//! *functional* thread-parallel trainer with real gradients.

use cannikin_core::engine::parallel::{ParallelConfig, ParallelTrainer};
use cannikin_core::engine::{CannikinTrainer, TrainerConfig};
use cannikin_workloads::{clusters, profiles};
use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::Simulator;
use minidnn::data::gaussian_blobs;
use minidnn::lr::LrScaler;
use minidnn::models::mlp_classifier;
use std::hint::black_box;

fn bench_simulated_epoch(c: &mut Criterion) {
    c.bench_function("cannikin_epoch_cluster_b_cifar", |b| {
        b.iter_with_setup(
            || {
                let profile = profiles::cifar10_resnet18();
                let cluster = clusters::cluster_b();
                let sim = Simulator::new(cluster, profile.job.clone(), 3);
                let config = TrainerConfig::new(10_000, 64, 2048);
                CannikinTrainer::builder()
                    .simulator(sim)
                    .noise(profile.noise)
                    .config(config)
                    .build()
                    .expect("valid config")
            },
            |mut trainer| {
                for _ in 0..4 {
                    black_box(trainer.run_epoch().expect("epoch"));
                }
            },
        );
    });
}

fn bench_parallel_epoch(c: &mut Criterion) {
    c.bench_function("parallel_trainer_epoch_2ranks", |b| {
        b.iter_with_setup(
            || {
                let ds = gaussian_blobs(256, 4, 10, 3);
                let config = ParallelConfig {
                    slowdowns: vec![1.0, 1.0],
                    base_batch: 32,
                    max_batch: 64,
                    adaptive: false,
                    base_lr: 0.05,
                    lr_scaler: LrScaler::AdaScale,
                    seed: 5,
                    comm_faults: None,
                    retry: Default::default(),
                    transport: Default::default(),
                    codec: Default::default(),
                    overlap: false,
                };
                ParallelTrainer::builder()
                    .dataset(ds)
                    .model(|seed| mlp_classifier(10, 16, 4, seed))
                    .config(config)
                    .build()
                    .expect("valid config")
            },
            |mut trainer| {
                black_box(trainer.run_epoch().expect("epoch"));
            },
        );
    });
}

criterion_group!(benches, bench_simulated_epoch, bench_parallel_epoch);
criterion_main!(benches);
