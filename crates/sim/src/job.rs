//! Deep-learning job characteristics.
//!
//! A [`JobSpec`] carries the *compute* shape of each Table 5 workload:
//! parameter count (which fixes the gradient payload of every all-reduce),
//! forward FLOPs per sample (which fixes the slope of the linear
//! compute-time model on each GPU), the DDP bucket count and the overlap
//! ratio γ. The convergence-side metadata (batch ranges, gradient noise
//! trajectories, target metrics) lives in `cannikin-workloads`.

use serde::{Deserialize, Serialize};

/// Compute characteristics of one training job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job name ("ResNet-50/ImageNet", …).
    pub name: String,
    /// Trainable parameter count (Table 5 "Size" column).
    pub params: u64,
    /// Forward-pass FLOPs per training sample.
    pub fwd_flops_per_sample: f64,
    /// Backward-pass FLOPs as a multiple of forward (≈2 for dense nets).
    pub bwd_to_fwd_ratio: f64,
    /// Fraction of peak FP16 throughput the job actually achieves.
    pub utilization: f64,
    /// Number of DDP gradient buckets.
    pub num_buckets: usize,
    /// Overlap ratio γ: fraction of backpropagation that must complete
    /// before the first gradient bucket is ready (§3.2.3).
    pub gamma: f64,
    /// Bytes of activation memory per sample (drives the per-GPU memory
    /// cap on the local batch size).
    pub activation_bytes_per_sample: f64,
    /// Fixed per-batch host-side overhead in seconds (data-loader wakeup,
    /// kernel launches) — part of `s_i`, scaled by the node's CPU speed.
    pub host_overhead: f64,
    /// CPU-side data-loading time per sample at the reference CPU speed, s
    /// — part of `q_i`, scaled by the node's CPU speed.
    pub load_seconds_per_sample: f64,
    /// Bytes per parameter moved by gradient synchronization (4 for fp32
    /// all-reduce; 2 when the canonical recipe uses mixed-precision
    /// gradient communication, as BERT fine-tuning does).
    pub grad_bytes_per_param: f64,
    /// Activation bytes per sample crossing a model-parallel stage
    /// boundary (used by the HetPipe baseline).
    pub boundary_bytes_per_sample: f64,
}

impl JobSpec {
    /// Gradient payload of one all-reduce, in bytes.
    pub fn gradient_bytes(&self) -> f64 {
        self.params as f64 * self.grad_bytes_per_param
    }

    /// Approximate resident model footprint in bytes: weights + gradients
    /// + optimizer state (≈4 copies at fp32).
    pub fn model_memory_bytes(&self) -> f64 {
        self.params as f64 * 16.0
    }

    /// Largest local batch that fits on a node with the given usable
    /// memory (bytes). At least 1 — a node that cannot fit a single sample
    /// would be excluded by the scheduler before training starts.
    pub fn max_local_batch(&self, usable_memory_bytes: f64) -> u64 {
        let left = (usable_memory_bytes - self.model_memory_bytes()).max(0.0);
        ((left / self.activation_bytes_per_sample).floor() as u64).max(1)
    }

    /// ResNet-50 on ImageNet (25.6M params, ~4.1 GFLOPs/sample forward).
    pub fn resnet50_imagenet() -> Self {
        JobSpec {
            name: "ResNet-50/ImageNet".into(),
            params: 25_600_000,
            fwd_flops_per_sample: 4.1e9,
            bwd_to_fwd_ratio: 2.0,
            utilization: 0.15,
            num_buckets: 10,
            gamma: 0.12,
            activation_bytes_per_sample: 60e6,
            host_overhead: 4e-3,
            load_seconds_per_sample: 0.30e-3,
            grad_bytes_per_param: 4.0,
            boundary_bytes_per_sample: 0.6e6,
        }
    }

    /// ResNet-18 on CIFAR-10 (11M params, small 32×32 inputs).
    pub fn resnet18_cifar10() -> Self {
        JobSpec {
            name: "ResNet-18/CIFAR-10".into(),
            params: 11_000_000,
            fwd_flops_per_sample: 0.25e9,
            bwd_to_fwd_ratio: 2.0,
            utilization: 0.035,
            num_buckets: 6,
            gamma: 0.15,
            activation_bytes_per_sample: 9e6,
            host_overhead: 2e-3,
            load_seconds_per_sample: 0.03e-3,
            grad_bytes_per_param: 4.0,
            boundary_bytes_per_sample: 0.02e6,
        }
    }

    /// DeepSpeech2 on LibriSpeech (52M params, long spectrogram inputs).
    pub fn deepspeech2_librispeech() -> Self {
        JobSpec {
            name: "DeepSpeech2/LibriSpeech".into(),
            params: 52_000_000,
            fwd_flops_per_sample: 25e9,
            bwd_to_fwd_ratio: 2.0,
            utilization: 0.10,
            num_buckets: 14,
            gamma: 0.10,
            activation_bytes_per_sample: 250e6,
            host_overhead: 6e-3,
            load_seconds_per_sample: 2.0e-3,
            grad_bytes_per_param: 4.0,
            boundary_bytes_per_sample: 0.3e6,
        }
    }

    /// BERT-base fine-tuning on SQuAD (110M params, 384-token sequences).
    pub fn bert_squad() -> Self {
        JobSpec {
            name: "BERT/SQuAD".into(),
            params: 110_000_000,
            fwd_flops_per_sample: 80e9,
            bwd_to_fwd_ratio: 2.0,
            utilization: 0.42,
            num_buckets: 24,
            gamma: 0.08,
            activation_bytes_per_sample: 800e6,
            host_overhead: 5e-3,
            load_seconds_per_sample: 0.10e-3,
            grad_bytes_per_param: 2.0,
            boundary_bytes_per_sample: 0.6e6,
        }
    }

    /// NeuMF on MovieLens (5.2M params, trivial per-sample compute).
    pub fn neumf_movielens() -> Self {
        JobSpec {
            name: "NeuMF/MovieLens".into(),
            params: 5_200_000,
            fwd_flops_per_sample: 0.011e9,
            bwd_to_fwd_ratio: 2.0,
            utilization: 0.10,
            num_buckets: 4,
            gamma: 0.20,
            activation_bytes_per_sample: 0.5e6,
            host_overhead: 1.5e-3,
            load_seconds_per_sample: 0.002e-3,
            grad_bytes_per_param: 4.0,
            boundary_bytes_per_sample: 0.001e6,
        }
    }

    /// All five Table 5 jobs, in table order.
    pub fn table5() -> Vec<JobSpec> {
        vec![
            Self::resnet50_imagenet(),
            Self::resnet18_cifar10(),
            Self::deepspeech2_librispeech(),
            Self::bert_squad(),
            Self::neumf_movielens(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_sizes_match_paper() {
        let jobs = JobSpec::table5();
        let sizes: Vec<u64> = jobs.iter().map(|j| j.params).collect();
        assert_eq!(sizes, vec![25_600_000, 11_000_000, 52_000_000, 110_000_000, 5_200_000]);
    }

    #[test]
    fn gradient_bytes_follow_precision() {
        // BERT's canonical recipe communicates fp16 gradients (2 B/param);
        // the fp32 jobs move 4 B/param.
        assert_eq!(JobSpec::bert_squad().gradient_bytes(), 220e6);
        assert_eq!(JobSpec::resnet50_imagenet().gradient_bytes(), 102.4e6);
    }

    #[test]
    fn memory_cap_monotone_in_memory() {
        let j = JobSpec::resnet50_imagenet();
        let small = j.max_local_batch(8.0 * 1024f64.powi(3));
        let large = j.max_local_batch(80.0 * 1024f64.powi(3));
        assert!(large > small);
        assert!(small >= 1);
    }

    #[test]
    fn memory_cap_floors_at_one() {
        let j = JobSpec::bert_squad();
        assert_eq!(j.max_local_batch(0.0), 1);
    }

    #[test]
    fn gamma_in_unit_interval() {
        for j in JobSpec::table5() {
            assert!(j.gamma > 0.0 && j.gamma < 1.0, "{}", j.name);
            assert!(j.num_buckets >= 2, "{}", j.name);
        }
    }
}
