//! Matrix multiplication kernels.
//!
//! Three variants are provided because the linear-layer backward pass needs
//! products against transposed operands; materializing the transpose first
//! would double the memory traffic of every backward step.

use super::Tensor;

/// `C = A × B` for 2-D tensors `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics if operands are not 2-D or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    // i-k-j loop order: the inner loop walks both B and C contiguously.
    for i in 0..m {
        for kk in 0..k {
            let aik = ad[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow) {
                *c += aik * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("matmul output shape")
}

/// `C = Aᵀ × B` for `A: [k, m]`, `B: [k, n]` — used for weight gradients.
///
/// # Panics
///
/// Panics if operands are not 2-D or the leading dimensions disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_at_b lhs");
    let (k2, n) = dims2(b, "matmul_at_b rhs");
    assert_eq!(k, k2, "matmul_at_b leading dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for kk in 0..k {
        let arow = &ad[kk * m..(kk + 1) * m];
        let brow = &bd[kk * n..(kk + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow) {
                *c += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("matmul_at_b output shape")
}

/// `C = A × Bᵀ` for `A: [m, k]`, `B: [n, k]` — used for input gradients.
///
/// # Panics
///
/// Panics if operands are not 2-D or the trailing dimensions disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_a_bt lhs");
    let (n, k2) = dims2(b, "matmul_a_bt rhs");
    assert_eq!(k, k2, "matmul_a_bt trailing dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("matmul_a_bt output shape")
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().len(), 2, "{what} must be 2-D, got {:?}", t.shape());
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn matmul_known_values() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let eye = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = t(&[1.0, -2.0, 0.5, 3.0, 4.0, -1.0], &[3, 2]);
        let b = t(&[2.0, 1.0, 0.0, -1.0, 1.5, 2.5], &[3, 2]);
        // Aᵀ B: [2,3]x[3,2] = [2,2]
        let via_kernel = matmul_at_b(&a, &b);
        let via_transpose = matmul(&a.transpose2d(), &b);
        assert_eq!(via_kernel, via_transpose);
        // A Bᵀ: [3,2]x[2,3] = [3,3]
        let via_kernel = matmul_a_bt(&a, &b);
        let via_transpose = matmul(&a, &b.transpose2d());
        assert_eq!(via_kernel, via_transpose);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        let _ = matmul(&Tensor::ones(&[2, 3]), &Tensor::ones(&[2, 3]));
    }

    #[test]
    fn matmul_randomized_associativity_with_vector() {
        // (A B) x == A (B x) up to fp error.
        let a = Tensor::randn(&[5, 7], 10);
        let b = Tensor::randn(&[7, 4], 11);
        let x = Tensor::randn(&[4, 1], 12);
        let left = matmul(&matmul(&a, &b), &x);
        let right = matmul(&a, &matmul(&b, &x));
        for (l, r) in left.data().iter().zip(right.data()) {
            assert!((l - r).abs() < 1e-4, "{l} vs {r}");
        }
    }
}
