//! # cannikin-baselines — the comparison systems of the evaluation (§5.1)
//!
//! Re-implementations of the four baselines Cannikin is measured against,
//! all driving the same [`hetsim::Simulator`] and producing the same
//! [`cannikin_core::engine::EpochRecord`]s so that every figure harness
//! can compare like for like:
//!
//! - [`DdpTrainer`] — PyTorch DistributedDataParallel: fixed total batch,
//!   even local split, no adaptation of any kind.
//! - [`AdaptdlTrainer`] — AdaptDL/Pollux: goodput-adaptive *total* batch
//!   size, but the homogeneous assumption keeps local splits even — in a
//!   heterogeneous cluster its batch time equals DDP's for the same total.
//! - [`LbBspTrainer`] — LB-BSP: fixed total batch, local splits tuned
//!   iteratively (step size Δ = 5, as in the paper's experiments) toward
//!   equal compute times; no communication/computation-overlap model.
//! - [`HetPipeTrainer`] — HetPipe: pipelined model parallelism with
//!   speed-proportional stage partitioning; excellent utilization but a
//!   pipeline-fill bubble and a fixed batch size.
//!
//! Every baseline also implements
//! [`TrainingSubject`](cannikin_core::engine::TrainingSubject), so the
//! scenario-matrix harness can drive any of them — and Cannikin itself —
//! through one uniform epoch loop.

mod adaptdl;
mod ddp;
mod hetpipe;
mod lbbsp;

pub use adaptdl::AdaptdlTrainer;
pub use ddp::DdpTrainer;
pub use hetpipe::HetPipeTrainer;
pub use lbbsp::LbBspTrainer;

use cannikin_core::engine::EpochRecord;

/// Convergence summary shared by all trainers: the wall-clock time at
/// which a run first crossed `target` effective epochs, if it did.
pub fn time_to_target(records: &[EpochRecord], target: f64) -> Option<f64> {
    records.iter().find(|r| r.effective_epochs >= target).map(|r| r.cumulative_time)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(effective: f64, time: f64) -> EpochRecord {
        EpochRecord {
            epoch: 0,
            total_batch: 64,
            local_batches: vec![64],
            steps: 1,
            accumulation: 1,
            epoch_time: time,
            mean_batch_time: time,
            noise_scale: 1.0,
            efficiency: 1.0,
            effective_epochs: effective,
            cumulative_time: time,
            overhead_seconds: 0.0,
            pattern: None,
            used_model: false,
            faults: 0,
            recoveries: 0,
        }
    }

    #[test]
    fn time_to_target_finds_first_crossing() {
        let records = vec![rec(0.5, 10.0), rec(1.2, 20.0), rec(2.0, 30.0)];
        assert_eq!(time_to_target(&records, 1.0), Some(20.0));
        assert_eq!(time_to_target(&records, 5.0), None);
    }
}
