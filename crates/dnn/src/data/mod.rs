//! Synthetic datasets and batch iteration.
//!
//! The reproduction cannot ship ImageNet, LibriSpeech, SQuAD or MovieLens;
//! instead these generators produce deterministic synthetic datasets with
//! the same *interface* (classification over dense features / images,
//! implicit-feedback interactions) so that the functional training path —
//! real gradients, real losses, real gradient-noise measurements — is
//! exercised end to end.

mod synthetic;

pub use synthetic::{
    frame_sequences, gaussian_blob_images, gaussian_blobs, token_sequences,
    two_tower_interactions, InteractionDataset, SequenceDataset,
};

use crate::rng;
use crate::tensor::Tensor;

/// An in-memory classification dataset: features plus integer labels.
#[derive(Debug, Clone)]
pub struct ClassificationDataset {
    features: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl ClassificationDataset {
    /// Bundle features (first dimension = sample count) with labels.
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from the sample count or a label
    /// is `>= classes`.
    pub fn new(features: Tensor, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(features.rows(), labels.len(), "feature/label count mismatch");
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        ClassificationDataset { features, labels, classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Shape of a single sample (the feature shape without the leading
    /// sample dimension).
    pub fn sample_shape(&self) -> &[usize] {
        &self.features.shape()[1..]
    }

    /// Gather a batch by sample indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let cols = self.features.cols();
        let mut out = Vec::with_capacity(indices.len() * cols);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "sample index {i} out of range {}", self.len());
            out.extend_from_slice(&self.features.data()[i * cols..(i + 1) * cols]);
            labels.push(self.labels[i]);
        }
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(self.sample_shape());
        (Tensor::from_vec(out, &shape).expect("batch shape"), labels)
    }

    /// All labels (for accuracy computation).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Deterministically split into `(train, validation)` with
    /// `holdout_fraction` of the samples (shuffled by `seed`) held out.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < holdout_fraction < 1` leaves both sides
    /// non-empty.
    pub fn split(&self, holdout_fraction: f64, seed: u64) -> (ClassificationDataset, ClassificationDataset) {
        assert!(holdout_fraction > 0.0 && holdout_fraction < 1.0, "holdout fraction must be in (0, 1)");
        let n = self.len();
        let holdout = ((n as f64 * holdout_fraction).round() as usize).clamp(1, n - 1);
        let mut indices: Vec<usize> = (0..n).collect();
        let mut r = rng::seeded(seed);
        rng::shuffle(&mut r, &mut indices);
        let (val_idx, train_idx) = indices.split_at(holdout);
        let gather = |idx: &[usize]| {
            let (features, labels) = self.batch(idx);
            ClassificationDataset::new(features, labels, self.classes)
        };
        (gather(train_idx), gather(val_idx))
    }
}

/// A shuffled epoch of sample indices, split into *uneven* per-node shards —
/// the index-level mechanism behind Cannikin's `HeteroDataLoader`.
///
/// Every sample of the epoch is assigned to exactly one node, and each
/// node's shard is chunked into its local mini-batches.
///
/// # Examples
///
/// ```
/// use minidnn::data::EpochPlan;
/// // 100 samples, nodes take local batches of 6 and 2 per step.
/// let plan = EpochPlan::new(100, &[6, 2], 7);
/// assert_eq!(plan.steps(), 100 / 8);
/// let (node0, node1) = (plan.node_batches(0), plan.node_batches(1));
/// assert_eq!(node0[0].len(), 6);
/// assert_eq!(node1[0].len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct EpochPlan {
    per_node: Vec<Vec<Vec<usize>>>,
    steps: usize,
}

impl EpochPlan {
    /// Shuffle `dataset_len` indices with `seed` and deal them out in
    /// global-batch-sized rounds, giving node `i` exactly
    /// `local_batches[i]` samples per round. Trailing samples that do not
    /// fill a complete global batch are dropped (the paper's loaders do the
    /// same).
    ///
    /// # Panics
    ///
    /// Panics if `local_batches` is empty or sums to zero.
    pub fn new(dataset_len: usize, local_batches: &[u64], seed: u64) -> Self {
        let total: u64 = local_batches.iter().sum();
        assert!(total > 0, "global batch must be positive");
        assert!(!local_batches.is_empty(), "need at least one node");
        let mut indices: Vec<usize> = (0..dataset_len).collect();
        let mut r = rng::seeded(seed);
        rng::shuffle(&mut r, &mut indices);
        let steps = dataset_len / total as usize;
        let mut per_node: Vec<Vec<Vec<usize>>> = local_batches.iter().map(|_| Vec::with_capacity(steps)).collect();
        let mut cursor = 0;
        for _ in 0..steps {
            for (node, &b) in local_batches.iter().enumerate() {
                per_node[node].push(indices[cursor..cursor + b as usize].to_vec());
                cursor += b as usize;
            }
        }
        EpochPlan { per_node, steps }
    }

    /// Like [`EpochPlan::new`], but alternating between two splits on even
    /// and odd steps. Running two local batch sizes per node *within* one
    /// epoch is how the functional trainer measures both points of each
    /// node's linear compute model under identical thermal conditions.
    ///
    /// # Panics
    ///
    /// Panics if the splits are empty, have different lengths, or either
    /// sums to zero.
    pub fn new_alternating(dataset_len: usize, split_even: &[u64], split_odd: &[u64], seed: u64) -> Self {
        assert!(!split_even.is_empty(), "need at least one node");
        assert_eq!(split_even.len(), split_odd.len(), "splits must cover the same nodes");
        let total_even: u64 = split_even.iter().sum();
        let total_odd: u64 = split_odd.iter().sum();
        assert!(total_even > 0 && total_odd > 0, "global batch must be positive");
        let mut indices: Vec<usize> = (0..dataset_len).collect();
        let mut r = rng::seeded(seed);
        rng::shuffle(&mut r, &mut indices);
        let pair = (total_even + total_odd) as usize;
        let steps = 2 * (dataset_len / pair);
        let mut per_node: Vec<Vec<Vec<usize>>> = split_even.iter().map(|_| Vec::with_capacity(steps)).collect();
        let mut cursor = 0;
        for step in 0..steps {
            let split = if step % 2 == 0 { split_even } else { split_odd };
            for (node, &b) in split.iter().enumerate() {
                per_node[node].push(indices[cursor..cursor + b as usize].to_vec());
                cursor += b as usize;
            }
        }
        EpochPlan { per_node, steps }
    }

    /// Number of global steps in the epoch.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The sequence of local mini-batches for one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_batches(&self, node: usize) -> &[Vec<usize>] {
        &self.per_node[node]
    }

    /// Number of nodes the plan covers.
    pub fn nodes(&self) -> usize {
        self.per_node.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_gathers_rows() {
        let ds = gaussian_blobs(20, 3, 4, 1);
        let (x, y) = ds.batch(&[0, 5, 19]);
        assert_eq!(x.shape(), &[3, 4]);
        assert_eq!(y.len(), 3);
    }

    #[test]
    fn split_partitions_cleanly() {
        let ds = gaussian_blobs(100, 4, 5, 2);
        let (train, val) = ds.split(0.2, 3);
        assert_eq!(train.len(), 80);
        assert_eq!(val.len(), 20);
        assert_eq!(train.classes(), 4);
        // Deterministic.
        let (train2, _) = ds.split(0.2, 3);
        assert_eq!(train.batch(&[0]).0, train2.batch(&[0]).0);
    }

    #[test]
    fn epoch_plan_partitions_without_overlap() {
        let plan = EpochPlan::new(64, &[3, 5], 9);
        assert_eq!(plan.steps(), 8);
        let mut seen = std::collections::HashSet::new();
        for node in 0..plan.nodes() {
            for batch in plan.node_batches(node) {
                for &idx in batch {
                    assert!(seen.insert(idx), "index {idx} assigned twice");
                }
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn epoch_plan_respects_local_sizes() {
        let plan = EpochPlan::new(100, &[7, 2, 1], 3);
        for (node, &b) in [7usize, 2, 1].iter().enumerate() {
            for batch in plan.node_batches(node) {
                assert_eq!(batch.len(), b);
            }
        }
    }

    #[test]
    fn epoch_plan_is_deterministic() {
        let a = EpochPlan::new(50, &[4, 4], 11);
        let b = EpochPlan::new(50, &[4, 4], 11);
        assert_eq!(a.node_batches(0), b.node_batches(0));
        let c = EpochPlan::new(50, &[4, 4], 12);
        assert_ne!(a.node_batches(0), c.node_batches(0));
    }

    #[test]
    #[should_panic(expected = "global batch")]
    fn epoch_plan_rejects_zero_batch() {
        let _ = EpochPlan::new(10, &[0, 0], 1);
    }
}
