//! Functional correctness of the distributed-training substrate: the
//! Eq. (9) weighted aggregation must reproduce single-machine full-batch
//! gradients exactly, replicas must stay synchronized, and the whole
//! thread-parallel trainer must actually learn.

use cannikin::collectives::{Codec, CommGroup, TransportKind};
use cannikin::core::engine::parallel::{ParallelConfig, ParallelTrainer};
use cannikin::dnn::data::gaussian_blobs;
use cannikin::dnn::layers::{flatten_grads, zero_grads, Layer};
use cannikin::dnn::loss::{Loss, SoftmaxCrossEntropy};
use cannikin::dnn::lr::LrScaler;
use cannikin::dnn::models::mlp_classifier;
use cannikin::dnn::tensor::Tensor;
use std::thread;

/// Eq. (9) exactness: splitting a batch unevenly across workers and
/// combining their *mean* gradients with weights `bᵢ/B` equals the
/// single-machine gradient of the full batch.
#[test]
fn weighted_aggregation_equals_full_batch_gradient() {
    let dataset = gaussian_blobs(64, 5, 12, 31);
    let indices: Vec<usize> = (0..24).collect();
    let splits: [&[usize]; 3] = [&indices[0..4], &indices[4..12], &indices[12..24]];
    let total = indices.len() as f32;

    // Reference: one machine, full batch.
    let mut reference = mlp_classifier(12, 20, 5, 77);
    let (x, y) = dataset.batch(&indices);
    let logits = reference.forward(&x, true);
    let (_, grad) = SoftmaxCrossEntropy.loss(&logits, &y);
    zero_grads(&mut reference.parameters_mut());
    reference.backward(&grad);
    let full = flatten_grads(&reference.parameters());

    // Distributed: three replicas with identical weights, uneven shards,
    // combined through the real ring all-reduce with Eq. (9) weights.
    let comms = CommGroup::create(3);
    let handles: Vec<_> = comms
        .into_iter()
        .zip(splits)
        .map(|(comm, shard)| {
            let (x, y) = dataset.batch(shard);
            let weight = shard.len() as f32 / total;
            thread::spawn(move || {
                let mut model = mlp_classifier(12, 20, 5, 77); // same seed ⇒ same init
                let logits = model.forward(&x, true);
                let (_, grad) = SoftmaxCrossEntropy.loss(&logits, &y);
                zero_grads(&mut model.parameters_mut());
                model.backward(&grad);
                let mut g = flatten_grads(&model.parameters()).into_data();
                comm.weighted_all_reduce(&mut g, weight);
                g
            })
        })
        .collect();
    let results: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().expect("rank")).collect();

    // Every rank holds the identical combined gradient...
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
    // ...and it equals the full-batch gradient up to fp32 noise.
    let combined = Tensor::from_vec(results[0].clone(), &[full.len()]).unwrap();
    let diff = combined.sub(&full);
    let rel = (diff.sq_l2() / full.sq_l2().max(1e-30)).sqrt();
    assert!(rel < 1e-4, "relative gradient error {rel}");
}

/// Plain averaging (the homogeneous aggregation) does NOT reproduce the
/// full-batch gradient under uneven shards — the motivation for Eq. (9).
#[test]
fn naive_averaging_is_biased_for_uneven_shards() {
    let dataset = gaussian_blobs(64, 5, 12, 32);
    let indices: Vec<usize> = (0..24).collect();
    let splits: [&[usize]; 2] = [&indices[0..2], &indices[2..24]];

    let mut reference = mlp_classifier(12, 20, 5, 78);
    let (x, y) = dataset.batch(&indices);
    let logits = reference.forward(&x, true);
    let (_, grad) = SoftmaxCrossEntropy.loss(&logits, &y);
    zero_grads(&mut reference.parameters_mut());
    reference.backward(&grad);
    let full = flatten_grads(&reference.parameters());

    let mut avg = Tensor::zeros(&[full.len()]);
    for shard in splits {
        let mut model = mlp_classifier(12, 20, 5, 78);
        let (x, y) = dataset.batch(shard);
        let logits = model.forward(&x, true);
        let (_, grad) = SoftmaxCrossEntropy.loss(&logits, &y);
        zero_grads(&mut model.parameters_mut());
        model.backward(&grad);
        avg.axpy(0.5, &flatten_grads(&model.parameters()));
    }
    let rel = ((avg.sub(&full)).sq_l2() / full.sq_l2().max(1e-30)).sqrt();
    assert!(rel > 0.05, "naive averaging should deviate for a 2-vs-22 split, got {rel}");
}

fn config() -> ParallelConfig {
    ParallelConfig {
        slowdowns: vec![1.0, 2.0],
        base_batch: 32,
        max_batch: 128,
        adaptive: true,
        base_lr: 0.05,
        lr_scaler: LrScaler::AdaScale,
        seed: 9,
        comm_faults: None,
        retry: Default::default(),
        transport: TransportKind::InProcess,
        codec: Codec::None,
        overlap: false,
    }
}

#[test]
fn parallel_trainer_learns_and_reports_consistent_state() {
    let ds = gaussian_blobs(1024, 6, 12, 33);
    let mut trainer = ParallelTrainer::builder()
        .dataset(ds)
        .model(|seed| mlp_classifier(12, 32, 6, seed))
        .config(config())
        .build()
        .expect("valid config");
    let mut last = None;
    let mut gns_seen = false;
    for _ in 0..6 {
        let r = trainer.run_epoch().expect("epoch");
        assert_eq!(r.local_batches.iter().sum::<u64>(), r.total_batch);
        assert!(r.local_batches.iter().all(|&b| b >= 1));
        assert!(r.epoch_time > 0.0);
        gns_seen |= r.noise_scale.is_some();
        last = Some(r);
    }
    let r = last.unwrap();
    assert!(r.accuracy > 0.9, "accuracy {}", r.accuracy);
    // The GNS can legitimately blank out once the task is solved (the true
    // gradient vanishes and the unbiased |G|² estimate fluctuates around
    // zero), but it must have been live at some point during training.
    assert!(gns_seen, "GNS never became estimable");
}

#[test]
fn parallel_trainer_is_deterministic_in_math() {
    // Wall-clock timings differ between runs (and with them the measured
    // splits), but Eq. (9) makes the global gradient independent of the
    // split, so with a timing-independent learning rate the loss sequence
    // must agree run to run up to fp reassociation noise.
    let run = || {
        let ds = gaussian_blobs(512, 4, 10, 34);
        let mut c = config();
        c.adaptive = false;
        c.slowdowns = vec![1.0, 1.0];
        c.lr_scaler = LrScaler::SquareRoot; // gain 1 at fixed B, φ-independent
        let mut t = ParallelTrainer::builder()
            .dataset(ds)
            .model(|seed| mlp_classifier(10, 24, 4, seed))
            .config(c)
            .build()
            .expect("valid config");
        (0..2).map(|_| t.run_epoch().expect("epoch").mean_loss).collect::<Vec<_>>()
    };
    let (a, b) = (run(), run());
    for (x, y) in a.iter().zip(&b) {
        // Absolute tolerance: once the task converges the losses sit at
        // ~1e-6, where fp reassociation (different splits → different
        // summation orders) dominates relative comparisons. On a
        // saturated host the measured splits can differ a lot between
        // the two runs, and the reassociation difference compounds over
        // ~30 optimizer steps, so the floor is millis, not tenths of one.
        assert!((x - y).abs() < 1e-3 + 1e-3 * x.abs(), "losses diverged: {x} vs {y}");
    }
}
