//! Gradient noise scale in heterogeneous clusters (§4.4, Theorem 4.1).
//!
//! The gradient noise scale `B_noise = tr(Σ)/|G|²` predicts the largest
//! statistically efficient batch size. Estimating it needs estimates of
//! `|G|²` (squared norm of the true gradient) and `tr(Σ)` (total gradient
//! variance). Homogeneous systems build those from per-node gradients with
//! *equal* local batches; Cannikin's contribution is the heterogeneous
//! case, where local batches differ:
//!
//! 1. every node forms the unbiased local estimates of Eq. (10):
//!    `𝒢ᵢ = (B·|g|² − bᵢ·|gᵢ|²)/(B − bᵢ)` and
//!    `𝒮ᵢ = (bᵢB/(B − bᵢ))·(|gᵢ|² − |g|²)`;
//! 2. the cluster combines them with the minimum-variance unbiased weights
//!    of Theorem 4.1, `w = 𝟙ᵀA⁻¹ / 𝟙ᵀA⁻¹𝟙`, where `A` is the (scaled)
//!    covariance matrix of the estimators — both the variances *and* the
//!    cross-node correlations induced by the shared `|g|²` term;
//! 3. `B_noise = 𝒮/𝒢`, smoothed over batches with the usual EMA.
//!
//! The naive alternative (plain averaging of `𝒢ᵢ`/`𝒮ᵢ`) is also provided;
//! §5.3 of the paper quantifies how much worse it is.

mod efficiency;
mod estimators;
mod weighting;

pub use efficiency::{goodput, statistical_efficiency};
pub use estimators::{local_estimates, GnsEstimate, GradientSample, LocalEstimates};
pub use weighting::{optimal_weights, WeightKind};

use crate::error::CannikinError;
use cannikin_telemetry::{self as telemetry, Event as TelemetryEvent};

/// Aggregation strategy for the per-node estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Theorem 4.1 minimum-variance weights (Cannikin).
    MinimumVariance,
    /// Plain averaging (the homogeneous-cluster baseline; biased toward
    /// high-variance small-batch nodes in heterogeneous clusters).
    NaiveMean,
}

/// Compute the cluster-wide GNS estimate for one batch.
///
/// `samples` carries each node's local batch size and squared gradient
/// norm; `global_sq_norm` is `|g|²` of the Eq. (9)-aggregated global
/// gradient.
///
/// # Errors
///
/// Returns an error when fewer than two nodes report, any `bᵢ ≥ B`, or the
/// Theorem 4.1 system is singular.
pub fn estimate_gns(
    samples: &[GradientSample],
    global_sq_norm: f64,
    aggregation: Aggregation,
) -> Result<GnsEstimate, CannikinError> {
    let locals = local_estimates(samples, global_sq_norm)?;
    let n = samples.len();
    let (wg, ws) = match aggregation {
        Aggregation::MinimumVariance => {
            let b: Vec<f64> = samples.iter().map(|s| s.local_batch as f64).collect();
            let total: f64 = b.iter().sum();
            (
                optimal_weights(&b, total, WeightKind::GradNorm)?,
                optimal_weights(&b, total, WeightKind::Variance)?,
            )
        }
        Aggregation::NaiveMean => (vec![1.0 / n as f64; n], vec![1.0 / n as f64; n]),
    };
    let grad_sq: f64 = locals.iter().zip(&wg).map(|(l, w)| w * l.g).sum();
    let trace: f64 = locals.iter().zip(&ws).map(|(l, w)| w * l.s).sum();
    if telemetry::enabled() {
        telemetry::emit(TelemetryEvent::GnsEstimated(cannikin_telemetry::GnsEstimated {
            b_noise: if grad_sq > 0.0 { trace / grad_sq } else { f64::NAN },
            grad_sq,
            variance: trace,
            weights: ws,
        }));
    }
    Ok(GnsEstimate { grad_sq, trace })
}

/// Exponential-moving-average smoother for the GNS ratio.
///
/// Following McCandlish et al. (and AdaptDL), the numerator and
/// denominator are smoothed *separately* before taking the ratio — the
/// ratio of EMAs is far less biased than an EMA of ratios.
#[derive(Debug, Clone)]
pub struct GnsTracker {
    decay: f64,
    grad_sq: f64,
    trace: f64,
    initialized: bool,
}

impl GnsTracker {
    /// Create a tracker with the given EMA decay (e.g. `0.9`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= decay < 1`.
    pub fn new(decay: f64) -> Self {
        assert!((0.0..1.0).contains(&decay), "decay must be in [0, 1)");
        GnsTracker { decay, grad_sq: 0.0, trace: 0.0, initialized: false }
    }

    /// Fold in one batch's estimate.
    pub fn observe(&mut self, estimate: GnsEstimate) {
        if self.initialized {
            self.grad_sq = self.decay * self.grad_sq + (1.0 - self.decay) * estimate.grad_sq;
            self.trace = self.decay * self.trace + (1.0 - self.decay) * estimate.trace;
        } else {
            self.grad_sq = estimate.grad_sq;
            self.trace = estimate.trace;
            self.initialized = true;
        }
    }

    /// Smoothed `B_noise = tr(Σ)/|G|²`, or `None` before the first
    /// observation or while the smoothed `|G|²` is non-positive (which can
    /// happen transiently: the unbiased estimator can go negative on noisy
    /// batches).
    pub fn noise_scale(&self) -> Option<f64> {
        if !self.initialized || self.grad_sq <= 0.0 || self.trace <= 0.0 {
            return None;
        }
        Some(self.trace / self.grad_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(b: u64, sq: f64) -> GradientSample {
        GradientSample { local_batch: b, local_sq_norm: sq }
    }

    #[test]
    fn equal_batches_reduce_to_plain_average() {
        // With equal local batches the minimum-variance weights collapse
        // to 1/n, so both aggregations agree.
        let samples = vec![sample(16, 2.0), sample(16, 2.4), sample(16, 1.8)];
        let mv = estimate_gns(&samples, 1.9, Aggregation::MinimumVariance).unwrap();
        let naive = estimate_gns(&samples, 1.9, Aggregation::NaiveMean).unwrap();
        assert!((mv.grad_sq - naive.grad_sq).abs() < 1e-9);
        assert!((mv.trace - naive.trace).abs() < 1e-9);
    }

    #[test]
    fn tracker_smooths_and_ratios() {
        let mut t = GnsTracker::new(0.5);
        assert!(t.noise_scale().is_none());
        t.observe(GnsEstimate { grad_sq: 1.0, trace: 10.0 });
        assert!((t.noise_scale().unwrap() - 10.0).abs() < 1e-12);
        t.observe(GnsEstimate { grad_sq: 3.0, trace: 10.0 });
        // grad_sq EMA: 0.5·1 + 0.5·3 = 2; trace stays 10 → ratio 5.
        assert!((t.noise_scale().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_hides_negative_transients() {
        let mut t = GnsTracker::new(0.0);
        t.observe(GnsEstimate { grad_sq: -0.5, trace: 4.0 });
        assert!(t.noise_scale().is_none());
        t.observe(GnsEstimate { grad_sq: 2.0, trace: 4.0 });
        assert_eq!(t.noise_scale(), Some(2.0));
    }

    #[test]
    fn single_node_rejected() {
        let err = estimate_gns(&[sample(8, 1.0)], 1.0, Aggregation::MinimumVariance);
        assert!(err.is_err());
    }
}
