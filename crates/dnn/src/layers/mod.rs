//! Neural-network layers with explicit forward/backward passes.
//!
//! Every layer implements [`Layer`]: `forward` caches whatever activations
//! its backward pass needs, `backward` consumes the gradient w.r.t. the
//! layer output and returns the gradient w.r.t. the layer input while
//! *accumulating* parameter gradients into each [`Param`]. Accumulation (as
//! opposed to overwriting) is what lets a worker process several
//! micro-batches before an optimizer step, mirroring PyTorch semantics.

mod activations;
mod attention;
mod batchnorm;
mod conv;
mod dropout;
mod embedding;
mod gru;
mod linear;
mod norm;
mod pool;
mod residual;
mod softmax_layer;
mod timedist;
mod transformer;

pub use activations::{Gelu, Relu, Sigmoid, Tanh};
pub use attention::MultiHeadSelfAttention;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use gru::Gru;
pub use linear::Linear;
pub use norm::LayerNorm;
pub use pool::{AvgPool2d, MaxPool2d};
pub use residual::BasicBlock;
pub use softmax_layer::Softmax;
pub use timedist::{MeanOverTime, TimeDistributed};
pub use transformer::TransformerBlock;

use crate::tensor::Tensor;

/// A trainable parameter: its current value and the accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Human-readable name, used in debugging output.
    pub name: String,
}

impl Param {
    /// Wrap an initial value as a parameter with a zeroed gradient.
    pub fn new(value: Tensor, name: impl Into<String>) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad, name: name.into() }
    }

    /// Reset the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty (never true for real layers).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable module.
///
/// The trait is object-safe so models can be composed as
/// `Vec<Box<dyn Layer>>` (see [`Sequential`]).
pub trait Layer: Send {
    /// Run the forward pass. `train` enables training-only behaviour such as
    /// dropout.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Run the backward pass for the most recent `forward` call, returning
    /// the gradient with respect to the layer input and accumulating
    /// parameter gradients.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Immutable access to the layer's parameters (empty for stateless
    /// layers).
    fn parameters(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to the layer's parameters.
    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

/// Composition of layers applied in sequence.
///
/// # Examples
///
/// ```
/// use minidnn::layers::{Layer, Linear, Relu, Sequential};
/// use minidnn::tensor::Tensor;
///
/// let mut net = Sequential::new()
///     .push(Linear::new(8, 4, 0))
///     .push(Relu::new());
/// let y = net.forward(&Tensor::randn(&[2, 8], 1), true);
/// assert_eq!(y.shape(), &[2, 4]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers, {} params)", self.layers.len(), num_elements(&self.parameters()))
    }
}

impl Sequential {
    /// Create an empty sequential container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Append a layer (consuming builder).
    #[must_use]
    pub fn push<L: Layer + 'static>(mut self, layer: L) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Append a boxed layer.
    #[must_use]
    pub fn push_boxed(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Immutable access to the layers, in forward order.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layers, in forward order. Distributed training
    /// engines use this to drive the backward pass layer by layer so
    /// gradient buckets can be communicated while earlier layers still
    /// compute (compute/communication overlap); calling
    /// `layer.backward(...)` over this slice in reverse is equivalent to
    /// [`Sequential`]'s own `backward`.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Whether the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn parameters(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }

    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.parameters_mut()).collect()
    }
}

/// Total number of scalar parameters across a parameter list.
pub fn num_elements(params: &[&Param]) -> usize {
    params.iter().map(|p| p.len()).sum()
}

/// Flatten all parameter gradients into a single 1-D tensor, in parameter
/// order. This is the "full local gradient" consumed by the collectives and
/// the gradient-noise-scale estimators.
pub fn flatten_grads(params: &[&Param]) -> Tensor {
    let total: usize = params.iter().map(|p| p.len()).sum();
    let mut out = Vec::with_capacity(total);
    for p in params {
        out.extend_from_slice(p.grad.data());
    }
    Tensor::from_vec(out, &[total.max(1)]).unwrap_or_else(|_| Tensor::zeros(&[1]))
}

/// Flatten all parameter gradients into a caller-owned buffer, reusing its
/// capacity — the allocation-free form of [`flatten_grads`] for training
/// loops that flatten every step.
pub fn flatten_grads_into(params: &[&Param], out: &mut Vec<f32>) {
    out.clear();
    out.reserve(params.iter().map(|p| p.len()).sum());
    for p in params {
        out.extend_from_slice(p.grad.data());
    }
}

/// Scatter a flat gradient slice back into the parameter gradients — the
/// slice-input form of [`assign_grads`].
///
/// # Panics
///
/// Panics if `flat.len()` differs from the total parameter count.
pub fn assign_grads_from(params: &mut [&mut Param], flat: &[f32]) {
    let total: usize = params.iter().map(|p| p.len()).sum();
    assert_eq!(flat.len(), total, "flat gradient length mismatch");
    let mut off = 0;
    for p in params.iter_mut() {
        let n = p.len();
        p.grad.data_mut().copy_from_slice(&flat[off..off + n]);
        off += n;
    }
}

/// Scatter a flat gradient vector back into the parameter gradients.
///
/// # Panics
///
/// Panics if `flat.len()` differs from the total parameter count.
pub fn assign_grads(params: &mut [&mut Param], flat: &Tensor) {
    assign_grads_from(params, flat.data());
}

/// Flatten all parameter values into a single 1-D tensor.
pub fn flatten_values(params: &[&Param]) -> Tensor {
    let total: usize = params.iter().map(|p| p.len()).sum();
    let mut out = Vec::with_capacity(total);
    for p in params {
        out.extend_from_slice(p.value.data());
    }
    Tensor::from_vec(out, &[total.max(1)]).unwrap_or_else(|_| Tensor::zeros(&[1]))
}

/// Scatter a flat value vector back into the parameters (used to broadcast
/// initial weights so every data-parallel worker starts identically).
///
/// # Panics
///
/// Panics if `flat.len()` differs from the total parameter count.
pub fn assign_values(params: &mut [&mut Param], flat: &Tensor) {
    let total: usize = params.iter().map(|p| p.len()).sum();
    assert_eq!(flat.len(), total, "flat value length mismatch");
    let mut off = 0;
    for p in params.iter_mut() {
        let n = p.len();
        p.value.data_mut().copy_from_slice(&flat.data()[off..off + n]);
        off += n;
    }
}

/// Reset every gradient in the list to zero.
pub fn zero_grads(params: &mut [&mut Param]) {
    for p in params.iter_mut() {
        p.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_composes_shapes() {
        let mut net = Sequential::new()
            .push(Linear::new(6, 12, 1))
            .push(Relu::new())
            .push(Linear::new(12, 3, 2));
        let x = Tensor::randn(&[4, 6], 3);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[4, 3]);
        let gx = net.backward(&Tensor::ones(&[4, 3]));
        assert_eq!(gx.shape(), &[4, 6]);
    }

    #[test]
    fn flatten_assign_roundtrip() {
        let mut net = Sequential::new().push(Linear::new(3, 2, 1));
        let x = Tensor::randn(&[2, 3], 9);
        let y = net.forward(&x, true);
        net.backward(&Tensor::ones(y.shape()));
        let flat = flatten_grads(&net.parameters());
        assert_eq!(flat.len(), 3 * 2 + 2);
        let doubled = flat.scale(2.0);
        assign_grads(&mut net.parameters_mut(), &doubled);
        let back = flatten_grads(&net.parameters());
        assert_eq!(back, doubled);
    }

    #[test]
    fn flatten_into_reuses_buffer_and_matches() {
        let mut net = Sequential::new().push(Linear::new(3, 2, 1));
        let x = Tensor::randn(&[2, 3], 9);
        let y = net.forward(&x, true);
        net.backward(&Tensor::ones(y.shape()));
        let mut buf = Vec::new();
        flatten_grads_into(&net.parameters(), &mut buf);
        assert_eq!(buf, flatten_grads(&net.parameters()).into_data());
        let ptr = buf.as_ptr();
        flatten_grads_into(&net.parameters(), &mut buf);
        assert_eq!(buf.as_ptr(), ptr, "repeated flatten must reuse the buffer");
        let doubled: Vec<f32> = buf.iter().map(|v| v * 2.0).collect();
        assign_grads_from(&mut net.parameters_mut(), &doubled);
        assert_eq!(flatten_grads(&net.parameters()).into_data(), doubled);
    }

    #[test]
    fn values_roundtrip_preserves_model() {
        let mut a = Sequential::new().push(Linear::new(4, 4, 7));
        let mut b = Sequential::new().push(Linear::new(4, 4, 8));
        let weights = flatten_values(&a.parameters());
        assign_values(&mut b.parameters_mut(), &weights);
        let x = Tensor::randn(&[3, 4], 11);
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn zero_grads_clears() {
        let mut net = Sequential::new().push(Linear::new(2, 2, 1));
        let x = Tensor::randn(&[1, 2], 2);
        let y = net.forward(&x, true);
        net.backward(&Tensor::ones(y.shape()));
        assert!(flatten_grads(&net.parameters()).sq_l2() > 0.0);
        zero_grads(&mut net.parameters_mut());
        assert_eq!(flatten_grads(&net.parameters()).sq_l2(), 0.0);
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let mut net = Sequential::new().push(Linear::new(2, 1, 1));
        let x = Tensor::randn(&[1, 2], 5);
        let y = net.forward(&x, true);
        net.backward(&Tensor::ones(y.shape()));
        let once = flatten_grads(&net.parameters());
        let y = net.forward(&x, true);
        net.backward(&Tensor::ones(y.shape()));
        let twice = flatten_grads(&net.parameters());
        for (a, b) in once.data().iter().zip(twice.data()) {
            assert!((b - 2.0 * a).abs() < 1e-5);
        }
    }
}
