//! A DYNAMIX-flavored RL controller: seeded ε-greedy bandit over
//! batch-size actions, rewarded with realized goodput.

use super::{EpochPlan, EpochObservation, Policy, PolicyContext};
use crate::error::CannikinError;
use crate::optperf::{bootstrap_split, ensure_distinct_split, even_split, OptPerfSolver};
use cannikin_telemetry::SplitSource;

/// Learns the total-batch schedule from the telemetry stream instead of a
/// throughput model: each epoch is one bandit round over a doubling grid
/// of batch-size actions, the reward is the realized goodput reported via
/// [`Policy::tell`], and exploration is a seeded ε-greedy draw that decays
/// with the epoch index — two same-seed runs take identical action
/// sequences (`rl_policy_is_deterministic_under_seed` in
/// `tests/policy.rs`).
///
/// The *split* for the chosen total still comes from the OptPerf solver
/// when models are available (falling back to the Eq. (8) bootstrap):
/// the bandit learns *how much* to ask of the cluster, the solver knows
/// *how to divide it* — which is what lets the policy beat [`super::EvenSplit`]
/// under heterogeneity while remaining model-free about batch sizing.
#[derive(Debug)]
pub struct RlBatchPolicy {
    rng_state: u64,
    epsilon: f64,
    actions: Vec<u64>,
    q: Vec<f64>,
    counts: Vec<u64>,
    pending: Option<usize>,
    history: Vec<u64>,
}

impl RlBatchPolicy {
    /// Create a bandit seeded with `seed` and the default initial
    /// exploration rate ε₀ = 0.3.
    pub fn new(seed: u64) -> Self {
        RlBatchPolicy {
            // splitmix64 state; offset so seed 0 is still a valid stream.
            rng_state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            epsilon: 0.3,
            actions: Vec::new(),
            q: Vec::new(),
            counts: Vec::new(),
            pending: None,
            history: Vec::new(),
        }
    }

    /// Override the initial exploration rate (builder style).
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon.clamp(0.0, 1.0);
        self
    }

    /// The sequence of totals chosen so far (determinism tests).
    pub fn action_history(&self) -> &[u64] {
        &self.history
    }

    /// splitmix64 — tiny, seedable, and plenty for ε-greedy draws.
    fn next_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The doubling grid of feasible totals for the current problem.
    fn grid(ctx: &PolicyContext) -> Vec<u64> {
        let mut out = Vec::new();
        let mut b = ctx.base_batch.max(ctx.nodes as u64);
        while b <= ctx.max_batch && (b as usize) <= ctx.dataset_size {
            out.push(b);
            b *= 2;
        }
        if out.is_empty() {
            out.push(ctx.base_batch);
        }
        out
    }

    /// Re-key the value table when the action grid changes (batch range or
    /// membership moved the feasible set).
    fn sync_grid(&mut self, grid: Vec<u64>) {
        if self.actions != grid {
            self.q = vec![0.0; grid.len()];
            self.counts = vec![0; grid.len()];
            self.pending = None;
            self.actions = grid;
        }
    }

    /// ε-greedy choice: untried actions first (in grid order), then a
    /// seeded exploration draw, otherwise the greedy arg-max.
    fn choose(&mut self, epoch: usize) -> usize {
        if let Some(i) = self.counts.iter().position(|&c| c == 0) {
            return i;
        }
        let eps = self.epsilon / (1.0 + epoch as f64 * 0.25);
        if self.next_f64() < eps {
            return (self.next_u64() % self.actions.len() as u64) as usize;
        }
        let mut best = 0;
        for i in 1..self.q.len() {
            if self.q[i] > self.q[best] {
                best = i;
            }
        }
        best
    }
}

impl Policy for RlBatchPolicy {
    fn name(&self) -> &'static str {
        "rl"
    }

    fn ask(&mut self, ctx: &PolicyContext) -> Result<EpochPlan, CannikinError> {
        let n = ctx.nodes;
        self.sync_grid(Self::grid(ctx));
        let (total, action) = if ctx.adaptive {
            let i = self.choose(ctx.epoch);
            (self.actions[i], Some(i))
        } else {
            (ctx.base_batch, None)
        };
        self.pending = action;
        self.history.push(total);

        // Split the chosen total: solver when models exist, bootstrap
        // otherwise — the bandit only owns the total-batch decision.
        let mut used_model = false;
        let mut pattern = None;
        let mut predicted_t = None;
        let mut source = SplitSource::Bootstrap;
        let local = if let Some(input) = ctx.solver_input.clone() {
            match OptPerfSolver::new(input).solve(total) {
                Ok(plan) => {
                    used_model = true;
                    source = SplitSource::Solver;
                    pattern = Some(plan.pattern.clone());
                    predicted_t = Some(plan.opt_perf);
                    plan.local_batches
                }
                Err(_) => {
                    source = SplitSource::EvenInit;
                    even_split(total, n)
                }
            }
        } else if ctx.epoch == 0 || ctx.last_split.is_empty() {
            source = SplitSource::EvenInit;
            even_split(total, n)
        } else {
            ensure_distinct_split(&ctx.last_split, bootstrap_split(&ctx.per_sample_times, total))
        };
        Ok(EpochPlan { total, local, accumulation: 1, source, used_model, pattern, predicted_t })
    }

    fn tell(&mut self, obs: &EpochObservation) {
        let Some(i) = self.pending.take() else { return };
        if self.actions.get(i).copied() != Some(obs.total) {
            return;
        }
        // Incremental-mean value update with the realized goodput reward.
        self.counts[i] += 1;
        self.q[i] += (obs.goodput - self.q[i]) / self.counts[i] as f64;
    }

    fn on_membership_change(&mut self, _nodes: usize) {
        // The feasible grid may shift (`base.max(n)` floor); force a
        // re-key on the next ask and drop the in-flight reward.
        self.actions.clear();
        self.pending = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(epoch: usize) -> PolicyContext {
        PolicyContext {
            epoch,
            nodes: 3,
            adaptive: true,
            base_batch: 64,
            max_batch: 512,
            dataset_size: 6_400,
            phi: Some(300.0),
            last_split: vec![22, 21, 21],
            solver_input: None,
            per_sample_times: vec![1.0, 1.0, 1.0],
        }
    }

    /// Same seed → same action sequence, even with reward feedback in the
    /// loop; different seed → different sequence (with overwhelming
    /// probability on 40 draws).
    #[test]
    fn same_seed_same_actions() {
        let run = |seed: u64| {
            let mut p = RlBatchPolicy::new(seed);
            for e in 0..40 {
                let plan = p.ask(&ctx(e)).unwrap();
                p.tell(&EpochObservation {
                    epoch: e,
                    total: plan.total,
                    local: plan.local,
                    epoch_time: 1.0 + (e % 3) as f64,
                    mean_batch_time: 0.1,
                    efficiency: 0.9,
                    goodput: 1.0 / (1.0 + (plan.total as f64 - 256.0).abs()),
                    phi: Some(300.0),
                    per_sample_times: vec![1.0, 1.0, 1.0],
                });
            }
            p.action_history().to_vec()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn untried_actions_explored_first() {
        let mut p = RlBatchPolicy::new(1);
        let mut seen = Vec::new();
        for e in 0..4 {
            seen.push(p.ask(&ctx(e)).unwrap().total);
            let total = *seen.last().unwrap();
            p.tell(&EpochObservation {
                epoch: e,
                total,
                local: vec![total / 3; 3],
                epoch_time: 1.0,
                mean_batch_time: 0.1,
                efficiency: 0.9,
                goodput: 1.0,
                phi: None,
                per_sample_times: vec![1.0; 3],
            });
        }
        // Grid is 64, 128, 256, 512 — each tried once before any repeat.
        assert_eq!(seen, vec![64, 128, 256, 512]);
    }

    #[test]
    fn non_adaptive_pins_base_batch() {
        let mut p = RlBatchPolicy::new(3);
        let mut c = ctx(0);
        c.adaptive = false;
        for _ in 0..5 {
            assert_eq!(p.ask(&c).unwrap().total, 64);
        }
    }
}
