//! The heterogeneous gradient noise scale, measured on real gradients.
//!
//! ```text
//! cargo run --release --example gradient_noise
//! ```
//!
//! Builds a synthetic gradient model with a *known* noise scale
//! `φ = tr(Σ)/|G|²`, draws per-node gradients at unequal local batch
//! sizes, and compares two estimators over many trials:
//!
//! - Eq. (10) locals combined with the Theorem 4.1 minimum-variance
//!   weights (Cannikin);
//! - Eq. (10) locals combined by plain averaging (the homogeneous
//!   baseline).
//!
//! Both are unbiased; the minimum-variance weights cut the estimator
//! spread, which is what keeps the goodput engine's batch choices stable.

use cannikin::core::gns::{estimate_gns, Aggregation, GradientSample};
use cannikin::dnn::rng;

fn main() {
    let dim = 200usize;
    let g_true: Vec<f64> = (0..dim).map(|i| 0.05 * ((i as f64 * 0.37).sin() + 0.4)).collect();
    let g_sq: f64 = g_true.iter().map(|v| v * v).sum();
    let sigma2 = 0.02f64;
    let trace = dim as f64 * sigma2;
    let phi_true = trace / g_sq;
    println!("true |G|^2 = {g_sq:.4}, tr(Sigma) = {trace:.4}, noise scale phi = {phi_true:.2}\n");

    let batches = [4u64, 12, 48]; // strongly heterogeneous local batches
    let total: u64 = batches.iter().sum();
    let mut r = rng::seeded(99);

    let trials = 3000;
    let mut stats = [(0.0f64, 0.0f64), (0.0, 0.0)]; // (sum, sum_sq) of phi per aggregation
    for _ in 0..trials {
        // Per-node mean gradients: G + N(0, sigma^2 / b_i) per coordinate.
        let mut locals: Vec<Vec<f64>> = Vec::new();
        let mut global = vec![0.0f64; dim];
        for &b in &batches {
            let gi: Vec<f64> = g_true
                .iter()
                .map(|&g| g + f64::from(rng::normal(&mut r)) * (sigma2 / b as f64).sqrt())
                .collect();
            for (acc, v) in global.iter_mut().zip(&gi) {
                *acc += b as f64 / total as f64 * v; // Eq. (9)
            }
            locals.push(gi);
        }
        let global_sq: f64 = global.iter().map(|v| v * v).sum();
        let samples: Vec<GradientSample> = batches
            .iter()
            .zip(&locals)
            .map(|(&b, gi)| GradientSample { local_batch: b, local_sq_norm: gi.iter().map(|v| v * v).sum() })
            .collect();
        for (idx, agg) in [Aggregation::MinimumVariance, Aggregation::NaiveMean].into_iter().enumerate() {
            if let Some(phi) = estimate_gns(&samples, global_sq, agg).ok().and_then(|e| e.noise_scale()) {
                stats[idx].0 += phi;
                stats[idx].1 += phi * phi;
            }
        }
    }

    for (idx, label) in ["Theorem 4.1 weights", "naive averaging"].iter().enumerate() {
        let mean = stats[idx].0 / trials as f64;
        let var = stats[idx].1 / trials as f64 - mean * mean;
        println!("{label:<22} mean phi = {mean:>7.2}  (bias {:+.1}%)  std = {:.2}", (mean / phi_true - 1.0) * 100.0, var.sqrt());
    }
    println!("\nboth estimators are unbiased; the minimum-variance weights shrink the spread");
}
