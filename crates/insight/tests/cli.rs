//! The `cannikin-insight` replay CLI, driven as a real subprocess: exit
//! codes gate on run health (0 healthy, 1 usage/parse error, 2 anomalies)
//! and the report text carries the detector verdicts.

use cannikin_telemetry::export::write_jsonl;
use cannikin_telemetry::{Event, Record, StepTiming};
use std::path::PathBuf;
use std::process::Command;

fn timing(step: u64, b: u64, t: f64) -> Event {
    Event::StepTiming(StepTiming { step, rank: 0, b_i: b, t_compute: t, t_comm: 0.0, overlap: 0.0 })
}

/// A synthetic single-node trace following `t = 0.01·b + 0.05`, with
/// `slow_steps` trailing steps at twice the law.
fn trace(name: &str, slow_steps: u64) -> PathBuf {
    let law = |b: f64| 0.01 * b + 0.05;
    let mut records = Vec::new();
    let mut step = 0u64;
    for _ in 0..8 {
        for b in [32u64, 48] {
            records.push(Record { ts_ns: step * 1_000, node: 0, rank: 0, event: timing(step, b, law(b as f64)) });
            step += 1;
        }
    }
    for _ in 0..slow_steps {
        records.push(Record {
            ts_ns: step * 1_000,
            node: 0,
            rank: 0,
            event: timing(step, 32, 2.0 * law(32.0)),
        });
        step += 1;
    }
    let dir = std::env::temp_dir().join("cannikin-insight-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    write_jsonl(&path, &records).expect("write trace");
    path
}

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_insight")).args(args).output().expect("spawn CLI");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn healthy_trace_exits_zero_with_exact_agreement() {
    let path = trace("healthy.jsonl", 0);
    let (code, stdout, _) = run(&[path.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("agreement: EXACT"), "{stdout}");
    assert!(stdout.contains("step_timing"), "{stdout}");
}

#[test]
fn straggling_trace_exits_two_and_names_the_straggler() {
    let path = trace("straggler.jsonl", 4);
    let (code, stdout, _) = run(&[path.to_str().unwrap()]);
    assert_eq!(code, 2, "{stdout}");
    assert!(stdout.contains("straggler"), "{stdout}");
}

#[test]
fn usage_and_parse_errors_exit_one() {
    let (code, _, stderr) = run(&[]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");

    let dir = std::env::temp_dir().join("cannikin-insight-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let garbage = dir.join("garbage.jsonl");
    std::fs::write(&garbage, "not json\n").expect("write garbage");
    let (code, _, stderr) = run(&[garbage.to_str().unwrap()]);
    assert_eq!(code, 1, "{stderr}");
}
