//! Dump plotting-ready CSV series for the convergence figures.
//!
//! ```text
//! traces <output-dir>
//! ```
//!
//! Writes one CSV per (figure, task): the Fig. 6 epoch series for
//! CIFAR-10 and the Fig. 7 metric-vs-time series for every system on
//! CIFAR-10 and ImageNet. Columns are self-describing; feed them to any
//! plotting tool to recreate the paper's visuals from this reproduction.

use cannikin_bench::runners::{run_to_target, System};
use cannikin_workloads::{clusters, profiles};
use std::fs;
use std::io::Write;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "traces_out".to_string());
    fs::create_dir_all(&out_dir)?;
    let cluster = clusters::cluster_b();

    for profile in [profiles::cifar10_resnet18(), profiles::imagenet_resnet50()] {
        let slug = profile.name().replace('/', "_").to_lowercase();
        for system in System::all() {
            let records = run_to_target(system, &profile, &cluster, 7, 20_000);
            let path = Path::new(&out_dir).join(format!("{}_{}.csv", slug, system.label().to_lowercase().replace('-', "_")));
            let mut file = fs::File::create(&path)?;
            writeln!(
                file,
                "epoch,total_batch,accumulation,steps,epoch_time_s,cumulative_time_s,effective_epochs,efficiency,noise_scale,metric"
            )?;
            for r in &records {
                writeln!(
                    file,
                    "{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.3},{:.6}",
                    r.epoch,
                    r.total_batch,
                    r.accumulation,
                    r.steps,
                    r.epoch_time,
                    r.cumulative_time,
                    r.effective_epochs,
                    r.efficiency,
                    r.noise_scale,
                    profile.metric_at(r.effective_epochs),
                )?;
            }
            eprintln!("wrote {} ({} epochs)", path.display(), records.len());
        }
    }
    eprintln!("done; plot metric vs cumulative_time_s for the Fig. 7 curves");
    Ok(())
}
