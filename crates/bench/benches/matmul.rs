//! Criterion bench: dense matmul kernels.
//!
//! Compares the naive reference kernels against the cache-blocked packed
//! kernels, single-threaded and with the full configured thread budget,
//! at the shapes that dominate the minidnn hot path: tiny layers (32²),
//! mid-size hidden layers (256²), and a tall-skinny im2col-style product
//! (1024×512×256).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minidnn::tensor::threads::{configured_threads, with_threads};
use minidnn::tensor::{gemm, reference, Tensor};
use std::hint::black_box;

/// Deterministic pseudo-random tensor without touching the global rng.
fn input(shape: &[usize], seed: u64) -> Tensor {
    Tensor::randn(shape, seed)
}

fn bench_matmul(c: &mut Criterion) {
    // (m, k, n) triples: square small, square medium, tall-skinny conv-like.
    let shapes: &[(usize, usize, usize)] = &[(32, 32, 32), (256, 256, 256), (1024, 512, 256)];

    let mut group = c.benchmark_group("matmul");
    for &(m, k, n) in shapes {
        let a = input(&[m, k], 11);
        let b = input(&[k, n], 12);
        let flops = 2 * m as u64 * n as u64 * k as u64;
        group.throughput(Throughput::Elements(flops));
        let label = format!("{m}x{k}x{n}");

        group.bench_function(BenchmarkId::new("reference", &label), |bench| {
            bench.iter(|| black_box(reference::matmul(black_box(&a), black_box(&b))));
        });

        group.bench_function(BenchmarkId::new("blocked_1thread", &label), |bench| {
            let mut out = vec![0.0f32; m * n];
            bench.iter(|| {
                with_threads(1, || gemm(m, n, k, black_box(a.data()), black_box(b.data()), &mut out, false));
                black_box(&out);
            });
        });

        group.bench_function(BenchmarkId::new("blocked_threads", &label), |bench| {
            let t = configured_threads();
            let mut out = vec![0.0f32; m * n];
            bench.iter(|| {
                with_threads(t, || gemm(m, n, k, black_box(a.data()), black_box(b.data()), &mut out, false));
                black_box(&out);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
