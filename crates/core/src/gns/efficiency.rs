//! Statistical efficiency and goodput (§2.1, §4.1).

/// Statistical efficiency of training at global batch `batch` relative to
/// the reference batch `base_batch`, given gradient noise scale φ:
///
/// ```text
/// η(B) = (B₀ + φ) / (B + φ)
/// ```
///
/// This is the McCandlish et al. examples-to-target ratio: reaching a
/// fixed loss needs `∝ B + φ` examples at batch `B`, so each sample at
/// batch `B` is worth `η(B)` samples at batch `B₀`. `η > 1` for `B < B₀`
/// and `η → φ/(B+φ) · …` decays toward 0 as `B` grows far beyond the noise
/// scale — exactly the diminishing returns adaptive batch sizing exploits.
///
/// # Panics
///
/// Panics if any argument is non-positive.
pub fn statistical_efficiency(noise_scale: f64, base_batch: u64, batch: u64) -> f64 {
    assert!(noise_scale > 0.0, "noise scale must be positive");
    assert!(base_batch > 0 && batch > 0, "batch sizes must be positive");
    (base_batch as f64 + noise_scale) / (batch as f64 + noise_scale)
}

/// Goodput (Pollux): throughput × statistical efficiency, in
/// *reference-batch-equivalent* samples per second.
///
/// `batch_time` is the (predicted or measured) wall time of one batch of
/// `batch` samples.
///
/// # Panics
///
/// Panics if `batch_time` is non-positive or the efficiency arguments are
/// invalid.
pub fn goodput(noise_scale: f64, base_batch: u64, batch: u64, batch_time: f64) -> f64 {
    assert!(batch_time > 0.0, "batch time must be positive");
    let throughput = batch as f64 / batch_time;
    throughput * statistical_efficiency(noise_scale, base_batch, batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_is_one_at_base() {
        assert!((statistical_efficiency(100.0, 64, 64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_decreases_with_batch() {
        let e1 = statistical_efficiency(100.0, 64, 128);
        let e2 = statistical_efficiency(100.0, 64, 1024);
        assert!(e1 < 1.0 && e2 < e1);
    }

    #[test]
    fn high_noise_tolerates_large_batches() {
        // With huge noise, large batches barely lose efficiency.
        let noisy = statistical_efficiency(1e6, 64, 4096);
        let quiet = statistical_efficiency(10.0, 64, 4096);
        assert!(noisy > 0.99);
        assert!(quiet < 0.05);
    }

    #[test]
    fn goodput_balances_throughput_and_efficiency() {
        // Perfect linear scaling of throughput: doubling B halves the batch
        // time contribution per sample. With low noise, goodput should NOT
        // keep improving with batch size.
        let phi = 1000.0;
        let t = |b: u64| 0.1 + b as f64 * 0.001; // linear batch time
        let g_small = goodput(phi, 64, 64, t(64));
        let g_mid = goodput(phi, 64, 256, t(256));
        let g_huge = goodput(phi, 64, 16384, t(16384));
        assert!(g_mid > g_small, "mid {g_mid} vs small {g_small}");
        assert!(g_huge < g_mid, "huge {g_huge} vs mid {g_mid}");
    }

    #[test]
    fn goodput_optimum_tracks_noise_scale() {
        // The goodput-maximizing batch size grows with φ.
        let t = |b: u64| 0.1 + b as f64 * 0.001;
        let argmax = |phi: f64| {
            (1u64..200)
                .map(|i| i * 32)
                .max_by(|&a, &b| goodput(phi, 64, a, t(a)).total_cmp(&goodput(phi, 64, b, t(b))))
                .unwrap()
        };
        let low = argmax(50.0);
        let high = argmax(2000.0);
        assert!(high > low, "low-noise argmax {low}, high-noise argmax {high}");
    }
}
