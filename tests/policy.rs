//! Policy-protocol equivalence and determinism suite.
//!
//! The golden fixtures under `tests/golden/` were captured from the
//! pre-refactor inline planner (the `run_epoch` logic before the
//! ask/tell `Policy` trait existed) under pinned seeds. The equivalence
//! tests re-run the same pinned configurations and demand *bitwise*
//! agreement — every `f64` is compared by its bit pattern — so the
//! `OptPerfGoodput` extraction is provably a pure refactor.
//!
//! Regenerate the fixtures (only legitimate when intentionally changing
//! planner behavior) with:
//!
//! ```text
//! CANNIKIN_BLESS=1 cargo test --test policy
//! ```
//!
//! What is canonicalized away before comparison, and why:
//! - record `ts_ns` and the `overhead_s` counter are wall-clock
//!   measurements of the host machine, not planner outputs;
//! - `EpochRecord::{overhead_seconds, cumulative_time}` likewise embed
//!   wall-clock optimizer overhead;
//! - `policy_decision` telemetry lines are skipped: the event did not
//!   exist pre-refactor, and it only *names* the policy that produced
//!   the adjacent (fully compared) `split_decision`.
//! Everything else — splits, totals, accumulation, simulated times,
//! noise scales, efficiencies, fault/recovery counts, and the full
//! telemetry stream — must match byte for byte.

use cannikin::prelude::*;
use cannikin::telemetry::{Event, Record, Session};
use hetsim::catalog::Gpu;
use std::path::PathBuf;

fn cluster() -> ClusterSpec {
    ClusterSpec::new(
        "golden",
        vec![
            NodeSpec::new("a100", Gpu::A100),
            NodeSpec::new("v100", Gpu::V100),
            NodeSpec::new("rtx", Gpu::Rtx6000),
        ],
    )
}

fn builder(seed: u64, adaptive: bool) -> CannikinTrainerBuilder {
    CannikinTrainer::builder()
        .simulator(Simulator::new(cluster(), JobSpec::resnet18_cifar10(), seed))
        .noise(LinearNoiseGrowth { initial: 300.0, rate: 1.0 })
        .dataset_size(6_400)
        .batch_range(64, 512)
        .adaptive_batch(adaptive)
}

/// Hex bit pattern of an `f64` — the literal form of "bitwise identical".
fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// One canonical line per epoch, every float as its bit pattern. The two
/// wall-clock-derived fields (`overhead_seconds`, `cumulative_time`) are
/// excluded; everything else the planner influences is included.
fn record_line(r: &EpochRecord) -> String {
    format!(
        "epoch={} total={} local={:?} steps={} accum={} t={} mbt={} phi={} eff={} eff_epochs={} pattern={:?} used_model={} faults={} recoveries={}",
        r.epoch,
        r.total_batch,
        r.local_batches,
        r.steps,
        r.accumulation,
        hex(r.epoch_time),
        hex(r.mean_batch_time),
        hex(r.noise_scale),
        hex(r.efficiency),
        hex(r.effective_epochs),
        r.pattern,
        r.used_model,
        r.faults,
        r.recoveries,
    )
}

fn records_text(records: &[EpochRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&record_line(r));
        out.push('\n');
    }
    out
}

/// Zero a `"<field>":<integer>` payload entry in a JSONL line (used for
/// the wall-clock `wall_ns` measurements some events carry).
fn zero_int_field(line: &str, field: &str) -> String {
    let needle = format!("\"{field}\":");
    let Some(start) = line.find(&needle) else { return line.to_string() };
    let digits_start = start + needle.len();
    let digits_end = line[digits_start..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(line.len(), |i| digits_start + i);
    format!("{}{}0{}", &line[..start], needle, &line[digits_end..])
}

/// Canonical JSONL: timestamps and `wall_ns` measurements zeroed,
/// wall-clock counters and the post-refactor `policy_decision`
/// annotations dropped. Record order is emission order (the capture runs
/// single-threaded).
fn canonical_jsonl(records: Vec<Record>) -> String {
    let mut out = String::new();
    for r in records {
        match &r.event {
            Event::Counter(c) if c.name == "overhead_s" => continue,
            e if e.kind() == "policy_decision" => continue,
            _ => {}
        }
        let canon = Record { ts_ns: 0, ..r };
        out.push_str(&zero_int_field(&canon.to_jsonl_line(), "wall_ns"));
        out.push('\n');
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compare `text` against the committed fixture, or rewrite the fixture
/// when `CANNIKIN_BLESS` is set.
fn check_golden(name: &str, text: &str) {
    let path = golden_path(name);
    if std::env::var_os("CANNIKIN_BLESS").is_some() {
        std::fs::write(&path, text).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); run CANNIKIN_BLESS=1 cargo test --test policy", path.display()));
    if expected != text {
        let diff_at = expected
            .lines()
            .zip(text.lines())
            .position(|(a, b)| a != b)
            .map(|i| {
                format!(
                    "first divergence at line {}:\n  golden:  {}\n  current: {}",
                    i + 1,
                    expected.lines().nth(i).unwrap_or(""),
                    text.lines().nth(i).unwrap_or(""),
                )
            })
            .unwrap_or_else(|| {
                format!("line counts differ: golden {} vs current {}", expected.lines().count(), text.lines().count())
            });
        panic!("{name} diverged from the pre-refactor inline planner.\n{diff_at}");
    }
}

/// Adaptive pipeline run: even init → Eq. (8) bootstrap → solver +
/// goodput engine, with the full telemetry stream captured. This is the
/// main equivalence witness.
#[test]
fn optperf_goodput_adaptive_run_matches_golden() {
    let session = Session::start_tagged("policy-golden/adaptive");
    let mut t = builder(11, true).build().expect("valid config");
    let records = t.run_epochs(10).expect("run");
    let stream = session.drain();
    drop(session);
    check_golden("trainer_adaptive_records.txt", &records_text(&records));
    check_golden("trainer_adaptive_stream.jsonl", &canonical_jsonl(stream));
}

/// Fixed-batch mode pins the total but still routes the split through the
/// solver — the non-adaptive arm of the planner.
#[test]
fn optperf_goodput_fixed_batch_run_matches_golden() {
    let mut t = builder(11, false).build().expect("valid config");
    let records = t.run_epochs(6).expect("run");
    check_golden("trainer_fixed_records.txt", &records_text(&records));
}

/// Warm start skips the bootstrap epochs: epoch 0 must already plan from
/// the checkpointed model (the `WarmStart` split source).
#[test]
fn optperf_goodput_warm_start_run_matches_golden() {
    let checkpoint = SolverInput::from_ground_truth(&cluster(), &JobSpec::resnet18_cifar10());
    let mut t = builder(19, true).warm_start(checkpoint).build().expect("valid config");
    let records = t.run_epochs(4).expect("run");
    check_golden("trainer_warm_records.txt", &records_text(&records));
}

/// The bandit policy is deterministic under its pinned seed: two
/// identical trainers produce bitwise-identical epoch records, so RL
/// cells in the scenario matrix stay byte-stable across CI runs.
#[test]
fn rl_policy_same_seed_runs_are_bitwise_identical() {
    let run = || {
        let mut t = builder(13, true).policy(PolicyKind::Rl).build().expect("valid config");
        records_text(&t.run_epochs(12).expect("run"))
    };
    let first = run();
    assert_eq!(first, run(), "same-seed RL runs must agree bit for bit");
    // And the bandit must actually explore: batch totals move off B0.
    assert!(
        first.lines().any(|l| !l.contains("total=64 ")),
        "the bandit never left the base batch:\n{first}"
    );
}

/// A mid-epoch crash forces the eviction + replan path, which also
/// rebuilds the goodput candidate cache — the planner state the refactor
/// moves into the policy.
#[test]
fn optperf_goodput_fault_run_matches_golden() {
    let sim = Simulator::new(cluster(), JobSpec::resnet18_cifar10(), 21)
        .with_fault_plan(FaultPlan::new(9).crash_at(250, 1));
    let mut t = CannikinTrainer::builder()
        .simulator(sim)
        .noise(LinearNoiseGrowth { initial: 300.0, rate: 1.0 })
        .dataset_size(6_400)
        .batch_range(64, 512)
        .adaptive_batch(true)
        .build()
        .expect("valid config");
    let records = t.run_epochs(5).expect("run");
    check_golden("trainer_fault_records.txt", &records_text(&records));
}
