//! The analyzer: batch traces in, solver inputs out.

use super::fuse::WeightedFuser;
use super::MeasurementAggregation;
use crate::error::CannikinError;
use crate::linalg::fit_line_weighted;
use crate::optperf::{NodePerf, SolverInput};

use hetsim::trace::BatchTrace;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Default)]
struct RunningPair {
    count: f64,
    mean_a: f64,
    mean_p: f64,
    /// Analyzer batch counter at the last observation of this size.
    last_seen: usize,
    /// Consecutive observations that deviated far from the running mean.
    outlier_streak: u32,
}

#[derive(Debug, Clone, Default)]
struct NodeHistory {
    /// Recency-weighted mean of (a, P) per observed local batch size.
    by_batch: BTreeMap<u64, RunningPair>,
    /// Most recent per-sample compute time (for the Eq. (8) bootstrap).
    last_per_sample: Option<f64>,
}

impl NodeHistory {
    fn observe(&mut self, b: u64, a: f64, p: f64, now: usize) {
        // Change-point detection with outlier gating: a >30% deviation at
        // an already-warm batch size is either a transient straggler spike
        // (GC pause, preemption — exclude it from the mean entirely) or,
        // if it *persists* for several consecutive batches, a regime
        // change (a co-located workload appeared or left, §6) — then every
        // cached size is from the old regime, so drop the history and
        // relearn.
        let mut gated = false;
        if let Some(e) = self.by_batch.get_mut(&b) {
            if e.count >= 8.0 {
                let da = (a - e.mean_a).abs() / e.mean_a.max(1e-12);
                let dp = (p - e.mean_p).abs() / e.mean_p.max(1e-12);
                if da > 0.30 || dp > 0.30 {
                    e.outlier_streak += 1;
                    gated = true;
                } else {
                    e.outlier_streak = 0;
                }
                if e.outlier_streak >= 5 {
                    self.by_batch.clear();
                    gated = false; // the observation seeds the new regime
                }
            }
        }
        let entry = self.by_batch.entry(b).or_default();
        entry.last_seen = now;
        if !gated {
            entry.count += 1.0;
            // Mean until warm, then EMA: keeps the entry tracking the
            // *current* node speed instead of its lifetime average.
            let alpha = (1.0 / entry.count).max(0.05);
            entry.mean_a += alpha * (a - entry.mean_a);
            entry.mean_p += alpha * (p - entry.mean_p);
        }
        if b > 0 {
            // Smoothed per-sample time: the Eq. (8) bootstrap divides by
            // this, so a single noisy batch must not swing the split.
            let instant = (a + p) / b as f64;
            self.last_per_sample = Some(match self.last_per_sample {
                Some(prev) => prev + 0.1 * (instant - prev),
                None => instant,
            });
        }
    }

    /// Recency-weighted least squares: `(q, s)` over `a` and `(k, m)` over
    /// `P`. Entries not refreshed within `window` batches decay away, so a
    /// contention change invalidates pre-change sizes instead of letting
    /// them anchor a wrong slope.
    fn fit(&self, now: usize, window: usize) -> Option<(f64, f64, f64, f64)> {
        if self.by_batch.len() < 2 {
            return None;
        }
        let weight = |entry: &RunningPair| {
            let age = now.saturating_sub(entry.last_seen) as f64;
            (-age / window as f64).exp()
        };
        let a_pts: Vec<(f64, f64, f64)> =
            self.by_batch.iter().map(|(&b, e)| (b as f64, e.mean_a, weight(e))).collect();
        let p_pts: Vec<(f64, f64, f64)> =
            self.by_batch.iter().map(|(&b, e)| (b as f64, e.mean_p, weight(e))).collect();
        let (q, s) = fit_line_weighted(&a_pts)?;
        let (k, m) = fit_line_weighted(&p_pts)?;
        // Noise can produce non-physical fits early on; report not-ready
        // rather than handing the solver a negative slope.
        if q <= 0.0 || k <= 0.0 {
            return None;
        }
        Some((q, s.max(0.0), k, m.max(0.0)))
    }
}

/// Learns per-node compute models and cluster communication constants
/// from [`BatchTrace`]s.
///
/// # Examples
///
/// ```
/// use cannikin_core::perf::{Analyzer, MeasurementAggregation};
/// use hetsim::catalog::Gpu;
/// use hetsim::cluster::{ClusterSpec, NodeSpec};
/// use hetsim::job::JobSpec;
/// use hetsim::Simulator;
///
/// let cluster = ClusterSpec::new(
///     "d",
///     vec![NodeSpec::new("a", Gpu::A100), NodeSpec::new("b", Gpu::V100)],
/// );
/// let mut sim = Simulator::new(cluster, JobSpec::resnet18_cifar10(), 7);
/// let mut analyzer = Analyzer::new(2, MeasurementAggregation::InverseVariance);
/// for local in [[32u64, 32], [48, 16]] {
///     for _ in 0..4 {
///         analyzer.observe_batch(&sim.simulate_batch(&local));
///     }
/// }
/// let input = analyzer.solver_input().expect("two batch sizes seen");
/// assert_eq!(input.nodes.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Analyzer {
    nodes: Vec<NodeHistory>,
    gamma: WeightedFuser,
    t_comm: WeightedFuser,
    t_u: WeightedFuser,
    max_batches: Vec<Option<u64>>,
    batches_seen: usize,
    staleness_window: usize,
}

impl Analyzer {
    /// Create an analyzer for `n` nodes. Sudden regime shifts are handled
    /// by change-point detection (see `NodeHistory::observe`); the
    /// staleness window is a long backstop (~50k batches) that only
    /// retires sizes never revisited across many epochs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, aggregation: MeasurementAggregation) -> Self {
        assert!(n > 0, "analyzer needs at least one node");
        Analyzer {
            nodes: vec![NodeHistory::default(); n],
            gamma: WeightedFuser::new(aggregation),
            t_comm: WeightedFuser::new(aggregation),
            t_u: WeightedFuser::new(aggregation),
            max_batches: vec![None; n],
            batches_seen: 0,
            staleness_window: 50_000,
        }
    }

    /// Set how many batches an observation stays influential (builder
    /// style). Shorter windows adapt faster to resource changes; longer
    /// windows average out more noise.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn with_staleness_window(mut self, window: usize) -> Self {
        assert!(window > 0, "staleness window must be positive");
        self.staleness_window = window;
        self
    }

    /// Provide per-node memory caps that will be attached to solver inputs
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the node count.
    #[must_use]
    pub fn with_max_batches(mut self, caps: Vec<Option<u64>>) -> Self {
        assert_eq!(caps.len(), self.nodes.len(), "one cap per node");
        self.max_batches = caps;
        self
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the analyzer tracks no nodes (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of batch traces absorbed.
    pub fn batches_seen(&self) -> usize {
        self.batches_seen
    }

    /// Preload learned models from a checkpoint (e.g. the `SolverInput`
    /// of a previous run of the same job on the same cluster): each node's
    /// history is seeded with two synthetic warm observations derived from
    /// the model, and the communication fusers are seeded with the
    /// checkpointed constants. Training can then skip the bootstrap epochs
    /// entirely; genuine observations keep refining (and, via change-point
    /// detection, can discard) the preloaded state.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's node count differs from the analyzer's.
    pub fn preload_models(&mut self, checkpoint: &SolverInput) {
        assert_eq!(checkpoint.len(), self.nodes.len(), "checkpoint node count mismatch");
        for (history, node) in self.nodes.iter_mut().zip(&checkpoint.nodes) {
            for b in [8u64, 24] {
                let entry = history.by_batch.entry(b).or_default();
                entry.count = 8.0;
                entry.mean_a = node.q * b as f64 + node.s;
                entry.mean_p = node.p(b as f64);
                entry.last_seen = 0;
            }
            history.last_per_sample = Some(node.compute(16.0) / 16.0);
        }
        // Seed the fusers with tight-variance pseudo-observations so real
        // measurements still dominate over time.
        self.gamma.observe(checkpoint.gamma, 1e-4);
        self.t_comm.observe(checkpoint.t_comm(), 1e-4);
        self.t_u.observe(checkpoint.t_u, 1e-4);
    }

    /// Fold in one batch trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace's node count differs from the analyzer's.
    pub fn observe_batch(&mut self, trace: &BatchTrace) {
        assert_eq!(trace.observations.len(), self.nodes.len(), "trace node count mismatch");
        for obs in &trace.observations {
            self.nodes[obs.node].observe(obs.local_batch, obs.a_time, obs.p_time, self.batches_seen);
            self.gamma.observe(obs.gamma_obs, obs.rel_variance);
            self.t_comm.observe(obs.t_comm_obs, obs.rel_variance);
            self.t_u.observe(obs.t_u_obs, obs.rel_variance);
        }
        self.batches_seen += 1;
    }

    /// The learned model for one node.
    ///
    /// # Errors
    ///
    /// [`CannikinError::ModelNotReady`] until the node has been observed at
    /// two distinct local batch sizes (with physically plausible fits).
    pub fn node_model(&self, node: usize) -> Result<NodePerf, CannikinError> {
        let (q, s, k, m) = self.nodes[node]
            .fit(self.batches_seen, self.staleness_window)
            .ok_or(CannikinError::ModelNotReady { node })?;
        Ok(NodePerf { q, s, k, m, max_batch: self.max_batches[node] })
    }

    /// Discard one node's learned compute model — the hook an external
    /// monitor (e.g. a `cannikin-insight` straggler detector) uses to force
    /// a re-profile: with the history cleared, [`Analyzer::node_model`]
    /// reports not-ready, the engine falls back to the Eq. (8) bootstrap,
    /// and the node is relearned in its new regime. The smoothed per-sample
    /// time is kept (the bootstrap divides by it, and it keeps tracking the
    /// node's current speed), as are the cluster-wide communication fusers.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn reset_node(&mut self, node: usize) {
        self.nodes[node].by_batch.clear();
    }

    /// Evict a node (crash or graceful leave): its history and memory cap
    /// are dropped and every higher index shifts down by one, mirroring
    /// [`hetsim::Simulator::remove_node`]. The surviving nodes keep their
    /// learned models and the cluster-wide communication fusers keep their
    /// fused state, so the solver can re-engage immediately after an
    /// elastic shrink instead of re-profiling from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or the analyzer would become empty.
    pub fn remove_node(&mut self, node: usize) {
        assert!(node < self.nodes.len(), "node {node} out of range");
        assert!(self.nodes.len() > 1, "cannot remove the last node");
        self.nodes.remove(node);
        self.max_batches.remove(node);
    }

    /// Admit a freshly joined node with an optional memory cap. Its
    /// history starts empty, so [`Analyzer::solver_input`] reports
    /// not-ready until the newcomer has been profiled at two distinct
    /// local batch sizes (the engine routes through the bootstrap in the
    /// meantime).
    pub fn add_node(&mut self, max_batch: Option<u64>) {
        self.nodes.push(NodeHistory::default());
        self.max_batches.push(max_batch);
    }

    /// Most recent per-sample compute time of a node (drives Eq. (8)).
    pub fn per_sample_time(&self, node: usize) -> Option<f64> {
        self.nodes[node].last_per_sample
    }

    /// The fused overlap ratio γ, if any observation arrived.
    pub fn gamma(&self) -> Option<f64> {
        self.gamma.estimate().map(|f| f.value)
    }

    /// The fused total synchronization time `T_comm`.
    pub fn t_comm(&self) -> Option<f64> {
        self.t_comm.estimate().map(|f| f.value)
    }

    /// The fused last-bucket time `T_u`.
    pub fn t_u(&self) -> Option<f64> {
        self.t_u.estimate().map(|f| f.value)
    }

    /// Assemble a full solver input from the learned state.
    ///
    /// # Errors
    ///
    /// [`CannikinError::ModelNotReady`] if any node lacks a model or no
    /// communication observations have arrived.
    pub fn solver_input(&self) -> Result<SolverInput, CannikinError> {
        let nodes: Vec<NodePerf> = (0..self.nodes.len()).map(|i| self.node_model(i)).collect::<Result<_, _>>()?;
        let gamma = self.gamma().ok_or(CannikinError::ModelNotReady { node: 0 })?;
        let t_comm = self.t_comm().ok_or(CannikinError::ModelNotReady { node: 0 })?;
        let t_u = self.t_u().ok_or(CannikinError::ModelNotReady { node: 0 })?;
        // Clamp into physical ranges: γ strictly inside (0,1), T_u ≤ T_comm.
        let gamma = gamma.clamp(1e-3, 1.0 - 1e-3);
        let t_u = t_u.clamp(0.0, t_comm);
        Ok(SolverInput { nodes, gamma, t_o: t_comm - t_u, t_u })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::job::JobSpec;
    use hetsim::Simulator;

    fn cluster() -> ClusterSpec {
        ClusterSpec::new(
            "t",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        )
    }

    #[test]
    fn model_not_ready_with_one_batch_size() {
        let mut sim = Simulator::new(cluster(), JobSpec::resnet18_cifar10(), 1);
        let mut an = Analyzer::new(3, MeasurementAggregation::InverseVariance);
        for _ in 0..5 {
            an.observe_batch(&sim.simulate_batch(&[32, 32, 32]));
        }
        assert!(matches!(an.node_model(0), Err(CannikinError::ModelNotReady { .. })));
        assert!(an.solver_input().is_err());
    }

    #[test]
    fn learns_ground_truth_coefficients_without_noise() {
        let mut sim = Simulator::new(cluster(), JobSpec::resnet50_imagenet(), 2).with_noise(0.0, 0.0);
        let mut an = Analyzer::new(3, MeasurementAggregation::InverseVariance);
        for local in [[48u64, 24, 12], [24, 12, 6]] {
            an.observe_batch(&sim.simulate_batch(&local));
        }
        for i in 0..3 {
            let learned = an.node_model(i).unwrap();
            let truth = sim.true_coefficients(i);
            assert!((learned.q - truth.q).abs() / truth.q < 1e-9, "node {i} q");
            assert!((learned.s - truth.s).abs() / truth.s < 1e-9, "node {i} s");
            assert!((learned.k - truth.k).abs() / truth.k < 1e-9, "node {i} k");
            assert!((learned.m - truth.m).abs() / truth.m < 1e-9, "node {i} m");
        }
    }

    #[test]
    fn learns_accurate_models_under_noise() {
        let mut sim = Simulator::new(cluster(), JobSpec::resnet50_imagenet(), 3);
        let mut an = Analyzer::new(3, MeasurementAggregation::InverseVariance);
        // Several epochs at several batch sizes, many batches each.
        for local in [[48u64, 24, 12], [32, 16, 8], [64, 32, 16], [40, 20, 10]] {
            for _ in 0..40 {
                an.observe_batch(&sim.simulate_batch(&local));
            }
        }
        let input = an.solver_input().unwrap();
        for i in 0..3 {
            let truth = sim.true_coefficients(i);
            assert!((input.nodes[i].q / truth.q - 1.0).abs() < 0.05, "node {i} q error");
            assert!((input.nodes[i].k / truth.k - 1.0).abs() < 0.05, "node {i} k error");
        }
        let (t_comm, _, t_u) = sim.true_comm();
        assert!((input.t_comm() / t_comm - 1.0).abs() < 0.05);
        assert!((input.t_u / t_u - 1.0).abs() < 0.25); // single-bucket obs is noisier
        assert!((input.gamma / sim.job().gamma - 1.0).abs() < 0.05);
    }

    #[test]
    fn per_sample_time_tracks_latest_batch() {
        let mut sim = Simulator::new(cluster(), JobSpec::resnet18_cifar10(), 4).with_noise(0.0, 0.0);
        let mut an = Analyzer::new(3, MeasurementAggregation::InverseVariance);
        an.observe_batch(&sim.simulate_batch(&[30, 30, 30]));
        let t = an.per_sample_time(2).unwrap();
        let truth = sim.true_coefficients(2).compute(30.0) / 30.0;
        assert!((t - truth).abs() / truth < 1e-9);
        // The slow RTX must have a larger per-sample time than the A100.
        assert!(an.per_sample_time(2).unwrap() > an.per_sample_time(0).unwrap());
    }

    #[test]
    fn caps_propagate_to_solver_input() {
        let mut sim = Simulator::new(cluster(), JobSpec::resnet18_cifar10(), 5).with_noise(0.0, 0.0);
        let mut an = Analyzer::new(3, MeasurementAggregation::InverseVariance)
            .with_max_batches(vec![Some(100), Some(50), Some(25)]);
        for local in [[32u64, 16, 8], [16, 8, 4]] {
            an.observe_batch(&sim.simulate_batch(&local));
        }
        let input = an.solver_input().unwrap();
        assert_eq!(input.nodes[1].max_batch, Some(50));
    }

    #[test]
    fn remove_node_keeps_surviving_models() {
        let mut sim = Simulator::new(cluster(), JobSpec::resnet50_imagenet(), 2).with_noise(0.0, 0.0);
        let mut an = Analyzer::new(3, MeasurementAggregation::InverseVariance)
            .with_max_batches(vec![Some(100), Some(50), Some(25)]);
        for local in [[48u64, 24, 12], [24, 12, 6]] {
            an.observe_batch(&sim.simulate_batch(&local));
        }
        let rtx_truth = sim.true_coefficients(2);
        an.remove_node(1); // the V100 dies
        assert_eq!(an.len(), 2);
        let input = an.solver_input().expect("survivors keep their models");
        assert_eq!(input.nodes.len(), 2);
        assert!((input.nodes[1].q - rtx_truth.q).abs() / rtx_truth.q < 1e-9, "index 1 is now the RTX");
        assert_eq!(input.nodes[1].max_batch, Some(25), "caps shift with the nodes");
    }

    #[test]
    fn add_node_requires_profiling_the_newcomer() {
        let mut sim = Simulator::new(cluster(), JobSpec::resnet50_imagenet(), 2).with_noise(0.0, 0.0);
        let mut an = Analyzer::new(3, MeasurementAggregation::InverseVariance);
        for local in [[48u64, 24, 12], [24, 12, 6]] {
            an.observe_batch(&sim.simulate_batch(&local));
        }
        assert!(an.solver_input().is_ok());
        an.add_node(Some(64));
        assert_eq!(an.len(), 4);
        assert!(an.solver_input().is_err(), "newcomer has no model yet");
        assert!(an.per_sample_time(3).is_none());
    }

    #[test]
    fn ivw_input_predicts_better_than_naive() {
        // End-to-end §5.3 mechanism check: make one node's measurements
        // very noisy; the IVW analyzer's comm constants should be closer to
        // the truth than the naive analyzer's.
        let mut nodes = vec![
            NodeSpec::new("a100", Gpu::A100).with_measurement_sigma(0.01),
            NodeSpec::new("v100", Gpu::V100).with_measurement_sigma(0.01),
            NodeSpec::new("rtx", Gpu::Rtx6000).with_measurement_sigma(0.40),
        ];
        nodes[2].available_fraction = 1.0;
        let cluster = ClusterSpec::new("noisy", nodes);
        let job = JobSpec::resnet50_imagenet();
        let mut sim = Simulator::new(cluster, job, 6);
        let mut ivw = Analyzer::new(3, MeasurementAggregation::InverseVariance);
        let mut naive = Analyzer::new(3, MeasurementAggregation::NaiveMean);
        for local in [[48u64, 24, 12], [32, 16, 8]] {
            for _ in 0..30 {
                let t = sim.simulate_batch(&local);
                ivw.observe_batch(&t);
                naive.observe_batch(&t);
            }
        }
        let (t_comm_true, _, _) = sim.true_comm();
        let err_ivw = (ivw.t_comm().unwrap() - t_comm_true).abs();
        let err_naive = (naive.t_comm().unwrap() - t_comm_true).abs();
        assert!(err_ivw < err_naive, "ivw {err_ivw} vs naive {err_naive}");
    }
}

#[cfg(test)]
mod straggler_robustness {
    use super::*;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::job::JobSpec;
    use hetsim::Simulator;

    /// Transient straggler spikes (isolated 3x batches) must neither clear
    /// the learned history (they are not a regime change) nor drag the
    /// fitted model far from the truth.
    #[test]
    fn transient_stragglers_do_not_destroy_the_model() {
        let cluster = ClusterSpec::new(
            "t",
            vec![NodeSpec::new("a", Gpu::A100), NodeSpec::new("v", Gpu::V100), NodeSpec::new("r", Gpu::Rtx6000)],
        );
        let job = JobSpec::resnet50_imagenet();
        let mut sim = Simulator::new(cluster.clone(), job.clone(), 41).with_stragglers(0.08, 3.0);
        let mut an = Analyzer::new(3, MeasurementAggregation::InverseVariance);
        for local in [[48u64, 24, 12], [32, 16, 8], [64, 32, 16]] {
            for _ in 0..60 {
                an.observe_batch(&sim.simulate_batch(&local));
            }
        }
        let oracle = Simulator::new(cluster, job, 0);
        for node in 0..3 {
            let learned = an.node_model(node).expect("model survives stragglers");
            let truth = oracle.true_coefficients(node);
            // Spikes inflate the EMA slightly (they are real time the node
            // spent), but the slope must stay in the right ballpark.
            assert!((learned.k / truth.k - 1.0).abs() < 0.35, "node {node} k: {} vs {}", learned.k, truth.k);
            assert!(learned.q > 0.0 && learned.k > 0.0);
        }
    }

    /// A *sustained* slowdown, by contrast, must reset the history so the
    /// model tracks the new regime (the §6 contention scenario).
    #[test]
    fn sustained_slowdown_resets_and_relearns() {
        let cluster = ClusterSpec::new("t", vec![NodeSpec::new("a", Gpu::Rtx6000), NodeSpec::new("b", Gpu::Rtx6000)]);
        let job = JobSpec::resnet18_cifar10();
        let mut sim = Simulator::new(cluster, job, 42);
        let mut an = Analyzer::new(2, MeasurementAggregation::InverseVariance);
        for local in [[32u64, 32], [48, 16]] {
            for _ in 0..40 {
                an.observe_batch(&sim.simulate_batch(&local));
            }
        }
        let k_before = an.node_model(0).expect("ready").k;
        // Node 0 loses half its GPU.
        sim.set_contention(0, 0.5);
        for _ in 0..40 {
            an.observe_batch(&sim.simulate_batch(&[48, 16]));
        }
        // History cleared -> single batch size -> model not ready…
        // …until a second size arrives in the new regime.
        for _ in 0..40 {
            an.observe_batch(&sim.simulate_batch(&[32, 32]));
        }
        let k_after = an.node_model(0).expect("relearned").k;
        assert!(
            (k_after / k_before - 2.0).abs() < 0.3,
            "slope should double after 50% contention: {k_before} -> {k_after}"
        );
    }
}
