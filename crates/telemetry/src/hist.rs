//! Fixed-bucket histograms with quantile queries.
//!
//! The bucket layout is chosen at construction time ([`Histogram::linear`]
//! or [`Histogram::exponential`]) and never changes, so recording is a
//! branchless-ish binary search plus one counter increment, and two
//! histograms with the same layout [`merge`](Histogram::merge) by adding
//! counts. Quantiles interpolate linearly within the containing bucket,
//! which is the usual fixed-bucket trade-off: cheap and mergeable, with
//! error bounded by bucket width.

use serde::{Deserialize, Serialize};

/// Error returned by [`Histogram::merge`] when the two histograms were
/// built with different bucket layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutMismatch;

impl std::fmt::Display for LayoutMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("can only merge histograms with identical bucket layouts")
    }
}

impl std::error::Error for LayoutMismatch {}

/// A histogram over `f64` samples with immutable bucket bounds.
///
/// Bucket `i` covers `[bound[i-1], bound[i])` (with an implicit lower
/// edge at `min` for `i == 0`); samples at or above the last bound land
/// in a dedicated overflow bucket, samples below `min` in an underflow
/// bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower edge of the first bucket.
    min: f64,
    /// Strictly increasing upper bounds, one per regular bucket.
    bounds: Vec<f64>,
    /// One count per regular bucket.
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    sum: f64,
}

impl Histogram {
    /// A histogram with explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, not strictly increasing, or does not
    /// start above `min`.
    pub fn with_bounds(min: f64, bounds: Vec<f64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        let mut prev = min;
        for &b in &bounds {
            assert!(b > prev, "histogram bounds must be strictly increasing");
            prev = b;
        }
        let counts = vec![0; bounds.len()];
        Histogram { min, bounds, counts, underflow: 0, overflow: 0, sum: 0.0 }
    }

    /// `buckets` equal-width buckets covering `[min, max)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `max <= min`.
    pub fn linear(min: f64, max: f64, buckets: usize) -> Histogram {
        assert!(buckets > 0 && max > min, "invalid linear histogram layout");
        let width = (max - min) / buckets as f64;
        let bounds = (1..=buckets).map(|i| min + width * i as f64).collect();
        Histogram::with_bounds(min, bounds)
    }

    /// `buckets` buckets whose widths grow by `factor`, starting at
    /// `[0, first)`. Good for latencies spanning orders of magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`, `first <= 0`, or `factor <= 1`.
    pub fn exponential(first: f64, factor: f64, buckets: usize) -> Histogram {
        assert!(buckets > 0 && first > 0.0 && factor > 1.0, "invalid exponential histogram layout");
        let mut bounds = Vec::with_capacity(buckets);
        let mut edge = first;
        for _ in 0..buckets {
            bounds.push(edge);
            edge *= factor;
        }
        Histogram::with_bounds(0.0, bounds)
    }

    /// Record one sample. Non-finite samples are ignored.
    pub fn record(&mut self, sample: f64) {
        if !sample.is_finite() {
            return;
        }
        self.sum += sample;
        if sample < self.min {
            self.underflow += 1;
        } else {
            // partition_point: first bucket whose upper bound exceeds the sample.
            let idx = self.bounds.partition_point(|&b| b <= sample);
            if idx == self.bounds.len() {
                self.overflow += 1;
            } else {
                self.counts[idx] += 1;
            }
        }
    }

    /// Total recorded samples, including under/overflow.
    pub fn count(&self) -> u64 {
        self.underflow + self.overflow + self.counts.iter().sum::<u64>()
    }

    /// Mean of all recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        if n > 0 {
            Some(self.sum / n as f64)
        } else {
            None
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), linearly interpolated within
    /// the containing bucket. `None` when the histogram is empty.
    ///
    /// # Out-of-range samples
    ///
    /// Samples outside the bucket layout are *counted* but their values
    /// are not retained, so quantiles that land in the underflow bucket
    /// clamp to `min` and quantiles that land in the overflow bucket
    /// clamp to the last bound. In particular, a histogram holding
    /// **only** overflow samples answers every quantile — `q = 0`
    /// through `q = 1` — with the last bound, regardless of how far
    /// above it the samples actually were. Reading `p99 == last bound`
    /// together with a non-zero [`overflow`](Histogram::overflow) count
    /// therefore means "at least this much", not an exact estimate; size
    /// the layout so the tail you care about lands in a real bucket.
    ///
    /// ```
    /// use cannikin_telemetry::Histogram;
    ///
    /// let mut h = Histogram::linear(0.0, 10.0, 4);
    /// for _ in 0..5 {
    ///     h.record(1e6); // far beyond the last bound
    /// }
    /// assert_eq!(h.overflow(), 5);
    /// // Every quantile of an overflow-only histogram clamps to the
    /// // last bound (10.0) — the true magnitudes are not recoverable.
    /// assert_eq!(h.quantile(0.0), Some(10.0));
    /// assert_eq!(h.quantile(0.5), Some(10.0));
    /// assert_eq!(h.quantile(1.0), Some(10.0));
    /// // The mirror case: underflow-only histograms clamp to `min`.
    /// let mut low = Histogram::linear(5.0, 10.0, 4);
    /// low.record(-3.0);
    /// assert_eq!(low.quantile(0.5), Some(5.0));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.count();
        if total == 0 {
            return None;
        }
        // Rank of the requested quantile, 1-based; q=0 maps to rank 1.
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(self.min);
        }
        let mut lower = self.min;
        for (i, &count) in self.counts.iter().enumerate() {
            let upper = self.bounds[i];
            if count > 0 && rank <= seen + count {
                let into = (rank - seen) as f64 / count as f64;
                return Some(lower + (upper - lower) * into);
            }
            seen += count;
            lower = upper;
        }
        Some(*self.bounds.last().expect("non-empty bounds"))
    }

    /// Add another histogram's counts into this one.
    ///
    /// Merging is only meaningful bucket-by-bucket, so the two layouts
    /// (`min` and every bound) must be identical; otherwise `self` is left
    /// untouched and a [`LayoutMismatch`] is returned.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), LayoutMismatch> {
        if self.min != other.min || self.bounds != other.bounds {
            return Err(LayoutMismatch);
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.sum += other.sum;
        Ok(())
    }

    /// Samples that fell at or above the last bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Samples that fell below `min`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_layout_places_samples() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        for s in [0.0, 0.5, 3.3, 9.99] {
            h.record(s);
        }
        h.record(-1.0); // underflow
        h.record(10.0); // at the top bound → overflow
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 6);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::linear(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        // Uniform data: quantile ≈ value, within one bucket width.
        for q in [0.1, 0.25, 0.5, 0.9, 0.99] {
            let got = h.quantile(q).unwrap();
            assert!((got - q * 100.0).abs() <= 1.0, "q={q} got={got}");
        }
        assert_eq!(h.quantile(0.0).unwrap(), 1.0); // rank 1 → first bucket's top
        assert_eq!(h.quantile(1.0).unwrap(), 100.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::exponential(1e-6, 2.0, 24);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_adds_counts_and_preserves_quantiles() {
        let mut a = Histogram::linear(0.0, 10.0, 20);
        let mut b = Histogram::linear(0.0, 10.0, 20);
        for i in 0..50 {
            a.record(i as f64 % 5.0);
            b.record(5.0 + i as f64 % 5.0);
        }
        let a_only_median = a.quantile(0.5).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 100);
        let merged_median = a.quantile(0.5).unwrap();
        assert!(merged_median > a_only_median, "merge should pull the median up");
        let mean = a.mean().unwrap();
        assert!((mean - 4.5).abs() < 1e-9, "mean={mean}");
    }

    #[test]
    fn merging_mismatched_layouts_is_rejected() {
        let mut a = Histogram::linear(0.0, 10.0, 10);
        a.record(1.0);
        let snapshot = a.clone();
        // Different bounds.
        assert_eq!(a.merge(&Histogram::linear(0.0, 20.0, 10)), Err(LayoutMismatch));
        // Same bounds, different min.
        assert_eq!(a.merge(&Histogram::with_bounds(-1.0, (1..=10).map(f64::from).collect())), Err(LayoutMismatch));
        // Different bucket count.
        assert_eq!(a.merge(&Histogram::linear(0.0, 10.0, 5)), Err(LayoutMismatch));
        assert_eq!(a, snapshot, "failed merge must leave the target untouched");
    }

    #[test]
    fn merging_empty_histograms_is_a_noop() {
        let mut a = Histogram::linear(0.0, 10.0, 10);
        a.record(3.0);
        let before = a.clone();
        a.merge(&Histogram::linear(0.0, 10.0, 10)).unwrap();
        assert_eq!(a, before);
        // Empty ← non-empty adopts the source's contents.
        let mut empty = Histogram::linear(0.0, 10.0, 10);
        empty.merge(&a).unwrap();
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.quantile(0.5), a.quantile(0.5));
    }

    #[test]
    fn single_bucket_histogram_quantiles_are_monotone() {
        let mut h = Histogram::with_bounds(0.0, vec![10.0]);
        for s in [1.0, 5.0, 9.0] {
            h.record(s);
        }
        let qs: Vec<f64> =
            [0.0, 0.25, 0.5, 0.75, 1.0].iter().map(|&q| h.quantile(q).unwrap()).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "quantiles must be monotone: {qs:?}");
        assert!(qs.iter().all(|&v| (0.0..=10.0).contains(&v)));
    }

    #[test]
    fn overflow_only_histogram_clamps_quantiles_to_last_bound() {
        let mut h = Histogram::linear(0.0, 10.0, 4);
        for _ in 0..5 {
            h.record(100.0);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.overflow(), 5);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q).unwrap(), 10.0, "overflow-only clamps to last bound");
        }
        // Merging two overflow-only histograms keeps the clamp and the counts.
        let mut other = Histogram::linear(0.0, 10.0, 4);
        other.record(50.0);
        h.merge(&other).unwrap();
        assert_eq!(h.overflow(), 6);
        assert_eq!(h.quantile(0.5).unwrap(), 10.0);
    }

    #[test]
    fn underflow_only_histogram_clamps_quantiles_to_min() {
        let mut h = Histogram::linear(5.0, 10.0, 4);
        h.record(1.0);
        h.record(2.0);
        assert_eq!(h.underflow(), 2);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q).unwrap(), 5.0, "underflow-only clamps to min");
        }
    }

    #[test]
    fn exponential_layout_covers_wide_ranges() {
        let mut h = Histogram::exponential(1e-6, 4.0, 16);
        h.record(1e-7);
        h.record(1e-3);
        h.record(0.5);
        assert_eq!(h.count(), 3);
        assert_eq!(h.overflow(), 0);
        let p100 = h.quantile(1.0).unwrap();
        assert!(p100 >= 0.5, "p100={p100}");
    }
}
