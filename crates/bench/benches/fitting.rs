//! Criterion bench: the measurement layer — trace ingestion and model
//! fitting (the per-batch cost Cannikin adds to every training step).

use cannikin_core::perf::{Analyzer, MeasurementAggregation};
use cannikin_workloads::clusters;
use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::Simulator;
use std::hint::black_box;

fn bench_observe_batch(c: &mut Criterion) {
    let profile = profiles::resolved();
    let cluster = clusters::cluster_b();
    let mut sim = Simulator::new(cluster, profile.job.clone(), 7);
    let trace = sim.simulate_batch(&[16; 16]);
    c.bench_function("analyzer_observe_batch_16nodes", |b| {
        let mut analyzer = Analyzer::new(16, MeasurementAggregation::InverseVariance);
        b.iter(|| {
            analyzer.observe_batch(black_box(&trace));
        });
    });
}

fn bench_solver_input(c: &mut Criterion) {
    let profile = profiles::resolved();
    let cluster = clusters::cluster_b();
    let mut sim = Simulator::new(cluster, profile.job.clone(), 8);
    let mut analyzer = Analyzer::new(16, MeasurementAggregation::InverseVariance);
    for split in [vec![16u64; 16], vec![24; 16], vec![12; 16]] {
        for _ in 0..20 {
            analyzer.observe_batch(&sim.simulate_batch(&split));
        }
    }
    c.bench_function("analyzer_fit_solver_input_16nodes", |b| {
        b.iter(|| black_box(analyzer.solver_input().expect("ready")));
    });
}

fn bench_simulate_batch(c: &mut Criterion) {
    let profile = profiles::resolved();
    let cluster = clusters::cluster_b();
    let mut sim = Simulator::new(cluster, profile.job.clone(), 9);
    c.bench_function("hetsim_simulate_batch_16nodes", |b| {
        b.iter(|| black_box(sim.simulate_batch(black_box(&[32; 16]))));
    });
}

mod profiles {
    pub use cannikin_workloads::profiles::*;

    /// The representative workload used across the fitting benches.
    pub fn resolved() -> cannikin_workloads::WorkloadProfile {
        imagenet_resnet50()
    }
}

criterion_group!(benches, bench_observe_batch, bench_solver_input, bench_simulate_batch);
criterion_main!(benches);
