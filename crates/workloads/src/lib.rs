//! # cannikin-workloads — the evaluation workloads and clusters
//!
//! Everything §5.1 of the paper parameterizes:
//!
//! - [`clusters`] — cluster A (3 heterogeneous workstation GPUs, Table 3),
//!   cluster B (16 data-center GPUs across 10 servers, Table 4) and the
//!   GPU-sharing cluster C of §6;
//! - [`profiles`] — the five Table 5 workloads with their initial batch
//!   sizes, optimizers, learning-rate scalers and target metrics, plus the
//!   two pieces the simulator needs that the paper measured on real
//!   hardware: a gradient-noise trajectory φ(progress) and a saturating
//!   metric-vs-progress curve calibrated to the published
//!   epochs-to-target;
//! - [`convergence`] — the mapping from statistical progress (effective
//!   epochs) to the task metric, used to turn epoch records into the
//!   accuracy-vs-time curves of Figs. 6–8.

pub mod clusters;
pub mod convergence;
pub mod profiles;

pub use convergence::SaturatingCurve;
pub use profiles::{TargetMetric, WorkloadProfile};
