//! Event-driven simulation of one synchronized data-parallel batch.
//!
//! The simulation advances bucket by bucket:
//!
//! 1. node `i` finishes `a_i` (load + forward + update), then runs
//!    backpropagation; gradient bucket `j` (in reduction order) is ready at
//!    `syncStart_i + j·(1−γ)·P_i/(K−1)`;
//! 2. bucket `j`'s ring all-reduce starts when *every* node has produced it
//!    **and** bucket `j−1`'s all-reduce has finished (bucket reductions
//!    serialize on the ring), and takes `T_comm/K`;
//! 3. the batch completes when the last bucket's all-reduce finishes.
//!
//! With noise disabled this recurrence evaluates *exactly* to the paper's
//! Eq. (7) — `max_i max(t_compute^i + T_u, syncStart_i + T_comm)` — because
//! for each node the makespan as a function of the blocking bucket index is
//! linear and therefore maximized at one of the two endpoints. A unit test
//! (`event_sim_matches_eq7`) pins this equivalence down.

use crate::cluster::ClusterSpec;
use crate::fault::{CommOutcome, FaultPlan, FaultState};
use crate::job::JobSpec;
use crate::timing::{comm_times, node_coefficients, ComputeCoeffs};
use crate::trace::{BatchTrace, EpochTrace, NodeObservation};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Ground-truth simulator for one (cluster, job) pair.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Simulator {
    cluster: ClusterSpec,
    job: JobSpec,
    coeffs: Vec<ComputeCoeffs>,
    t_comm: f64,
    t_u: f64,
    compute_noise: f64,
    comm_noise: f64,
    straggler_prob: f64,
    straggler_factor: f64,
    rng: StdRng,
    faults: Option<FaultState>,
}

impl Simulator {
    /// Create a simulator with default noise levels (2% compute jitter,
    /// 5% communication jitter).
    pub fn new(cluster: ClusterSpec, job: JobSpec, seed: u64) -> Self {
        let coeffs = cluster.nodes.iter().map(|n| node_coefficients(n, &job)).collect();
        let (t_comm, _t_o, t_u) = comm_times(&cluster, &job);
        Simulator {
            cluster,
            job,
            coeffs,
            t_comm,
            t_u,
            compute_noise: 0.02,
            comm_noise: 0.05,
            straggler_prob: 0.0,
            straggler_factor: 3.0,
            rng: StdRng::seed_from_u64(seed),
            faults: None,
        }
    }

    /// Attach a seeded [`FaultPlan`] (builder style). Fault randomness is
    /// drawn from the plan's own RNG, so attaching a plan does not perturb
    /// the noise stream of healthy batches.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(FaultState::new(plan, self.cluster.len()));
        self
    }

    /// Node specs whose scheduled join has fired but which have not been
    /// admitted yet; draining this is the engine's cue to call
    /// [`Simulator::add_node`] and replan.
    pub fn take_pending_joins(&mut self) -> Vec<crate::cluster::NodeSpec> {
        self.faults.as_mut().map(FaultState::take_pending_joins).unwrap_or_default()
    }

    /// Whether a [`FaultPlan`] is attached (the engine switches to its
    /// fault-aware per-step loop when one is).
    pub fn has_fault_plan(&self) -> bool {
        self.faults.is_some()
    }

    /// Enable transient stragglers (builder style): with probability
    /// `prob` per node per batch, that node's compute for the batch is
    /// stretched by `factor` — the GC pauses, page faults and preemption
    /// spikes of real clusters, which the analyzer must tolerate without
    /// mistaking them for regime changes.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= prob < 1` and `factor >= 1`.
    #[must_use]
    pub fn with_stragglers(mut self, prob: f64, factor: f64) -> Self {
        assert!((0.0..1.0).contains(&prob), "straggler probability must be in [0, 1)");
        assert!(factor >= 1.0, "straggler factor must be >= 1");
        self.straggler_prob = prob;
        self.straggler_factor = factor;
        self
    }

    /// Override the noise levels (builder style). Zero disables noise.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative.
    #[must_use]
    pub fn with_noise(mut self, compute: f64, comm: f64) -> Self {
        assert!(compute >= 0.0 && comm >= 0.0, "noise levels must be non-negative");
        self.compute_noise = compute;
        self.comm_noise = comm;
        self
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The simulated job.
    pub fn job(&self) -> &JobSpec {
        &self.job
    }

    /// Ground-truth compute coefficients of a node (test/oracle use only —
    /// Cannikin itself must learn these from traces).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn true_coefficients(&self, node: usize) -> ComputeCoeffs {
        self.coeffs[node]
    }

    /// Ground-truth `(T_comm, T_o, T_u)`.
    pub fn true_comm(&self) -> (f64, f64, f64) {
        (self.t_comm, self.t_comm - self.t_u, self.t_u)
    }

    /// Largest local batch that fits in node `node`'s memory.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn max_local_batch(&self, node: usize) -> u64 {
        self.job.max_local_batch(self.cluster.nodes[node].effective_memory_bytes())
    }

    /// Change a node's contention factor mid-run (the cluster-C
    /// experiment) and recompute its ground-truth coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or the fraction is not in `(0, 1]`.
    pub fn set_contention(&mut self, node: usize, fraction: f64) {
        assert!(fraction > 0.0 && fraction <= 1.0, "available fraction must be in (0, 1]");
        self.cluster.nodes[node].available_fraction = fraction;
        self.coeffs[node] = node_coefficients(&self.cluster.nodes[node], &self.job);
    }

    /// Add a node to the cluster mid-run (elastic scheduling, §6):
    /// ground-truth coefficients and the communication constants (the ring
    /// grows) are recomputed.
    pub fn add_node(&mut self, node: crate::cluster::NodeSpec) {
        self.coeffs.push(node_coefficients(&node, &self.job));
        self.cluster.nodes.push(node);
        let (t_comm, _, t_u) = comm_times(&self.cluster, &self.job);
        self.t_comm = t_comm;
        self.t_u = t_u;
        if let Some(state) = self.faults.as_mut() {
            state.on_node_added();
        }
    }

    /// Remove a node from the cluster mid-run.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or it is the last node.
    pub fn remove_node(&mut self, node: usize) {
        assert!(self.cluster.len() > 1, "cannot remove the last node");
        assert!(node < self.cluster.len(), "node index out of range");
        self.cluster.nodes.remove(node);
        self.coeffs.remove(node);
        let (t_comm, _, t_u) = comm_times(&self.cluster, &self.job);
        self.t_comm = t_comm;
        self.t_u = t_u;
        // Every per-node structure indexed by position must shift with the
        // removal, or faults scheduled for "node 2" would start hitting
        // whatever machine inherited index 2.
        if let Some(state) = self.faults.as_mut() {
            state.on_node_removed(node);
        }
    }

    /// Deterministic (noise-free) batch time for a local-batch assignment —
    /// the oracle used to grade OptPerf predictions.
    ///
    /// # Panics
    ///
    /// Panics if `local.len()` differs from the node count.
    pub fn ideal_batch_time(&self, local: &[u64]) -> f64 {
        assert_eq!(local.len(), self.cluster.len(), "one local batch per node");
        let gamma = self.job.gamma;
        let k = self.job.num_buckets;
        let t_bucket = self.t_comm / k as f64;
        let ready: Vec<Vec<f64>> = self
            .coeffs
            .iter()
            .zip(local)
            .map(|(c, &b)| bucket_ready_times(c, b as f64, gamma, k))
            .collect();
        let mut end = 0.0f64;
        for j in 0..k {
            let all_ready = ready.iter().map(|r| r[j]).fold(0.0, f64::max);
            end = all_ready.max(end) + t_bucket;
        }
        end
    }

    /// The paper's Eq. (7) closed form on the ground-truth coefficients —
    /// equal to [`Simulator::ideal_batch_time`]; kept separate so tests can
    /// assert the equivalence.
    pub fn eq7_batch_time(&self, local: &[u64]) -> f64 {
        assert_eq!(local.len(), self.cluster.len(), "one local batch per node");
        let gamma = self.job.gamma;
        let mut t = 0.0f64;
        for (c, &b) in self.coeffs.iter().zip(local) {
            let b = b as f64;
            t = t.max(c.compute(b) + self.t_u).max(c.sync_start(b, gamma) + self.t_comm);
        }
        t
    }

    /// Simulate one batch with noise, producing per-node observations.
    ///
    /// With a [`FaultPlan`] attached, the plan's faults for this batch are
    /// applied and surfaced in [`BatchTrace::faults`]: crashed members or
    /// an exhausted communication-retry budget fail the batch (empty
    /// observations, stretched batch time), recovered communication
    /// failures and slowdown bursts stretch it, flapping contention
    /// mutates the ground-truth coefficients at toggle boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `local.len()` differs from the node count.
    pub fn simulate_batch(&mut self, local: &[u64]) -> BatchTrace {
        assert_eq!(local.len(), self.cluster.len(), "one local batch per node");
        let n = self.cluster.len();
        let t_comm = self.t_comm;
        let fx = match self.faults.as_mut() {
            None => return self.simulate_batch_core(local, None),
            Some(state) => state.on_batch_start(n, t_comm),
        };
        for &(node, fraction) in &fx.toggles {
            self.set_contention(node, fraction);
        }
        if !fx.crashed.is_empty() {
            // The survivors block until the failure detector gives up on
            // the dead rank; the step's gradients are lost.
            let factor = self.faults.as_ref().expect("fault state").detect_timeout_factor();
            let batch_time = factor * self.ideal_batch_time(local);
            return BatchTrace { observations: Vec::new(), batch_time, bucket_sync_end: Vec::new(), faults: fx.faults };
        }
        let mut trace = self.simulate_batch_core(local, Some(&fx.slowdown));
        match fx.comm {
            CommOutcome::Clean => {}
            CommOutcome::Recovered { penalty, .. } => trace.batch_time += penalty,
            CommOutcome::Exhausted { penalty, .. } => {
                trace.batch_time += penalty;
                trace.observations.clear();
                trace.bucket_sync_end.clear();
            }
        }
        trace.faults = fx.faults;
        trace
    }

    /// The fault-free batch recurrence shared by the healthy and faulty
    /// paths; `slowdown` optionally stretches per-node compute.
    fn simulate_batch_core(&mut self, local: &[u64], slowdown: Option<&[f64]>) -> BatchTrace {
        let gamma = self.job.gamma;
        let k = self.job.num_buckets;
        let n = self.cluster.len();

        // Per-node noisy realizations of a_i and P_i, with occasional
        // transient straggler spikes.
        let mut a = Vec::with_capacity(n);
        let mut p = Vec::with_capacity(n);
        for (i, (c, &b)) in self.coeffs.iter().zip(local).enumerate() {
            let spike = if self.straggler_prob > 0.0 && uniform(&mut self.rng) < self.straggler_prob {
                self.straggler_factor
            } else {
                1.0
            };
            let stretch = slowdown.map_or(1.0, |s| s[i]);
            a.push(c.a(b as f64) * lognormal(&mut self.rng, self.compute_noise) * spike * stretch);
            p.push(c.p(b as f64) * lognormal(&mut self.rng, self.compute_noise) * spike * stretch);
        }

        // Bucket-ready schedule from the noisy realizations.
        let ready: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let ss = a[i] + gamma * p[i];
                let spread = (1.0 - gamma) * p[i];
                (0..k)
                    .map(|j| if k == 1 { a[i] + p[i] } else { ss + j as f64 * spread / (k as f64 - 1.0) })
                    .collect()
            })
            .collect();

        // Bucket all-reduces serialize; each takes a noisy T_comm/K.
        let t_bucket_base = self.t_comm / k as f64;
        let mut bucket_end = Vec::with_capacity(k);
        let mut end = 0.0f64;
        let mut total_comm = 0.0;
        let mut last_bucket_time = 0.0;
        for j in 0..k {
            let all_ready = ready.iter().map(|r| r[j]).fold(0.0, f64::max);
            let t_bucket = t_bucket_base * lognormal(&mut self.rng, self.comm_noise);
            total_comm += t_bucket;
            last_bucket_time = t_bucket;
            end = all_ready.max(end) + t_bucket;
            bucket_end.push(end);
        }

        // Per-node observations. γ and T_comm observations carry per-node
        // measurement noise on top of the physical realization.
        let observations = (0..n)
            .map(|i| {
                let sigma = self.cluster.nodes[i].measurement_sigma;
                let bias = 1.0 + self.cluster.nodes[i].measurement_bias;
                NodeObservation {
                    node: i,
                    local_batch: local[i],
                    a_time: a[i],
                    p_time: p[i],
                    sync_start: a[i] + gamma * p[i],
                    gamma_obs: gamma * bias * lognormal(&mut self.rng, sigma),
                    t_comm_obs: total_comm * bias * lognormal(&mut self.rng, sigma),
                    t_u_obs: last_bucket_time * bias * lognormal(&mut self.rng, sigma),
                    rel_variance: sigma * sigma,
                }
            })
            .collect();

        BatchTrace { observations, batch_time: end, bucket_sync_end: bucket_end, faults: Vec::new() }
    }

    /// Simulate one *no-sync* micro-batch (gradient accumulation): every
    /// node computes forward+backward but skips the all-reduce, so the
    /// micro-step time is the straggler's compute time alone. The returned
    /// observations carry `NaN` communication estimates (the measurement
    /// fuser ignores non-finite observations).
    ///
    /// # Panics
    ///
    /// Panics if `local.len()` differs from the node count.
    pub fn simulate_microbatch(&mut self, local: &[u64]) -> BatchTrace {
        assert_eq!(local.len(), self.cluster.len(), "one local batch per node");
        let gamma = self.job.gamma;
        let n = self.cluster.len();
        let mut observations = Vec::with_capacity(n);
        let mut end = 0.0f64;
        for (i, (c, &b)) in self.coeffs.iter().zip(local).enumerate() {
            let spike = if self.straggler_prob > 0.0 && uniform(&mut self.rng) < self.straggler_prob {
                self.straggler_factor
            } else {
                1.0
            };
            let a = c.a(b as f64) * lognormal(&mut self.rng, self.compute_noise) * spike;
            let p = c.p(b as f64) * lognormal(&mut self.rng, self.compute_noise) * spike;
            end = end.max(a + p);
            observations.push(NodeObservation {
                node: i,
                local_batch: b,
                a_time: a,
                p_time: p,
                sync_start: a + gamma * p,
                gamma_obs: f64::NAN,
                t_comm_obs: f64::NAN,
                t_u_obs: f64::NAN,
                rel_variance: self.cluster.nodes[i].measurement_sigma.powi(2),
            });
        }
        BatchTrace { observations, batch_time: end, bucket_sync_end: Vec::new(), faults: Vec::new() }
    }

    /// Simulate `steps` consecutive batches (one epoch) under a fixed
    /// local-batch assignment.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or the assignment length is wrong.
    pub fn simulate_epoch(&mut self, local: &[u64], steps: usize) -> EpochTrace {
        assert!(steps > 0, "epoch needs at least one step");
        let batches: Vec<BatchTrace> = (0..steps).map(|_| self.simulate_batch(local)).collect();
        let epoch_time = batches.iter().map(|b| b.batch_time).sum();
        EpochTrace { batches, epoch_time }
    }
}

/// Bucket-ready times for one node (noise-free helper shared with
/// `ideal_batch_time`).
fn bucket_ready_times(c: &ComputeCoeffs, b: f64, gamma: f64, k: usize) -> Vec<f64> {
    let ss = c.sync_start(b, gamma);
    let spread = (1.0 - gamma) * c.p(b);
    (0..k)
        .map(|j| if k == 1 { c.compute(b) } else { ss + j as f64 * spread / (k as f64 - 1.0) })
        .collect()
}

fn uniform(rng: &mut StdRng) -> f64 {
    use rand::RngExt;
    rng.random::<f64>()
}

fn lognormal(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    minidnn_normal(rng, sigma).exp()
}

/// Box–Muller standard normal scaled by sigma (duplicated from `minidnn`
/// to keep `hetsim` dependency-free of the DNN crate).
fn minidnn_normal(rng: &mut StdRng, sigma: f64) -> f64 {
    use rand::RngExt;
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Gpu;
    use crate::cluster::NodeSpec;

    fn small_cluster() -> ClusterSpec {
        ClusterSpec::new(
            "t",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        )
    }

    #[test]
    fn event_sim_matches_eq7() {
        let sim = Simulator::new(small_cluster(), JobSpec::resnet50_imagenet(), 1).with_noise(0.0, 0.0);
        for local in [[40u64, 20, 12], [1, 1, 1], [100, 100, 100], [64, 32, 16]] {
            let ev = sim.ideal_batch_time(&local);
            let eq7 = sim.eq7_batch_time(&local);
            assert!((ev - eq7).abs() / eq7 < 1e-9, "event {ev} vs eq7 {eq7} for {local:?}");
        }
    }

    #[test]
    fn noise_free_simulation_equals_ideal() {
        let mut sim = Simulator::new(small_cluster(), JobSpec::resnet18_cifar10(), 2).with_noise(0.0, 0.0);
        let local = [32u64, 16, 8];
        let trace = sim.simulate_batch(&local);
        let ideal = sim.ideal_batch_time(&local);
        assert!((trace.batch_time - ideal).abs() < 1e-12);
    }

    #[test]
    fn larger_batches_take_longer() {
        let sim = Simulator::new(small_cluster(), JobSpec::resnet50_imagenet(), 3).with_noise(0.0, 0.0);
        let t1 = sim.ideal_batch_time(&[8, 8, 8]);
        let t2 = sim.ideal_batch_time(&[64, 64, 64]);
        assert!(t2 > t1);
    }

    #[test]
    fn balancing_toward_fast_node_helps() {
        // Moving work from the slow RTX6000 to the A100 must beat the even
        // split for a comm-light job.
        let sim = Simulator::new(small_cluster(), JobSpec::resnet50_imagenet(), 4).with_noise(0.0, 0.0);
        let even = sim.ideal_batch_time(&[32, 32, 32]);
        let skewed = sim.ideal_batch_time(&[56, 24, 16]);
        assert!(skewed < even, "skewed {skewed} vs even {even}");
    }

    #[test]
    fn noisy_batch_times_jitter_around_ideal() {
        let mut sim = Simulator::new(small_cluster(), JobSpec::resnet18_cifar10(), 5);
        let local = [32u64, 16, 8];
        let ideal = sim.ideal_batch_time(&local);
        let times: Vec<f64> = (0..200).map(|_| sim.simulate_batch(&local).batch_time).collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        assert!((mean / ideal - 1.0).abs() < 0.05, "mean {mean} vs ideal {ideal}");
        let distinct: std::collections::HashSet<u64> = times.iter().map(|t| t.to_bits()).collect();
        assert!(distinct.len() > 100, "noise should vary batch times");
    }

    #[test]
    fn observations_reflect_local_batches() {
        let mut sim = Simulator::new(small_cluster(), JobSpec::resnet50_imagenet(), 6).with_noise(0.0, 0.0);
        let trace = sim.simulate_batch(&[48, 24, 12]);
        assert_eq!(trace.observations.len(), 3);
        // The A100 with 4x the RTX's batch should still compute faster or
        // comparable; more importantly a_time must equal the model exactly
        // with noise off.
        for (i, obs) in trace.observations.iter().enumerate() {
            let c = sim.true_coefficients(i);
            assert!((obs.a_time - c.a(obs.local_batch as f64)).abs() < 1e-12);
            assert!((obs.p_time - c.p(obs.local_batch as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn bucket_ends_are_monotone() {
        let mut sim = Simulator::new(small_cluster(), JobSpec::bert_squad(), 7);
        let trace = sim.simulate_batch(&[12, 6, 3]);
        for pair in trace.bucket_sync_end.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        assert_eq!(trace.bucket_sync_end.len(), sim.job().num_buckets);
        assert_eq!(*trace.bucket_sync_end.last().unwrap(), trace.batch_time);
    }

    #[test]
    fn epoch_time_is_sum_of_batches() {
        let mut sim = Simulator::new(small_cluster(), JobSpec::resnet18_cifar10(), 8);
        let epoch = sim.simulate_epoch(&[16, 8, 4], 10);
        let sum: f64 = epoch.batches.iter().map(|b| b.batch_time).sum();
        assert!((epoch.epoch_time - sum).abs() < 1e-12);
        assert_eq!(epoch.batches.len(), 10);
    }

    #[test]
    fn contention_change_slows_node() {
        // Use the compute-heavy BERT job so compute (not the all-reduce)
        // dominates the batch time.
        let mut sim = Simulator::new(small_cluster(), JobSpec::bert_squad(), 9).with_noise(0.0, 0.0);
        let before = sim.ideal_batch_time(&[1, 1, 32]);
        let k_before = sim.true_coefficients(2).k;
        sim.set_contention(2, 0.5);
        let after = sim.ideal_batch_time(&[1, 1, 32]);
        let k_after = sim.true_coefficients(2).k;
        assert!(after > before * 1.5, "after {after} vs before {before}");
        assert!((k_after / k_before - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_bucket_job_has_no_overlap() {
        let mut job = JobSpec::neumf_movielens();
        job.num_buckets = 1;
        let sim = Simulator::new(small_cluster(), job, 10).with_noise(0.0, 0.0);
        // With one bucket, T = max_i compute + T_comm (no overlap at all).
        let local = [64u64, 32, 16];
        let t = sim.ideal_batch_time(&local);
        let expected = (0..3)
            .map(|i| sim.true_coefficients(i).compute(local[i] as f64))
            .fold(0.0f64, f64::max)
            + sim.true_comm().0;
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn comm_bound_at_tiny_batches() {
        // At batch 1 per node, a heavy-model job should be communication
        // bound: T ≈ max syncStart + T_comm.
        let sim = Simulator::new(small_cluster(), JobSpec::bert_squad(), 11).with_noise(0.0, 0.0);
        let local = [1u64, 1, 1];
        let t = sim.ideal_batch_time(&local);
        let (t_comm, _, _) = sim.true_comm();
        let max_ss = (0..3)
            .map(|i| sim.true_coefficients(i).sync_start(1.0, sim.job().gamma))
            .fold(0.0f64, f64::max);
        assert!((t - (max_ss + t_comm)).abs() / t < 1e-9);
    }
}

#[cfg(test)]
mod straggler_tests {
    use super::*;
    use crate::catalog::Gpu;
    use crate::cluster::{ClusterSpec, NodeSpec};

    fn cluster() -> ClusterSpec {
        ClusterSpec::new(
            "t",
            vec![NodeSpec::new("a", Gpu::A100), NodeSpec::new("b", Gpu::V100)],
        )
    }

    #[test]
    fn stragglers_produce_heavy_tail() {
        let job = JobSpec::resnet50_imagenet();
        let mut clean = Simulator::new(cluster(), job.clone(), 5).with_noise(0.0, 0.0);
        let ideal = clean.simulate_batch(&[32, 32]).batch_time;
        let mut spiky = Simulator::new(cluster(), job, 5).with_noise(0.0, 0.0).with_stragglers(0.1, 4.0);
        let times: Vec<f64> = (0..300).map(|_| spiky.simulate_batch(&[32, 32]).batch_time).collect();
        let spikes = times.iter().filter(|&&t| t > ideal * 1.5).count();
        // P(at least one of two nodes spikes) ≈ 19% per batch.
        assert!(spikes > 30 && spikes < 100, "{spikes} spikes in 300 batches");
        // Non-spiked batches still match the ideal.
        let clean_batches = times.iter().filter(|&&t| t < ideal * 1.01).count();
        assert!(clean_batches > 150, "{clean_batches} clean batches");
    }

    #[test]
    fn zero_probability_is_identical_to_clean() {
        let job = JobSpec::resnet18_cifar10();
        let mut a = Simulator::new(cluster(), job.clone(), 6);
        let mut b = Simulator::new(cluster(), job, 6).with_stragglers(0.0, 5.0);
        for _ in 0..20 {
            assert_eq!(a.simulate_batch(&[16, 16]).batch_time, b.simulate_batch(&[16, 16]).batch_time);
        }
    }
}

#[cfg(test)]
mod microbatch_tests {
    use super::*;
    use crate::catalog::Gpu;
    use crate::cluster::{ClusterSpec, NodeSpec};

    #[test]
    fn microbatch_skips_communication() {
        let cluster = ClusterSpec::new(
            "t",
            vec![NodeSpec::new("a", Gpu::A100), NodeSpec::new("b", Gpu::Rtx6000)],
        );
        let mut sim = Simulator::new(cluster, JobSpec::resnet50_imagenet(), 3).with_noise(0.0, 0.0);
        let micro = sim.simulate_microbatch(&[32, 16]);
        let full = sim.simulate_batch(&[32, 16]);
        assert!(micro.batch_time < full.batch_time, "no-sync must be faster");
        // The micro time is exactly the straggler's compute.
        let expected = (0..2)
            .map(|i| sim.true_coefficients(i).compute([32.0, 16.0][i]))
            .fold(0.0f64, f64::max);
        assert!((micro.batch_time - expected).abs() < 1e-12);
        assert!(micro.observations.iter().all(|o| o.t_comm_obs.is_nan()));
        assert!(micro.bucket_sync_end.is_empty());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::catalog::Gpu;
    use crate::cluster::{ClusterSpec, NodeSpec};
    use crate::fault::FaultPlan;
    use cannikin_telemetry::FaultKind;

    fn cluster3() -> ClusterSpec {
        ClusterSpec::new(
            "t",
            vec![
                NodeSpec::new("a", Gpu::A100),
                NodeSpec::new("b", Gpu::V100),
                NodeSpec::new("c", Gpu::Rtx6000),
            ],
        )
    }

    #[test]
    fn crash_fails_the_batch_until_eviction() {
        let plan = FaultPlan::new(1).crash_at(2, 1);
        let mut sim = Simulator::new(cluster3(), JobSpec::resnet18_cifar10(), 3).with_noise(0.0, 0.0).with_fault_plan(plan);
        let local = [16u64, 8, 4];
        let ideal = sim.ideal_batch_time(&local);
        for _ in 0..2 {
            let t = sim.simulate_batch(&local);
            assert!(!t.is_failed());
            assert_eq!(t.observations.len(), 3);
        }
        let failed = sim.simulate_batch(&local);
        assert!(failed.is_failed());
        assert!(failed.observations.is_empty(), "a failed batch yields no usable gradients");
        assert!(failed.batch_time > ideal, "failure detection costs time: {} vs {ideal}", failed.batch_time);
        assert!(failed.faults.iter().any(|f| f.kind == FaultKind::NodeCrash && f.node == Some(1)));
        // After eviction the survivors train on.
        sim.remove_node(1);
        let healthy = sim.simulate_batch(&[16, 4]);
        assert!(!healthy.is_failed());
        assert_eq!(healthy.observations.len(), 2);
    }

    #[test]
    fn fault_plan_does_not_perturb_healthy_noise_stream() {
        let job = JobSpec::resnet50_imagenet();
        let mut clean = Simulator::new(cluster3(), job.clone(), 11);
        // A plan whose first fault fires far in the future: until then
        // every batch must be bit-identical to the plan-free simulator.
        let mut planned =
            Simulator::new(cluster3(), job, 11).with_fault_plan(FaultPlan::new(99).crash_at(1_000, 0));
        for _ in 0..20 {
            let a = clean.simulate_batch(&[16, 8, 4]);
            let b = planned.simulate_batch(&[16, 8, 4]);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn same_seed_same_faulty_trace() {
        let run = || {
            let plan = FaultPlan::new(7).transient_comm(0.2, 3).burst_at(4, 2, 3, 2.5).flapping(0, 5, 0.6, 2);
            let mut sim = Simulator::new(cluster3(), JobSpec::resnet18_cifar10(), 5).with_fault_plan(plan);
            sim.simulate_epoch(&[16, 8, 4], 30)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn remove_node_keeps_fault_state_index_stable() {
        // Regression: a burst scheduled for node 2 ("c") must keep hitting
        // "c" after node 1 is removed, and removed-node state must not
        // leak onto the machine that inherits its index.
        let plan = FaultPlan::new(3).burst_at(5, 2, 2, 10.0);
        let mut sim = Simulator::new(cluster3(), JobSpec::resnet18_cifar10(), 9).with_noise(0.0, 0.0).with_fault_plan(plan);
        sim.remove_node(1); // "c" is now index 1
        assert_eq!(sim.cluster().nodes[1].name, "c");
        let local = [16u64, 8];
        for _ in 0..5 {
            assert!(sim.simulate_batch(&local).faults.is_empty());
        }
        let burst = sim.simulate_batch(&local);
        let f = burst.faults.first().expect("burst fires");
        assert_eq!(f.kind, FaultKind::SlowdownBurst);
        assert_eq!(f.node, Some(1), "the burst follows the machine to its new index");
        let c = sim.true_coefficients(1);
        let obs = &burst.observations[1];
        assert!((obs.a_time - 10.0 * c.a(8.0)).abs() < 1e-9, "slowdown applies to the surviving machine");
        assert!((burst.observations[0].a_time - sim.true_coefficients(0).a(16.0)).abs() < 1e-12);
    }

    #[test]
    fn flapping_contention_mutates_ground_truth_and_recovers() {
        let plan = FaultPlan::new(2).flapping(1, 3, 0.5, 0);
        let mut sim = Simulator::new(cluster3(), JobSpec::bert_squad(), 4).with_noise(0.0, 0.0).with_fault_plan(plan);
        let k0 = sim.true_coefficients(1).k;
        let mut toggles = Vec::new();
        // period 3 from step 0: contended at steps 3..6 and 9..12, so the
        // fourth toggle (back to full speed) fires at step 12.
        for _ in 0..13 {
            let t = sim.simulate_batch(&[4, 4, 4]);
            for f in &t.faults {
                assert_eq!(f.kind, FaultKind::ContentionFlap);
                toggles.push(f.magnitude);
            }
        }
        assert_eq!(toggles, vec![0.5, 1.0, 0.5, 1.0]);
        // After an even number of toggles the node is back to full speed.
        assert!((sim.true_coefficients(1).k - k0).abs() < 1e-12);
    }

    #[test]
    fn comm_timeout_loses_the_step() {
        // prob close to 1 with a single attempt: every batch exhausts.
        let plan = FaultPlan::new(6).transient_comm(0.99, 1);
        let mut sim = Simulator::new(cluster3(), JobSpec::resnet18_cifar10(), 8).with_fault_plan(plan);
        let mut exhausted = 0;
        for _ in 0..20 {
            let t = sim.simulate_batch(&[8, 8, 8]);
            if t.is_failed() {
                exhausted += 1;
                assert!(t.observations.is_empty());
                assert!(t.faults.iter().any(|f| f.kind == FaultKind::CommTimeout));
            }
        }
        assert!(exhausted >= 15, "{exhausted} exhausted batches of 20");
    }
}

#[cfg(test)]
mod monotonicity_tests {
    use super::*;
    use crate::catalog::Gpu;
    use crate::cluster::{ClusterSpec, NodeSpec};

    fn sim3() -> Simulator {
        let cluster = ClusterSpec::new(
            "t",
            vec![
                NodeSpec::new("a", Gpu::A100),
                NodeSpec::new("b", Gpu::V100),
                NodeSpec::new("c", Gpu::Rtx6000),
            ],
        );
        Simulator::new(cluster, JobSpec::resnet50_imagenet(), 0).with_noise(0.0, 0.0)
    }

    /// Growing any single node's local batch can never make the batch
    /// finish earlier — the physical monotonicity every optimizer result
    /// implicitly relies on.
    #[test]
    fn batch_time_is_monotone_in_every_local_batch() {
        let sim = sim3();
        for base in [[10u64, 10, 10], [40, 20, 8], [5, 60, 30]] {
            let t0 = sim.ideal_batch_time(&base);
            for node in 0..3 {
                let mut grown = base;
                grown[node] += 7;
                let t1 = sim.ideal_batch_time(&grown);
                assert!(t1 >= t0 - 1e-15, "growing node {node} of {base:?} shrank time: {t0} -> {t1}");
            }
        }
    }

    /// Noisy batch-time realizations average to (approximately) the ideal:
    /// the log-normal factors have median 1 and small σ, so the mean bias
    /// is below a percent.
    #[test]
    fn noisy_mean_tracks_ideal_within_bias_bound() {
        let cluster = sim3().cluster().clone();
        let mut noisy = Simulator::new(cluster, JobSpec::resnet50_imagenet(), 7);
        let ideal = sim3().ideal_batch_time(&[32, 16, 8]);
        let n = 400;
        let mean: f64 = (0..n).map(|_| noisy.simulate_batch(&[32, 16, 8]).batch_time).sum::<f64>() / n as f64;
        assert!((mean / ideal - 1.0).abs() < 0.03, "mean {mean} vs ideal {ideal}");
    }

    /// A faster network can never slow the batch down.
    #[test]
    fn faster_network_is_never_worse() {
        let slow = sim3();
        let cluster = slow.cluster().clone().with_network(crate::cluster::NetworkSpec::twenty_five_gbe());
        let fast = Simulator::new(cluster, JobSpec::resnet50_imagenet(), 0).with_noise(0.0, 0.0);
        for local in [[8u64, 8, 8], [64, 32, 16], [200, 100, 50]] {
            assert!(fast.ideal_batch_time(&local) <= slow.ideal_batch_time(&local) + 1e-15);
        }
    }
}
