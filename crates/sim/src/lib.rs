//! # hetsim — a discrete-event simulator of heterogeneous GPU clusters
//!
//! The Cannikin paper evaluates on real NVIDIA GPUs (clusters A and B,
//! Tables 3–4). This crate replaces that hardware with a simulator that
//! produces exactly the observables Cannikin's algorithms consume:
//!
//! - per-node, per-batch **compute timings** that are linear in the local
//!   batch size (`a_i = q_i·b + s_i`, `P_i = k_i·b + m_i`, §3.2.1 of the
//!   paper), with multiplicative log-normal measurement noise;
//! - **bucketed ring all-reduce** timing with compute/communication
//!   overlap: the first gradient bucket becomes ready at
//!   `syncStart_i = a_i + γ·P_i`, later buckets are evenly spread over the
//!   rest of backpropagation, and bucket synchronizations serialize on the
//!   ring (§3.2.2–3.2.3);
//! - noisy per-node observations of the **overlap ratio γ** and the
//!   **communication times** `T_o`/`T_u`, with per-node observation
//!   variances — the raw material for the paper's inverse-variance-weighted
//!   measurement fusion (§4.5, evaluated in §5.3).
//!
//! The event-driven batch simulation in [`event`] is the *ground truth*
//! against which the analytic OptPerf predictions of `cannikin-core` are
//! validated: it implements Eq. (7) mechanically (bucket-by-bucket) rather
//! than via the paper's closed forms.
//!
//! ## Example
//!
//! ```
//! use hetsim::catalog::Gpu;
//! use hetsim::cluster::{ClusterSpec, NodeSpec};
//! use hetsim::job::JobSpec;
//! use hetsim::Simulator;
//!
//! let cluster = ClusterSpec::new(
//!     "demo",
//!     vec![NodeSpec::new("fast", Gpu::A100), NodeSpec::new("slow", Gpu::Rtx6000)],
//! );
//! let job = JobSpec::resnet50_imagenet();
//! let mut sim = Simulator::new(cluster, job, 42);
//! let trace = sim.simulate_batch(&[96, 32]);
//! assert!(trace.batch_time > 0.0);
//! ```

pub mod catalog;
pub mod cluster;
pub mod event;
pub mod fault;
pub mod job;
pub mod timing;
pub mod trace;

pub use event::Simulator;
pub use fault::{CommFaultConfig, FaultEvent, FaultPlan};
pub use trace::{BatchTrace, NodeObservation};
