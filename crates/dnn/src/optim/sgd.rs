//! Stochastic gradient descent with momentum and weight decay.

use super::Optimizer;
use crate::layers::Param;
use crate::tensor::Tensor;

/// SGD with optional Polyak momentum and L2 weight decay.
///
/// Update rule (PyTorch convention):
/// `v ← μ·v + (g + wd·θ)`, `θ ← θ − lr·v`.
///
/// # Examples
///
/// ```
/// use minidnn::optim::{Optimizer, Sgd};
/// let mut opt = Sgd::new(0.1).momentum(0.9).weight_decay(1e-4);
/// assert_eq!(opt.learning_rate(), 0.1);
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    weight_decay: f64,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Create plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Enable momentum (builder style).
    #[must_use]
    pub fn momentum(mut self, mu: f64) -> Self {
        assert!((0.0..1.0).contains(&mu), "momentum must be in [0, 1)");
        self.momentum = mu;
        self
    }

    /// Enable L2 weight decay (builder style).
    #[must_use]
    pub fn weight_decay(mut self, wd: f64) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| Tensor::zeros(p.value.shape())).collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            let mu = self.momentum as f32;
            let wd = self.weight_decay as f32;
            let lr = self.lr as f32;
            for ((vv, &g), th) in v.data_mut().iter_mut().zip(p.grad.data()).zip(p.value.data_mut()) {
                let g = g + wd * *th;
                *vv = mu * *vv + g;
                *th -= lr * *vv;
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::test_util::fit_line;

    #[test]
    fn fits_linear_function() {
        let mut opt = Sgd::new(0.2);
        let loss = fit_line(&mut opt, 200);
        assert!(loss < 1e-4, "final loss {loss}");
    }

    #[test]
    fn momentum_accelerates() {
        let mut plain = Sgd::new(0.05);
        let mut with_momentum = Sgd::new(0.05).momentum(0.9);
        let slow = fit_line(&mut plain, 50);
        let fast = fit_line(&mut with_momentum, 50);
        assert!(fast < slow, "momentum {fast} should beat plain {slow}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = Param::new(Tensor::ones(&[4]), "w");
        // Zero gradient: only decay acts.
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        opt.step(&mut [&mut p]);
        for &v in p.value.data() {
            assert!((v - 0.95).abs() < 1e-6);
        }
    }

    #[test]
    fn set_learning_rate_roundtrip() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }
}
