//! Criterion bench: ns per telemetry event, enabled vs disabled.
//!
//! The disabled case is the number that matters for instrumentation
//! density decisions — it must be a few nanoseconds (one relaxed atomic
//! load plus the branch), so call sites can stay unconditionally
//! instrumented. The enabled case measures the thread-local buffer push
//! plus its amortized flush into the shared sink.

use cannikin_telemetry::{self as telemetry, Counter, Event, SeriesRecorder, Session};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn event(i: u64) -> Event {
    Event::Counter(Counter { name: "bench".to_string(), value: i as f64 })
}

fn bench_disabled(c: &mut Criterion) {
    // No session is live: every emit must take the early-out path.
    assert!(!telemetry::enabled());
    c.bench_function("telemetry/emit_disabled", |b| {
        b.iter(|| telemetry::emit(black_box(event(7))));
    });
    c.bench_function("telemetry/enabled_check_disabled", |b| {
        b.iter(|| black_box(telemetry::enabled()));
    });
    // A registered subscriber must not change the disabled number: the
    // early-out happens before the subscriber list is even looked at, so
    // leaving a SeriesRecorder installed process-wide stays free while
    // no session is live.
    let recorder = SeriesRecorder::install();
    c.bench_function("telemetry/emit_disabled_with_series_subscriber", |b| {
        b.iter(|| telemetry::emit(black_box(event(7))));
    });
    assert_eq!(recorder.store().series_count(), 0, "disabled emits must never reach the store");
    drop(recorder);
}

fn bench_enabled(c: &mut Criterion) {
    c.bench_function("telemetry/emit_enabled", |b| {
        // iter_custom so the sink can be drained *outside* the timed
        // region: criterion may ask for millions of iterations, which
        // would otherwise grow the sink without bound.
        b.iter_custom(|iters| {
            let session = Session::start();
            let mut elapsed = Duration::ZERO;
            let mut remaining = iters;
            while remaining > 0 {
                let chunk = remaining.min(65_536);
                let started = Instant::now();
                for i in 0..chunk {
                    telemetry::emit(black_box(event(i)));
                }
                elapsed += started.elapsed();
                remaining -= chunk;
                black_box(session.drain());
            }
            elapsed
        });
    });
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);
