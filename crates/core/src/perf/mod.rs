//! Online performance-model learning (§4.2 "parameter learning", §4.5).
//!
//! During every epoch each node records, per batch, its `a_i` (load +
//! forward + update) and `P_i` (backward) durations together with its
//! noisy observations of the cluster constants γ, `T_comm` and `T_u`. The
//! [`Analyzer`] turns those traces into:
//!
//! - a per-node linear model `(q, s, k, m)` by least squares over the
//!   *per-batch-size mean* timings (at least two distinct local batch
//!   sizes are required — the reason for the Eq. (8) bootstrap epochs);
//! - fused cluster constants, combining each node's observation stream
//!   with **inverse-variance weighting**: nodes whose measurements are
//!   noisier (larger `σᵢ²`) contribute proportionally less. §5.3 shows
//!   naive averaging instead of IVW inflates OptPerf prediction error from
//!   ≤7% to up to 21%.

mod analyzer;
mod fuse;

pub use analyzer::Analyzer;
pub use fuse::{Fused, WeightedFuser};

use serde::{Deserialize, Serialize};

/// How the analyzer combines per-node observations of cluster constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeasurementAggregation {
    /// Inverse-variance weighting (Cannikin, §4.5).
    InverseVariance,
    /// Unweighted mean (the ablation of §5.3).
    NaiveMean,
}
