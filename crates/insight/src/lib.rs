//! # cannikin-insight — diagnostics over the telemetry stream
//!
//! Cannikin's value proposition is that its predictions *stay
//! calibrated*: the OptPerf model must keep matching realized step times
//! (§3), the GNS trajectory must stay smooth enough to drive batch
//! sizing (§4), and a node whose compute law changed (the §6 contention
//! scenario) must be re-profiled rather than trusted. This crate watches
//! the `cannikin-telemetry` event stream for exactly those failure
//! modes, in two interchangeable forms:
//!
//! * **Online** — [`Monitor::install`] taps the recorder's sink via the
//!   subscriber API and runs the [`DetectorSet`] live: per-node
//!   straggler detection against the fitted `t = c·b + d` law,
//!   predicted-vs-observed plan calibration, GNS drift, and all-reduce
//!   bucket imbalance. Anomalies are injected back into the stream as
//!   typed [`AnomalyDetected`](cannikin_telemetry::AnomalyDetected)
//!   events, and the engine polls [`Monitor::drain_new`] /
//!   [`Monitor::report`] per epoch to force a re-profile of flagged
//!   nodes.
//! * **Offline** — [`replay::analyze`] reconstructs per-node/per-plan
//!   timelines from a drained session or a parsed JSONL export and
//!   replays the *same* detectors, so the `cannikin-insight` CLI can
//!   post-mortem any run exported with `CANNIKIN_TELEMETRY=jsonl:…` —
//!   and the round-trip tests assert the offline rerun reproduces the
//!   online verdicts byte-for-byte.
//!
//! ```
//! use cannikin_insight::{InsightConfig, Monitor};
//! use cannikin_telemetry as telemetry;
//!
//! let monitor = Monitor::install(InsightConfig::default());
//! let session = telemetry::Session::start();
//! // ... training emits StepTiming / SplitDecision / Gns events ...
//! telemetry::flush_thread();
//! assert!(monitor.report().healthy());
//! let records = session.drain();
//! let replay = cannikin_insight::replay::analyze(&records, InsightConfig::default());
//! assert!(replay.anomalies_match());
//! ```

pub mod detectors;
pub mod monitor;
pub mod replay;
pub mod report;
pub mod slo;

pub use detectors::{DetectorSet, InsightConfig};
pub use monitor::{HealthReport, Monitor};
pub use replay::{analyze, NodeTimeline, PlanSummary, ReplayReport};
pub use report::{FleetTraceReport, JobTimeline};
pub use slo::{replay_slos, SloEngine, SloMonitor, SloReport};
