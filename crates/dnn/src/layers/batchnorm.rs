//! 2-D batch normalization.

use super::{Layer, Param};
use crate::tensor::Tensor;

/// Batch normalization over `[batch, c, h, w]` inputs: per-channel
/// statistics across the batch and spatial dimensions, learnable per-channel
/// gain/bias, and running statistics for evaluation mode.
///
/// Note for data-parallel training: unlike every other layer here, batch
/// norm's *training-mode* output depends on which samples share a device
/// (local batch statistics), so Eq. (9) weighted aggregation reproduces the
/// single-machine gradient only in expectation, not exactly — the same
/// caveat real DDP has without SyncBatchNorm.
#[derive(Debug)]
pub struct BatchNorm2d {
    gain: Param,
    bias: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    channels: usize,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    normalized: Tensor,
    inv_std: Vec<f32>,
    in_shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Create a batch-norm layer over `channels` with momentum 0.1 and
    /// `eps = 1e-5`.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "batch norm needs at least one channel");
        BatchNorm2d {
            gain: Param::new(Tensor::ones(&[channels]), "bn.gain"),
            bias: Param::new(Tensor::zeros(&[channels]), "bn.bias"),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cache: None,
        }
    }

    /// The tracked running mean (evaluation statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// The tracked running variance (evaluation statistics).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "batch norm input must be [batch, c, h, w]");
        assert_eq!(shape[1], self.channels, "batch norm channel mismatch");
        let (batch, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let per_channel = (batch * h * w) as f32;
        let mut out = Tensor::zeros(shape);
        let mut normalized = Tensor::zeros(shape);
        let mut inv_std = vec![0.0f32; c];
        for ch in 0..c {
            let (mean, var) = if train {
                let mut sum = 0.0f64;
                for b in 0..batch {
                    let base = (b * c + ch) * h * w;
                    sum += x.data()[base..base + h * w].iter().map(|&v| f64::from(v)).sum::<f64>();
                }
                let mean = (sum / f64::from(per_channel)) as f32;
                let mut var_sum = 0.0f64;
                for b in 0..batch {
                    let base = (b * c + ch) * h * w;
                    var_sum += x.data()[base..base + h * w]
                        .iter()
                        .map(|&v| f64::from((v - mean) * (v - mean)))
                        .sum::<f64>();
                }
                let var = (var_sum / f64::from(per_channel)) as f32;
                self.running_mean[ch] = (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] = (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ch], self.running_var[ch])
            };
            let is = 1.0 / (var + self.eps).sqrt();
            inv_std[ch] = is;
            let g = self.gain.value.data()[ch];
            let bias = self.bias.value.data()[ch];
            for b in 0..batch {
                let base = (b * c + ch) * h * w;
                for i in 0..h * w {
                    let xn = (x.data()[base + i] - mean) * is;
                    normalized.data_mut()[base + i] = xn;
                    out.data_mut()[base + i] = g * xn + bias;
                }
            }
        }
        self.cache = if train {
            Some(BnCache { normalized, inv_std, in_shape: shape.to_vec() })
        } else {
            None
        };
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward called before training-mode forward");
        let shape = &cache.in_shape;
        assert_eq!(grad_out.shape(), &shape[..], "batch norm backward shape mismatch");
        let (batch, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let n = (batch * h * w) as f32;
        let mut dx = Tensor::zeros(shape);
        for ch in 0..c {
            // Collect per-channel reductions.
            let mut sum_g = 0.0f64;
            let mut sum_gx = 0.0f64;
            for b in 0..batch {
                let base = (b * c + ch) * h * w;
                for i in 0..h * w {
                    let g = f64::from(grad_out.data()[base + i]);
                    sum_g += g;
                    sum_gx += g * f64::from(cache.normalized.data()[base + i]);
                }
            }
            self.bias.grad.data_mut()[ch] += sum_g as f32;
            self.gain.grad.data_mut()[ch] += sum_gx as f32;
            let gain = self.gain.value.data()[ch];
            let is = cache.inv_std[ch];
            let mean_g = sum_g as f32 / n;
            let mean_gx = sum_gx as f32 / n;
            for b in 0..batch {
                let base = (b * c + ch) * h * w;
                for i in 0..h * w {
                    let g = grad_out.data()[base + i];
                    let xn = cache.normalized.data()[base + i];
                    dx.data_mut()[base + i] = gain * is * (g - mean_g - xn * mean_gx);
                }
            }
        }
        dx
    }

    fn parameters(&self) -> Vec<&Param> {
        vec![&self.gain, &self.bias]
    }

    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gain, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_output_is_normalized_per_channel() {
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[4, 3, 5, 5], 61).scale(2.5).add_scalar(-1.0);
        let y = bn.forward(&x, true);
        for ch in 0..3 {
            let mut vals = Vec::new();
            for b in 0..4 {
                let base = (b * 3 + ch) * 25;
                vals.extend_from_slice(&y.data()[base..base + 25]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "channel {ch} var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2d::new(2);
        // Warm the running statistics with many training batches.
        for seed in 0..50 {
            let x = Tensor::randn(&[8, 2, 4, 4], seed).scale(3.0).add_scalar(2.0);
            let _ = bn.forward(&x, true);
        }
        assert!((bn.running_mean()[0] - 2.0).abs() < 0.3, "running mean {:?}", bn.running_mean());
        assert!((bn.running_var()[0] - 9.0).abs() < 1.5, "running var {:?}", bn.running_var());
        // Eval on a *shifted* batch must use running stats, not batch stats.
        let x = Tensor::randn(&[4, 2, 4, 4], 99).add_scalar(50.0);
        let y = bn.forward(&x, false);
        assert!(y.mean() > 5.0, "eval must not re-normalize with batch stats: {}", y.mean());
    }

    #[test]
    fn gradient_check_input() {
        let mut bn = BatchNorm2d::new(2);
        bn.gain.value = Tensor::randn(&[2], 62).add_scalar(1.5);
        bn.bias.value = Tensor::randn(&[2], 63);
        let x = Tensor::randn(&[2, 2, 3, 3], 64);
        // Loss = Σ y² for a non-uniform upstream gradient.
        let y = bn.forward(&x, true);
        let gy = y.scale(2.0);
        let gx = bn.backward(&gy);
        let eps = 1e-2f32;
        for idx in [0usize, 5, 13, 20, 35] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = bn.forward(&xp, true).map(|v| v * v).sum();
            let lm = bn.forward(&xm, true).map(|v| v * v).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gx.data()[idx]).abs() < 0.06, "x[{idx}]: {numeric} vs {}", gx.data()[idx]);
        }
    }

    #[test]
    fn gradient_check_gain_and_bias() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[3, 2, 2, 2], 65);
        let y = bn.forward(&x, true);
        bn.backward(&Tensor::ones(y.shape()));
        // bias grad with unit upstream = number of contributing elements.
        for &g in bn.bias.grad.data() {
            assert_eq!(g, (3 * 2 * 2) as f32);
        }
        let analytic = bn.gain.grad.clone();
        let eps = 1e-3f32;
        for ch in 0..2 {
            let orig = bn.gain.value.data()[ch];
            bn.gain.value.data_mut()[ch] = orig + eps;
            let plus = bn.forward(&x, true).sum();
            bn.gain.value.data_mut()[ch] = orig - eps;
            let minus = bn.forward(&x, true).sum();
            bn.gain.value.data_mut()[ch] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((numeric - analytic.data()[ch]).abs() < 1e-2);
        }
    }
}
