//! # Cannikin — optimal adaptive distributed DNN training over heterogeneous clusters
//!
//! This meta-crate re-exports every crate of the Cannikin reproduction
//! workspace so that examples and downstream users can depend on a single
//! package:
//!
//! - [`core`] (`cannikin-core`) — the paper's contribution: performance
//!   models, the *OptPerf* solver (Algorithm 1), the heterogeneity-correct
//!   gradient-noise-scale estimators (Theorem 4.1), the goodput engine and
//!   the [`core::engine::CannikinTrainer`] orchestration loop.
//! - [`dnn`] (`minidnn`) — a from-scratch CPU tensor/autograd library with
//!   layers, losses, optimizers and learning-rate scalers.
//! - [`collectives`] (`cannikin-collectives`) — in-process bucketed ring
//!   all-reduce and the batch-ratio-weighted gradient aggregation of Eq. (9).
//! - [`sim`] (`hetsim`) — a discrete-event heterogeneous GPU cluster
//!   simulator with bucket-level compute/communication overlap.
//! - [`baselines`] (`cannikin-baselines`) — PyTorch-DDP-, AdaptDL-, LB-BSP-
//!   and HetPipe-style comparison systems.
//! - [`workloads`] (`cannikin-workloads`) — the paper's five evaluation
//!   workload profiles and the clusters A/B/C used in the evaluation.
//! - [`telemetry`] (`cannikin-telemetry`) — the workspace-wide observability
//!   layer: a low-overhead structured-event recorder, histograms, and
//!   JSONL / Chrome-trace exporters (enable file export with
//!   `CANNIKIN_TELEMETRY=jsonl:/path[,chrome:/path]`).
//! - [`insight`] (`cannikin-insight`) — online diagnostics over the
//!   telemetry stream (straggler/calibration/GNS-drift/bucket-imbalance
//!   detectors behind [`insight::Monitor`]) plus the `cannikin-insight`
//!   trace-replay CLI that reruns the same detectors offline.
//!
//! ## Quickstart
//!
//! ```
//! use cannikin::core::optperf::{OptPerfSolver, SolverInput};
//! use cannikin::workloads::{clusters, profiles};
//!
//! // Build cluster B (the paper's 16-GPU heterogeneous cluster) and the
//! // ResNet-18/CIFAR-10 workload profile, then ask the solver for the
//! // optimal local batch split at a total batch size of 512.
//! let cluster = clusters::cluster_b();
//! let profile = profiles::cifar10_resnet18();
//! let input = SolverInput::from_ground_truth(&cluster, &profile.job);
//! let plan = OptPerfSolver::new(input).solve(512).expect("feasible batch size");
//! assert_eq!(plan.local_batches.iter().sum::<u64>(), 512);
//! ```

pub use cannikin_baselines as baselines;
pub use cannikin_collectives as collectives;
pub use cannikin_core as core;
pub use cannikin_insight as insight;
pub use cannikin_telemetry as telemetry;
pub use cannikin_workloads as workloads;
pub use hetsim as sim;
pub use minidnn as dnn;
