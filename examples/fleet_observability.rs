//! Fleet mission control end-to-end: run a multi-tenant fleet with the
//! live observers attached, then render the deterministic report.
//!
//! ```text
//! cargo run --release --example fleet_observability
//! ```
//!
//! A seeded 6-job arrival trace runs on the 8-node mixed pool with three
//! subscribers tapping the telemetry stream at once: the time-series
//! recorder (Prometheus-style metrics), the SLO monitor (typed
//! violations injected back into the trace) and the anomaly monitor.
//! Afterwards the drained trace is replayed offline and the fleet report
//! — allocation timelines, SLO compliance, anomalies — is printed, plus
//! a self-contained HTML page. Same seed, same bytes, every run.

use cannikin::fleet::{synthetic_trace, AllocPolicy, FleetController};
use cannikin::insight::{report, InsightConfig, Monitor, SloMonitor};
use cannikin::sim::catalog::Gpu;
use cannikin::sim::cluster::NodeSpec;
use cannikin::telemetry::{self, Labels, SeriesRecorder};

fn main() {
    let pool: Vec<NodeSpec> = [(Gpu::A100, 2), (Gpu::V100, 2), (Gpu::Rtx6000, 4)]
        .iter()
        .flat_map(|&(gpu, n)| (0..n).map(move |i| NodeSpec::new(format!("{gpu}-{i}"), gpu)))
        .collect();
    let trace = synthetic_trace(7, 6, 30.0);
    let mut controller =
        FleetController::new(pool, trace, AllocPolicy::Cannikin).expect("valid fleet");
    let rules = controller.slo_rules();

    // Observers first, session second: subscribers registered while a
    // session is live still see every subsequent batch, but starting
    // clean keeps the trace complete from the first decision.
    let slos = SloMonitor::install(rules.clone());
    let monitor = Monitor::install(InsightConfig::default());
    let series = SeriesRecorder::install();
    let session = telemetry::Session::start();
    controller.run_to_completion(50_000).expect("stream drains");
    telemetry::flush_thread();
    let records = session.drain();
    drop(session);

    println!(
        "recorded {} events, {} online SLO violations, {} online anomalies\n",
        records.len(),
        slos.violations().len(),
        monitor.report().anomalies.len()
    );

    let store = series.store();
    let none = Labels::default();
    println!("live gauges at completion:");
    for name in ["fleet_goodput", "fleet_fairness", "fleet_pool_util", "fleet_queue_depth"] {
        if let Some(v) = store.last(name, &none) {
            println!("  {name} = {v:.4}");
        }
    }
    println!("\nPrometheus exposition (first lines):");
    for line in store.render_prometheus().lines().take(8) {
        println!("  {line}");
    }

    let fleet = report::build(&records, InsightConfig::default(), &rules);
    println!("\n{}", fleet.render_text());

    let html_path = std::env::temp_dir().join("cannikin_fleet_report.html");
    std::fs::write(&html_path, fleet.render_html()).expect("write html");
    println!("HTML report: {}", html_path.display());
    assert!(fleet.verdicts_match(), "online and offline verdicts must agree");
}
