//! Spatial pooling layers.

use super::{Layer, Param};
use crate::tensor::Tensor;

/// Max pooling over `[batch, c, h, w]` inputs with a square window.
#[derive(Debug)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<PoolCache>,
}

#[derive(Debug)]
struct PoolCache {
    in_shape: Vec<usize>,
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Create a max-pool layer with the given square kernel and stride.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "pool kernel and stride must be positive");
        MaxPool2d { kernel, stride, cache: None }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "pool input must be [batch, c, h, w]");
        let (batch, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert!(h >= self.kernel && w >= self.kernel, "input smaller than pool kernel");
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;
        let mut out = Vec::with_capacity(batch * c * oh * ow);
        let mut argmax = Vec::with_capacity(batch * c * oh * ow);
        for b in 0..batch {
            for ch in 0..c {
                let plane = (b * c + ch) * h * w;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ki in 0..self.kernel {
                            for kj in 0..self.kernel {
                                let idx = plane + (oi * self.stride + ki) * w + oj * self.stride + kj;
                                if x.data()[idx] > best {
                                    best = x.data()[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out.push(best);
                        argmax.push(best_idx);
                    }
                }
            }
        }
        self.cache = Some(PoolCache { in_shape: shape.to_vec(), argmax });
        Tensor::from_vec(out, &[batch, c, oh, ow]).expect("maxpool output shape")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let mut dx = vec![0.0f32; cache.in_shape.iter().product()];
        assert_eq!(grad_out.len(), cache.argmax.len(), "pool backward shape mismatch");
        for (g, &idx) in grad_out.data().iter().zip(&cache.argmax) {
            dx[idx] += g;
        }
        Tensor::from_vec(dx, &cache.in_shape).expect("maxpool dx shape")
    }

    fn parameters(&self) -> Vec<&Param> {
        Vec::new()
    }
}

/// Average pooling over the full spatial extent (global average pool),
/// producing `[batch, c]`.
#[derive(Debug, Default)]
pub struct AvgPool2d {
    in_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Create a global average-pooling layer.
    pub fn new() -> Self {
        AvgPool2d { in_shape: None }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "pool input must be [batch, c, h, w]");
        let (batch, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let spatial = (h * w) as f32;
        let mut out = Vec::with_capacity(batch * c);
        for bc in 0..batch * c {
            out.push(x.data()[bc * h * w..(bc + 1) * h * w].iter().sum::<f32>() / spatial);
        }
        self.in_shape = Some(shape.to_vec());
        Tensor::from_vec(out, &[batch, c]).expect("avgpool output shape")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.in_shape.as_ref().expect("backward called before forward");
        let (batch, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(grad_out.len(), batch * c, "avgpool backward shape mismatch");
        let spatial = (h * w) as f32;
        let mut dx = Vec::with_capacity(batch * c * h * w);
        for &g in grad_out.data() {
            for _ in 0..h * w {
                dx.push(g / spatial);
            }
        }
        Tensor::from_vec(dx, shape).expect("avgpool dx shape")
    }

    fn parameters(&self) -> Vec<&Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_known_values() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let mut pool = MaxPool2d::new(2, 2);
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let mut pool = MaxPool2d::new(2, 2);
        let _ = pool.forward(&x, true);
        let dx = pool.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap());
        assert_eq!(dx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_forward_backward() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let mut pool = AvgPool2d::new();
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1]);
        assert_eq!(y.data(), &[2.5]);
        let dx = pool.backward(&Tensor::from_vec(vec![4.0], &[1, 1]).unwrap());
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn maxpool_gradient_conservation() {
        // Sum of routed gradients equals sum of incoming gradients.
        let x = Tensor::randn(&[2, 3, 6, 6], 31);
        let mut pool = MaxPool2d::new(2, 2);
        let y = pool.forward(&x, true);
        let g = Tensor::randn(y.shape(), 32);
        let dx = pool.backward(&g);
        assert!((dx.sum() - g.sum()).abs() < 1e-4);
    }
}
