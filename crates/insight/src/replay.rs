//! Offline trace replay: reconstruct timelines from a recorded stream
//! and run the same detectors the live monitor runs.
//!
//! [`analyze`] consumes the records of a drained session (or a parsed
//! JSONL export), builds per-node timing timelines and per-plan
//! calibration summaries, and replays the [`DetectorSet`] over the
//! stream. Because a drained stream is timestamp-sorted and a single
//! driver thread's emission order survives that sort, the offline
//! detectors see exactly the sequence the online monitor saw — so
//! [`ReplayReport::anomalies_match`] can demand byte-for-byte agreement
//! between the `offline` rerun and the `online` verdicts recorded in the
//! trace.

use crate::detectors::{DetectorSet, InsightConfig};
use cannikin_telemetry::{AnomalyDetected, Event, Histogram, Record};
use std::collections::BTreeMap;

/// Timing summary of one node (envelope rank of its `StepTiming`s).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTimeline {
    /// Node / rank index.
    pub rank: u32,
    /// Step timings observed.
    pub steps: u64,
    /// Mean local batch size.
    pub mean_batch: f64,
    /// Compute-time quantiles, seconds.
    pub compute_p50: f64,
    /// 90th percentile compute time, seconds.
    pub compute_p90: f64,
    /// Worst observed compute time, seconds.
    pub compute_max: f64,
}

/// Predicted-vs-realized summary of one plan interval (the records
/// between two consecutive `SplitDecision`s).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSummary {
    /// Ordinal of the decision in the trace.
    pub index: usize,
    /// Planning path (`even_init`, `bootstrap`, `solver`, `warm_start`).
    pub source: String,
    /// Total batch size of the plan.
    pub total: u64,
    /// Per-node local batches.
    pub local: Vec<u64>,
    /// The solver's predicted batch time, if the plan was model-based.
    pub predicted_t: Option<f64>,
    /// Mean realized batch time under the plan (straggler compute plus
    /// non-overlapped synchronization), if steps were observed.
    pub realized_t: Option<f64>,
    /// `|realized − predicted| / predicted`, when both exist.
    pub rel_error: Option<f64>,
}

/// Everything [`analyze`] reconstructs from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Total records in the trace.
    pub events: u64,
    /// Record count per event kind, sorted by kind.
    pub kind_counts: Vec<(String, u64)>,
    /// Per-node timelines, ascending by rank.
    pub nodes: Vec<NodeTimeline>,
    /// Per-plan calibration, in trace order.
    pub plans: Vec<PlanSummary>,
    /// Anomalies produced by replaying the detectors over the trace.
    pub offline: Vec<AnomalyDetected>,
    /// `AnomalyDetected` records already present in the trace (the online
    /// monitor's verdicts), in trace order.
    pub online: Vec<AnomalyDetected>,
}

impl ReplayReport {
    /// Whether the offline rerun reproduced the online verdicts exactly
    /// (same count, same kinds, same steps, same payloads).
    pub fn anomalies_match(&self) -> bool {
        self.offline == self.online
    }

    /// Text rendering of the full report (the CLI's output).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "trace: {} records", self.events);
        for (kind, count) in &self.kind_counts {
            let _ = writeln!(out, "  {kind:<18} {count}");
        }
        if !self.nodes.is_empty() {
            let _ = writeln!(out, "per-node compute (s): rank  steps  mean_b  p50      p90      max");
            for n in &self.nodes {
                let _ = writeln!(
                    out,
                    "                      {:>4}  {:>5}  {:>6.1}  {:.5}  {:.5}  {:.5}",
                    n.rank, n.steps, n.mean_batch, n.compute_p50, n.compute_p90, n.compute_max
                );
            }
        }
        if !self.plans.is_empty() {
            let _ = writeln!(out, "plans: idx  source      total  predicted  realized  error");
            for p in &self.plans {
                let fmt_opt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.5}"));
                let _ = writeln!(
                    out,
                    "       {:>3}  {:<10}  {:>5}  {:>9}  {:>8}  {}",
                    p.index,
                    p.source,
                    p.total,
                    fmt_opt(p.predicted_t),
                    fmt_opt(p.realized_t),
                    p.rel_error.map_or_else(|| "-".to_string(), |e| format!("{:.1}%", e * 100.0)),
                );
            }
        }
        let _ = writeln!(out, "anomalies: {} offline, {} online in trace", self.offline.len(), self.online.len());
        for a in &self.offline {
            let _ = writeln!(
                out,
                "  [{}] step {} node {} expected {:.4} observed {:.4} ({:.2}x)",
                a.kind.as_str(),
                a.step,
                a.node.map_or_else(|| "-".to_string(), |n| n.to_string()),
                a.expected,
                a.observed,
                a.severity
            );
        }
        let _ = writeln!(
            out,
            "online/offline agreement: {}",
            if self.anomalies_match() { "EXACT" } else { "MISMATCH" }
        );
        out
    }
}

/// Per-plan accumulation while scanning the trace.
#[derive(Debug, Default)]
struct PlanAccum {
    steps: BTreeMap<u64, (f64, f64, f64, u64)>, // max_compute, max_comm, sum_overlap, count
}

impl PlanAccum {
    fn observe(&mut self, step: u64, t_compute: f64, t_comm: f64, overlap: f64) {
        let e = self.steps.entry(step).or_insert((0.0, 0.0, 0.0, 0));
        e.0 = e.0.max(t_compute);
        e.1 = e.1.max(t_comm);
        e.2 += overlap;
        e.3 += 1;
    }

    fn realized(&self) -> Option<f64> {
        if self.steps.is_empty() {
            return None;
        }
        let total: f64 = self
            .steps
            .values()
            .map(|&(compute, comm, overlap_sum, count)| {
                let overlap = if count > 0 { overlap_sum / count as f64 } else { 0.0 };
                compute + (1.0 - overlap.clamp(0.0, 1.0)) * comm
            })
            .sum();
        Some(total / self.steps.len() as f64)
    }
}

struct NodeAccum {
    hist: Histogram,
    steps: u64,
    batch_sum: f64,
    compute_max: f64,
}

impl NodeAccum {
    fn new() -> NodeAccum {
        NodeAccum {
            // 1 µs … ~67 s in 26 exponential buckets: covers every step
            // time the simulator or the functional path produces.
            hist: Histogram::exponential(1e-6, 2.0, 26),
            steps: 0,
            batch_sum: 0.0,
            compute_max: 0.0,
        }
    }
}

/// Reconstruct timelines and replay the detectors over a record stream.
/// Pass the records in drain order (a drained session or a parsed JSONL
/// export is already timestamp-sorted).
pub fn analyze(records: &[Record], config: InsightConfig) -> ReplayReport {
    let mut set = DetectorSet::new(config.clone());
    let mut kind_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut nodes: BTreeMap<u32, NodeAccum> = BTreeMap::new();
    let mut plans: Vec<PlanSummary> = Vec::new();
    let mut accum: Option<PlanAccum> = None;
    let mut offline = Vec::new();
    let mut online = Vec::new();
    let mut events = 0u64;

    fn finalize_plan(plans: &mut [PlanSummary], accum: &mut Option<PlanAccum>) {
        if let (Some(acc), Some(plan)) = (accum.take(), plans.last_mut()) {
            plan.realized_t = acc.realized();
            plan.rel_error = match (plan.predicted_t, plan.realized_t) {
                (Some(p), Some(r)) if p > 0.0 => Some((r - p).abs() / p),
                _ => None,
            };
        }
    }

    for record in records {
        if let Some(rank) = config.only_rank {
            if record.rank != rank {
                continue;
            }
        }
        events += 1;
        *kind_counts.entry(record.event.kind()).or_insert(0) += 1;
        offline.extend(set.observe(record));
        match &record.event {
            Event::StepTiming(t) => {
                let node = nodes.entry(t.rank).or_insert_with(NodeAccum::new);
                node.hist.record(t.t_compute);
                node.steps += 1;
                node.batch_sum += t.b_i as f64;
                node.compute_max = node.compute_max.max(t.t_compute);
                if let Some(acc) = accum.as_mut() {
                    acc.observe(t.step, t.t_compute, t.t_comm, t.overlap);
                }
            }
            Event::SplitDecision(d) => {
                finalize_plan(&mut plans, &mut accum);
                plans.push(PlanSummary {
                    index: plans.len(),
                    source: source_name(d.source).to_string(),
                    total: d.total,
                    local: d.local.clone(),
                    predicted_t: d.predicted_t,
                    realized_t: None,
                    rel_error: None,
                });
                accum = Some(PlanAccum::default());
            }
            Event::AnomalyDetected(a) => online.push(a.clone()),
            _ => {}
        }
    }
    finalize_plan(&mut plans, &mut accum);

    let nodes = nodes
        .into_iter()
        .map(|(rank, acc)| NodeTimeline {
            rank,
            steps: acc.steps,
            mean_batch: if acc.steps > 0 { acc.batch_sum / acc.steps as f64 } else { 0.0 },
            compute_p50: acc.hist.quantile(0.5).unwrap_or(0.0),
            compute_p90: acc.hist.quantile(0.9).unwrap_or(0.0),
            compute_max: acc.compute_max,
        })
        .collect();

    ReplayReport {
        events,
        kind_counts: kind_counts.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        nodes,
        plans,
        offline,
        online,
    }
}

fn source_name(source: cannikin_telemetry::SplitSource) -> &'static str {
    use cannikin_telemetry::SplitSource;
    match source {
        SplitSource::EvenInit => "even_init",
        SplitSource::Bootstrap => "bootstrap",
        SplitSource::Solver => "solver",
        SplitSource::WarmStart => "warm_start",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cannikin_telemetry::{SplitDecision, SplitSource, StepTiming};

    fn timing(step: u64, rank: u32, b: u64, t: f64) -> Record {
        Record {
            ts_ns: step * 10 + u64::from(rank),
            node: rank,
            rank: 0,
            event: Event::StepTiming(StepTiming {
                step,
                rank,
                b_i: b,
                t_compute: t,
                t_comm: 0.01,
                overlap: 0.5,
            }),
        }
    }

    fn decision(predicted: Option<f64>, local: Vec<u64>) -> Record {
        Record {
            ts_ns: 0,
            node: 0,
            rank: 0,
            event: Event::SplitDecision(SplitDecision {
                total: local.iter().sum(),
                local,
                predicted_t: predicted,
                source: SplitSource::Solver,
            }),
        }
    }

    #[test]
    fn timelines_and_plans_are_reconstructed() {
        let mut records = vec![decision(Some(0.5), vec![32, 32])];
        for step in 0..10u64 {
            records.push(timing(step, 0, 32, 0.3));
            records.push(timing(step, 1, 32, 0.49));
        }
        let report = analyze(&records, InsightConfig::default());
        assert_eq!(report.events, 21);
        assert_eq!(report.nodes.len(), 2);
        assert_eq!(report.nodes[0].rank, 0);
        assert_eq!(report.nodes[0].steps, 10);
        assert!((report.nodes[0].mean_batch - 32.0).abs() < 1e-9);
        assert!(report.nodes[1].compute_max >= 0.49);
        // One plan: realized = max compute (0.49) + 0.5 * 0.01 comm.
        assert_eq!(report.plans.len(), 1);
        let plan = &report.plans[0];
        assert_eq!(plan.source, "solver");
        let realized = plan.realized_t.unwrap();
        assert!((realized - 0.495).abs() < 1e-9, "realized {realized}");
        assert!(plan.rel_error.unwrap() < 0.05);
        assert!(report.anomalies_match(), "no anomalies on either side");
        assert!(report.render().contains("EXACT"));
    }

    #[test]
    fn offline_detectors_reproduce_recorded_anomalies() {
        // A trace with a straggler signature and the matching online
        // verdict, as the live monitor would have injected it.
        let mut records = Vec::new();
        let law = |b: f64| 0.01 * b + 0.05;
        let mut step = 0u64;
        for _ in 0..6 {
            for b in [32u64, 48] {
                records.push(timing(step, 0, b, law(b as f64)));
                step += 1;
            }
        }
        for _ in 0..3 {
            records.push(timing(step, 0, 32, 2.0 * law(32.0)));
            step += 1;
        }
        // First pass tells us what the online monitor would have found.
        let first = analyze(&records, InsightConfig::default());
        assert_eq!(first.offline.len(), 1);
        assert!(!first.anomalies_match(), "trace carries no online verdicts yet");
        // Embed the verdicts as the live monitor does and re-analyze.
        for a in &first.offline {
            records.push(Record {
                ts_ns: u64::MAX,
                node: a.node.unwrap_or(0),
                rank: 0,
                event: Event::AnomalyDetected(a.clone()),
            });
        }
        let second = analyze(&records, InsightConfig::default());
        assert_eq!(second.online, first.offline);
        assert!(second.anomalies_match());
    }

    #[test]
    fn only_rank_filter_drops_foreign_records() {
        let mut foreign = timing(0, 0, 32, 0.3);
        foreign.rank = 9;
        let ours = timing(0, 1, 32, 0.3);
        let config = InsightConfig { only_rank: Some(0), ..InsightConfig::default() };
        let report = analyze(&[foreign, ours], config);
        assert_eq!(report.events, 1);
        assert_eq!(report.nodes.len(), 1);
        assert_eq!(report.nodes[0].rank, 1);
    }
}
