//! AdaptDL/Pollux baseline.

use cannikin_core::engine::{EpochRecord, NoiseModel};
use cannikin_core::gns::statistical_efficiency;
use cannikin_core::perf::{Analyzer, MeasurementAggregation};
use cannikin_core::policy::{EpochObservation, EvenSplit, Policy, PolicyContext};
use hetsim::Simulator;

use std::time::Instant;

/// The state-of-the-art *homogeneous* adaptive system (§5.1).
///
/// AdaptDL adapts the total batch size by maximizing goodput — exactly
/// like Cannikin — but assumes a homogeneous cluster, so every rank
/// receives `B/n` samples. The planning rule lives in
/// [`cannikin_core::policy::EvenSplit`]; this baseline wires it to a
/// [`Simulator`] and its own NaiveMean model fitter through the same
/// ask/tell protocol the Cannikin engines use, so the comparison differs
/// only in the policy, not the plumbing.
pub struct AdaptdlTrainer {
    sim: Simulator,
    noise: Box<dyn NoiseModel>,
    analyzer: Analyzer,
    policy: EvenSplit,
    dataset_size: usize,
    base_batch: u64,
    max_batch: u64,
    epoch: usize,
    effective_epochs: f64,
    cumulative_time: f64,
}

impl AdaptdlTrainer {
    /// Create an AdaptDL run over the batch range `[base_batch, max_batch]`.
    ///
    /// # Panics
    ///
    /// Panics if `base_batch` cannot give every node one sample.
    pub fn new(sim: Simulator, noise: Box<dyn NoiseModel>, dataset_size: usize, base_batch: u64, max_batch: u64) -> Self {
        let n = sim.cluster().len();
        assert!(base_batch >= n as u64, "base batch must cover every node");
        AdaptdlTrainer {
            analyzer: Analyzer::new(n, MeasurementAggregation::NaiveMean),
            policy: EvenSplit::new(),
            sim,
            noise,
            dataset_size,
            base_batch,
            max_batch,
            epoch: 0,
            effective_epochs: 0.0,
            cumulative_time: 0.0,
        }
    }

    /// Run one epoch.
    pub fn run_epoch(&mut self) -> EpochRecord {
        let n = self.sim.cluster().len();
        let phi = self.noise.noise_scale(self.effective_epochs);
        let started = Instant::now();
        let ctx = PolicyContext {
            epoch: self.epoch,
            nodes: n,
            adaptive: true,
            base_batch: self.base_batch,
            max_batch: self.max_batch,
            dataset_size: self.dataset_size,
            phi: Some(phi),
            last_split: Vec::new(),
            solver_input: self.analyzer.solver_input().ok(),
            per_sample_times: Vec::new(),
        };
        let plan = self.policy.ask(&ctx).expect("even-split planning is infallible");
        let overhead_seconds = started.elapsed().as_secs_f64();
        let (total, local) = (plan.total, plan.local);

        let steps = (self.dataset_size / total as usize).max(1);
        let trace = self.sim.simulate_epoch(&local, steps);
        for batch in &trace.batches {
            self.analyzer.observe_batch(batch);
        }
        let efficiency = statistical_efficiency(phi, self.base_batch, total);
        let gained = steps as f64 * total as f64 * efficiency / self.dataset_size as f64;
        self.effective_epochs += gained;
        self.cumulative_time += trace.epoch_time + overhead_seconds;
        let record = EpochRecord {
            epoch: self.epoch,
            total_batch: total,
            local_batches: local.clone(),
            steps,
            accumulation: 1,
            epoch_time: trace.epoch_time,
            mean_batch_time: trace.mean_batch_time(),
            noise_scale: phi,
            efficiency,
            effective_epochs: self.effective_epochs,
            cumulative_time: self.cumulative_time,
            overhead_seconds,
            pattern: None,
            used_model: plan.used_model,
            faults: 0,
            recoveries: 0,
        };
        self.policy.tell(&EpochObservation {
            epoch: self.epoch,
            total,
            local,
            epoch_time: trace.epoch_time,
            mean_batch_time: record.mean_batch_time,
            efficiency,
            goodput: gained / trace.epoch_time,
            phi: Some(phi),
            per_sample_times: Vec::new(),
        });
        self.epoch += 1;
        record
    }

    /// Run until `target` effective epochs or `max_epochs`.
    pub fn train_until(&mut self, target: f64, max_epochs: usize) -> Vec<EpochRecord> {
        let mut out = Vec::new();
        while self.effective_epochs < target && out.len() < max_epochs {
            out.push(self.run_epoch());
        }
        out
    }

    /// Run a fixed number of epochs.
    pub fn run_epochs(&mut self, n: usize) -> Vec<EpochRecord> {
        (0..n).map(|_| self.run_epoch()).collect()
    }
}

impl cannikin_core::engine::TrainingSubject for AdaptdlTrainer {
    fn next_epoch(&mut self) -> Result<EpochRecord, cannikin_core::error::CannikinError> {
        Ok(self.run_epoch())
    }

    fn progress(&self) -> f64 {
        self.effective_epochs
    }
}

impl std::fmt::Debug for AdaptdlTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AdaptdlTrainer(epoch {}, eff {:.2})", self.epoch, self.effective_epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cannikin_core::engine::LinearNoiseGrowth;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::job::JobSpec;

    fn sim() -> Simulator {
        let cluster = ClusterSpec::new(
            "t",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        );
        Simulator::new(cluster, JobSpec::resnet18_cifar10(), 4)
    }

    #[test]
    fn splits_stay_even_while_batch_adapts() {
        let noise = Box::new(LinearNoiseGrowth { initial: 500.0, rate: 2.0 });
        let mut t = AdaptdlTrainer::new(sim(), noise, 50_000, 64, 4096);
        let records = t.run_epochs(8);
        for r in &records {
            let max = *r.local_batches.iter().max().unwrap();
            let min = *r.local_batches.iter().min().unwrap();
            assert!(max - min <= 1, "even split violated: {:?}", r.local_batches);
        }
        // Batch size must eventually move off B0.
        assert!(records.iter().any(|r| r.total_batch != 64));
    }

    #[test]
    fn adaptdl_beats_ddp_on_convergence() {
        let noise = || Box::new(LinearNoiseGrowth { initial: 800.0, rate: 3.0 });
        let mut adaptdl = AdaptdlTrainer::new(sim(), noise(), 50_000, 64, 4096);
        let mut ddp = crate::DdpTrainer::new(sim(), noise(), 50_000, 64, 64);
        let a = adaptdl.train_until(5.0, 300);
        let d = ddp.train_until(5.0, 300);
        let ta = a.last().unwrap().cumulative_time;
        let td = d.last().unwrap().cumulative_time;
        assert!(ta < td, "AdaptDL {ta} should converge faster than DDP {td}");
    }
}
