//! Sharing-induced heterogeneity (§6, cluster C).
//!
//! ```text
//! cargo run --release --example gpu_sharing
//! ```
//!
//! Sixteen *identical* RTX6000 nodes become heterogeneous because dummy
//! co-located workloads consume different fractions of each GPU. Cannikin
//! adapts exactly as it does for hardware heterogeneity — and when the
//! contention changes mid-run, the continuously learned models re-converge
//! within a few epochs.

use cannikin::prelude::*;
use cannikin::workloads::{clusters, profiles};

fn main() {
    let profile = profiles::cifar10_resnet18();
    let cluster = clusters::cluster_c_default();
    println!(
        "cluster C: {} identical GPUs, sharing-induced heterogeneity degree {:.2}\n",
        cluster.len(),
        cluster.heterogeneity_degree()
    );

    let sim = Simulator::new(cluster, profile.job.clone(), 7);
    let mut trainer = CannikinTrainer::builder()
        .simulator(sim)
        .noise(profile.noise)
        .dataset_size(profile.dataset_size)
        .batch_range(512, 512)
        .adaptive_batch(false) // isolate the split adaptation
        .build()
        .expect("valid configuration");

    println!("{:>5}  {:>14}  {:>12}  {:>12}", "epoch", "batch time (s)", "b[busiest]", "b[idle]");
    for epoch in 0..14 {
        if epoch == 7 {
            // The dummy workload on the most contended node finishes:
            // its available fraction jumps from 30% to 100%.
            trainer.simulator_mut().set_contention(15, 1.0);
            println!("--- node 15's co-located workload exits (30% -> 100% available) ---");
        }
        let r = trainer.run_epoch().expect("epoch");
        println!(
            "{:>5}  {:>14.4}  {:>12}  {:>12}",
            r.epoch,
            r.mean_batch_time,
            r.local_batches[15],
            r.local_batches[0],
        );
    }
    println!("\nafter the contention change the analyzer keeps learning and node 15's");
    println!("share grows to match its restored speed within a few epochs");
}
