//! One function per table/figure of the paper's evaluation.
//!
//! Every function returns the rendered text block that `figures` prints,
//! so integration tests can assert on the numbers without re-parsing
//! stdout. The experiment ids match DESIGN.md §4.

mod ablations;
mod discussion;
mod faults;
mod figures;
mod fleet;
mod insight;
mod perf;
mod policy;
mod scenarios;
mod slo;
mod tables;
mod telemetry;
mod transport;

pub use ablations::{ablation_overlap, ablation_warm_start, accumulation, elastic, multi_job};
pub use discussion::{cluster_c_experiment, hetero_sweep};
pub use faults::faults;
pub use figures::{fig10, fig5, fig6, fig7, fig8, fig9};
pub use fleet::{fleet, fleet_pool, fleet_report, FleetBenchReport, PolicyOutcome, TraceOutcome, FLEET_SEEDS};
pub use insight::insight_run;
pub use perf::{perf, perf_report, PerfReport, PERF_SEED};
pub use policy::{policy, POLICY_SCENARIOS, POLICY_SUBJECTS};
pub use scenarios::{render_scenarios, scenarios};
pub use slo::slo;
pub use tables::{table1, table6, table_prediction};
pub use telemetry::{summarize, telemetry_summary};
pub use transport::transport;

/// Run every experiment in paper order, returning `(id, output)` pairs.
pub fn all() -> Vec<(&'static str, String)> {
    vec![
        ("table1", table1()),
        ("fig5", fig5()),
        ("fig6", fig6()),
        ("fig7", fig7()),
        ("fig8", fig8()),
        ("fig9", fig9()),
        ("fig10", fig10()),
        ("table_prediction", table_prediction()),
        ("table6", table6()),
        ("hetero_sweep", hetero_sweep()),
        ("cluster_c", cluster_c_experiment()),
        ("ablation_overlap", ablation_overlap()),
        ("ablation_warm_start", ablation_warm_start()),
        ("elastic", elastic()),
        ("faults", faults()),
        ("accumulation", accumulation()),
        ("multi_job", multi_job()),
        ("fleet", fleet()),
        ("telemetry", telemetry_summary()),
        ("insight", insight_run()),
        ("slo", slo()),
        ("transport", transport()),
        ("perf", perf()),
        ("scenarios", scenarios()),
        ("policy", policy()),
    ]
}

/// Look up one experiment by id.
pub fn by_id(id: &str) -> Option<String> {
    match id {
        "table1" => Some(table1()),
        "fig5" => Some(fig5()),
        "fig6" => Some(fig6()),
        "fig7" => Some(fig7()),
        "fig8" => Some(fig8()),
        "fig9" => Some(fig9()),
        "fig10" => Some(fig10()),
        "table_prediction" => Some(table_prediction()),
        "table6" => Some(table6()),
        "hetero_sweep" => Some(hetero_sweep()),
        "cluster_c" => Some(cluster_c_experiment()),
        "ablation_overlap" => Some(ablation_overlap()),
        "ablation_warm_start" => Some(ablation_warm_start()),
        "elastic" => Some(elastic()),
        "faults" => Some(faults()),
        "accumulation" => Some(accumulation()),
        "multi_job" => Some(multi_job()),
        "fleet" => Some(fleet()),
        "telemetry" => Some(telemetry_summary()),
        "insight" => Some(insight_run()),
        "slo" => Some(slo()),
        "transport" => Some(transport()),
        "perf" => Some(perf()),
        "scenarios" => Some(scenarios()),
        "policy" => Some(policy()),
        _ => None,
    }
}

/// Ids of every experiment, in paper order.
pub fn ids() -> Vec<&'static str> {
    vec![
        "table1",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "table_prediction",
        "table6",
        "hetero_sweep",
        "cluster_c",
        "ablation_overlap",
        "ablation_warm_start",
        "elastic",
        "faults",
        "accumulation",
        "multi_job",
        "fleet",
        "telemetry",
        "insight",
        "slo",
        "transport",
        "perf",
        "scenarios",
        "policy",
    ]
}
