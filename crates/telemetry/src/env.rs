//! The `CANNIKIN_TELEMETRY` environment knob.
//!
//! Binaries and examples call [`export_from_env`] after draining a session
//! to honour specs like:
//!
//! ```text
//! CANNIKIN_TELEMETRY=jsonl:/tmp/run.jsonl
//! CANNIKIN_TELEMETRY=chrome:/tmp/run.trace.json
//! CANNIKIN_TELEMETRY=jsonl:/tmp/run.jsonl,chrome:/tmp/run.trace.json
//! ```
//!
//! Targets are comma-separated `format:path` pairs (so paths themselves
//! must not contain commas).

use crate::event::Record;
use crate::export::{write_chrome_trace, write_jsonl};
use std::path::PathBuf;

/// Name of the environment variable consulted by [`export_from_env`].
pub const ENV_VAR: &str = "CANNIKIN_TELEMETRY";

/// One parsed export destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportTarget {
    /// One JSON object per record, newline-delimited.
    Jsonl(PathBuf),
    /// Chrome `trace_event` JSON for `chrome://tracing` / Perfetto.
    Chrome(PathBuf),
}

impl ExportTarget {
    /// The destination path.
    pub fn path(&self) -> &PathBuf {
        match self {
            ExportTarget::Jsonl(p) | ExportTarget::Chrome(p) => p,
        }
    }
}

/// Parse a `format:path[,format:path...]` spec.
///
/// # Errors
///
/// Returns a description of the first malformed or unknown-format entry.
pub fn parse_targets(spec: &str) -> Result<Vec<ExportTarget>, String> {
    let mut targets = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (format, path) = entry
            .split_once(':')
            .ok_or_else(|| format!("telemetry target `{entry}` is not `format:path`"))?;
        if path.is_empty() {
            return Err(format!("telemetry target `{entry}` has an empty path"));
        }
        match format {
            "jsonl" => targets.push(ExportTarget::Jsonl(PathBuf::from(path))),
            "chrome" => targets.push(ExportTarget::Chrome(PathBuf::from(path))),
            other => return Err(format!("unknown telemetry format `{other}` (expected `jsonl` or `chrome`)")),
        }
    }
    Ok(targets)
}

/// Write `records` to every target named by `CANNIKIN_TELEMETRY` and return
/// the written paths. Unset or empty variable → no writes, `Ok(vec![])`.
///
/// # Errors
///
/// Returns a description of the first parse or I/O failure.
pub fn export_from_env(records: &[Record]) -> Result<Vec<PathBuf>, String> {
    let Ok(spec) = std::env::var(ENV_VAR) else {
        return Ok(Vec::new());
    };
    export_to(&spec, records)
}

/// [`export_from_env`] with an explicit spec (testable without touching the
/// process environment).
///
/// # Errors
///
/// Returns a description of the first parse or I/O failure.
pub fn export_to(spec: &str, records: &[Record]) -> Result<Vec<PathBuf>, String> {
    let mut written = Vec::new();
    for target in parse_targets(spec)? {
        let result = match &target {
            ExportTarget::Jsonl(path) => write_jsonl(path, records),
            ExportTarget::Chrome(path) => write_chrome_trace(path, records),
        };
        result.map_err(|e| format!("writing {}: {e}", target.path().display()))?;
        written.push(target.path().clone());
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_and_multi_target_specs() {
        assert_eq!(parse_targets("jsonl:/tmp/a.jsonl").unwrap(), vec![ExportTarget::Jsonl(PathBuf::from("/tmp/a.jsonl"))]);
        assert_eq!(
            parse_targets("jsonl:/tmp/a.jsonl, chrome:/tmp/b.json").unwrap(),
            vec![ExportTarget::Jsonl(PathBuf::from("/tmp/a.jsonl")), ExportTarget::Chrome(PathBuf::from("/tmp/b.json"))]
        );
        assert_eq!(parse_targets("").unwrap(), vec![]);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse_targets("jsonl").unwrap_err().contains("not `format:path`"));
        assert!(parse_targets("jsonl:").unwrap_err().contains("empty path"));
        assert!(parse_targets("csv:/tmp/x").unwrap_err().contains("unknown telemetry format"));
    }

    #[test]
    fn export_to_writes_every_target() {
        let dir = std::env::temp_dir().join("cannikin-telemetry-env-test");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("out.jsonl");
        let chrome = dir.join("out.trace.json");
        let spec = format!("jsonl:{},chrome:{}", jsonl.display(), chrome.display());
        let records = vec![Record {
            ts_ns: 1,
            node: 0,
            rank: 0,
            event: crate::event::Event::Counter(crate::event::Counter { name: "x".into(), value: 1.0 }),
        }];
        let written = export_to(&spec, &records).unwrap();
        assert_eq!(written.len(), 2);
        assert!(std::fs::read_to_string(&jsonl).unwrap().contains("\"counter\""));
        assert!(std::fs::read_to_string(&chrome).unwrap().starts_with("{\"traceEvents\":["));
        std::fs::remove_file(jsonl).ok();
        std::fs::remove_file(chrome).ok();
    }
}
