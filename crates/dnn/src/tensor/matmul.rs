//! Matrix multiplication kernels.
//!
//! Three variants are provided because the linear-layer backward pass needs
//! products against transposed operands; materializing the transpose first
//! would double the memory traffic of every backward step. All three route
//! into one cache-blocked, packed, optionally multithreaded core
//! ([`blocked`]) — the transposed forms only change the strides used while
//! packing. The seed's naive kernels live on in [`reference`] as the
//! correctness baseline for tests and benches.
//!
//! Two API levels:
//!
//! - [`matmul`] / [`matmul_at_b`] / [`matmul_a_bt`] allocate and return a
//!   fresh [`Tensor`] — the convenient form for layer forward passes.
//! - [`gemm`] / [`gemm_at_b`] / [`gemm_a_bt`] write into a caller-provided
//!   slice, optionally accumulating (`acc = true` computes `C += …`). The
//!   layers use these on reused buffers and to accumulate parameter
//!   gradients in place, keeping allocation off the training hot path.

mod blocked;
pub mod reference;
pub mod simd;

use super::Tensor;

/// `C = A × B` for 2-D tensors `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics if operands are not 2-D or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    blocked::gemm_strided(m, n, k, a.data(), k, 1, b.data(), n, 1, &mut out);
    Tensor::from_vec(out, &[m, n]).expect("matmul output shape")
}

/// `C = Aᵀ × B` for `A: [k, m]`, `B: [k, n]` — used for weight gradients.
///
/// # Panics
///
/// Panics if operands are not 2-D or the leading dimensions disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_at_b lhs");
    let (k2, n) = dims2(b, "matmul_at_b rhs");
    assert_eq!(k, k2, "matmul_at_b leading dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    blocked::gemm_strided(m, n, k, a.data(), 1, m, b.data(), n, 1, &mut out);
    Tensor::from_vec(out, &[m, n]).expect("matmul_at_b output shape")
}

/// `C = A × Bᵀ` for `A: [m, k]`, `B: [n, k]` — used for input gradients.
///
/// # Panics
///
/// Panics if operands are not 2-D or the trailing dimensions disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_a_bt lhs");
    let (n, k2) = dims2(b, "matmul_a_bt rhs");
    assert_eq!(k, k2, "matmul_a_bt trailing dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    blocked::gemm_strided(m, n, k, a.data(), k, 1, b.data(), 1, k, &mut out);
    Tensor::from_vec(out, &[m, n]).expect("matmul_a_bt output shape")
}

/// Slice-level `C (+)= A × B` for row-major `a: [m, k]`, `b: [k, n]`,
/// `c: [m, n]`. With `acc = false` the output is overwritten; with
/// `acc = true` the product is added to the existing contents (the form
/// parameter-gradient accumulation wants).
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32], acc: bool) {
    assert_eq!(a.len(), m * k, "gemm lhs length");
    assert_eq!(b.len(), k * n, "gemm rhs length");
    assert_eq!(c.len(), m * n, "gemm output length");
    if !acc {
        c.fill(0.0);
    }
    blocked::gemm_strided(m, n, k, a, k, 1, b, n, 1, c);
}

/// Slice-level `C (+)= Aᵀ × B` for row-major `a: [k, m]`, `b: [k, n]`,
/// `c: [m, n]`.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm_at_b(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32], acc: bool) {
    assert_eq!(a.len(), k * m, "gemm_at_b lhs length");
    assert_eq!(b.len(), k * n, "gemm_at_b rhs length");
    assert_eq!(c.len(), m * n, "gemm_at_b output length");
    if !acc {
        c.fill(0.0);
    }
    blocked::gemm_strided(m, n, k, a, 1, m, b, n, 1, c);
}

/// Slice-level `C (+)= A × Bᵀ` for row-major `a: [m, k]`, `b: [n, k]`,
/// `c: [m, n]`.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm_a_bt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32], acc: bool) {
    assert_eq!(a.len(), m * k, "gemm_a_bt lhs length");
    assert_eq!(b.len(), n * k, "gemm_a_bt rhs length");
    assert_eq!(c.len(), m * n, "gemm_a_bt output length");
    if !acc {
        c.fill(0.0);
    }
    blocked::gemm_strided(m, n, k, a, k, 1, b, 1, k, c);
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().len(), 2, "{what} must be 2-D, got {:?}", t.shape());
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::threads;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn matmul_known_values() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let eye = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = t(&[1.0, -2.0, 0.5, 3.0, 4.0, -1.0], &[3, 2]);
        let b = t(&[2.0, 1.0, 0.0, -1.0, 1.5, 2.5], &[3, 2]);
        // Aᵀ B: [2,3]x[3,2] = [2,2]
        let via_kernel = matmul_at_b(&a, &b);
        let via_transpose = matmul(&a.transpose2d(), &b);
        assert_eq!(via_kernel, via_transpose);
        // A Bᵀ: [3,2]x[2,3] = [3,3]
        let via_kernel = matmul_a_bt(&a, &b);
        let via_transpose = matmul(&a, &b.transpose2d());
        assert_eq!(via_kernel, via_transpose);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        let _ = matmul(&Tensor::ones(&[2, 3]), &Tensor::ones(&[2, 3]));
    }

    #[test]
    fn matmul_randomized_associativity_with_vector() {
        // (A B) x == A (B x) up to fp error.
        let a = Tensor::randn(&[5, 7], 10);
        let b = Tensor::randn(&[7, 4], 11);
        let x = Tensor::randn(&[4, 1], 12);
        let left = matmul(&matmul(&a, &b), &x);
        let right = matmul(&a, &matmul(&b, &x));
        for (l, r) in left.data().iter().zip(right.data()) {
            assert!((l - r).abs() < 1e-4, "{l} vs {r}");
        }
    }

    fn assert_close(got: &Tensor, want: &Tensor) {
        assert_eq!(got.shape(), want.shape());
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!((g - w).abs() <= 1e-4 * (1.0 + w.abs()), "{g} vs {w}");
        }
    }

    #[test]
    fn blocked_agrees_with_reference_at_awkward_shapes() {
        // Shapes straddling every tile boundary, plus degenerate m/k/n = 1.
        for &(m, k, n) in &[(1, 1, 1), (1, 9, 4), (5, 1, 7), (33, 31, 29), (65, 127, 66), (4, 300, 3)] {
            let a = Tensor::randn(&[m, k], (m * k) as u64);
            let b = Tensor::randn(&[k, n], (k * n + 1) as u64);
            assert_close(&matmul(&a, &b), &reference::matmul(&a, &b));
            let at = Tensor::randn(&[k, m], (m + k) as u64);
            assert_close(&matmul_at_b(&at, &b), &reference::matmul_at_b(&at, &b));
            let bt = Tensor::randn(&[n, k], (n + k) as u64);
            assert_close(&matmul_a_bt(&a, &bt), &reference::matmul_a_bt(&a, &bt));
        }
    }

    #[test]
    fn threaded_kernels_agree_with_reference() {
        let a = Tensor::randn(&[150, 80], 21);
        let b = Tensor::randn(&[80, 60], 22);
        let want = reference::matmul(&a, &b);
        threads::with_threads(4, || assert_close(&matmul(&a, &b), &want));
    }

    #[test]
    fn gemm_accumulate_adds_to_existing_output() {
        let a = Tensor::randn(&[6, 5], 31);
        let b = Tensor::randn(&[5, 4], 32);
        let product = matmul(&a, &b);
        let mut c = vec![1.0f32; 6 * 4];
        gemm(6, 4, 5, a.data(), b.data(), &mut c, true);
        for (got, want) in c.iter().zip(product.data()) {
            assert!((got - (want + 1.0)).abs() < 1e-5);
        }
        // acc = false overwrites.
        gemm(6, 4, 5, a.data(), b.data(), &mut c, false);
        for (got, want) in c.iter().zip(product.data()) {
            assert!((got - want).abs() < 1e-5);
        }
    }

    #[test]
    fn gemm_variants_match_tensor_wrappers() {
        let a = Tensor::randn(&[9, 12], 41);
        let b = Tensor::randn(&[12, 7], 42);
        let mut c = vec![0.0f32; 9 * 7];
        gemm(9, 7, 12, a.data(), b.data(), &mut c, false);
        assert_eq!(c.as_slice(), matmul(&a, &b).data());

        let at = Tensor::randn(&[12, 9], 43);
        let mut c = vec![0.0f32; 9 * 7];
        gemm_at_b(9, 7, 12, at.data(), b.data(), &mut c, false);
        assert_eq!(c.as_slice(), matmul_at_b(&at, &b).data());

        let bt = Tensor::randn(&[7, 12], 44);
        let mut c = vec![0.0f32; 9 * 7];
        gemm_a_bt(9, 7, 12, a.data(), bt.data(), &mut c, false);
        assert_eq!(c.as_slice(), matmul_a_bt(&a, &bt).data());
    }
}
