//! Criterion bench: the OptPerf solver (Algorithm 1).
//!
//! Covers the paper's complexity claims (§4.2): the per-candidate solve is
//! `O((n+1)³)` from the equal-finish linear systems, the boundary search
//! adds `O(log n)`, and a warm-started re-solve costs a single
//! verification.

use cannikin_core::optperf::{NodePerf, OptPerfSolver, SolverInput};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Synthetic n-node heterogeneous input with a 4x speed spread.
fn synthetic_input(n: usize) -> SolverInput {
    let nodes = (0..n)
        .map(|i| {
            let speed = 1.0 + 3.0 * (i as f64 / (n.max(2) - 1) as f64);
            NodePerf {
                q: 0.4e-3 / speed + 0.05e-3,
                s: 2e-3 + 0.3e-3 * (i % 3) as f64,
                k: 0.8e-3 / speed,
                m: 1e-3,
                max_batch: None,
            }
        })
        .collect();
    SolverInput { nodes, gamma: 0.12, t_o: 20e-3, t_u: 2e-3 }
}

fn bench_solve_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("optperf_solve_cold");
    for n in [2usize, 4, 8, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let input = synthetic_input(n);
            b.iter(|| {
                let mut solver = OptPerfSolver::new(input.clone());
                black_box(solver.solve(black_box(64 * n as u64)).expect("feasible"))
            });
        });
    }
    group.finish();
}

fn bench_solve_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("optperf_solve_warm");
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut solver = OptPerfSolver::new(synthetic_input(n));
            let _ = solver.solve(64 * n as u64);
            let mut total = 64 * n as u64;
            b.iter(|| {
                // Nearby batch sizes, as the candidate sweep produces.
                total = if total > 96 * n as u64 { 64 * n as u64 } else { total + n as u64 };
                black_box(solver.solve(black_box(total)).expect("feasible"))
            });
        });
    }
    group.finish();
}

fn bench_candidate_sweep(c: &mut Criterion) {
    // The OptPerf_init pass: ~30 candidates over a 16-node cluster.
    c.bench_function("optperf_sweep_16nodes_30candidates", |b| {
        let input = synthetic_input(16);
        b.iter(|| {
            let mut solver = OptPerfSolver::new(input.clone());
            let mut acc = 0.0;
            for i in 0..30u64 {
                let total = 64 + i * 128;
                acc += solver.solve(black_box(total)).expect("feasible").opt_perf;
            }
            black_box(acc)
        });
    });
}

criterion_group!(benches, bench_solve_cold, bench_solve_warm, bench_candidate_sweep);
criterion_main!(benches);
