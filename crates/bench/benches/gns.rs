//! Criterion bench: heterogeneous gradient-noise-scale estimation.
//!
//! The Theorem 4.1 weights require solving two n×n linear systems per
//! batch; this bench shows that cost is negligible next to a training
//! step even at 64 nodes.

use cannikin_core::gns::{estimate_gns, optimal_weights, Aggregation, GradientSample, WeightKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn samples(n: usize) -> Vec<GradientSample> {
    (0..n)
        .map(|i| GradientSample {
            local_batch: 4 + (i as u64 % 13) * 3,
            local_sq_norm: 1.0 + 0.1 * (i as f64),
        })
        .collect()
}

fn bench_weights(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem41_weights");
    for n in [2usize, 4, 8, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            let b: Vec<f64> = (0..n).map(|i| 4.0 + (i % 13) as f64 * 3.0).collect();
            let total: f64 = b.iter().sum();
            bench.iter(|| {
                black_box(optimal_weights(black_box(&b), total, WeightKind::GradNorm).expect("weights"))
            });
        });
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_gns");
    for (label, aggregation) in [("min_variance", Aggregation::MinimumVariance), ("naive", Aggregation::NaiveMean)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &aggregation, |bench, &agg| {
            let s = samples(16);
            bench.iter(|| black_box(estimate_gns(black_box(&s), 1.05, agg).expect("estimate")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_weights, bench_estimate);
criterion_main!(benches);
