//! Record a pinned fleet run as a JSONL telemetry trace — the input the
//! `cannikin-insight report` subcommand (and the CI report-determinism
//! gate) consumes.
//!
//! ```text
//! fleettrace --out PATH [--seed N] [--jobs N]
//! ```
//!
//! The run executes with the *online* observers attached — the SLO
//! monitor over [`default_fleet_slos`] (the same rule set the `report`
//! subcommand replays offline) and the anomaly [`Monitor`] — so the
//! exported trace carries the online verdicts the offline rerun must
//! reproduce. Record timestamps are wall-clock and differ between runs;
//! everything the report renders derives from payload fields, so two
//! same-seed traces produce byte-identical reports.

use cannikin_bench::experiments::fleet_pool;
use cannikin_fleet::{synthetic_trace, AllocPolicy, FleetController};
use cannikin_insight::{InsightConfig, Monitor, SloMonitor};
use cannikin_telemetry::{self as telemetry, default_fleet_slos, export};
use std::process::ExitCode;

const USAGE: &str = "usage: fleettrace --out PATH [--seed N] [--jobs N]";

struct Args {
    out: String,
    seed: u64,
    jobs: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut out = None;
    let mut seed = 7u64;
    let mut jobs = 6usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--out" => out = Some(value("--out")?),
            "--seed" => {
                let raw = value("--seed")?;
                seed = raw.parse().map_err(|_| format!("--seed: `{raw}` is not a u64"))?;
            }
            "--jobs" => {
                let raw = value("--jobs")?;
                jobs = raw.parse().map_err(|_| format!("--jobs: `{raw}` is not a count"))?;
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Args { out: out.ok_or("need --out PATH")?, seed, jobs })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fleettrace: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let trace = synthetic_trace(args.seed, args.jobs, 30.0);
    let mut controller = match FleetController::new(fleet_pool(), trace, AllocPolicy::Cannikin) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fleettrace: invalid fleet: {e}");
            return ExitCode::from(2);
        }
    };

    let slos = SloMonitor::install(default_fleet_slos());
    let anomalies = Monitor::install(InsightConfig::default());
    let session = telemetry::Session::start();
    if let Err(e) = controller.run_to_completion(50_000) {
        eprintln!("fleettrace: fleet run failed: {e}");
        return ExitCode::from(2);
    }
    telemetry::flush_thread();
    let records = session.drain();
    drop(session);

    if let Err(e) = export::write_jsonl(args.out.as_ref(), &records) {
        eprintln!("fleettrace: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    eprintln!(
        "fleettrace: seed {} → {} records, {} slo violations, {} anomalies → {}",
        args.seed,
        records.len(),
        slos.violations().len(),
        anomalies.report().anomalies.len(),
        args.out
    );
    ExitCode::SUCCESS
}
