//! Job submissions: what a tenant hands the fleet control plane.

use cannikin_core::engine::{LinearNoiseGrowth, TrainerConfig};
use cannikin_core::policy::PolicyKind;
use cannikin_telemetry::SloRule;
use hetsim::job::JobSpec;
use hetsim::FaultPlan;

/// Priority class of a fleet job. Classes map to fair-share weights: a
/// `Production` job is entitled to 4× the service of a `BestEffort` job
/// under contention (weighted max-min, see [`crate::alloc`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Opportunistic: runs on leftovers, first to be preempted.
    BestEffort,
    /// The default class.
    Standard,
    /// Latency-sensitive: largest share, last to be preempted.
    Production,
}

impl Priority {
    /// The class's fair-share weight.
    pub fn weight(self) -> f64 {
        match self {
            Priority::BestEffort => 1.0,
            Priority::Standard => 2.0,
            Priority::Production => 4.0,
        }
    }

    /// Stable string tag (reports and logs).
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::BestEffort => "best_effort",
            Priority::Standard => "standard",
            Priority::Production => "production",
        }
    }
}

/// One submission in the fleet's job stream.
///
/// Construct with [`FleetJobSpec::new`] and chain the setters; every
/// field has a sensible default (Standard priority, arrival at t = 0,
/// node range `[1, pool]`, the workload profiles' linear GNS growth).
#[derive(Debug)]
pub struct FleetJobSpec {
    /// Job name — must be unique within one controller.
    pub name: String,
    /// The simulated workload.
    pub job: JobSpec,
    /// Trainer configuration (dataset size, batch range, aggregation).
    pub config: TrainerConfig,
    /// Gradient-noise evolution model driving the job's batch demand.
    pub noise: LinearNoiseGrowth,
    /// Statistical progress at which the job completes.
    pub target_effective_epochs: f64,
    /// Priority class (fair-share weight).
    pub priority: Priority,
    /// Fleet wall-clock time at which the job arrives, s.
    pub arrival: f64,
    /// Fewest nodes the job will accept at admission.
    pub min_nodes: usize,
    /// Most nodes the job can use (clamped to the pool and to
    /// `config.base_batch`, since every node needs at least one sample).
    pub max_nodes: usize,
    /// Seed of the job's private simulator.
    pub seed: u64,
    /// Optional fault schedule, injected into the job's *first*
    /// allocation (a rebuilt post-eviction simulator runs fault-free).
    pub fault_plan: Option<FaultPlan>,
    /// Per-job service-level objectives, evaluated by the SLO engine
    /// alongside the fleet-wide defaults (see
    /// [`crate::FleetController::slo_rules`]).
    pub slos: Vec<SloRule>,
    /// Adaptation policy the job's trainer plans with (default: the
    /// paper's OptPerf + goodput planner).
    pub policy: PolicyKind,
}

impl FleetJobSpec {
    /// A submission with default priority/arrival/node-range/noise.
    pub fn new(
        name: impl Into<String>,
        job: JobSpec,
        config: TrainerConfig,
        target_effective_epochs: f64,
    ) -> Self {
        FleetJobSpec {
            name: name.into(),
            job,
            config,
            noise: LinearNoiseGrowth { initial: 400.0, rate: 0.5 },
            target_effective_epochs,
            priority: Priority::Standard,
            arrival: 0.0,
            min_nodes: 1,
            max_nodes: usize::MAX,
            seed: 0,
            fault_plan: None,
            slos: Vec::new(),
            policy: PolicyKind::OptPerf,
        }
    }

    /// Set the priority class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set the GNS growth model (φ(t) = initial·(1 + rate·t)).
    pub fn noise(mut self, initial: f64, rate: f64) -> Self {
        self.noise = LinearNoiseGrowth { initial, rate };
        self
    }

    /// Set the arrival time (fleet wall-clock seconds).
    pub fn arrival(mut self, arrival: f64) -> Self {
        self.arrival = arrival;
        self
    }

    /// Set the admissible node range.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `min > max`.
    pub fn node_range(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max, "node range must satisfy 1 <= min <= max");
        self.min_nodes = min;
        self.max_nodes = max;
        self
    }

    /// Set the job's simulator seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the adaptation policy the job's trainer plans with.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Attach a fault schedule to the job's first allocation.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attach a service-level objective to the job.
    pub fn slo(mut self, rule: SloRule) -> Self {
        self.slos.push(rule);
        self
    }

    /// Shorthand for the common per-job SLO: admission queue wait must
    /// stay under `ceiling_s` seconds. Call after the name is final —
    /// the rule captures it.
    pub fn queue_slo(self, ceiling_s: f64) -> Self {
        let rule = SloRule::JobQueueCeiling { job: self.name.clone(), ceiling_s };
        self.slo(rule)
    }
}

/// splitmix64 — a tiny deterministic generator so traces need no RNG
/// dependency (and stay bitwise reproducible forever).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn uniform(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A seeded synthetic arrival trace: `jobs` submissions sampled from the
/// paper's Table-5 workloads (shrunk datasets so fleets simulate in
/// seconds), with splitmix-driven template choice, priorities and
/// inter-arrival gaps of mean `mean_gap_s`. Same seed → identical trace.
pub fn synthetic_trace(seed: u64, jobs: usize, mean_gap_s: f64) -> Vec<FleetJobSpec> {
    // (label, workload, config, target effective epochs, GNS initial/rate)
    type Template = (&'static str, fn() -> JobSpec, TrainerConfig, f64, (f64, f64));
    let templates: [Template; 4] = [
        ("cifar", JobSpec::resnet18_cifar10, TrainerConfig::new(6_400, 64, 512), 3.0, (300.0, 1.0)),
        ("imagenet", JobSpec::resnet50_imagenet, TrainerConfig::new(12_800, 128, 1_024), 4.0, (400.0, 0.8)),
        ("neumf", JobSpec::neumf_movielens, TrainerConfig::new(6_400, 64, 512), 2.0, (250.0, 1.2)),
        ("bert", JobSpec::bert_squad, TrainerConfig::new(6_400, 64, 512), 2.5, (500.0, 0.6)),
    ];
    let priorities = [Priority::BestEffort, Priority::Standard, Priority::Standard, Priority::Production];
    // Fixed salt ("cannikin" LE) so seed 0 is not the all-zeros stream.
    let mut state = seed ^ 0x6e69_6b69_6e6e_6163;
    let mut arrival = 0.0;
    (0..jobs)
        .map(|i| {
            let t = &templates[(splitmix(&mut state) % templates.len() as u64) as usize];
            let priority = priorities[(splitmix(&mut state) % priorities.len() as u64) as usize];
            // Exponential-ish inter-arrival gaps (inverse-CDF of a capped
            // exponential keeps the trace short without a long tail).
            if i > 0 {
                arrival += (-(1.0 - uniform(&mut state)).ln()).min(3.0) * mean_gap_s;
            }
            FleetJobSpec::new(format!("{}-{i}", t.0), t.1(), t.2.clone(), t.3)
                .noise(t.4 .0, t.4 .1)
                .priority(priority)
                .arrival(arrival)
                .seed(seed.wrapping_mul(31).wrapping_add(i as u64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_sorted_by_arrival() {
        let a = synthetic_trace(7, 6, 10.0);
        let b = synthetic_trace(7, 6, 10.0);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.arrival.to_bits(), y.arrival.to_bits());
            assert_eq!(x.priority, y.priority);
        }
        for pair in a.windows(2) {
            assert!(pair[1].arrival >= pair[0].arrival, "arrivals are monotone");
        }
        assert!((a[0].arrival - 0.0).abs() < 1e-12, "first job arrives at t=0");
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic_trace(1, 5, 10.0);
        let b = synthetic_trace(2, 5, 10.0);
        assert!(
            a.iter().zip(&b).any(|(x, y)| x.name != y.name || x.arrival != y.arrival),
            "two seeds should not produce the same trace"
        );
    }

    #[test]
    fn priority_weights_are_ordered() {
        assert!(Priority::Production.weight() > Priority::Standard.weight());
        assert!(Priority::Standard.weight() > Priority::BestEffort.weight());
    }
}
