//! Cache-blocked, packed, multithreaded GEMM core.
//!
//! One strided kernel serves all three public matmul variants: the
//! transposed forms differ only in the row/column strides used when
//! *packing*, never in the compute loops. The structure is the classic
//! three-level tiling (BLIS-style, scaled down for `f32` on commodity
//! CPUs):
//!
//! - The output is computed in `MC × NC` blocks over `KC`-deep slices of
//!   the inner dimension, sized so one packed A block (`MC·KC` floats) and
//!   one packed B block (`KC·NC` floats) stay cache-resident.
//! - Within a block, panels of `MR` A-rows and `NR` B-columns are packed
//!   contiguously and zero-padded to full panel width, so the microkernel
//!   is branch-free and every load is unit-stride.
//! - The microkernel keeps an `MR × NR` accumulator in registers and walks
//!   the packed panels with a fully unrolled multiply-add body, which LLVM
//!   autovectorizes (NR = 16 is four SSE lanes — the best-measured shape
//!   on the baseline `x86-64` target, where wider rows beat taller tiles).
//!
//! Packing buffers come from the thread-local [`scratch`] arena, so a
//! steady-state training loop performs no kernel allocations at all.
//!
//! Threading partitions output *rows* into `MR`-aligned chunks, one per
//! thread from the current budget (see [`threads`]): row partitions touch
//! disjoint C regions and disjoint A rows, and only share read-only B. Each
//! worker packs its own panels from its own arena, so no synchronization
//! beyond the final join is needed.
//!
//! When the CPU has AVX2+FMA (and `CANNIKIN_SIMD` permits), the serial
//! core is swapped for the hand-written 6×16 microkernel in
//! [`simd`](super::simd). The kernel is resolved **once** per
//! [`gemm_strided`] call on the calling thread and passed into the row
//! workers by value, so a [`KernelGuard`](super::simd::KernelGuard)
//! override governs the whole operation. The small-matrix path below
//! `SMALL_WORK` stays scalar under every policy — packing overhead
//! dominates there, which is exactly why the dispatch-boundary proptests
//! straddle it.

use super::simd::{self, Kernel};
use crate::tensor::{scratch, threads};

/// Microkernel rows (panel height of packed A).
pub(super) const MR: usize = 2;
/// Microkernel columns (panel width of packed B).
pub(super) const NR: usize = 16;
/// Rows of A packed per cache block (multiple of `MR`).
const MC: usize = 64;
/// Depth of the packed inner-dimension slice.
const KC: usize = 256;
/// Columns of B packed per cache block (multiple of `NR`).
const NC: usize = 256;

/// Below this `m·n·k`, skip blocking/packing entirely.
const SMALL_WORK: usize = 16 * 1024;
/// Minimum `m·n·k` assigned to each additional thread.
const WORK_PER_THREAD: usize = 128 * 1024;

/// `C += A · B` where `A` is a logical `[m, k]` matrix with element
/// `(i, p)` at `a[i·a_rs + p·a_cs]`, `B` a logical `[k, n]` matrix with
/// element `(p, j)` at `b[p·b_rs + j·b_cs]`, and `C` row-major `[m, n]`.
///
/// Callers zero `C` first for a plain product. Dispatches between the
/// small-matrix path, the serial blocked path, and row-partitioned
/// threading based on problem size and the current thread budget.
#[allow(clippy::too_many_arguments)]
pub(super) fn gemm_strided(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), m * n, "gemm output length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let work = m * n * k;
    if work <= SMALL_WORK {
        gemm_small(m, n, k, a, a_rs, a_cs, b, b_rs, b_cs, c);
        return;
    }
    // Resolve the kernel once, here, so the calling thread's override (if
    // any) also governs the spawned row workers below.
    let kernel = simd::active_kernel();
    let mr = kernel.mr();
    let t = threads::effective_threads().min(m.div_ceil(mr)).min(1 + work / WORK_PER_THREAD);
    if t <= 1 {
        gemm_serial(kernel, m, n, k, a, a_rs, a_cs, b, b_rs, b_cs, c);
        return;
    }
    // mr-aligned row chunks, one per thread; the spawning thread takes the
    // last chunk itself so it works instead of blocking on the join.
    let chunk_rows = m.div_ceil(t).next_multiple_of(mr);
    std::thread::scope(|s| {
        let mut rest = c;
        let mut i0 = 0;
        while i0 < m {
            let rows = chunk_rows.min(m - i0);
            let (chunk, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let a_chunk = &a[i0 * a_rs..];
            if i0 + rows >= m {
                gemm_serial(kernel, rows, n, k, a_chunk, a_rs, a_cs, b, b_rs, b_cs, chunk);
            } else {
                s.spawn(move || gemm_serial(kernel, rows, n, k, a_chunk, a_rs, a_cs, b, b_rs, b_cs, chunk));
            }
            i0 += rows;
        }
    });
}

/// Strided triple loop for matrices too small to amortize packing.
#[allow(clippy::too_many_arguments)]
fn gemm_small(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f32],
) {
    if b_cs == 1 {
        // B rows are contiguous: axpy over C rows (i-k-j order).
        for i in 0..m {
            let crow = &mut c[i * n..(i + 1) * n];
            for p in 0..k {
                let av = a[i * a_rs + p * a_cs];
                let brow = &b[p * b_rs..p * b_rs + n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    } else {
        // B columns are contiguous (the A·Bᵀ case): dot products.
        for i in 0..m {
            for j in 0..n {
                let bcol = &b[j * b_cs..j * b_cs + k * b_rs];
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * a_rs + p * a_cs] * bcol[p * b_rs];
                }
                c[i * n + j] += acc;
            }
        }
    }
}

/// Single-threaded blocked GEMM over the full `[m, n]` output, dispatching
/// to the register tile the resolved [`Kernel`] provides.
#[allow(clippy::too_many_arguments)]
fn gemm_serial(
    kernel: Kernel,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f32],
) {
    match kernel {
        Kernel::Scalar => gemm_serial_scalar(m, n, k, a, a_rs, a_cs, b, b_rs, b_cs, c),
        Kernel::Avx2 => simd::gemm_serial_avx2(m, n, k, a, a_rs, a_cs, b, b_rs, b_cs, c),
    }
}

/// Single-threaded *scalar* blocked GEMM — the autovectorized 2×16 core.
#[allow(clippy::too_many_arguments)]
fn gemm_serial_scalar(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f32],
) {
    let mut apack = scratch::take(MC * KC);
    let mut bpack = scratch::take(KC * NC);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b_panels::<NR>(bpack.as_mut_slice(), b, b_rs, b_cs, pc, jc, kc, nc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a_panels::<MR>(apack.as_mut_slice(), a, a_rs, a_cs, ic, pc, kc, mc);
                macro_kernel(apack.as_slice(), bpack.as_slice(), c, ic, jc, mc, nc, kc, n);
            }
        }
    }
}

/// Pack an `mc × kc` block of A into `P`-row panels, k-major within each
/// panel (`dst[panel][kk·P + r]`), zero-padding the final partial panel.
/// Const-generic over the panel height so the scalar (`P = MR`) and AVX2
/// (`P = 6`) cores share one monomorphized-per-tile packer.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS-style (ptr, rs, cs, block offsets) shape
pub(super) fn pack_a_panels<const P: usize>(
    dst: &mut [f32],
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    ic: usize,
    pc: usize,
    kc: usize,
    mc: usize,
) {
    let mut d = 0;
    for p in 0..mc.div_ceil(P) {
        let rbase = ic + p * P;
        let rmax = P.min(mc - p * P);
        for kk in 0..kc {
            let col = (pc + kk) * a_cs;
            for r in 0..P {
                dst[d] = if r < rmax { a[(rbase + r) * a_rs + col] } else { 0.0 };
                d += 1;
            }
        }
    }
}

/// Pack a `kc × nc` block of B into `P`-column panels, k-major within each
/// panel (`dst[panel][kk·P + j]`), zero-padding the final partial panel.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS-style (ptr, rs, cs, block offsets) shape
pub(super) fn pack_b_panels<const P: usize>(
    dst: &mut [f32],
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
) {
    let mut d = 0;
    for q in 0..nc.div_ceil(P) {
        let cbase = jc + q * P;
        let cmax = P.min(nc - q * P);
        for kk in 0..kc {
            let row = (pc + kk) * b_rs;
            for j in 0..P {
                dst[d] = if j < cmax { b[row + (cbase + j) * b_cs] } else { 0.0 };
                d += 1;
            }
        }
    }
}

/// Multiply one packed A block against one packed B block, accumulating
/// into the `mc × nc` region of C at `(ic, jc)`.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    ic: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    ldc: usize,
) {
    for q in 0..nc.div_ceil(NR) {
        let bp = &bpack[q * kc * NR..][..kc * NR];
        let nr = NR.min(nc - q * NR);
        for p in 0..mc.div_ceil(MR) {
            let ap = &apack[p * kc * MR..][..kc * MR];
            let mr = MR.min(mc - p * MR);
            let mut acc = [[0.0f32; NR]; MR];
            microkernel(kc, ap, bp, &mut acc);
            let c0 = (ic + p * MR) * ldc + jc + q * NR;
            for (r, acc_row) in acc.iter().enumerate().take(mr) {
                let crow = &mut c[c0 + r * ldc..][..nr];
                for (cv, av) in crow.iter_mut().zip(acc_row) {
                    *cv += av;
                }
            }
        }
    }
}

/// Register-tile inner loop: `acc[r][j] += ap[kk·MR + r] · bp[kk·NR + j]`
/// over `kk < kc`. Panels are zero-padded, so there are no edge branches;
/// the fixed-size body unrolls and autovectorizes.
#[inline(always)]
fn microkernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (af, bf) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        let bv: [f32; NR] = bf.try_into().expect("NR-wide panel fragment");
        for r in 0..MR {
            let ar = af[r];
            for (av, &b) in acc[r].iter_mut().zip(&bv) {
                *av += ar * b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (no dependency on `rand` here).
    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
            })
            .collect()
    }

    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn assert_close(got: &[f32], want: &[f32]) {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() <= 1e-4 * (1.0 + w.abs()), "[{i}]: {g} vs {w}");
        }
    }

    #[test]
    fn blocked_matches_naive_across_shapes() {
        for &(m, n, k) in
            &[(1, 1, 1), (1, 5, 3), (7, 1, 9), (4, 8, 256), (33, 17, 5), (65, 66, 129), (3, 300, 2), (130, 70, 70)]
        {
            let a = fill(m as u64 * 31 + n as u64, m * k);
            let b = fill(k as u64 * 17 + 1, k * n);
            let mut c = vec![0.0f32; m * n];
            gemm_strided(m, n, k, &a, k, 1, &b, n, 1, &mut c);
            assert_close(&c, &naive(m, n, k, &a, &b));
        }
    }

    #[test]
    fn strided_transpose_views_match() {
        let (m, n, k) = (37, 29, 41);
        let a = fill(3, m * k);
        let b = fill(4, k * n);
        let want = naive(m, n, k, &a, &b);
        // Aᵀ stored as [k, m]: element (i, p) at at[p*m + i].
        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c = vec![0.0f32; m * n];
        gemm_strided(m, n, k, &at, 1, m, &b, n, 1, &mut c);
        assert_close(&c, &want);
        // Bᵀ stored as [n, k]: element (p, j) at bt[j*k + p].
        let mut bt = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        c.fill(0.0);
        gemm_strided(m, n, k, &a, k, 1, &bt, 1, k, &mut c);
        assert_close(&c, &want);
    }

    #[test]
    fn threaded_path_matches_serial() {
        let (m, n, k) = (150, 60, 80);
        let a = fill(7, m * k);
        let b = fill(8, k * n);
        let mut serial = vec![0.0f32; m * n];
        threads::with_threads(1, || gemm_strided(m, n, k, &a, k, 1, &b, n, 1, &mut serial));
        let mut par = vec![0.0f32; m * n];
        threads::with_threads(4, || gemm_strided(m, n, k, &a, k, 1, &b, n, 1, &mut par));
        assert_close(&par, &serial);
    }

    #[test]
    fn accumulates_into_existing_c() {
        let (m, n, k) = (5, 6, 7);
        let a = fill(9, m * k);
        let b = fill(10, k * n);
        let mut c = vec![2.0f32; m * n];
        gemm_strided(m, n, k, &a, k, 1, &b, n, 1, &mut c);
        let want: Vec<f32> = naive(m, n, k, &a, &b).iter().map(|v| v + 2.0).collect();
        assert_close(&c, &want);
    }

    #[test]
    fn avx2_kernel_matches_scalar_within_rounding() {
        use super::simd::{avx2_available, with_kernel, Kernel};
        if !avx2_available() {
            return; // nothing to compare on this host
        }
        // Shapes straddling the 6-row panel, the 72-row cache block, and
        // the partial-tile edges in both dimensions.
        for &(m, n, k) in &[(64, 64, 64), (37, 53, 129), (130, 70, 70), (6, 16, 300), (7, 17, 301), (73, 257, 31)]
        {
            let a = fill(m as u64 + 1, m * k);
            let b = fill(n as u64 + 2, k * n);
            let want = naive(m, n, k, &a, &b);
            let mut scalar = vec![0.0f32; m * n];
            with_kernel(Kernel::Scalar, || gemm_strided(m, n, k, &a, k, 1, &b, n, 1, &mut scalar));
            let mut simd_out = vec![0.0f32; m * n];
            with_kernel(Kernel::Avx2, || gemm_strided(m, n, k, &a, k, 1, &b, n, 1, &mut simd_out));
            assert_close(&scalar, &want);
            assert_close(&simd_out, &want);
        }
    }

    #[test]
    fn kernel_override_propagates_to_row_workers() {
        use super::simd::{with_kernel, Kernel};
        let (m, n, k) = (150, 60, 80);
        let a = fill(7, m * k);
        let b = fill(8, k * n);
        let mut serial = vec![0.0f32; m * n];
        with_kernel(Kernel::Scalar, || {
            threads::with_threads(1, || gemm_strided(m, n, k, &a, k, 1, &b, n, 1, &mut serial))
        });
        // Same pinned kernel, threaded: workers must inherit the override,
        // so the result is bitwise identical chunk by chunk.
        let mut par = vec![0.0f32; m * n];
        with_kernel(Kernel::Scalar, || {
            threads::with_threads(4, || gemm_strided(m, n, k, &a, k, 1, &b, n, 1, &mut par))
        });
        assert_eq!(serial, par, "scalar kernel must be deterministic across thread counts");
    }

    #[test]
    fn steady_state_runs_without_new_allocations() {
        let (m, n, k) = (64, 64, 64);
        let a = fill(11, m * k);
        let b = fill(12, k * n);
        let mut c = vec![0.0f32; m * n];
        gemm_strided(m, n, k, &a, k, 1, &b, n, 1, &mut c);
        let before = scratch::stats();
        for _ in 0..3 {
            c.fill(0.0);
            gemm_strided(m, n, k, &a, k, 1, &b, n, 1, &mut c);
        }
        let after = scratch::stats();
        assert_eq!(after.allocations, before.allocations, "warm gemm must reuse its packing buffers");
        assert!(after.reuses > before.reuses);
    }
}
