//! Thread budget for the compute kernels.
//!
//! The matmul kernels in [`crate::tensor::matmul`] parallelize over output
//! rows. How many OS threads they may use is decided here, in three layers:
//!
//! 1. `CANNIKIN_THREADS` (read once per process) caps the whole process;
//!    it defaults to the machine's available parallelism.
//! 2. A thread-local *budget override* installed with [`ThreadBudgetGuard`]
//!    (or the [`with_threads`] closure form) caps the current thread. The
//!    data-parallel `ParallelTrainer` installs one per replica thread so
//!    `R` replicas each get `max(1, CANNIKIN_THREADS / R)` kernel threads
//!    instead of all of them — nested parallelism must divide the machine,
//!    not multiply over it (see [`replica_share`]).
//! 3. The kernels themselves shrink the budget further when the matrix is
//!    too small for the fan-out to pay for itself.

use std::cell::Cell;
use std::sync::OnceLock;

/// Environment variable controlling the process-wide kernel thread cap.
pub const THREADS_ENV: &str = "CANNIKIN_THREADS";

static CONFIGURED: OnceLock<usize> = OnceLock::new();

thread_local! {
    static BUDGET_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Process-wide kernel thread cap: `CANNIKIN_THREADS` if set to a positive
/// integer, otherwise the available parallelism (1 when undetectable). The
/// environment is read once; later changes to the variable have no effect.
pub fn configured_threads() -> usize {
    *CONFIGURED.get_or_init(|| {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from))
    })
}

/// The thread budget kernels launched from the *current* thread may use:
/// the innermost [`ThreadBudgetGuard`] override, or [`configured_threads`]
/// when none is installed. Always at least 1.
pub fn effective_threads() -> usize {
    BUDGET_OVERRIDE.with(|c| c.get()).unwrap_or_else(configured_threads).max(1)
}

/// Fair per-replica kernel thread budget when `replicas` trainer threads
/// run concurrently: `max(1, configured / replicas)`.
pub fn replica_share(replicas: usize) -> usize {
    (configured_threads() / replicas.max(1)).max(1)
}

/// RAII override of the current thread's kernel thread budget.
///
/// Install one at the top of a worker thread that itself runs many siblings
/// (e.g. a data-parallel replica) so the matmul kernels underneath it only
/// use this thread's fair share of the machine. Guards nest; dropping one
/// restores the previous budget.
///
/// # Examples
///
/// ```
/// use minidnn::tensor::threads::{effective_threads, ThreadBudgetGuard};
///
/// let outer = effective_threads();
/// {
///     let _guard = ThreadBudgetGuard::new(1);
///     assert_eq!(effective_threads(), 1);
/// }
/// assert_eq!(effective_threads(), outer);
/// ```
#[derive(Debug)]
pub struct ThreadBudgetGuard {
    previous: Option<usize>,
}

impl ThreadBudgetGuard {
    /// Cap kernels launched from this thread at `threads` (floored to 1)
    /// until the guard drops.
    pub fn new(threads: usize) -> Self {
        let previous = BUDGET_OVERRIDE.with(|c| c.replace(Some(threads.max(1))));
        ThreadBudgetGuard { previous }
    }
}

impl Drop for ThreadBudgetGuard {
    fn drop(&mut self) {
        BUDGET_OVERRIDE.with(|c| c.set(self.previous));
    }
}

/// Run `f` with the kernel thread budget capped at `threads` — the closure
/// form of [`ThreadBudgetGuard`], used by tests and benches to pin the
/// serial and threaded paths regardless of `CANNIKIN_THREADS`.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _guard = ThreadBudgetGuard::new(threads);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configured_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn guard_overrides_and_restores() {
        let base = effective_threads();
        with_threads(3, || {
            assert_eq!(effective_threads(), 3);
            with_threads(1, || assert_eq!(effective_threads(), 1));
            assert_eq!(effective_threads(), 3);
        });
        assert_eq!(effective_threads(), base);
    }

    #[test]
    fn zero_budget_floors_to_one() {
        with_threads(0, || assert_eq!(effective_threads(), 1));
    }

    #[test]
    fn replica_share_divides_fairly() {
        let t = configured_threads();
        assert_eq!(replica_share(1), t);
        assert!(replica_share(t + 1) >= 1);
        assert!(replica_share(2) >= t / 2);
    }

    #[test]
    fn override_is_thread_local() {
        with_threads(2, || {
            let inner = std::thread::spawn(|| effective_threads()).join().unwrap();
            assert_eq!(inner, configured_threads());
        });
    }
}
