//! Timeouts, typed errors and retry-with-backoff for the ring collectives.
//!
//! The plain [`Communicator`](crate::Communicator) methods keep their
//! original panic-on-disconnect contract (a programming error in tests).
//! This module adds the fault-tolerant path the elastic engine uses:
//!
//! - [`CommError`] — a typed error instead of a panic: receive timeout,
//!   disconnected peer, or an exhausted retry budget;
//! - [`RetryPolicy`] — bounded attempts with exponential backoff, jittered
//!   from a caller-seeded RNG so reruns are reproducible;
//! - [`CommFaultPlan`] — deterministic *injected* failures keyed by the
//!   collective sequence number. The plan is shared (via `Arc`) by every
//!   rank of a group, and each rank's communicator counts resilient
//!   collectives identically, so all ranks decide "this attempt fails"
//!   in lockstep — injected faults can never desynchronize the SPMD
//!   schedule. Injected failures abort *before* any data exchange, so
//!   retries never double-apply gradient scaling.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Typed failure of a resilient collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A receive did not complete within the policy's timeout.
    Timeout {
        /// Rank that observed the timeout.
        rank: usize,
        /// How long it waited, ms.
        waited_ms: u64,
    },
    /// A ring peer's endpoint was dropped (crashed rank).
    Dropped {
        /// Rank that observed the disconnect.
        rank: usize,
    },
    /// Every attempt allowed by the [`RetryPolicy`] failed.
    RetriesExhausted {
        /// Attempts consumed (== the policy's `max_attempts`).
        attempts: u32,
    },
    /// A transport-level I/O failure (socket setup, malformed frame, …).
    Io {
        /// Rank that observed the failure.
        rank: usize,
        /// Human-readable context from the transport.
        detail: String,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { rank, waited_ms } => {
                write!(f, "rank {rank}: collective receive timed out after {waited_ms} ms")
            }
            CommError::Dropped { rank } => write!(f, "rank {rank}: ring peer disconnected"),
            CommError::RetriesExhausted { attempts } => {
                write!(f, "collective failed after {attempts} attempts")
            }
            CommError::Io { rank, detail } => write!(f, "rank {rank}: transport I/O error: {detail}"),
        }
    }
}

impl std::error::Error for CommError {}

/// Bounded retry with exponential, seeded-jitter backoff.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Must be >= 1.
    pub max_attempts: u32,
    /// Backoff before retry `k` (1-based) is `base_backoff · 2^(k-1)`,
    /// jittered, capped at `max_backoff`.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Uniform jitter fraction: the backoff is scaled by a factor drawn
    /// from `[1, 1 + jitter]`.
    pub jitter: f64,
    /// Receive timeout of each attempt.
    pub timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(50),
            jitter: 0.5,
            timeout: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff to sleep before retry `attempt` (1-based
    /// count of *failed* attempts so far).
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let exp = 1u64 << u64::from(attempt.saturating_sub(1).min(20));
        let base = self.base_backoff.as_secs_f64() * exp as f64;
        let jittered = base * (1.0 + self.jitter * rng.random::<f64>());
        Duration::from_secs_f64(jittered.min(self.max_backoff.as_secs_f64()))
    }
}

/// Deterministic injected-failure schedule, keyed by the group-wide
/// resilient-collective sequence number (0 for the first resilient
/// collective after group creation, 1 for the next, …).
#[derive(Debug, Clone, Default)]
pub struct CommFaultPlan {
    fail: BTreeMap<u64, u32>,
}

impl CommFaultPlan {
    /// An empty plan (no injected failures).
    pub fn new() -> Self {
        CommFaultPlan::default()
    }

    /// Make the first `attempts` tries of collective `seq` fail.
    #[must_use]
    pub fn fail_at(mut self, seq: u64, attempts: u32) -> Self {
        self.fail.insert(seq, attempts);
        self
    }

    /// Named scenario constructor for the bench matrix: a lossy link that
    /// makes each of the first `collectives` exchanges fail once with
    /// probability `prob` (always recoverable by a single retry). The
    /// codec-under-loss scenario drives compressed gradient exchanges
    /// through this plan to prove error-feedback state survives retries.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= prob < 1` (see [`CommFaultPlan::seeded`]).
    pub fn lossy(seed: u64, collectives: u64, prob: f64) -> Self {
        CommFaultPlan::seeded(seed, collectives, prob, 1)
    }

    /// A seeded random plan over the first `collectives` sequence numbers:
    /// each fails with probability `prob`, consuming 1..=`max_failures`
    /// attempts.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= prob < 1` and `max_failures >= 1`.
    pub fn seeded(seed: u64, collectives: u64, prob: f64, max_failures: u32) -> Self {
        assert!((0.0..1.0).contains(&prob), "failure probability must be in [0, 1)");
        assert!(max_failures >= 1, "need at least one failure to inject");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = CommFaultPlan::new();
        for seq in 0..collectives {
            if rng.random::<f64>() < prob {
                let extra = (rng.random::<f64>() * f64::from(max_failures)).floor() as u32;
                plan.fail.insert(seq, extra.clamp(1, max_failures));
            }
        }
        plan
    }

    /// Injected failing attempts for collective `seq` (0 = healthy).
    pub fn failures_at(&self, seq: u64) -> u32 {
        self.fail.get(&seq).copied().unwrap_or(0)
    }

    /// Number of collectives with at least one injected failure.
    pub fn len(&self) -> usize {
        self.fail.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.fail.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_millis(1));
        assert_eq!(policy.backoff(2, &mut rng), Duration::from_millis(2));
        assert_eq!(policy.backoff(3, &mut rng), Duration::from_millis(4));
        assert_eq!(policy.backoff(4, &mut rng), Duration::from_millis(8));
        assert_eq!(policy.backoff(10, &mut rng), Duration::from_millis(8), "capped");
    }

    #[test]
    fn jitter_is_seed_deterministic_and_bounded() {
        let policy = RetryPolicy { jitter: 0.5, ..RetryPolicy::default() };
        let draws = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (1..=5).map(|a| policy.backoff(a, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draws(3), draws(3));
        for (attempt, d) in draws(3).into_iter().enumerate() {
            let base = policy.base_backoff.as_secs_f64() * (1u64 << attempt) as f64;
            let upper = (base * 1.5).min(policy.max_backoff.as_secs_f64());
            assert!(d.as_secs_f64() >= base.min(policy.max_backoff.as_secs_f64()) - 1e-12);
            assert!(d.as_secs_f64() <= upper + 1e-12);
        }
    }

    #[test]
    fn seeded_plan_is_reproducible() {
        let a = CommFaultPlan::seeded(42, 100, 0.3, 3);
        let b = CommFaultPlan::seeded(42, 100, 0.3, 3);
        assert_eq!(a.fail, b.fail);
        assert!(!a.is_empty());
        assert!(a.len() > 10 && a.len() < 60, "{} failures of 100", a.len());
        for (&seq, &attempts) in &a.fail {
            assert!(seq < 100);
            assert!((1..=3).contains(&attempts));
        }
    }
}
