//! Optimizers.
//!
//! The three optimizers used in Table 5 of the paper: SGD (with momentum)
//! for the vision and speech tasks, AdamW for BERT/SQuAD and Adam for
//! NeuMF/MovieLens. All optimizers key their per-parameter state by
//! position in the parameter list, which is stable for a fixed model.

mod adam;
mod sgd;

pub use adam::{Adam, AdamW};
pub use sgd::Sgd;

use crate::layers::Param;

/// An optimizer updates parameters in place from their accumulated
/// gradients. Gradients are *not* cleared by `step`; call
/// [`crate::layers::zero_grads`] explicitly, mirroring PyTorch.
pub trait Optimizer: Send {
    /// Apply one update step.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Current learning rate (after any scaling).
    fn learning_rate(&self) -> f64;

    /// Replace the learning rate. Used by the LR scalers in [`crate::lr`].
    fn set_learning_rate(&mut self, lr: f64);
}

#[cfg(test)]
pub(crate) mod test_util {
    use crate::layers::{Layer, Linear, Sequential};
    use crate::loss::{Loss, Mse};
    use crate::optim::Optimizer;
    use crate::tensor::Tensor;

    /// Train y = 2x + 1 with a single linear layer; returns the final loss.
    pub fn fit_line<O: Optimizer>(opt: &mut O, steps: usize) -> f32 {
        let mut net = Sequential::new().push(Linear::new(1, 1, 7));
        let x = Tensor::from_vec((0..16).map(|i| i as f32 / 8.0 - 1.0).collect(), &[16, 1]).unwrap();
        let t = x.map(|v| 2.0 * v + 1.0);
        let mut last = f32::INFINITY;
        for _ in 0..steps {
            crate::layers::zero_grads(&mut net.parameters_mut());
            let y = net.forward(&x, true);
            let (loss, grad) = Mse.loss(&y, &t);
            net.backward(&grad);
            opt.step(&mut net.parameters_mut());
            last = loss;
        }
        last
    }
}

/// Clip the global L2 norm of a parameter set's gradients to `max_norm`
/// (the DeepSpeech2/BERT recipes' stabilizer). Returns the pre-clip norm.
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let total: f64 = params.iter().map(|p| p.grad.sq_l2()).sum();
    let norm = total.sqrt();
    if norm > max_norm {
        let scale = (max_norm / norm) as f32;
        for p in params.iter_mut() {
            p.grad.scale_assign(scale);
        }
    }
    norm
}

#[cfg(test)]
mod clip_tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn clips_only_when_above_threshold() {
        let mut a = Param::new(Tensor::zeros(&[3]), "a");
        a.grad = Tensor::from_slice(&[3.0, 0.0, 4.0]); // norm 5
        let norm = clip_grad_norm(&mut [&mut a], 10.0);
        assert_eq!(norm, 5.0);
        assert_eq!(a.grad.data(), &[3.0, 0.0, 4.0], "below threshold: untouched");

        let norm = clip_grad_norm(&mut [&mut a], 2.5);
        assert_eq!(norm, 5.0);
        let clipped: f64 = a.grad.sq_l2().sqrt();
        assert!((clipped - 2.5).abs() < 1e-6, "clipped norm {clipped}");
    }

    #[test]
    fn clips_across_multiple_params() {
        let mut a = Param::new(Tensor::zeros(&[2]), "a");
        let mut b = Param::new(Tensor::zeros(&[2]), "b");
        a.grad = Tensor::from_slice(&[3.0, 0.0]);
        b.grad = Tensor::from_slice(&[0.0, 4.0]);
        clip_grad_norm(&mut [&mut a, &mut b], 1.0);
        let total = (a.grad.sq_l2() + b.grad.sq_l2()).sqrt();
        assert!((total - 1.0).abs() < 1e-6);
        // Direction preserved.
        assert!(a.grad.data()[0] > 0.0 && b.grad.data()[1] > 0.0);
    }
}
