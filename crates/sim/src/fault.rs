//! Seeded fault injection for the simulator (chaos testing, §4.3).
//!
//! A [`FaultPlan`] is a deterministic schedule of cluster misbehavior:
//! hard node crashes, graceful leaves, scheduled joins, bounded slowdown
//! bursts, flapping contention, and probabilistic transient communication
//! failures. [`Simulator::with_fault_plan`](crate::Simulator::with_fault_plan)
//! attaches a plan; `simulate_batch` then consumes it and surfaces every
//! fired fault in [`BatchTrace::faults`](cannikin_telemetry::trace::BatchTrace),
//! so the engine *sees* faults instead of silently observing stretched
//! times.
//!
//! Determinism: all fault randomness (comm-failure draws, backoff jitter)
//! comes from the plan's own seeded RNG, which is separate from the
//! simulator's noise RNG. The same `(simulator seed, fault plan)` pair
//! therefore replays the exact same run, and attaching a plan does not
//! perturb the noise stream of healthy batches.

use crate::cluster::NodeSpec;
use cannikin_telemetry::{FaultInjected, FaultKind};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// One scheduled fault.
#[derive(Debug, Clone)]
pub enum FaultEvent {
    /// Node dies hard at the scheduled step: the step's gradients are lost
    /// and every subsequent batch fails until the node is evicted.
    Crash {
        /// Node index at scheduling time (kept stable across removals).
        node: usize,
    },
    /// Node leaves gracefully: the scheduled step completes, then the
    /// engine is expected to shrink the group.
    Leave {
        /// Node index at scheduling time.
        node: usize,
    },
    /// A new node arrives; the engine picks it up via
    /// [`Simulator::take_pending_joins`](crate::Simulator::take_pending_joins).
    Join {
        /// Specification of the joining node.
        spec: NodeSpec,
    },
    /// A bounded compute slowdown (GC pause, preemption storm).
    SlowdownBurst {
        /// Affected node index at scheduling time.
        node: usize,
        /// Number of consecutive batches the burst lasts.
        steps: u64,
        /// Multiplicative compute stretch while active (>= 1).
        factor: f64,
    },
}

/// A flapping-contention rule: starting at `from_step`, the node
/// alternates every `period` steps between full speed and a contended
/// `fraction` of its compute.
#[derive(Debug, Clone, Copy)]
struct FlapRule {
    node: usize,
    period: u64,
    fraction: f64,
    from_step: u64,
}

/// Transient communication-failure model.
#[derive(Debug, Clone, Copy)]
pub struct CommFaultConfig {
    /// Per-batch probability that the gradient synchronization fails and
    /// must be retried (each retry fails again with the same probability).
    pub prob: f64,
    /// Retry budget per batch; exhausting it fails the whole step.
    pub max_attempts: u32,
    /// Failure-detection timeout per failed attempt, as a multiple of the
    /// ground-truth `T_comm`.
    pub timeout_factor: f64,
    /// Base of the exponential backoff, seconds.
    pub backoff_base: f64,
    /// Uniform jitter fraction applied to each backoff (0 = none).
    pub jitter: f64,
}

impl Default for CommFaultConfig {
    fn default() -> Self {
        CommFaultConfig { prob: 0.0, max_attempts: 4, timeout_factor: 2.0, backoff_base: 0.05, jitter: 0.5 }
    }
}

/// A seeded, deterministic schedule of faults for one simulated run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    scheduled: BTreeMap<u64, Vec<FaultEvent>>,
    flaps: Vec<FlapRule>,
    comm: CommFaultConfig,
    /// Crash-detection timeout as a multiple of the failed batch's ideal
    /// batch time (the cost of *noticing* the dead node).
    detect_timeout_factor: f64,
}

impl FaultPlan {
    /// An empty plan drawing its randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            scheduled: BTreeMap::new(),
            flaps: Vec::new(),
            comm: CommFaultConfig::default(),
            detect_timeout_factor: 2.0,
        }
    }

    /// Schedule a hard crash of `node` at batch `step`.
    #[must_use]
    pub fn crash_at(mut self, step: u64, node: usize) -> Self {
        self.scheduled.entry(step).or_default().push(FaultEvent::Crash { node });
        self
    }

    /// Schedule a graceful departure of `node` at batch `step`.
    #[must_use]
    pub fn leave_at(mut self, step: u64, node: usize) -> Self {
        self.scheduled.entry(step).or_default().push(FaultEvent::Leave { node });
        self
    }

    /// Schedule a node join at batch `step`.
    #[must_use]
    pub fn join_at(mut self, step: u64, spec: NodeSpec) -> Self {
        self.scheduled.entry(step).or_default().push(FaultEvent::Join { spec });
        self
    }

    /// Schedule a slowdown burst: `node` computes `factor`× slower for
    /// `steps` batches starting at `step`.
    ///
    /// # Panics
    ///
    /// Panics unless `factor >= 1` and `steps > 0`.
    #[must_use]
    pub fn burst_at(mut self, step: u64, node: usize, steps: u64, factor: f64) -> Self {
        assert!(factor >= 1.0, "slowdown factor must be >= 1");
        assert!(steps > 0, "burst must last at least one step");
        self.scheduled.entry(step).or_default().push(FaultEvent::SlowdownBurst { node, steps, factor });
        self
    }

    /// Add a flapping-contention rule: from `from_step` on, `node`
    /// alternates every `period` steps between full compute and
    /// `fraction` of it.
    ///
    /// # Panics
    ///
    /// Panics unless `period > 0` and `0 < fraction <= 1`.
    #[must_use]
    pub fn flapping(mut self, node: usize, period: u64, fraction: f64, from_step: u64) -> Self {
        assert!(period > 0, "flap period must be positive");
        assert!(fraction > 0.0 && fraction <= 1.0, "contended fraction must be in (0, 1]");
        self.flaps.push(FlapRule { node, period, fraction, from_step });
        self
    }

    /// Enable transient communication failures with per-batch probability
    /// `prob` and a retry budget of `max_attempts`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= prob < 1` and `max_attempts >= 1`.
    #[must_use]
    pub fn transient_comm(mut self, prob: f64, max_attempts: u32) -> Self {
        assert!((0.0..1.0).contains(&prob), "failure probability must be in [0, 1)");
        assert!(max_attempts >= 1, "need at least one attempt");
        self.comm.prob = prob;
        self.comm.max_attempts = max_attempts;
        self
    }

    /// Override the full communication-failure model.
    #[must_use]
    pub fn with_comm_config(mut self, config: CommFaultConfig) -> Self {
        self.comm = config;
        self
    }

    /// Override the crash-detection timeout factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 0`.
    #[must_use]
    pub fn with_detect_timeout(mut self, factor: f64) -> Self {
        assert!(factor >= 0.0, "timeout factor must be non-negative");
        self.detect_timeout_factor = factor;
        self
    }

    // --- Named scenario constructors -------------------------------------
    //
    // The scenario-matrix harness (`cannikin-bench::scenarios`) evaluates
    // every subject under a registry of cluster conditions. Each condition
    // is just a composition of the primitive schedule builders above; the
    // constructors below give those compositions stable names and pinned
    // shapes so the registry, the docs and the committed
    // `BENCH_scenarios.json` all speak about the same physical situation.

    /// Spot-market preemption: `node` is killed hard at `preempt_step` and
    /// a replacement instance (`replacement`) joins at `rejoin_step`. The
    /// subject must evict the dead member, re-solve over the survivors,
    /// and later absorb the newcomer — the full elastic round trip.
    ///
    /// # Panics
    ///
    /// Panics unless `preempt_step < rejoin_step`.
    #[must_use]
    pub fn spot_preemption(seed: u64, node: usize, preempt_step: u64, rejoin_step: u64, replacement: NodeSpec) -> Self {
        assert!(preempt_step < rejoin_step, "the replacement must arrive after the preemption");
        FaultPlan::new(seed).crash_at(preempt_step, node).join_at(rejoin_step, replacement)
    }

    /// Diurnal contention: from `from_step` on, `node` alternates every
    /// `period` steps between full speed and a contended `fraction` of its
    /// compute — the shared-cluster day/night pattern that rewards
    /// re-planning over static splits.
    ///
    /// # Panics
    ///
    /// Panics unless `period > 0` and `0 < fraction <= 1` (see
    /// [`FaultPlan::flapping`]).
    #[must_use]
    pub fn diurnal_contention(seed: u64, node: usize, period: u64, fraction: f64, from_step: u64) -> Self {
        FaultPlan::new(seed).flapping(node, period, fraction, from_step)
    }

    /// Straggler onset: at `onset_step`, `node` permanently slows down by
    /// `factor` (thermal throttling, a failing disk, a noisy neighbor that
    /// never leaves). Modeled as a slowdown burst that outlasts any run.
    ///
    /// # Panics
    ///
    /// Panics unless `factor >= 1` (see [`FaultPlan::burst_at`]).
    #[must_use]
    pub fn straggler_onset(seed: u64, node: usize, onset_step: u64, factor: f64) -> Self {
        FaultPlan::new(seed).burst_at(onset_step, node, u64::MAX, factor)
    }

    /// Flaky network: every batch's gradient synchronization fails with
    /// probability `prob`, retried up to `max_attempts` times with the
    /// default timeout/backoff model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= prob < 1` and `max_attempts >= 1` (see
    /// [`FaultPlan::transient_comm`]).
    #[must_use]
    pub fn flaky_network(seed: u64, prob: f64, max_attempts: u32) -> Self {
        FaultPlan::new(seed).transient_comm(prob, max_attempts)
    }

    /// Cluster churn: `leaver` departs gracefully at `leave_step` and a
    /// different machine (`joiner`) arrives at `join_step` — the
    /// fleet-reallocation pattern where a job's node set changes shape
    /// without ever failing.
    ///
    /// # Panics
    ///
    /// Panics unless `leave_step < join_step`.
    #[must_use]
    pub fn cluster_churn(seed: u64, leaver: usize, leave_step: u64, joiner: NodeSpec, join_step: u64) -> Self {
        assert!(leave_step < join_step, "churn replaces capacity after it left");
        FaultPlan::new(seed).leave_at(leave_step, leaver).join_at(join_step, joiner)
    }
}

/// What the gradient synchronization of one batch experienced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CommOutcome {
    /// No injected failure.
    Clean,
    /// Failed `attempts - 1` times, then succeeded; `penalty` seconds of
    /// timeouts + backoff were added to the batch.
    Recovered { attempts: u32, penalty: f64 },
    /// Every attempt failed; the step is lost and must be re-run.
    Exhausted { attempts: u32, penalty: f64 },
}

/// Everything the fault layer decided for one batch.
#[derive(Debug)]
pub(crate) struct BatchFaults {
    /// Nodes currently crashed (non-empty ⇒ the batch fails).
    pub crashed: Vec<usize>,
    /// Per-node multiplicative compute stretch (len = cluster size).
    pub slowdown: Vec<f64>,
    /// Contention toggles to apply before simulating: `(node, fraction)`.
    pub toggles: Vec<(usize, f64)>,
    /// Fault events to surface in the trace.
    pub faults: Vec<FaultInjected>,
    /// Communication outcome.
    pub comm: CommOutcome,
}

/// Live per-run fault state attached to a [`Simulator`](crate::Simulator).
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    step: u64,
    crashed: Vec<bool>,
    bursts: Vec<(usize, u64, f64)>,
    /// Last applied flap state, parallel to `plan.flaps`.
    flap_active: Vec<bool>,
    pending_joins: Vec<NodeSpec>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, nodes: usize) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        let flap_active = vec![false; plan.flaps.len()];
        FaultState { plan, rng, step: 0, crashed: vec![false; nodes], bursts: Vec::new(), flap_active, pending_joins: Vec::new() }
    }

    pub(crate) fn detect_timeout_factor(&self) -> f64 {
        self.plan.detect_timeout_factor
    }

    pub(crate) fn take_pending_joins(&mut self) -> Vec<NodeSpec> {
        std::mem::take(&mut self.pending_joins)
    }

    /// Keep per-node fault state consistent with
    /// [`Simulator::remove_node`](crate::Simulator::remove_node): drop the
    /// removed node's state and shift every higher index down by one, in
    /// the crash flags, active bursts, flap rules, and the not-yet-fired
    /// scheduled events alike.
    pub(crate) fn on_node_removed(&mut self, node: usize) {
        if node < self.crashed.len() {
            self.crashed.remove(node);
        }
        self.bursts.retain(|&(n, _, _)| n != node);
        for burst in &mut self.bursts {
            if burst.0 > node {
                burst.0 -= 1;
            }
        }
        let mut keep = Vec::with_capacity(self.plan.flaps.len());
        let mut active = Vec::with_capacity(self.plan.flaps.len());
        for (rule, was) in self.plan.flaps.iter().zip(&self.flap_active) {
            if rule.node == node {
                continue;
            }
            let mut rule = *rule;
            if rule.node > node {
                rule.node -= 1;
            }
            keep.push(rule);
            active.push(*was);
        }
        self.plan.flaps = keep;
        self.flap_active = active;
        for events in self.plan.scheduled.values_mut() {
            // Drop events aimed at the removed node BEFORE renumbering, or
            // an event shifted down onto its index would be lost with it.
            events.retain(|e| match e {
                FaultEvent::Crash { node: n }
                | FaultEvent::Leave { node: n }
                | FaultEvent::SlowdownBurst { node: n, .. } => *n != node,
                FaultEvent::Join { .. } => true,
            });
            for event in events.iter_mut() {
                match event {
                    FaultEvent::Crash { node: n }
                    | FaultEvent::Leave { node: n }
                    | FaultEvent::SlowdownBurst { node: n, .. } => {
                        if *n > node {
                            *n -= 1;
                        }
                    }
                    FaultEvent::Join { .. } => {}
                }
            }
        }
        self.plan.scheduled.retain(|_, events| !events.is_empty());
    }

    /// Mirror of [`FaultState::on_node_removed`] for joins.
    pub(crate) fn on_node_added(&mut self) {
        self.crashed.push(false);
    }

    /// Advance one batch: fire scheduled events, tick bursts and flaps,
    /// and draw the communication outcome. `n` is the current cluster
    /// size, `t_comm` the ground-truth all-reduce time (the unit of the
    /// comm-failure detection timeout).
    pub(crate) fn on_batch_start(&mut self, n: usize, t_comm: f64) -> BatchFaults {
        let step = self.step;
        self.step += 1;
        let mut faults = Vec::new();

        // Fire this step's scheduled events (dropping out-of-range nodes —
        // the cluster may have shrunk since scheduling).
        if let Some(events) = self.plan.scheduled.remove(&step) {
            for event in events {
                match event {
                    FaultEvent::Crash { node } if node < n => {
                        self.crashed[node] = true;
                    }
                    FaultEvent::Leave { node } if node < n => {
                        faults.push(FaultInjected {
                            kind: FaultKind::NodeLeave,
                            node: Some(node as u32),
                            step,
                            attempts: 1,
                            magnitude: 0.0,
                        });
                    }
                    FaultEvent::Join { spec } => {
                        self.pending_joins.push(spec);
                        faults.push(FaultInjected { kind: FaultKind::NodeJoin, node: None, step, attempts: 1, magnitude: 0.0 });
                    }
                    FaultEvent::SlowdownBurst { node, steps, factor } if node < n => {
                        self.bursts.push((node, steps, factor));
                    }
                    _ => {}
                }
            }
        }

        let crashed: Vec<usize> = (0..n).filter(|&i| self.crashed[i]).collect();
        for &node in &crashed {
            faults.push(FaultInjected { kind: FaultKind::NodeCrash, node: Some(node as u32), step, attempts: 1, magnitude: 0.0 });
        }
        if !crashed.is_empty() {
            // The batch dies at the detection timeout; nothing else fires.
            return BatchFaults { crashed, slowdown: vec![1.0; n], toggles: Vec::new(), faults, comm: CommOutcome::Clean };
        }

        // Active slowdown bursts stretch compute for this batch.
        let mut slowdown = vec![1.0; n];
        for &mut (node, ref mut remaining, factor) in &mut self.bursts {
            if node < n && *remaining > 0 {
                slowdown[node] *= factor;
                *remaining -= 1;
                faults.push(FaultInjected {
                    kind: FaultKind::SlowdownBurst,
                    node: Some(node as u32),
                    step,
                    attempts: 1,
                    magnitude: factor,
                });
            }
        }
        self.bursts.retain(|&(_, remaining, _)| remaining > 0);

        // Flapping contention: surface state changes as toggles.
        let mut toggles = Vec::new();
        for (rule, was) in self.plan.flaps.iter().zip(self.flap_active.iter_mut()) {
            if rule.node >= n || step < rule.from_step {
                continue;
            }
            let active = ((step - rule.from_step) / rule.period) % 2 == 1;
            if active != *was {
                *was = active;
                let fraction = if active { rule.fraction } else { 1.0 };
                toggles.push((rule.node, fraction));
                faults.push(FaultInjected {
                    kind: FaultKind::ContentionFlap,
                    node: Some(rule.node as u32),
                    step,
                    attempts: 1,
                    magnitude: fraction,
                });
            }
        }

        // Transient communication failure episode.
        let comm = if self.plan.comm.prob > 0.0 && self.rng.random::<f64>() < self.plan.comm.prob {
            let cfg = self.plan.comm;
            let mut attempts = 1u32;
            let mut penalty = cfg.timeout_factor * t_comm;
            let mut recovered = false;
            while attempts < cfg.max_attempts {
                let backoff = cfg.backoff_base
                    * f64::from(1u32 << (attempts - 1).min(16))
                    * (1.0 + cfg.jitter * self.rng.random::<f64>());
                penalty += backoff;
                attempts += 1;
                if self.rng.random::<f64>() >= cfg.prob {
                    recovered = true;
                    break;
                }
                penalty += cfg.timeout_factor * t_comm;
            }
            if recovered {
                faults.push(FaultInjected { kind: FaultKind::CommFailure, node: None, step, attempts, magnitude: penalty });
                CommOutcome::Recovered { attempts, penalty }
            } else {
                faults.push(FaultInjected { kind: FaultKind::CommTimeout, node: None, step, attempts, magnitude: penalty });
                CommOutcome::Exhausted { attempts, penalty }
            }
        } else {
            CommOutcome::Clean
        };

        BatchFaults { crashed, slowdown, toggles, faults, comm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Gpu;

    #[test]
    fn scheduled_events_fire_once_at_their_step() {
        let plan = FaultPlan::new(1).crash_at(3, 1).leave_at(5, 0);
        let mut state = FaultState::new(plan, 3);
        for step in 0..3 {
            let fx = state.on_batch_start(3, 0.1);
            assert!(fx.crashed.is_empty() && fx.faults.is_empty(), "step {step}: {fx:?}");
        }
        let fx = state.on_batch_start(3, 0.1);
        assert_eq!(fx.crashed, vec![1]);
        assert!(fx.faults.iter().any(|f| f.kind == FaultKind::NodeCrash && f.node == Some(1)));
        // The crash persists until the node is evicted.
        let fx = state.on_batch_start(3, 0.1);
        assert_eq!(fx.crashed, vec![1]);
        state.on_node_removed(1);
        let fx = state.on_batch_start(2, 0.1);
        assert!(fx.crashed.is_empty());
        // The leave scheduled for node 0 still targets the same machine.
        assert!(fx.faults.iter().any(|f| f.kind == FaultKind::NodeLeave && f.node == Some(0)), "{fx:?}");
    }

    #[test]
    fn removal_shifts_scheduled_indices() {
        // Crash of node 2 scheduled; node 1 is removed first, so the same
        // physical machine is now index 1.
        let plan = FaultPlan::new(2).crash_at(4, 2).burst_at(4, 2, 2, 3.0);
        let mut state = FaultState::new(plan, 3);
        state.on_node_removed(1);
        for _ in 0..4 {
            state.on_batch_start(2, 0.1);
        }
        let fx = state.on_batch_start(2, 0.1);
        assert_eq!(fx.crashed, vec![1], "crash must follow the machine, not the index");
    }

    #[test]
    fn bursts_last_exactly_their_duration() {
        let plan = FaultPlan::new(3).burst_at(1, 0, 2, 4.0);
        let mut state = FaultState::new(plan, 2);
        assert_eq!(state.on_batch_start(2, 0.1).slowdown, vec![1.0, 1.0]);
        assert_eq!(state.on_batch_start(2, 0.1).slowdown, vec![4.0, 1.0]);
        assert_eq!(state.on_batch_start(2, 0.1).slowdown, vec![4.0, 1.0]);
        assert_eq!(state.on_batch_start(2, 0.1).slowdown, vec![1.0, 1.0]);
    }

    #[test]
    fn flapping_toggles_at_period_boundaries() {
        let plan = FaultPlan::new(4).flapping(1, 2, 0.5, 0);
        let mut state = FaultState::new(plan, 2);
        let mut toggles = Vec::new();
        for _ in 0..8 {
            let fx = state.on_batch_start(2, 0.1);
            toggles.extend(fx.toggles);
        }
        // Steps 0-1 clean, 2-3 contended, 4-5 clean, 6-7 contended.
        assert_eq!(toggles, vec![(1, 0.5), (1, 1.0), (1, 0.5)]);
    }

    #[test]
    fn comm_failures_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let plan = FaultPlan::new(seed).transient_comm(0.3, 4);
            let mut state = FaultState::new(plan, 2);
            (0..50).map(|_| state.on_batch_start(2, 0.1).comm).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds must differ somewhere");
        let outcomes = run(7);
        assert!(outcomes.iter().any(|o| matches!(o, CommOutcome::Recovered { .. })));
        assert!(outcomes.iter().any(|o| matches!(o, CommOutcome::Clean)));
        for o in &outcomes {
            if let CommOutcome::Recovered { attempts, penalty } | CommOutcome::Exhausted { attempts, penalty } = o {
                assert!(*attempts >= 1 && *attempts <= 4);
                assert!(*penalty > 0.0);
            }
        }
    }

    #[test]
    fn spot_preemption_composes_crash_and_join() {
        let plan = FaultPlan::spot_preemption(9, 1, 2, 4, NodeSpec::new("spot-replacement", Gpu::V100));
        let mut state = FaultState::new(plan, 3);
        state.on_batch_start(3, 0.1);
        state.on_batch_start(3, 0.1);
        let fx = state.on_batch_start(3, 0.1);
        assert_eq!(fx.crashed, vec![1], "preemption fires at its step");
        state.on_node_removed(1);
        state.on_batch_start(2, 0.1);
        let fx = state.on_batch_start(2, 0.1);
        assert!(fx.faults.iter().any(|f| f.kind == FaultKind::NodeJoin));
        assert_eq!(state.take_pending_joins()[0].name, "spot-replacement");
    }

    #[test]
    fn straggler_onset_never_expires() {
        let plan = FaultPlan::straggler_onset(3, 0, 1, 2.5);
        let mut state = FaultState::new(plan, 2);
        assert_eq!(state.on_batch_start(2, 0.1).slowdown, vec![1.0, 1.0]);
        for _ in 0..50 {
            assert_eq!(state.on_batch_start(2, 0.1).slowdown, vec![2.5, 1.0], "the onset is permanent");
        }
    }

    #[test]
    fn cluster_churn_leaves_then_joins() {
        let plan = FaultPlan::cluster_churn(5, 2, 1, NodeSpec::new("fresh", Gpu::A100), 3);
        let mut state = FaultState::new(plan, 3);
        state.on_batch_start(3, 0.1);
        let fx = state.on_batch_start(3, 0.1);
        assert!(fx.faults.iter().any(|f| f.kind == FaultKind::NodeLeave && f.node == Some(2)));
        state.on_node_removed(2);
        state.on_batch_start(2, 0.1);
        let fx = state.on_batch_start(2, 0.1);
        assert!(fx.faults.iter().any(|f| f.kind == FaultKind::NodeJoin));
        assert_eq!(state.take_pending_joins()[0].name, "fresh");
    }

    #[test]
    fn joins_are_queued_for_the_engine() {
        let plan = FaultPlan::new(5).join_at(2, NodeSpec::new("late", Gpu::A100));
        let mut state = FaultState::new(plan, 2);
        state.on_batch_start(2, 0.1);
        state.on_batch_start(2, 0.1);
        assert!(state.take_pending_joins().is_empty());
        let fx = state.on_batch_start(2, 0.1);
        assert!(fx.faults.iter().any(|f| f.kind == FaultKind::NodeJoin));
        let joins = state.take_pending_joins();
        assert_eq!(joins.len(), 1);
        assert_eq!(joins[0].name, "late");
        assert!(state.take_pending_joins().is_empty(), "drained");
    }
}
