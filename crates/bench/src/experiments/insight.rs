//! The `insight` experiment: the §6 contention scenario watched live by
//! `cannikin-insight` — five healthy epochs on cluster B, a mid-run
//! contention injection on node 0, the monitor's straggler verdict and
//! the engine's forced re-profile, then an offline replay of the drained
//! trace showing the detectors reproduce their online verdicts exactly.

use super::tables::next_session_tag;
use crate::row;
use cannikin_core::engine::{CannikinTrainer, TrainerConfig};
use cannikin_insight::{replay, InsightConfig, Monitor};
use cannikin_telemetry::{self as telemetry, Record};
use cannikin_workloads::{clusters, profiles};
use hetsim::Simulator;
use std::collections::BTreeMap;

const HEALTHY_EPOCHS: usize = 5;
const DEGRADED_EPOCHS: usize = 5;

/// Run the monitored contention scenario and render the health report,
/// the split's reaction, and the online/offline agreement verdict.
pub fn insight_run() -> String {
    let profile = profiles::cifar10_resnet18();
    let cluster = clusters::cluster_b();
    let base = profile.base_batch.max(cluster.len() as u64);
    let sim = Simulator::new(cluster, profile.job.clone(), 157);
    // Fixed total batch: the experiment is about the *split* reacting to
    // contention, so the goodput dimension is pinned.
    let mut config = TrainerConfig::new(12_800, base, profile.max_batch);
    config.adaptive_batch = false;
    let mut trainer = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(Box::new(profile.noise))
        .config(config)
        .build()
        .expect("valid config");

    let tag = next_session_tag();
    let insight_config = InsightConfig { only_rank: Some(tag), ..InsightConfig::default() };
    trainer.attach_monitor(Monitor::install(insight_config.clone()));

    let session = telemetry::Session::start();
    let _identity = telemetry::set_thread_identity(0, tag);
    let mut epochs = trainer.run_epochs(HEALTHY_EPOCHS).expect("healthy run");
    // §6: node 0 (an A100) loses 60% of its compute to a co-located job.
    trainer.simulator_mut().set_contention(0, 0.4);
    epochs.extend(trainer.run_epochs(DEGRADED_EPOCHS).expect("degraded run"));
    let records: Vec<Record> = session.drain().into_iter().filter(|r| r.rank == tag).collect();
    drop(session);

    let report = trainer.health().expect("monitor attached");
    let rerun = replay::analyze(&records, insight_config);

    let mut out = format!(
        "insight — contention injected on node 0 after epoch {} ({} events recorded)\n\n",
        HEALTHY_EPOCHS - 1,
        records.len()
    );
    out += &report.render();

    let mut kinds: BTreeMap<&'static str, usize> = BTreeMap::new();
    for a in &report.anomalies {
        *kinds.entry(a.kind.as_str()).or_default() += 1;
    }
    out += "\nanomalies by kind:\n";
    for (kind, count) in &kinds {
        out += &format!("  {kind}: {count}\n");
    }
    if let Some(first) = report.anomalies.iter().find(|a| a.node == Some(0)) {
        out += &format!(
            "first node-0 anomaly: {} at step {} ({:.4}s expected, {:.4}s observed)\n",
            first.kind.as_str(),
            first.step,
            first.expected,
            first.observed
        );
    }

    // The split's reaction: node 0's share collapses once the monitor
    // forces its re-profile, then the model re-engages on the slowed
    // coefficients.
    out.push('\n');
    let widths = [6, 7, 8, 11, 10];
    out += &row(
        &["epoch".into(), "total".into(), "node 0".into(), "model".into(), "note".into()],
        &widths,
    );
    out.push('\n');
    for r in &epochs {
        let note = if r.epoch == HEALTHY_EPOCHS { "<- contention" } else { "" };
        out += &row(
            &[
                r.epoch.to_string(),
                r.total_batch.to_string(),
                r.local_batches[0].to_string(),
                if r.used_model { "solver" } else { "profile" }.to_string(),
                note.to_string(),
            ],
            &widths,
        );
        out.push('\n');
    }

    out.push('\n');
    out += &format!(
        "offline replay: {} anomalies, online {} — agreement {}\n",
        rerun.offline.len(),
        rerun.online.len(),
        if rerun.anomalies_match() { "EXACT" } else { "MISMATCH" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_is_detected_and_replayed_exactly() {
        let out = insight_run();
        assert!(out.contains("DEGRADED"), "{out}");
        assert!(out.contains("straggling nodes: [0]"), "{out}");
        assert!(out.contains("straggler:"), "{out}");
        assert!(out.contains("agreement EXACT"), "{out}");
    }
}
