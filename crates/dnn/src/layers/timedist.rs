//! Sequence-axis adaptors: apply a 2-D layer per timestep, and pool over
//! time.

use super::{Layer, Param};
use crate::tensor::Tensor;

/// Apply an inner layer independently to every timestep of a
/// `[batch, time, features]` input (Keras' `TimeDistributed`): the inner
/// layer sees `[batch·time, features]` and its output is reshaped back to
/// `[batch, time, out]`.
pub struct TimeDistributed<L: Layer> {
    inner: L,
    shape: Option<(usize, usize)>,
}

impl<L: Layer> std::fmt::Debug for TimeDistributed<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TimeDistributed(..)")
    }
}

impl<L: Layer> TimeDistributed<L> {
    /// Wrap a layer.
    pub fn new(inner: L) -> Self {
        TimeDistributed { inner, shape: None }
    }
}

impl<L: Layer> Layer for TimeDistributed<L> {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "TimeDistributed input must be [batch, time, features]");
        let (batch, time, feats) = (shape[0], shape[1], shape[2]);
        self.shape = Some((batch, time));
        let flat = x.clone().reshape(&[batch * time, feats]);
        let y = self.inner.forward(&flat, train);
        let out = y.cols();
        y.reshape(&[batch, time, out])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (batch, time) = self.shape.expect("backward called before forward");
        let out = grad_out.shape()[2];
        let flat = grad_out.clone().reshape(&[batch * time, out]);
        let gx = self.inner.backward(&flat);
        let feats = gx.cols();
        gx.reshape(&[batch, time, feats])
    }

    fn parameters(&self) -> Vec<&Param> {
        self.inner.parameters()
    }

    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        self.inner.parameters_mut()
    }
}

/// Mean-pool a `[batch, time, features]` sequence over time, producing
/// `[batch, features]`.
#[derive(Debug, Default)]
pub struct MeanOverTime {
    shape: Option<(usize, usize, usize)>,
}

impl MeanOverTime {
    /// Create the pooling layer.
    pub fn new() -> Self {
        MeanOverTime { shape: None }
    }
}

impl Layer for MeanOverTime {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "MeanOverTime input must be [batch, time, features]");
        let (batch, time, feats) = (shape[0], shape[1], shape[2]);
        self.shape = Some((batch, time, feats));
        let mut out = Tensor::zeros(&[batch, feats]);
        for b in 0..batch {
            for t in 0..time {
                for f in 0..feats {
                    out.data_mut()[b * feats + f] += x.data()[(b * time + t) * feats + f] / time as f32;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (batch, time, feats) = self.shape.expect("backward called before forward");
        assert_eq!(grad_out.shape(), &[batch, feats], "MeanOverTime backward shape mismatch");
        let mut dx = Tensor::zeros(&[batch, time, feats]);
        for b in 0..batch {
            for t in 0..time {
                for f in 0..feats {
                    dx.data_mut()[(b * time + t) * feats + f] = grad_out.data()[b * feats + f] / time as f32;
                }
            }
        }
        dx
    }

    fn parameters(&self) -> Vec<&Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;

    #[test]
    fn time_distributed_linear_shapes() {
        let mut td = TimeDistributed::new(Linear::new(5, 3, 1));
        let x = Tensor::randn(&[2, 4, 5], 2);
        let y = td.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4, 3]);
        let gx = td.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn time_distributed_is_per_frame() {
        // Applying the layer to one frame alone gives the same result as
        // applying it inside a sequence.
        let mut td = TimeDistributed::new(Linear::new(3, 2, 3));
        let x = Tensor::randn(&[1, 3, 3], 4);
        let y = td.forward(&x, true);
        let mut solo = TimeDistributed::new(Linear::new(3, 2, 3));
        let frame1 = Tensor::from_vec(x.data()[3..6].to_vec(), &[1, 1, 3]).unwrap();
        let y_solo = solo.forward(&frame1, true);
        for c in 0..2 {
            assert!((y.at(&[0, 1, c]) - y_solo.at(&[0, 0, c])).abs() < 1e-6);
        }
    }

    #[test]
    fn mean_over_time_forward_backward() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 3, 2]).unwrap();
        let mut pool = MeanOverTime::new();
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[3.0, 4.0]); // means of (1,3,5) and (2,4,6)
        let dx = pool.backward(&Tensor::from_vec(vec![3.0, 6.0], &[1, 2]).unwrap());
        assert_eq!(dx.data(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }
}
