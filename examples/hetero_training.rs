//! Functional data-parallel training on an emulated heterogeneous cluster.
//!
//! ```text
//! cargo run --release --example hetero_training
//! ```
//!
//! Three OS threads play three nodes of different speeds (1x, 2x, 4x
//! slowdown). Each trains a real `minidnn` MLP on a synthetic
//! classification task; gradients flow through the real bucketed ring
//! all-reduce with the Eq. (9) batch-ratio weighting, the gradient noise
//! scale is estimated live with Eq. (10) + Theorem 4.1, and Cannikin's
//! control loop rebalances the local batches once its performance models
//! are learned.

use cannikin::dnn::data::gaussian_blobs;
use cannikin::dnn::models::mlp_classifier;
use cannikin::prelude::*;

fn main() {
    let dataset = gaussian_blobs(9216, 32, 10, 11); // 32 overlapping classes in 10-D
    let mut trainer = ParallelTrainer::builder()
        .dataset(dataset)
        .model(|seed| mlp_classifier(10, 64, 32, seed))
        .slowdowns(vec![1.0, 2.0, 4.0])
        .batch_range(96, 768)
        .adaptive(true)
        .base_lr(0.02)
        .lr_scaler(LrScaler::AdaScale)
        .seed(42)
        .build()
        .expect("valid configuration");

    println!("3 emulated nodes (slowdowns 1x / 2x / 4x), 9216-sample synthetic task\n");
    println!("{:>5}  {:>6}  {:>16}  {:>9}  {:>8}  {:>8}  {:>9}  {:>6}", "epoch", "B", "split", "time (s)", "loss", "acc", "GNS", "model");
    for _ in 0..8 {
        let r = trainer.run_epoch().expect("epoch");
        println!(
            "{:>5}  {:>6}  {:>16}  {:>9.3}  {:>8.4}  {:>7.1}%  {:>9}  {:>6}",
            r.epoch,
            r.total_batch,
            format!("{:?}", r.local_batches),
            r.epoch_time,
            r.mean_loss,
            r.accuracy * 100.0,
            r.noise_scale.map_or("-".to_string(), |p| format!("{p:.1}")),
            if r.used_model { "yes" } else { "boot" },
        );
    }
    println!("\nthe 1x node ends up carrying several times the 4x node's share — via the");
    println!("learned model when per-step timings are clean, or the Eq. (8) bootstrap");
    println!("when they are not (e.g. on a single-core machine where ranks timeshare)");
}
