//! Fault injection and elastic recovery (ISSUE 4): what a mid-training
//! crash costs Cannikin versus a static, checkpoint-restart DDP job, and
//! how the engine's recovery actions show up epoch by epoch.

use crate::{fmt, row};
use cannikin_baselines::{time_to_target, DdpTrainer};
use cannikin_core::engine::{CannikinTrainer, NoiseModel, TrainerConfig};
use cannikin_workloads::profiles;
use hetsim::catalog::Gpu;
use hetsim::cluster::{ClusterSpec, NodeSpec};
use hetsim::{FaultPlan, Simulator};

fn cluster() -> ClusterSpec {
    ClusterSpec::new(
        "faults",
        vec![
            NodeSpec::new("a100", Gpu::A100),
            NodeSpec::new("v100", Gpu::V100),
            NodeSpec::new("rtx", Gpu::Rtx6000),
        ],
    )
}

/// Crash recovery experiment: node 1 dies at step 150 of a fixed-batch
/// run. Cannikin evicts it, re-solves the split over the survivors at the
/// same total and keeps training; static DDP loses the half-finished
/// epoch and pays a restart round trip before resuming on an even split.
pub fn faults() -> String {
    let profile = profiles::cifar10_resnet18();
    let target = 3.0;
    let dataset = 6_400;
    let total = 64;

    let plan = FaultPlan::new(77).crash_at(150, 1);
    let sim = Simulator::new(cluster(), profile.job.clone(), 21).with_fault_plan(plan);
    let mut config = TrainerConfig::new(dataset, total, 512);
    config.adaptive_batch = false;
    let noise: Box<dyn NoiseModel> = Box::new(profile.noise);
    let mut cannikin = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(noise)
        .config(config)
        .build()
        .expect("valid config");
    let records = cannikin.train_until(target, 60).expect("cannikin run");

    let mut out = String::from("Fault injection — crash at step 150, node 1 (ResNet-18/CIFAR-10, fixed B=64)\n");
    let widths = [6, 7, 8, 11, 16, 20];
    out += &row(
        &["epoch".into(), "nodes".into(), "faults".into(), "recoveries".into(), "batch time (s)".into(), "split".into()],
        &widths,
    );
    out.push('\n');
    for r in &records {
        out += &row(
            &[
                r.epoch.to_string(),
                r.local_batches.len().to_string(),
                r.faults.to_string(),
                r.recoveries.to_string(),
                fmt(r.mean_batch_time),
                format!("{:?}", r.local_batches),
            ],
            &widths,
        );
        out.push('\n');
    }
    let t_cannikin = time_to_target(&records, target).expect("cannikin reaches the target");

    // Static DDP under the same crash: the half epoch in flight is lost
    // and a 30 s restart round trip is charged before the survivors
    // resume at an even split.
    let sim = Simulator::new(cluster(), profile.job.clone(), 21);
    let noise: Box<dyn NoiseModel> = Box::new(profile.noise);
    let mut ddp = DdpTrainer::new(sim, noise, dataset, total, total);
    let mut ddp_records = vec![ddp.run_epoch()];
    ddp.handle_crash(1, 0.5, 30.0);
    ddp_records.extend(ddp.train_until(target, 60));
    let t_ddp = time_to_target(&ddp_records, target).expect("ddp reaches the target");

    out += &format!("\ntime to {target} effective epochs:\n");
    out += &format!("  cannikin (elastic recovery):    {}s\n", fmt(t_cannikin));
    out += &format!("  static DDP (checkpoint restart): {}s\n", fmt(t_ddp));
    out += &format!("  speedup: {:.2}x\n", t_ddp / t_cannikin);
    out
}
