//! Shared regression-gate checks for the `*gate` binaries.
//!
//! Both `perfgate` (raw-speed trajectory) and `fleetgate` (fleet
//! scheduling trajectory) compare a fresh measurement against a committed
//! baseline and fail on regressions. This module gives them one check
//! type and one message format, so a failing CI run always prints, for
//! every offending metric, the current value, the baseline it was
//! compared against, and the threshold it violated — no "gate failed"
//! without the numbers to debug it.

use std::fmt;

/// Which side of the limit is the passing side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// The metric must stay **at or above** the limit (speedups, ratios).
    Floor,
    /// The metric must stay **at or below** the limit (errors, times).
    Ceiling,
}

/// One gated metric: the fresh measurement, the committed baseline, and
/// the derived limit it is held to.
#[derive(Debug, Clone)]
pub enum GateCheck {
    /// A metric that was measured and compared.
    Measured {
        /// Metric name as printed.
        name: String,
        /// Freshly measured value.
        current: f64,
        /// Committed baseline value.
        baseline: f64,
        /// Passing side of `limit`.
        bound: Bound,
        /// The limit derived from the baseline and tolerance.
        limit: f64,
        /// Allowed regression fraction the limit was derived with.
        tolerance: f64,
    },
    /// A metric that could not be measured here (never fails the gate).
    Skipped {
        /// Metric name as printed.
        name: String,
        /// Why it was skipped.
        reason: String,
    },
}

impl GateCheck {
    /// A floor check: `current >= limit` passes.
    pub fn floor(name: impl Into<String>, current: f64, baseline: f64, limit: f64, tolerance: f64) -> Self {
        GateCheck::Measured { name: name.into(), current, baseline, bound: Bound::Floor, limit, tolerance }
    }

    /// A ceiling check: `current <= limit` passes.
    pub fn ceiling(name: impl Into<String>, current: f64, baseline: f64, limit: f64, tolerance: f64) -> Self {
        GateCheck::Measured { name: name.into(), current, baseline, bound: Bound::Ceiling, limit, tolerance }
    }

    /// A check skipped on this machine (counts as passing).
    pub fn skipped(name: impl Into<String>, reason: impl Into<String>) -> Self {
        GateCheck::Skipped { name: name.into(), reason: reason.into() }
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        match self {
            GateCheck::Measured { name, .. } | GateCheck::Skipped { name, .. } => name,
        }
    }

    /// Whether this check passes the gate.
    pub fn passes(&self) -> bool {
        match self {
            GateCheck::Measured { current, bound: Bound::Floor, limit, .. } => current >= limit,
            GateCheck::Measured { current, bound: Bound::Ceiling, limit, .. } => current <= limit,
            GateCheck::Skipped { .. } => true,
        }
    }
}

/// The one-line report format. Every measured line carries current,
/// baseline, limit and tolerance; a failing line additionally names the
/// violated side, so the CI log alone is enough to diagnose a regression:
///
/// ```text
/// PASS simd_speedup: current 2.5000 vs baseline 2.6000 (floor 2.3400, tolerance 10%)
/// FAIL simd_speedup: current 1.9000 vs baseline 2.6000 — below floor 2.3400 (tolerance 10%)
/// SKIP simd_speedup: AVX2 unavailable on this machine
/// ```
impl fmt::Display for GateCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateCheck::Skipped { name, reason } => write!(f, "SKIP {name}: {reason}"),
            GateCheck::Measured { name, current, baseline, bound, limit, tolerance } => {
                let side = match bound {
                    Bound::Floor => "floor",
                    Bound::Ceiling => "ceiling",
                };
                let tol = format!("tolerance {:.0}%", tolerance * 100.0);
                if self.passes() {
                    write!(f, "PASS {name}: current {current:.4} vs baseline {baseline:.4} ({side} {limit:.4}, {tol})")
                } else {
                    let violation = match bound {
                        Bound::Floor => "below",
                        Bound::Ceiling => "above",
                    };
                    write!(
                        f,
                        "FAIL {name}: current {current:.4} vs baseline {baseline:.4} — {violation} {side} {limit:.4} ({tol})"
                    )
                }
            }
        }
    }
}

/// Render every check (one line each) and report whether all passed.
pub fn render_all(checks: &[GateCheck]) -> (String, bool) {
    let mut out = String::new();
    let mut all_pass = true;
    for check in checks {
        out.push_str(&check.to_string());
        out.push('\n');
        all_pass &= check.passes();
    }
    (out, all_pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_line_format_is_stable() {
        let check = GateCheck::floor("simd_speedup", 2.5, 2.6, 2.34, 0.10);
        assert!(check.passes());
        assert_eq!(
            check.to_string(),
            "PASS simd_speedup: current 2.5000 vs baseline 2.6000 (floor 2.3400, tolerance 10%)"
        );
    }

    #[test]
    fn fail_line_names_the_violated_floor() {
        let check = GateCheck::floor("simd_speedup", 1.9, 2.6, 2.34, 0.10);
        assert!(!check.passes());
        assert_eq!(
            check.to_string(),
            "FAIL simd_speedup: current 1.9000 vs baseline 2.6000 — below floor 2.3400 (tolerance 10%)"
        );
    }

    #[test]
    fn fail_line_names_the_violated_ceiling() {
        let check = GateCheck::ceiling("bf16_rel_error", 0.05, 0.001, 0.01, 1.0);
        assert!(!check.passes());
        assert_eq!(
            check.to_string(),
            "FAIL bf16_rel_error: current 0.0500 vs baseline 0.0010 — above ceiling 0.0100 (tolerance 100%)"
        );
    }

    #[test]
    fn skipped_checks_always_pass() {
        let check = GateCheck::skipped("simd_speedup", "AVX2 unavailable on this machine");
        assert!(check.passes());
        assert_eq!(check.to_string(), "SKIP simd_speedup: AVX2 unavailable on this machine");
        assert_eq!(check.name(), "simd_speedup");
    }

    #[test]
    fn boundary_values_pass_on_both_sides() {
        assert!(GateCheck::floor("x", 2.0, 2.0, 2.0, 0.0).passes(), "exactly at the floor passes");
        assert!(GateCheck::ceiling("x", 2.0, 2.0, 2.0, 0.0).passes(), "exactly at the ceiling passes");
    }

    #[test]
    fn render_all_aggregates_and_reports_failure() {
        let checks = vec![
            GateCheck::floor("a", 2.0, 2.0, 1.8, 0.10),
            GateCheck::floor("b", 1.0, 2.0, 1.8, 0.10),
            GateCheck::skipped("c", "not on this machine"),
        ];
        let (text, all_pass) = render_all(&checks);
        assert!(!all_pass, "one failing check fails the gate");
        assert_eq!(text.lines().count(), 3, "one line per check");
        assert!(text.lines().nth(1).expect("line").starts_with("FAIL b:"));
    }
}
