//! Typed structured events — the things the Cannikin paper reasons about.
//!
//! Every event is a plain serde-derivable struct; [`Record`] wraps one
//! with a session-relative timestamp and the `(node, rank)` identity of
//! the emitting thread (Chrome-trace `pid`/`tid`). The JSON mapping used
//! by the exporters is implemented by hand on top of [`crate::json`] so
//! the crate stays dependency-light; [`Record::from_json`] inverts it for
//! the round-trip tests and offline analysis.

use crate::json::Json;
use serde::{Deserialize, Serialize};

/// Which path produced a split decision (Fig. 4 control loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitSource {
    /// Epoch-0 even split at B₀ (no information yet).
    EvenInit,
    /// The Eq. (8) per-sample-time bootstrap.
    Bootstrap,
    /// The OptPerf solver on learned models.
    Solver,
    /// The solver on a preloaded (checkpointed) model — bootstrap skipped.
    WarmStart,
}

impl SplitSource {
    fn as_str(self) -> &'static str {
        match self {
            SplitSource::EvenInit => "even_init",
            SplitSource::Bootstrap => "bootstrap",
            SplitSource::Solver => "solver",
            SplitSource::WarmStart => "warm_start",
        }
    }

    fn parse(s: &str) -> Option<SplitSource> {
        match s {
            "even_init" => Some(SplitSource::EvenInit),
            "bootstrap" => Some(SplitSource::Bootstrap),
            "solver" => Some(SplitSource::Solver),
            "warm_start" => Some(SplitSource::WarmStart),
            _ => None,
        }
    }
}

/// One node's timing of one training step: the per-batch observable the
/// OptPerf fits are built from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepTiming {
    /// Step index within the epoch.
    pub step: u64,
    /// Emitting rank / node index.
    pub rank: u32,
    /// Local batch size `b_i`.
    pub b_i: u64,
    /// Total compute time (`a_i + P_i`), s.
    pub t_compute: f64,
    /// Observed gradient-synchronization time, s (0 for no-sync steps).
    pub t_comm: f64,
    /// Observed compute/communication overlap ratio γ (0 when unknown).
    pub overlap: f64,
}

/// The engine's per-epoch local-batch split decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitDecision {
    /// Total batch size B.
    pub total: u64,
    /// The per-node local batches `r` (summing to `total`).
    pub local: Vec<u64>,
    /// Predicted batch time of the split, s (`None` for model-free paths).
    pub predicted_t: Option<f64>,
    /// Which planning path produced the split.
    pub source: SplitSource,
}

/// The adaptation policy that produced the epoch's plan — emitted next to
/// the [`SplitDecision`] it annotates, so a trace names *who* decided
/// alongside *what* was decided.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyDecision {
    /// Stable policy name (e.g. `optperf`, `even`, `lbbsp`, `rl`).
    pub policy: String,
    /// Epoch the plan applies to.
    pub epoch: u64,
    /// Total batch size the policy proposed.
    pub total: u64,
}

/// One gradient-noise-scale estimate (Eq. (10) + Theorem 4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GnsEstimated {
    /// The noise scale `B_noise = tr(Σ)/|G|²`.
    pub b_noise: f64,
    /// Estimated squared gradient norm `|G|²`.
    pub grad_sq: f64,
    /// Estimated total gradient variance `tr(Σ)`.
    pub variance: f64,
    /// The per-node minimum-variance weights applied to the variance
    /// estimators (uniform for the naive-mean ablation).
    pub weights: Vec<f64>,
}

/// One goodput-driven total-batch-size selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoodputEval {
    /// Gradient noise scale φ the selection ran under.
    pub phi: f64,
    /// Chosen effective total batch size.
    pub total: u64,
    /// Predicted goodput at the chosen size (reference samples/s).
    pub goodput: f64,
    /// Gradient-accumulation factor of the chosen candidate.
    pub accumulation: u64,
    /// Candidate totals evaluated by the cached sweep.
    pub candidates: u32,
    /// Whether the `OptPerf_init` cache was (re)built this selection.
    pub cache_rebuilt: bool,
}

/// Timing of one gradient bucket's ring all-reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllReduceBucket {
    /// Bucket index in reduction order (output layers first).
    pub bucket: u32,
    /// Elements reduced in this bucket.
    pub elems: u64,
    /// Wall time of the bucket's all-reduce, ns.
    pub wall_ns: u64,
    /// Bytes this rank put on the wire for the bucket (frames sent by the
    /// underlying transport; 0 in traces recorded before the field existed).
    pub bytes: u64,
}

/// One OptPerf solver invocation (the Table 6 overhead unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverInvocation {
    /// Wall time of the invocation, ns.
    pub wall_ns: u64,
    /// Total batch size solved for.
    pub total: u64,
    /// Candidate totals this invocation served (1 for a single solve).
    pub candidates: u32,
    /// Linear-system solves performed.
    pub solves: u32,
    /// Realized compute-bottleneck boundary C.
    pub boundary: u32,
}

/// The class of misbehavior an [`AnomalyDetected`] event reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// A node's observed compute time left the band of its fitted
    /// `t = c·b + d` law for several consecutive steps.
    Straggler,
    /// The realized batch time drifted beyond the calibration band around
    /// the solver's `SplitDecision::predicted_t`.
    CalibrationDrift,
    /// The gradient-noise-scale series jumped relative to its smoothed
    /// trajectory.
    GnsDrift,
    /// One all-reduce bucket is persistently slower per element than the
    /// cluster-wide average.
    BucketImbalance,
}

impl AnomalyKind {
    /// Stable string tag (the `kind` field of the JSONL form).
    pub fn as_str(self) -> &'static str {
        match self {
            AnomalyKind::Straggler => "straggler",
            AnomalyKind::CalibrationDrift => "calibration_drift",
            AnomalyKind::GnsDrift => "gns_drift",
            AnomalyKind::BucketImbalance => "bucket_imbalance",
        }
    }

    fn parse(s: &str) -> Option<AnomalyKind> {
        match s {
            "straggler" => Some(AnomalyKind::Straggler),
            "calibration_drift" => Some(AnomalyKind::CalibrationDrift),
            "gns_drift" => Some(AnomalyKind::GnsDrift),
            "bucket_imbalance" => Some(AnomalyKind::BucketImbalance),
            _ => None,
        }
    }
}

/// The class of injected (or observed) fault a [`FaultInjected`] event
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A node died hard: its results for the step are lost and it will
    /// not come back under the same identity.
    NodeCrash,
    /// A node left gracefully (scheduled departure): the step completes,
    /// the group shrinks afterwards.
    NodeLeave,
    /// A node joined the cluster (scheduled arrival).
    NodeJoin,
    /// A transient communication failure that was recovered by retrying.
    CommFailure,
    /// A communication failure that exhausted its retry budget; the whole
    /// step must be retried.
    CommTimeout,
    /// A bounded-duration compute slowdown burst on one node.
    SlowdownBurst,
    /// A flapping-contention toggle: the node's available compute fraction
    /// switched state.
    ContentionFlap,
}

impl FaultKind {
    /// Stable string tag (the `kind` field of the JSONL form).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::NodeCrash => "node_crash",
            FaultKind::NodeLeave => "node_leave",
            FaultKind::NodeJoin => "node_join",
            FaultKind::CommFailure => "comm_failure",
            FaultKind::CommTimeout => "comm_timeout",
            FaultKind::SlowdownBurst => "slowdown_burst",
            FaultKind::ContentionFlap => "contention_flap",
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "node_crash" => Some(FaultKind::NodeCrash),
            "node_leave" => Some(FaultKind::NodeLeave),
            "node_join" => Some(FaultKind::NodeJoin),
            "comm_failure" => Some(FaultKind::CommFailure),
            "comm_timeout" => Some(FaultKind::CommTimeout),
            "slowdown_burst" => Some(FaultKind::SlowdownBurst),
            "contention_flap" => Some(FaultKind::ContentionFlap),
            _ => None,
        }
    }
}

/// A fault fired by the chaos layer (or detected by a resilient
/// collective) during one training step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultInjected {
    /// What kind of fault fired.
    pub kind: FaultKind,
    /// Affected node, when the fault is node-scoped (`None` for
    /// group-wide faults such as a communication timeout).
    pub node: Option<u32>,
    /// Step index (within the epoch) the fault fired on.
    pub step: u64,
    /// Communication attempts consumed (1 for non-comm faults).
    pub attempts: u32,
    /// Fault magnitude — slowdown factor for bursts, contended compute
    /// fraction for flaps, seconds of stretched batch time for comm
    /// faults, 0 where not meaningful.
    pub magnitude: f64,
}

/// The recovery response a [`RecoveryAction`] event reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryKind {
    /// One retry of a failed collective (per-attempt granularity).
    CommRetry,
    /// The engine re-ran a whole training step after a comm timeout.
    StepRetry,
    /// The group shrank: a dead/leaving rank was evicted and its analyzer
    /// state dropped.
    GroupShrink,
    /// The group grew: a joining node was admitted.
    GroupGrow,
    /// The split was re-solved under the new membership (Σ b_i = B).
    Replan,
}

impl RecoveryKind {
    /// Stable string tag (the `kind` field of the JSONL form).
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryKind::CommRetry => "comm_retry",
            RecoveryKind::StepRetry => "step_retry",
            RecoveryKind::GroupShrink => "group_shrink",
            RecoveryKind::GroupGrow => "group_grow",
            RecoveryKind::Replan => "replan",
        }
    }

    fn parse(s: &str) -> Option<RecoveryKind> {
        match s {
            "comm_retry" => Some(RecoveryKind::CommRetry),
            "step_retry" => Some(RecoveryKind::StepRetry),
            "group_shrink" => Some(RecoveryKind::GroupShrink),
            "group_grow" => Some(RecoveryKind::GroupGrow),
            "replan" => Some(RecoveryKind::Replan),
            _ => None,
        }
    }
}

/// One recovery step taken in response to a fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryAction {
    /// What the recovering component did.
    pub kind: RecoveryKind,
    /// Node the action targets, when node-scoped.
    pub node: Option<u32>,
    /// Step index (within the epoch) the action happened on.
    pub step: u64,
    /// Retry attempt number (0 for non-retry actions).
    pub attempt: u32,
    /// Backoff slept before this attempt, ns (0 for non-retry actions).
    pub backoff_ns: u64,
}

/// Why a fleet job lost nodes (the `reason` of a [`JobPreempted`] event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreemptKind {
    /// The weighted fair-share allocator rebalanced nodes toward jobs
    /// with more statistical headroom.
    FairShare,
    /// A higher-priority job evicted this one from (part of) its nodes.
    PriorityEviction,
    /// The nodes died (crash/leave surfaced by the job's fault plan);
    /// they return to the pool as dead, not as free capacity.
    NodeFailure,
}

impl PreemptKind {
    /// Stable string tag (the `reason` field of the JSONL form).
    pub fn as_str(self) -> &'static str {
        match self {
            PreemptKind::FairShare => "fair_share",
            PreemptKind::PriorityEviction => "priority_eviction",
            PreemptKind::NodeFailure => "node_failure",
        }
    }

    fn parse(s: &str) -> Option<PreemptKind> {
        match s {
            "fair_share" => Some(PreemptKind::FairShare),
            "priority_eviction" => Some(PreemptKind::PriorityEviction),
            "node_failure" => Some(PreemptKind::NodeFailure),
            _ => None,
        }
    }
}

/// A queued fleet job was admitted onto its first (or a fresh) node set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobAdmitted {
    /// Job name.
    pub job: String,
    /// Nodes granted at admission.
    pub nodes: u32,
    /// Seconds the job spent queued before this admission.
    pub queued_s: f64,
}

/// A fleet job lost nodes at an epoch boundary (shrink or full eviction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobPreempted {
    /// Job name.
    pub job: String,
    /// Nodes taken away by this decision.
    pub nodes_lost: u32,
    /// Why the job was preempted.
    pub reason: PreemptKind,
}

/// One pool node was granted to a fleet job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeGranted {
    /// Pool node name.
    pub node: String,
    /// Receiving job name.
    pub job: String,
}

/// One fleet-allocator decision round (taken at an epoch boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetDecision {
    /// Monotone decision counter within the controller's lifetime.
    pub decision: u64,
    /// Jobs running after the decision.
    pub running: u32,
    /// Jobs still queued after the decision.
    pub queued: u32,
    /// Nodes that changed owner (granted, revoked, or both) this round.
    pub reassigned: u32,
    /// Live (non-dead) pool size the allocator distributed.
    pub pool: u32,
}

/// A detector's verdict that the run left its expected envelope (emitted
/// by `cannikin-insight` monitors, online or during offline replay).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyDetected {
    /// What kind of anomaly fired.
    pub kind: AnomalyKind,
    /// Affected node, when the anomaly is node-scoped (`None` for
    /// cluster-wide anomalies such as calibration or GNS drift).
    pub node: Option<u32>,
    /// Step index of the triggering observation.
    pub step: u64,
    /// What the detector's model expected (seconds, noise scale,
    /// ns/element — unit depends on `kind`).
    pub expected: f64,
    /// What was observed instead (same unit as `expected`).
    pub observed: f64,
    /// `observed / expected` — the "how bad" scalar.
    pub severity: f64,
}

/// One fleet job's allocation sample, emitted once per controller
/// decision round for every admitted-or-queued job. The `decision`
/// counter (not wall time) is the x-axis of allocation timelines, so
/// same-seed runs produce byte-identical series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetJobSample {
    /// Decision round the sample belongs to ([`FleetDecision::decision`]).
    pub decision: u64,
    /// Job name.
    pub job: String,
    /// Nodes held by the job after the round.
    pub granted: u32,
    /// Nodes the job wanted this round (fair-share demand).
    pub demanded: u32,
    /// Cumulative node-seconds of service divided by the job's
    /// fair-share weight — equal values mean a Jain-fair schedule.
    pub weighted_service: f64,
}

/// A service-level objective was breached (emitted by the
/// `cannikin-insight` SLO engine, online or during offline replay).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloViolation {
    /// Stable rule id (e.g. `goodput_floor`, `queue_p95_ceiling`).
    pub rule: String,
    /// Job the rule is scoped to (`None` for fleet-wide rules).
    pub job: Option<String>,
    /// The configured threshold.
    pub threshold: f64,
    /// The observed value that breached it.
    pub observed: f64,
    /// Ordinal of the triggering observation within the rule's input
    /// stream (deterministic, unlike the record timestamp).
    pub at: u64,
}

/// A generic named counter sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Counter {
    /// Counter name (e.g. `epoch_time_s`).
    pub name: String,
    /// Sample value.
    pub value: f64,
}

/// A span boundary (Chrome-trace `B`/`E` phases). Spans nest per thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Span name (e.g. `epoch`, `plan`, `simulate`).
    pub name: String,
}

/// The closed set of telemetry events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Per-node, per-step timing.
    StepTiming(StepTiming),
    /// A local-batch split decision.
    SplitDecision(SplitDecision),
    /// The policy that authored the adjacent split decision.
    PolicyDecision(PolicyDecision),
    /// A gradient-noise-scale estimate.
    GnsEstimated(GnsEstimated),
    /// A goodput-driven batch-size selection.
    GoodputEval(GoodputEval),
    /// One all-reduce bucket timing.
    AllReduceBucket(AllReduceBucket),
    /// One solver invocation.
    SolverInvocation(SolverInvocation),
    /// A detector flagged a straggler, calibration drift, GNS jump or
    /// bucket imbalance.
    AnomalyDetected(AnomalyDetected),
    /// The chaos layer (or a resilient collective) reported a fault.
    FaultInjected(FaultInjected),
    /// A component recovered from a fault (retry, group change, replan).
    RecoveryAction(RecoveryAction),
    /// The fleet control plane admitted a queued job.
    JobAdmitted(JobAdmitted),
    /// The fleet control plane preempted (part of) a job's nodes.
    JobPreempted(JobPreempted),
    /// The fleet control plane granted one node to a job.
    NodeGranted(NodeGranted),
    /// One fleet-allocator decision round.
    FleetDecision(FleetDecision),
    /// One job's per-decision allocation sample.
    FleetJobSample(FleetJobSample),
    /// A service-level objective was breached.
    SloViolation(SloViolation),
    /// A named counter sample.
    Counter(Counter),
    /// A span opening.
    SpanBegin(Span),
    /// A span closing (matches the most recent unclosed begin on the same
    /// thread).
    SpanEnd(Span),
}

impl Event {
    /// The event's stable kind tag (the `type` field of the JSONL format).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::StepTiming(_) => "step_timing",
            Event::SplitDecision(_) => "split_decision",
            Event::PolicyDecision(_) => "policy_decision",
            Event::GnsEstimated(_) => "gns_estimate",
            Event::GoodputEval(_) => "goodput_eval",
            Event::AllReduceBucket(_) => "all_reduce_bucket",
            Event::SolverInvocation(_) => "solver_invocation",
            Event::AnomalyDetected(_) => "anomaly",
            Event::FaultInjected(_) => "fault_injected",
            Event::RecoveryAction(_) => "recovery_action",
            Event::JobAdmitted(_) => "job_admitted",
            Event::JobPreempted(_) => "job_preempted",
            Event::NodeGranted(_) => "node_granted",
            Event::FleetDecision(_) => "fleet_decision",
            Event::FleetJobSample(_) => "fleet_job_sample",
            Event::SloViolation(_) => "slo_violation",
            Event::Counter(_) => "counter",
            Event::SpanBegin(_) => "span_begin",
            Event::SpanEnd(_) => "span_end",
        }
    }
}

/// One recorded event: what happened, when, and on which `(node, rank)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Nanoseconds since the recorder's epoch (session-relative ordering,
    /// not wall-clock time).
    pub ts_ns: u64,
    /// Logical node id (Chrome-trace `pid`).
    pub node: u32,
    /// Logical rank / thread id (Chrome-trace `tid`).
    pub rank: u32,
    /// The event payload.
    pub event: Event,
}

impl Record {
    /// The JSONL object form: flat, with a `type` discriminator.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("ts_ns".to_string(), Json::Num(self.ts_ns as f64)),
            ("node".to_string(), Json::Num(f64::from(self.node))),
            ("rank".to_string(), Json::Num(f64::from(self.rank))),
            ("type".to_string(), Json::Str(self.event.kind().to_string())),
        ];
        members.extend(event_fields(&self.event));
        Json::Obj(members)
    }

    /// One line of the JSONL export.
    pub fn to_jsonl_line(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Invert [`Record::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &Json) -> Result<Record, String> {
        let ts_ns = req_u64(value, "ts_ns")?;
        let node = req_u64(value, "node")? as u32;
        let rank = req_u64(value, "rank")? as u32;
        let kind = value.get("type").and_then(Json::as_str).ok_or("missing `type`")?;
        let event = event_from_fields(kind, value)?;
        Ok(Record { ts_ns, node, rank, event })
    }
}

/// The flattened payload fields of an event (everything but the envelope).
pub(crate) fn event_fields(event: &Event) -> Vec<(String, Json)> {
    match event {
        Event::StepTiming(e) => vec![
            ("step".into(), Json::Num(e.step as f64)),
            ("rank_field".into(), Json::Num(f64::from(e.rank))),
            ("b_i".into(), Json::Num(e.b_i as f64)),
            ("t_compute".into(), Json::num(e.t_compute)),
            ("t_comm".into(), Json::num(e.t_comm)),
            ("overlap".into(), Json::num(e.overlap)),
        ],
        Event::SplitDecision(e) => vec![
            ("total".into(), Json::Num(e.total as f64)),
            ("local".into(), Json::Arr(e.local.iter().map(|&b| Json::Num(b as f64)).collect())),
            ("predicted_t".into(), e.predicted_t.map_or(Json::Null, Json::num)),
            ("source".into(), Json::Str(e.source.as_str().into())),
        ],
        Event::PolicyDecision(e) => vec![
            ("policy".into(), Json::Str(e.policy.clone())),
            ("epoch".into(), Json::Num(e.epoch as f64)),
            ("total".into(), Json::Num(e.total as f64)),
        ],
        Event::GnsEstimated(e) => vec![
            ("b_noise".into(), Json::num(e.b_noise)),
            ("grad_sq".into(), Json::num(e.grad_sq)),
            ("variance".into(), Json::num(e.variance)),
            ("weights".into(), Json::Arr(e.weights.iter().map(|&w| Json::num(w)).collect())),
        ],
        Event::GoodputEval(e) => vec![
            ("phi".into(), Json::num(e.phi)),
            ("total".into(), Json::Num(e.total as f64)),
            ("goodput".into(), Json::num(e.goodput)),
            ("accumulation".into(), Json::Num(e.accumulation as f64)),
            ("candidates".into(), Json::Num(f64::from(e.candidates))),
            ("cache_rebuilt".into(), Json::Bool(e.cache_rebuilt)),
        ],
        Event::AllReduceBucket(e) => vec![
            ("bucket".into(), Json::Num(f64::from(e.bucket))),
            ("elems".into(), Json::Num(e.elems as f64)),
            ("wall_ns".into(), Json::Num(e.wall_ns as f64)),
            ("bytes".into(), Json::Num(e.bytes as f64)),
        ],
        Event::SolverInvocation(e) => vec![
            ("wall_ns".into(), Json::Num(e.wall_ns as f64)),
            ("total".into(), Json::Num(e.total as f64)),
            ("candidates".into(), Json::Num(f64::from(e.candidates))),
            ("solves".into(), Json::Num(f64::from(e.solves))),
            ("boundary".into(), Json::Num(f64::from(e.boundary))),
        ],
        Event::AnomalyDetected(e) => vec![
            ("kind".into(), Json::Str(e.kind.as_str().into())),
            ("anomaly_node".into(), e.node.map_or(Json::Null, |n| Json::Num(f64::from(n)))),
            ("step".into(), Json::Num(e.step as f64)),
            ("expected".into(), Json::num(e.expected)),
            ("observed".into(), Json::num(e.observed)),
            ("severity".into(), Json::num(e.severity)),
        ],
        Event::FaultInjected(e) => vec![
            ("kind".into(), Json::Str(e.kind.as_str().into())),
            ("fault_node".into(), e.node.map_or(Json::Null, |n| Json::Num(f64::from(n)))),
            ("step".into(), Json::Num(e.step as f64)),
            ("attempts".into(), Json::Num(f64::from(e.attempts))),
            ("magnitude".into(), Json::num(e.magnitude)),
        ],
        Event::RecoveryAction(e) => vec![
            ("kind".into(), Json::Str(e.kind.as_str().into())),
            ("recovery_node".into(), e.node.map_or(Json::Null, |n| Json::Num(f64::from(n)))),
            ("step".into(), Json::Num(e.step as f64)),
            ("attempt".into(), Json::Num(f64::from(e.attempt))),
            ("backoff_ns".into(), Json::Num(e.backoff_ns as f64)),
        ],
        Event::JobAdmitted(e) => vec![
            ("job".into(), Json::Str(e.job.clone())),
            ("nodes".into(), Json::Num(f64::from(e.nodes))),
            ("queued_s".into(), Json::num(e.queued_s)),
        ],
        Event::JobPreempted(e) => vec![
            ("job".into(), Json::Str(e.job.clone())),
            ("nodes_lost".into(), Json::Num(f64::from(e.nodes_lost))),
            ("reason".into(), Json::Str(e.reason.as_str().into())),
        ],
        Event::NodeGranted(e) => vec![
            ("node_name".into(), Json::Str(e.node.clone())),
            ("job".into(), Json::Str(e.job.clone())),
        ],
        Event::FleetDecision(e) => vec![
            ("decision".into(), Json::Num(e.decision as f64)),
            ("running".into(), Json::Num(f64::from(e.running))),
            ("queued".into(), Json::Num(f64::from(e.queued))),
            ("reassigned".into(), Json::Num(f64::from(e.reassigned))),
            ("pool".into(), Json::Num(f64::from(e.pool))),
        ],
        Event::FleetJobSample(e) => vec![
            ("decision".into(), Json::Num(e.decision as f64)),
            ("job".into(), Json::Str(e.job.clone())),
            ("granted".into(), Json::Num(f64::from(e.granted))),
            ("demanded".into(), Json::Num(f64::from(e.demanded))),
            ("weighted_service".into(), Json::num(e.weighted_service)),
        ],
        Event::SloViolation(e) => vec![
            ("rule".into(), Json::Str(e.rule.clone())),
            ("slo_job".into(), e.job.as_ref().map_or(Json::Null, |j| Json::Str(j.clone()))),
            ("threshold".into(), Json::num(e.threshold)),
            ("observed".into(), Json::num(e.observed)),
            ("at".into(), Json::Num(e.at as f64)),
        ],
        Event::Counter(e) => vec![
            ("name".into(), Json::Str(e.name.clone())),
            ("value".into(), Json::num(e.value)),
        ],
        Event::SpanBegin(e) | Event::SpanEnd(e) => vec![("name".into(), Json::Str(e.name.clone()))],
    }
}

fn event_from_fields(kind: &str, v: &Json) -> Result<Event, String> {
    match kind {
        "step_timing" => Ok(Event::StepTiming(StepTiming {
            step: req_u64(v, "step")?,
            rank: req_u64(v, "rank_field")? as u32,
            b_i: req_u64(v, "b_i")?,
            t_compute: req_f64(v, "t_compute")?,
            t_comm: req_f64(v, "t_comm")?,
            overlap: req_f64(v, "overlap")?,
        })),
        "split_decision" => {
            let local = v
                .get("local")
                .and_then(Json::as_array)
                .ok_or("missing `local`")?
                .iter()
                .map(|item| item.as_u64().ok_or("non-integer local batch"))
                .collect::<Result<Vec<u64>, _>>()?;
            let predicted_t = match v.get("predicted_t") {
                None | Some(Json::Null) => None,
                Some(j) => Some(j.as_f64().ok_or("mistyped `predicted_t`")?),
            };
            let source = v
                .get("source")
                .and_then(Json::as_str)
                .and_then(SplitSource::parse)
                .ok_or("missing or unknown `source`")?;
            Ok(Event::SplitDecision(SplitDecision { total: req_u64(v, "total")?, local, predicted_t, source }))
        }
        "policy_decision" => Ok(Event::PolicyDecision(PolicyDecision {
            policy: req_str(v, "policy")?,
            epoch: req_u64(v, "epoch")?,
            total: req_u64(v, "total")?,
        })),
        "gns_estimate" => {
            let weights = v
                .get("weights")
                .and_then(Json::as_array)
                .ok_or("missing `weights`")?
                .iter()
                .map(|item| item.as_f64().ok_or("non-number weight"))
                .collect::<Result<Vec<f64>, _>>()?;
            Ok(Event::GnsEstimated(GnsEstimated {
                b_noise: req_f64(v, "b_noise")?,
                grad_sq: req_f64(v, "grad_sq")?,
                variance: req_f64(v, "variance")?,
                weights,
            }))
        }
        "goodput_eval" => Ok(Event::GoodputEval(GoodputEval {
            phi: req_f64(v, "phi")?,
            total: req_u64(v, "total")?,
            goodput: req_f64(v, "goodput")?,
            accumulation: req_u64(v, "accumulation")?,
            candidates: req_u64(v, "candidates")? as u32,
            cache_rebuilt: v.get("cache_rebuilt").and_then(Json::as_bool).ok_or("missing `cache_rebuilt`")?,
        })),
        "all_reduce_bucket" => Ok(Event::AllReduceBucket(AllReduceBucket {
            bucket: req_u64(v, "bucket")? as u32,
            elems: req_u64(v, "elems")?,
            wall_ns: req_u64(v, "wall_ns")?,
            // Absent in traces recorded before byte accounting existed.
            bytes: v.get("bytes").and_then(Json::as_u64).unwrap_or(0),
        })),
        "solver_invocation" => Ok(Event::SolverInvocation(SolverInvocation {
            wall_ns: req_u64(v, "wall_ns")?,
            total: req_u64(v, "total")?,
            candidates: req_u64(v, "candidates")? as u32,
            solves: req_u64(v, "solves")? as u32,
            boundary: req_u64(v, "boundary")? as u32,
        })),
        "anomaly" => {
            let kind = v
                .get("kind")
                .and_then(Json::as_str)
                .and_then(AnomalyKind::parse)
                .ok_or("missing or unknown `kind`")?;
            let node = match v.get("anomaly_node") {
                None | Some(Json::Null) => None,
                Some(j) => Some(j.as_u64().ok_or("mistyped `anomaly_node`")? as u32),
            };
            Ok(Event::AnomalyDetected(AnomalyDetected {
                kind,
                node,
                step: req_u64(v, "step")?,
                expected: req_f64(v, "expected")?,
                observed: req_f64(v, "observed")?,
                severity: req_f64(v, "severity")?,
            }))
        }
        "fault_injected" => {
            let kind = v
                .get("kind")
                .and_then(Json::as_str)
                .and_then(FaultKind::parse)
                .ok_or("missing or unknown `kind`")?;
            let node = match v.get("fault_node") {
                None | Some(Json::Null) => None,
                Some(j) => Some(j.as_u64().ok_or("mistyped `fault_node`")? as u32),
            };
            Ok(Event::FaultInjected(FaultInjected {
                kind,
                node,
                step: req_u64(v, "step")?,
                attempts: req_u64(v, "attempts")? as u32,
                magnitude: req_f64(v, "magnitude")?,
            }))
        }
        "recovery_action" => {
            let kind = v
                .get("kind")
                .and_then(Json::as_str)
                .and_then(RecoveryKind::parse)
                .ok_or("missing or unknown `kind`")?;
            let node = match v.get("recovery_node") {
                None | Some(Json::Null) => None,
                Some(j) => Some(j.as_u64().ok_or("mistyped `recovery_node`")? as u32),
            };
            Ok(Event::RecoveryAction(RecoveryAction {
                kind,
                node,
                step: req_u64(v, "step")?,
                attempt: req_u64(v, "attempt")? as u32,
                backoff_ns: req_u64(v, "backoff_ns")?,
            }))
        }
        "job_admitted" => Ok(Event::JobAdmitted(JobAdmitted {
            job: req_str(v, "job")?,
            nodes: req_u64(v, "nodes")? as u32,
            queued_s: req_f64(v, "queued_s")?,
        })),
        "job_preempted" => {
            let reason = v
                .get("reason")
                .and_then(Json::as_str)
                .and_then(PreemptKind::parse)
                .ok_or("missing or unknown `reason`")?;
            Ok(Event::JobPreempted(JobPreempted {
                job: req_str(v, "job")?,
                nodes_lost: req_u64(v, "nodes_lost")? as u32,
                reason,
            }))
        }
        "node_granted" => Ok(Event::NodeGranted(NodeGranted {
            node: req_str(v, "node_name")?,
            job: req_str(v, "job")?,
        })),
        "fleet_decision" => Ok(Event::FleetDecision(FleetDecision {
            decision: req_u64(v, "decision")?,
            running: req_u64(v, "running")? as u32,
            queued: req_u64(v, "queued")? as u32,
            reassigned: req_u64(v, "reassigned")? as u32,
            pool: req_u64(v, "pool")? as u32,
        })),
        "fleet_job_sample" => Ok(Event::FleetJobSample(FleetJobSample {
            decision: req_u64(v, "decision")?,
            job: req_str(v, "job")?,
            granted: req_u64(v, "granted")? as u32,
            demanded: req_u64(v, "demanded")? as u32,
            weighted_service: req_f64(v, "weighted_service")?,
        })),
        "slo_violation" => {
            let job = match v.get("slo_job") {
                None | Some(Json::Null) => None,
                Some(j) => Some(j.as_str().ok_or("mistyped `slo_job`")?.to_string()),
            };
            Ok(Event::SloViolation(SloViolation {
                rule: req_str(v, "rule")?,
                job,
                threshold: req_f64(v, "threshold")?,
                observed: req_f64(v, "observed")?,
                at: req_u64(v, "at")?,
            }))
        }
        "counter" => Ok(Event::Counter(Counter { name: req_str(v, "name")?, value: req_f64(v, "value")? })),
        "span_begin" => Ok(Event::SpanBegin(Span { name: req_str(v, "name")? })),
        "span_end" => Ok(Event::SpanEnd(Span { name: req_str(v, "name")? })),
        other => Err(format!("unknown event type `{other}`")),
    }
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing or mistyped `{key}`"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Json::Null) => Ok(f64::NAN), // non-finite values export as null
        Some(j) => j.as_f64().ok_or_else(|| format!("mistyped `{key}`")),
        None => Err(format!("missing `{key}`")),
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key).and_then(Json::as_str).map(str::to_string).ok_or_else(|| format!("missing or mistyped `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One instance of every event type, with awkward values included.
    pub(crate) fn one_of_each() -> Vec<Event> {
        vec![
            Event::StepTiming(StepTiming { step: 7, rank: 2, b_i: 96, t_compute: 0.125, t_comm: 0.03125, overlap: 0.5 }),
            Event::SplitDecision(SplitDecision {
                total: 128,
                local: vec![64, 40, 24],
                predicted_t: Some(0.75),
                source: SplitSource::Solver,
            }),
            Event::SplitDecision(SplitDecision { total: 3, local: vec![1, 1, 1], predicted_t: None, source: SplitSource::EvenInit }),
            Event::PolicyDecision(PolicyDecision { policy: "optperf".into(), epoch: 4, total: 128 }),
            Event::GnsEstimated(GnsEstimated { b_noise: 310.5, grad_sq: 2.0, variance: 621.0, weights: vec![0.5, 0.25, 0.25] }),
            Event::GoodputEval(GoodputEval { phi: 300.0, total: 512, goodput: 123.5, accumulation: 2, candidates: 13, cache_rebuilt: true }),
            Event::AllReduceBucket(AllReduceBucket { bucket: 3, elems: 4096, wall_ns: 1_250_000, bytes: 16_384 }),
            Event::SolverInvocation(SolverInvocation { wall_ns: 42_000, total: 256, candidates: 1, solves: 5, boundary: 2 }),
            Event::AnomalyDetected(AnomalyDetected {
                kind: AnomalyKind::Straggler,
                node: Some(2),
                step: 17,
                expected: 0.125,
                observed: 0.5,
                severity: 4.0,
            }),
            Event::AnomalyDetected(AnomalyDetected {
                kind: AnomalyKind::CalibrationDrift,
                node: None,
                step: 0,
                expected: 0.75,
                observed: 1.5,
                severity: 2.0,
            }),
            Event::FaultInjected(FaultInjected {
                kind: FaultKind::NodeCrash,
                node: Some(1),
                step: 12,
                attempts: 1,
                magnitude: 0.0,
            }),
            Event::FaultInjected(FaultInjected {
                kind: FaultKind::CommTimeout,
                node: None,
                step: 3,
                attempts: 4,
                magnitude: 2.5,
            }),
            Event::RecoveryAction(RecoveryAction {
                kind: RecoveryKind::CommRetry,
                node: None,
                step: 3,
                attempt: 2,
                backoff_ns: 4_000_000,
            }),
            Event::RecoveryAction(RecoveryAction {
                kind: RecoveryKind::GroupShrink,
                node: Some(1),
                step: 12,
                attempt: 0,
                backoff_ns: 0,
            }),
            Event::JobAdmitted(JobAdmitted { job: "cifar-short".into(), nodes: 4, queued_s: 37.5 }),
            Event::JobPreempted(JobPreempted {
                job: "imagenet-long".into(),
                nodes_lost: 2,
                reason: PreemptKind::FairShare,
            }),
            Event::JobPreempted(JobPreempted {
                job: "bert-squad".into(),
                nodes_lost: 1,
                reason: PreemptKind::NodeFailure,
            }),
            Event::NodeGranted(NodeGranted { node: "a100-0".into(), job: "cifar-short".into() }),
            Event::FleetDecision(FleetDecision { decision: 9, running: 3, queued: 1, reassigned: 2, pool: 8 }),
            Event::FleetJobSample(FleetJobSample {
                decision: 9,
                job: "cifar-short".into(),
                granted: 3,
                demanded: 5,
                weighted_service: 87.5,
            }),
            Event::SloViolation(SloViolation {
                rule: "goodput_floor".into(),
                job: None,
                threshold: 10.0,
                observed: 6.25,
                at: 41,
            }),
            Event::SloViolation(SloViolation {
                rule: "job_queue_ceiling".into(),
                job: Some("bert-squad".into()),
                threshold: 120.0,
                observed: 250.5,
                at: 3,
            }),
            Event::Counter(Counter { name: "epoch_time_s".into(), value: 12.5 }),
            Event::SpanBegin(Span { name: "epoch".into() }),
            Event::SpanEnd(Span { name: "epoch".into() }),
        ]
    }

    #[test]
    fn every_event_type_round_trips_through_json() {
        for (i, event) in one_of_each().into_iter().enumerate() {
            let record = Record { ts_ns: 1_000 + i as u64, node: 1, rank: i as u32, event };
            let line = record.to_jsonl_line();
            let parsed = Json::parse(&line).expect("valid JSON line");
            let back = Record::from_json(&parsed).expect("round trip");
            assert_eq!(back, record, "line: {line}");
        }
    }

    #[test]
    fn nan_fields_export_as_null_and_parse_as_nan() {
        let record = Record {
            ts_ns: 5,
            node: 0,
            rank: 0,
            event: Event::StepTiming(StepTiming { step: 0, rank: 0, b_i: 8, t_compute: 0.1, t_comm: f64::NAN, overlap: 0.0 }),
        };
        let line = record.to_jsonl_line();
        assert!(line.contains("\"t_comm\":null"), "{line}");
        let back = Record::from_json(&Json::parse(&line).unwrap()).unwrap();
        match back.event {
            Event::StepTiming(t) => assert!(t.t_comm.is_nan()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds: std::collections::HashSet<&str> = one_of_each().iter().map(Event::kind).collect();
        assert_eq!(kinds.len(), 19);
    }

    #[test]
    fn unknown_type_is_rejected() {
        let parsed = Json::parse(r#"{"ts_ns":1,"node":0,"rank":0,"type":"mystery"}"#).unwrap();
        assert!(Record::from_json(&parsed).is_err());
    }
}
