//! Chaos harness (ISSUE 4 acceptance): seeded fault schedules against both
//! engines, with per-epoch invariants, same-seed determinism down to the
//! telemetry JSONL, and online/offline insight agreement over faulty runs.
//!
//! Four named schedules — `crash`, `transient`, `flapping`, `elastic`
//! (join + leave) — each run through the simulated [`CannikinTrainer`];
//! the thread-parallel [`ParallelTrainer`] gets the comm-loss and
//! elasticity variants that make sense for real gradients. Set
//! `CANNIKIN_CHAOS_SCHEDULE=crash[,transient,…]` to restrict a run to a
//! subset (the CI matrix runs one schedule per job).

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use cannikin::collectives::{Codec, CommFaultPlan, RetryPolicy, TransportKind};
use cannikin::core::engine::parallel::{ParallelConfig, ParallelEpochReport, ParallelTrainer};
use cannikin::core::engine::{CannikinTrainer, EpochRecord, LinearNoiseGrowth, NoiseModel, TrainerConfig};
use cannikin::dnn::data::gaussian_blobs;
use cannikin::dnn::lr::LrScaler;
use cannikin::dnn::models::mlp_classifier;
use cannikin::insight::{replay, replay_slos, InsightConfig, Monitor, SloMonitor};
use cannikin::sim::catalog::Gpu;
use cannikin::sim::cluster::{ClusterSpec, NodeSpec};
use cannikin::sim::job::JobSpec;
use cannikin::sim::{FaultPlan, Simulator};
use cannikin::telemetry::{self as telemetry, default_fleet_slos, Json, Record};

/// The telemetry recorder is process-global; every test that opens a
/// session takes this lock so sessions never interleave.
static TELEMETRY: Mutex<()> = Mutex::new(());

fn telemetry_lock() -> MutexGuard<'static, ()> {
    TELEMETRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Honor the `CANNIKIN_CHAOS_SCHEDULE` CI-matrix filter.
fn schedule_enabled(name: &str) -> bool {
    match std::env::var("CANNIKIN_CHAOS_SCHEDULE") {
        Ok(filter) => filter.split(',').any(|s| s.trim().eq_ignore_ascii_case(name)),
        Err(_) => true,
    }
}

fn cluster3() -> ClusterSpec {
    ClusterSpec::new(
        "chaos",
        vec![
            NodeSpec::new("a100", Gpu::A100),
            NodeSpec::new("v100", Gpu::V100),
            NodeSpec::new("rtx", Gpu::Rtx6000),
        ],
    )
}

fn noise() -> Box<dyn NoiseModel> {
    Box::new(LinearNoiseGrowth { initial: 400.0, rate: 0.1 })
}

/// The four seeded schedules of the acceptance matrix. Steps are global
/// batch indices; with B = 64 over a 6 400-sample dataset each epoch is
/// 100 steps, so every schedule fires mid-run, not at an epoch boundary.
fn plan(name: &str, seed: u64) -> FaultPlan {
    match name {
        // Crash the A100 — the fastest stave. (Losing a *slow* node at a
        // small total batch can come out net-faster: a 2-node ring moves
        // (n-1)/n = 1/2 of the gradient instead of 2/3.)
        "crash" => FaultPlan::new(seed).crash_at(140, 0),
        "transient" => FaultPlan::new(seed).transient_comm(0.15, 2),
        "flapping" => FaultPlan::new(seed).flapping(2, 35, 0.5, 50).burst_at(220, 0, 10, 2.5),
        "elastic" => FaultPlan::new(seed)
            .join_at(130, NodeSpec::new("late-a100", Gpu::A100))
            .leave_at(260, 0),
        other => panic!("unknown chaos schedule `{other}`"),
    }
}

struct SimRun {
    records: Vec<EpochRecord>,
    /// Normalized telemetry JSONL (wall-clock fields zeroed).
    jsonl: Vec<String>,
}

/// One monitored 4-epoch run of the simulated engine under `plan`, with
/// the offline insight replay checked against the online monitor.
fn run_sim_schedule(name: &str, seed: u64) -> SimRun {
    let _serial = telemetry_lock();
    let monitor = Monitor::install(InsightConfig::default());
    let slos = SloMonitor::install(default_fleet_slos());
    let session = telemetry::Session::start();

    let sim = Simulator::new(cluster3(), JobSpec::resnet18_cifar10(), seed).with_fault_plan(plan(name, seed));
    let mut config = TrainerConfig::new(6_400, 64, 512);
    config.adaptive_batch = false;
    let mut trainer = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(noise())
        .config(config)
        .build()
        .expect("valid config");
    let records = trainer.run_epochs(4).expect("chaos epochs");

    telemetry::flush_thread();
    let stream = session.drain();
    let rerun = replay::analyze(&stream, InsightConfig::default());
    assert!(
        rerun.anomalies_match(),
        "schedule {name}: offline replay must reproduce the online verdicts"
    );
    assert_eq!(rerun.online, monitor.report().anomalies, "schedule {name}: trace carries the monitor's anomalies");
    let slo_report = replay_slos(&stream, &default_fleet_slos());
    assert!(
        slo_report.verdicts_match(),
        "schedule {name}: offline SLO rerun must reproduce the online verdicts"
    );
    assert_eq!(slo_report.online, slos.violations(), "schedule {name}: trace carries the SLO monitor's verdicts");
    SimRun { records, jsonl: normalize(&stream) }
}

/// A fault-free reference run with the same seed and configuration.
fn run_sim_clean(cluster: ClusterSpec, seed: u64) -> Vec<EpochRecord> {
    let sim = Simulator::new(cluster, JobSpec::resnet18_cifar10(), seed);
    let mut config = TrainerConfig::new(6_400, 64, 512);
    config.adaptive_batch = false;
    CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(noise())
        .config(config)
        .build()
        .expect("valid config")
        .run_epochs(4)
        .expect("clean epochs")
}

/// JSONL lines with the only non-deterministic fields — real wall-clock
/// timestamps and durations — zeroed out.
fn normalize(records: &[Record]) -> Vec<String> {
    records
        .iter()
        .map(|r| {
            let mut json = r.to_json();
            if let Json::Obj(members) = &mut json {
                let wall_counter = members
                    .iter()
                    .any(|(k, v)| k == "name" && matches!(v, Json::Str(s) if s == "overhead_s"));
                for (key, value) in members.iter_mut() {
                    if key == "ts_ns" || key == "wall_ns" || (wall_counter && key == "value") {
                        *value = Json::Num(0.0);
                    }
                }
            }
            json.to_string_compact()
        })
        .collect()
}

/// Epoch records with the real-wall-clock fields (solver overhead and the
/// cumulative time that includes it) cleared for exact comparison.
fn scrub(records: &[EpochRecord]) -> Vec<EpochRecord> {
    records
        .iter()
        .cloned()
        .map(|mut r| {
            r.overhead_seconds = 0.0;
            r.cumulative_time = 0.0;
            r
        })
        .collect()
}

/// The per-epoch invariants every schedule must uphold: the split always
/// covers the full batch over the live membership, wall time and
/// statistical progress are monotone, and — because failed steps are
/// retried, never skipped — every epoch completes all 100 steps and
/// contributes exactly one base-batch epoch of samples (none lost, none
/// double-counted).
fn check_invariants(name: &str, records: &[EpochRecord]) {
    assert_eq!(records.len(), 4);
    let mut cumulative = 0.0;
    let mut effective = 0.0;
    for r in records {
        assert_eq!(
            r.local_batches.iter().sum::<u64>(),
            r.total_batch,
            "{name} epoch {}: split must sum to the total",
            r.epoch
        );
        assert!(r.local_batches.iter().all(|&b| b >= 1), "{name} epoch {}: no empty share", r.epoch);
        assert_eq!(r.steps, 100, "{name} epoch {}: every step must complete", r.epoch);
        assert!(r.epoch_time > 0.0 && r.epoch_time.is_finite());
        assert!(r.cumulative_time >= cumulative, "{name}: wall time is monotone");
        let gained = r.effective_epochs - effective;
        assert!(
            (gained - r.efficiency).abs() < 1e-9,
            "{name} epoch {}: gained {gained} effective epochs, expected {} — a sample was lost or double-counted",
            r.epoch,
            r.efficiency
        );
        cumulative = r.cumulative_time;
        effective = r.effective_epochs;
    }
}

fn check_determinism(name: &str) {
    let a = run_sim_schedule(name, 1234);
    let b = run_sim_schedule(name, 1234);
    assert_eq!(scrub(&a.records), scrub(&b.records), "{name}: same seed must replay the same epochs");
    assert_eq!(a.jsonl, b.jsonl, "{name}: same seed must replay the same telemetry stream");
    check_invariants(name, &a.records);
}

// ---------------------------------------------------------------- sim engine

#[test]
fn chaos_crash_schedule() {
    if !schedule_enabled("crash") {
        return;
    }
    let run = run_sim_schedule("crash", 42);
    check_invariants("crash", &run.records);
    // The crash fires in epoch 1: the dead rank is evicted and the split
    // re-solved over the survivors at the same total.
    assert_eq!(run.records[0].local_batches.len(), 3);
    assert!(run.records[1].faults >= 1, "the crash must surface as a fault");
    assert!(run.records[1].recoveries >= 2, "eviction + replan");
    assert_eq!(run.records[3].local_batches.len(), 2, "survivor split");
    assert!(run.jsonl.iter().any(|l| l.contains("\"fault_injected\"")), "faults reach telemetry");
    assert!(run.jsonl.iter().any(|l| l.contains("\"recovery_action\"")), "recoveries reach telemetry");

    // Bounded damage. At B = 64 shrinking the ring from 3 to 2 nodes can
    // save more communication than the dead node's compute was worth, so
    // the faulty run may legitimately beat the 3-node reference. The
    // honest bound is against the survivor membership run clean from step
    // 0: the faulty run additionally pays for its slower 3-node prefix,
    // the crash-detection timeout and the retried step — a blip, not a
    // checkpoint restart.
    let survivors = ClusterSpec::new("chaos-survivors", vec![
        NodeSpec::new("v100", Gpu::V100),
        NodeSpec::new("rtx", Gpu::Rtx6000),
    ]);
    let best_case: f64 = run_sim_clean(survivors, 42).iter().map(|r| r.epoch_time).sum();
    let reference: f64 = run_sim_clean(cluster3(), 42).iter().map(|r| r.epoch_time).sum();
    let faulty: f64 = run.records.iter().map(|r| r.epoch_time).sum();
    assert!(faulty > best_case, "detection + the 3-node prefix must cost time: {faulty} vs {best_case}");
    assert!(faulty < 3.0 * reference.max(best_case), "recovery must be bounded: {faulty} vs {reference}");
    check_determinism("crash");
}

#[test]
fn chaos_transient_comm_schedule() {
    if !schedule_enabled("transient") {
        return;
    }
    let run = run_sim_schedule("transient", 42);
    check_invariants("transient", &run.records);
    // Membership never changes; some steps pay retries (and a few exhaust
    // the 2-attempt budget and re-run), but no epoch loses a step.
    for r in &run.records {
        assert_eq!(r.local_batches.len(), 3);
    }
    let faults: u32 = run.records.iter().map(|r| r.faults).sum();
    assert!(faults >= 1, "a 15% per-step failure rate must fire in 400 steps");
    let clean: f64 = run_sim_clean(cluster3(), 42).iter().map(|r| r.epoch_time).sum();
    let faulty: f64 = run.records.iter().map(|r| r.epoch_time).sum();
    assert!(faulty > clean, "timeouts and backoff must cost time");
    assert!(faulty < 2.0 * clean, "retries must stay cheap: {faulty} vs {clean}");
    check_determinism("transient");
}

#[test]
fn chaos_flapping_contention_schedule() {
    if !schedule_enabled("flapping") {
        return;
    }
    let run = run_sim_schedule("flapping", 42);
    check_invariants("flapping", &run.records);
    for r in &run.records {
        assert_eq!(r.local_batches.len(), 3, "flapping never changes membership");
    }
    let faults: u32 = run.records.iter().map(|r| r.faults).sum();
    assert!(faults >= 2, "period-35 flapping must toggle repeatedly in 400 steps");
    let clean: f64 = run_sim_clean(cluster3(), 42).iter().map(|r| r.epoch_time).sum();
    let faulty: f64 = run.records.iter().map(|r| r.epoch_time).sum();
    assert!(faulty > clean, "contended phases must cost time");
    check_determinism("flapping");
}

#[test]
fn chaos_elastic_join_leave_schedule() {
    if !schedule_enabled("elastic") {
        return;
    }
    let run = run_sim_schedule("elastic", 42);
    check_invariants("elastic", &run.records);
    assert_eq!(run.records[0].local_batches.len(), 3);
    assert_eq!(run.records[1].local_batches.len(), 4, "the joiner is admitted in epoch 1");
    assert_eq!(run.records[3].local_batches.len(), 3, "the leaver is gone by the end");
    let recoveries: u32 = run.records.iter().map(|r| r.recoveries).sum();
    assert!(recoveries >= 2, "a join and a leave each trigger recovery actions");
    check_determinism("elastic");
}

#[test]
fn chaos_fleet_crash_schedule() {
    if !schedule_enabled("fleet") {
        return;
    }
    // Fleet-level chaos: a tenant's fault plan kills one of its granted
    // nodes mid-run. The control plane must reconcile the death into the
    // shared pool (the node never serves anyone again), keep the rest of
    // the stream draining, and stay bitwise deterministic.
    use cannikin::fleet::{AllocPolicy, FleetController, FleetJobSpec};
    let run = || {
        let pool = vec![
            NodeSpec::new("a100-0", Gpu::A100),
            NodeSpec::new("v100-0", Gpu::V100),
            NodeSpec::new("v100-1", Gpu::V100),
            NodeSpec::new("rtx-0", Gpu::Rtx6000),
        ];
        let faulty = FleetJobSpec::new(
            "faulty",
            JobSpec::resnet18_cifar10(),
            TrainerConfig::new(6_400, 64, 512),
            3.0,
        )
        .node_range(2, 3)
        .noise(300.0, 1.0)
        .seed(5)
        .fault_plan(FaultPlan::new(5).crash_at(40, 0));
        let bystander = FleetJobSpec::new(
            "bystander",
            JobSpec::neumf_movielens(),
            TrainerConfig::new(6_400, 64, 512),
            2.0,
        )
        .arrival(10.0)
        .noise(250.0, 1.2)
        .seed(6);
        let mut fleet = FleetController::new(pool, vec![faulty, bystander], AllocPolicy::Cannikin)
            .expect("valid fleet");
        let report = fleet.run_to_completion(50_000).expect("the stream drains past the crash");
        (fleet.schedule_log().to_vec(), fleet.pool().live(), report)
    };
    let (log_a, live_a, report_a) = run();
    assert!(live_a < 4, "the crashed node left the shared pool");
    for job in &report_a.jobs {
        assert!(job.effective_epochs > 0.0, "{} made progress despite the crash", job.name);
    }
    let (log_b, live_b, report_b) = run();
    assert_eq!(log_a, log_b, "fleet chaos must replay bitwise under the same seeds");
    assert_eq!(live_a, live_b);
    assert_eq!(report_a.makespan.to_bits(), report_b.makespan.to_bits());
}

// ----------------------------------------------------------- parallel engine

fn parallel_config(n: usize, seed: u64) -> ParallelConfig {
    ParallelConfig {
        slowdowns: vec![1.0; n],
        base_batch: 48,
        max_batch: 96,
        adaptive: false,
        base_lr: 0.05,
        lr_scaler: LrScaler::AdaScale,
        seed,
        comm_faults: None,
        retry: RetryPolicy::default(),
        transport: TransportKind::InProcess,
        codec: Codec::None,
        overlap: false,
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_micros(10),
        max_backoff: Duration::from_micros(100),
        jitter: 0.5,
        timeout: Duration::from_secs(5),
    }
}

fn run_parallel(config: ParallelConfig, epochs: usize) -> Vec<ParallelEpochReport> {
    let ds = gaussian_blobs(384, 6, 8, 17);
    let mut trainer = ParallelTrainer::builder()
        .dataset(ds)
        .model(|seed| mlp_classifier(8, 16, 6, seed))
        .config(config)
        .build()
        .expect("valid config");
    (0..epochs).map(|_| trainer.run_epoch().expect("epoch")).collect()
}

#[test]
fn chaos_parallel_comm_loss_is_lossless_and_deterministic() {
    if !schedule_enabled("transient") {
        return;
    }
    // Rank threads emit telemetry; hold the lock so none of it leaks into
    // a sim schedule's concurrently open session.
    let _serial = telemetry_lock();
    // Injected failures at fixed sequence numbers, including one burst
    // (seq 5, count 9) deep enough to exhaust the 3-attempt budget and
    // force the step-level retry loop. Single epoch: epoch 0 always runs
    // the even split, so clean and faulty runs are bitwise comparable
    // (later epochs re-split from measured wall timings, which vary run
    // to run).
    let faulty_config = || {
        let mut c = parallel_config(3, 7);
        c.comm_faults = Some(CommFaultPlan::new().fail_at(0, 1).fail_at(5, 9).fail_at(12, 2));
        c.retry = fast_retry();
        c
    };
    let clean = run_parallel(parallel_config(3, 7), 1);
    let faulty = run_parallel(faulty_config(), 1);
    let again = run_parallel(faulty_config(), 1);

    let retries: u32 = faulty.iter().map(|r| r.comm_retries).sum();
    assert!(retries > 0, "the injected failures must be hit");
    assert_eq!(clean.iter().map(|r| r.comm_retries).sum::<u32>(), 0);
    for (c, f) in clean.iter().zip(&faulty) {
        assert_eq!(c.local_batches, f.local_batches);
        assert_eq!(c.mean_loss, f.mean_loss, "retried gradients must be bitwise identical");
        assert_eq!(c.accuracy, f.accuracy);
        assert_eq!(c.noise_scale, f.noise_scale);
    }
    for (f, g) in faulty.iter().zip(&again) {
        assert_eq!(f.mean_loss, g.mean_loss, "same seed, same faults, same run");
        assert_eq!(f.comm_retries, g.comm_retries);
    }
}

#[test]
fn chaos_parallel_elastic_membership() {
    if !schedule_enabled("elastic") && !schedule_enabled("crash") {
        return;
    }
    let _serial = telemetry_lock();
    let ds = gaussian_blobs(384, 6, 8, 17);
    let mut trainer = ParallelTrainer::builder()
        .dataset(ds)
        .model(|seed| mlp_classifier(8, 16, 6, seed))
        .config(parallel_config(3, 7))
        .build()
        .expect("valid config");
    let mut reports = vec![trainer.run_epoch().expect("epoch"), trainer.run_epoch().expect("epoch")];
    trainer.remove_rank(1); // crash detected between epochs
    reports.push(trainer.run_epoch().expect("epoch"));
    trainer.add_rank(1.5); // replacement (slower) capacity arrives
    reports.push(trainer.run_epoch().expect("epoch"));

    assert_eq!(reports[1].local_batches.len(), 3);
    assert_eq!(reports[2].local_batches.len(), 2, "shrunk group");
    assert_eq!(reports[3].local_batches.len(), 3, "regrown group");
    for r in &reports {
        assert_eq!(r.local_batches.iter().sum::<u64>(), r.total_batch);
        assert!(r.local_batches.iter().all(|&b| b >= 1));
        assert!(r.mean_loss.is_finite());
    }
    assert!(
        reports.last().unwrap().mean_loss < reports[0].mean_loss,
        "training must keep converging across membership changes: {} -> {}",
        reports[0].mean_loss,
        reports.last().unwrap().mean_loss
    );
}
