//! The fleet report: a self-contained, deterministic rendering of one
//! JSONL trace — per-job allocation timelines, SLO compliance, anomaly
//! list — as text and as a single-file HTML page.
//!
//! ## Determinism contract
//!
//! Everything rendered derives from payload fields that are pure
//! functions of the simulation: decision ordinals
//! ([`FleetJobSample::decision`]), node counts, simulated-time service
//! figures. Record timestamps (`ts_ns`, wall-clock) are never read and no
//! date, hostname or path is embedded, so two same-seed runs render
//! byte-identical reports — the property the CI determinism gate diffs
//! for.

use crate::detectors::InsightConfig;
use crate::replay::{self, ReplayReport};
use crate::slo::{replay_slos, SloReport};
use cannikin_telemetry::{Event, FleetJobSample, Record, SloRule};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One job's reconstructed allocation history.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTimeline {
    /// Job name.
    pub name: String,
    /// `(decision, granted, demanded)` per decision round the job was
    /// live (admitted or queued), in decision order.
    pub samples: Vec<(u64, u32, u32)>,
    /// Admissions observed (first grant plus re-admissions after
    /// eviction).
    pub admissions: u64,
    /// Preemption events observed.
    pub preemptions: u64,
    /// Most nodes the job held at once.
    pub peak_granted: u32,
    /// Final priority-weighted service (node-seconds / weight).
    pub weighted_service: f64,
}

/// Everything the `report` subcommand renders.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTraceReport {
    /// Records in the trace.
    pub events: u64,
    /// Fleet-allocator decision rounds observed.
    pub decisions: u64,
    /// Per-job timelines, sorted by job name.
    pub jobs: Vec<JobTimeline>,
    /// Final values of the fleet-level gauges (`fleet_goodput`,
    /// `fleet_fairness`, `fleet_pool_util`, `fleet_queue_depth`), sorted
    /// by name.
    pub gauges: Vec<(String, f64)>,
    /// Offline SLO verdicts next to the trace's online ones.
    pub slo: SloReport,
    /// The detector replay (anomaly list + online agreement).
    pub anomalies: ReplayReport,
}

/// The fleet-level gauge counters the report surfaces.
const FLEET_GAUGES: [&str; 4] = ["fleet_fairness", "fleet_goodput", "fleet_pool_util", "fleet_queue_depth"];

/// Build the report from a trace: reconstruct job timelines from
/// [`FleetJobSample`]s, rerun the SLO engine and the anomaly detectors.
pub fn build(records: &[Record], config: InsightConfig, rules: &[SloRule]) -> FleetTraceReport {
    let mut jobs: BTreeMap<String, JobTimeline> = BTreeMap::new();
    let mut decisions = 0u64;
    let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
    let job_entry = |jobs: &mut BTreeMap<String, JobTimeline>, name: &str| {
        jobs.entry(name.to_string()).or_insert_with(|| JobTimeline {
            name: name.to_string(),
            samples: Vec::new(),
            admissions: 0,
            preemptions: 0,
            peak_granted: 0,
            weighted_service: 0.0,
        });
    };
    for record in records {
        match &record.event {
            Event::FleetDecision(_) => decisions += 1,
            Event::FleetJobSample(FleetJobSample { decision, job, granted, demanded, weighted_service }) => {
                job_entry(&mut jobs, job);
                let entry = jobs.get_mut(job).expect("just inserted");
                entry.samples.push((*decision, *granted, *demanded));
                entry.peak_granted = entry.peak_granted.max(*granted);
                entry.weighted_service = *weighted_service;
            }
            Event::JobAdmitted(a) => {
                job_entry(&mut jobs, &a.job);
                jobs.get_mut(&a.job).expect("just inserted").admissions += 1;
            }
            Event::JobPreempted(p) => {
                job_entry(&mut jobs, &p.job);
                jobs.get_mut(&p.job).expect("just inserted").preemptions += 1;
            }
            Event::Counter(c) if FLEET_GAUGES.contains(&c.name.as_str()) => {
                gauges.insert(c.name.clone(), c.value);
            }
            _ => {}
        }
    }
    FleetTraceReport {
        events: records.len() as u64,
        decisions,
        jobs: jobs.into_values().collect(),
        gauges: gauges.into_iter().collect(),
        slo: replay_slos(records, rules),
        anomalies: replay::analyze(records, config),
    }
}

/// Run-length encode a timeline into `(first_decision, last_decision,
/// granted, demanded)` segments — the unit both renderers draw.
fn segments(samples: &[(u64, u32, u32)]) -> Vec<(u64, u64, u32, u32)> {
    let mut out: Vec<(u64, u64, u32, u32)> = Vec::new();
    for &(d, g, w) in samples {
        match out.last_mut() {
            Some(seg) if seg.2 == g && seg.3 == w && seg.1 + 1 == d => seg.1 = d,
            _ => out.push((d, d, g, w)),
        }
    }
    out
}

impl FleetTraceReport {
    /// Whether both engines reproduced their online verdicts exactly.
    pub fn verdicts_match(&self) -> bool {
        self.slo.verdicts_match() && self.anomalies.anomalies_match()
    }

    /// The plain-text report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "fleet report: {} records, {} decisions, {} jobs", self.events, self.decisions, self.jobs.len());
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "  {name} = {value}");
        }
        let _ = writeln!(out, "\nallocation timelines (decision ranges, granted/demanded nodes):");
        for job in &self.jobs {
            let _ = writeln!(
                out,
                "  {} — peak {} nodes, {} admissions, {} preemptions, weighted service {:.3}",
                job.name, job.peak_granted, job.admissions, job.preemptions, job.weighted_service
            );
            for (from, to, granted, demanded) in segments(&job.samples) {
                let span = if from == to { format!("d{from}") } else { format!("d{from}-d{to}") };
                let _ = writeln!(out, "    {span}: {granted}/{demanded}");
            }
        }
        let _ = writeln!(out, "\nSLO compliance:");
        out.push_str(&indent(&self.slo.render()));
        let _ = writeln!(out, "\nanomalies:");
        let _ = writeln!(
            out,
            "  {} offline / {} online ({})",
            self.anomalies.offline.len(),
            self.anomalies.online.len(),
            if self.anomalies.anomalies_match() { "verdicts agree" } else { "VERDICT MISMATCH" }
        );
        for a in &self.anomalies.offline {
            let _ = writeln!(
                out,
                "  [{}] step {} node {} observed {:.4} vs expected {:.4}",
                a.kind.as_str(),
                a.step,
                a.node.map_or_else(|| "-".to_string(), |n| n.to_string()),
                a.observed,
                a.expected
            );
        }
        out
    }

    /// The single-file HTML report: inline CSS, SVG allocation timelines,
    /// SLO compliance table, anomaly list. No external assets, dates or
    /// paths.
    pub fn render_html(&self) -> String {
        let mut body = String::new();
        let _ = writeln!(body, "<h1>Cannikin fleet report</h1>");
        let _ = writeln!(
            body,
            "<p>{} records · {} decisions · {} jobs</p>",
            self.events,
            self.decisions,
            self.jobs.len()
        );
        if !self.gauges.is_empty() {
            let _ = writeln!(body, "<table><tr><th>gauge</th><th>final value</th></tr>");
            for (name, value) in &self.gauges {
                let _ = writeln!(body, "<tr><td>{}</td><td>{value}</td></tr>", escape(name));
            }
            let _ = writeln!(body, "</table>");
        }

        let _ = writeln!(body, "<h2>Allocation timelines</h2>");
        let max_decision = self.jobs.iter().flat_map(|j| j.samples.iter().map(|s| s.0)).max().unwrap_or(0);
        let max_nodes =
            self.jobs.iter().flat_map(|j| j.samples.iter().map(|s| s.1.max(s.2))).max().unwrap_or(1).max(1);
        for job in &self.jobs {
            let _ = writeln!(
                body,
                "<h3>{} <small>peak {} nodes · {} admissions · {} preemptions · weighted service {:.3}</small></h3>",
                escape(&job.name),
                job.peak_granted,
                job.admissions,
                job.preemptions,
                job.weighted_service
            );
            body.push_str(&timeline_svg(&segments(&job.samples), max_decision, max_nodes));
        }

        let _ = writeln!(body, "<h2>SLO compliance</h2>");
        let _ = writeln!(
            body,
            "<p class=\"{}\">online/offline verdicts: {}</p>",
            if self.slo.verdicts_match() { "ok" } else { "bad" },
            if self.slo.verdicts_match() { "agree" } else { "MISMATCH" }
        );
        let _ = writeln!(body, "<table><tr><th>objective</th><th>status</th><th>violations</th></tr>");
        for rule in &self.slo.rules {
            let n = self.slo.count_for(rule.id(), rule.job());
            let _ = writeln!(
                body,
                "<tr><td>{}</td><td class=\"{}\">{}</td><td>{n}</td></tr>",
                escape(&rule.describe()),
                if n == 0 { "ok" } else { "bad" },
                if n == 0 { "OK" } else { "VIOLATED" }
            );
        }
        let _ = writeln!(body, "</table>");
        if !self.slo.offline.is_empty() {
            let _ = writeln!(body, "<ul>");
            for v in &self.slo.offline {
                let _ = writeln!(
                    body,
                    "<li><code>{}</code> at #{}: observed {:.4} vs threshold {:.4}{}</li>",
                    escape(&v.rule),
                    v.at,
                    v.observed,
                    v.threshold,
                    v.job.as_deref().map_or_else(String::new, |j| format!(" (job {})", escape(j)))
                );
            }
            let _ = writeln!(body, "</ul>");
        }

        let _ = writeln!(body, "<h2>Anomalies</h2>");
        let _ = writeln!(
            body,
            "<p>{} offline / {} online ({})</p>",
            self.anomalies.offline.len(),
            self.anomalies.online.len(),
            if self.anomalies.anomalies_match() { "verdicts agree" } else { "VERDICT MISMATCH" }
        );
        if !self.anomalies.offline.is_empty() {
            let _ = writeln!(body, "<ul>");
            for a in &self.anomalies.offline {
                let _ = writeln!(
                    body,
                    "<li><code>{}</code> step {} node {}: observed {:.4} vs expected {:.4}</li>",
                    a.kind.as_str(),
                    a.step,
                    a.node.map_or_else(|| "-".to_string(), |n| n.to_string()),
                    a.observed,
                    a.expected
                );
            }
            let _ = writeln!(body, "</ul>");
        }

        format!(
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
             <title>Cannikin fleet report</title>\n<style>{CSS}</style></head>\n<body>\n{body}</body></html>\n"
        )
    }
}

const CSS: &str = "body{font-family:system-ui,sans-serif;max-width:60em;margin:2em auto;padding:0 1em;color:#222}\
table{border-collapse:collapse;margin:0.5em 0}td,th{border:1px solid #bbb;padding:0.25em 0.6em;text-align:left}\
h3 small{font-weight:normal;color:#666}.ok{color:#1a7f37}.bad{color:#b42318;font-weight:bold}\
svg{display:block;margin:0.25em 0 1em}code{background:#f3f3f3;padding:0 0.2em}";

/// An SVG bar timeline: demanded nodes as a light background step,
/// granted nodes as the filled foreground.
fn timeline_svg(segments: &[(u64, u64, u32, u32)], max_decision: u64, max_nodes: u32) -> String {
    const W: f64 = 640.0;
    const H: f64 = 64.0;
    let cols = (max_decision + 1).max(1) as f64;
    let col_w = W / cols;
    let mut out = format!(
        "<svg width=\"{W}\" height=\"{H}\" viewBox=\"0 0 {W} {H}\" role=\"img\">\
         <rect x=\"0\" y=\"0\" width=\"{W}\" height=\"{H}\" fill=\"#f7f7f7\"/>"
    );
    for &(from, to, granted, demanded) in segments {
        let x = from as f64 * col_w;
        let w = (to - from + 1) as f64 * col_w;
        for (nodes, fill) in [(demanded, "#c9ddf2"), (granted, "#3b76af")] {
            if nodes == 0 {
                continue;
            }
            let h = H * f64::from(nodes) / f64::from(max_nodes);
            let _ = write!(
                out,
                "<rect x=\"{x:.2}\" y=\"{:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" fill=\"{fill}\"/>",
                H - h
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn indent(text: &str) -> String {
    text.lines().map(|l| format!("  {l}\n")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cannikin_telemetry::{Counter, FleetDecision, JobAdmitted, SloViolation};

    fn rec(event: Event) -> Record {
        Record { ts_ns: 0, node: 0, rank: 0, event }
    }

    fn sample(decision: u64, job: &str, granted: u32, demanded: u32) -> Record {
        rec(Event::FleetJobSample(FleetJobSample {
            decision,
            job: job.into(),
            granted,
            demanded,
            weighted_service: decision as f64 * 1.5,
        }))
    }

    fn demo_trace() -> Vec<Record> {
        let mut t = vec![
            rec(Event::JobAdmitted(JobAdmitted { job: "cifar-0".into(), nodes: 2, queued_s: 0.0 })),
            rec(Event::Counter(Counter { name: "fleet_goodput".into(), value: 12.5 })),
            rec(Event::Counter(Counter { name: "fleet_fairness".into(), value: 0.9 })),
        ];
        for d in 0..4 {
            t.push(rec(Event::FleetDecision(FleetDecision {
                decision: d,
                running: 1,
                queued: 0,
                reassigned: 0,
                pool: 4,
            })));
            t.push(sample(d, "cifar-0", if d < 2 { 2 } else { 3 }, 3));
        }
        t
    }

    #[test]
    fn build_reconstructs_timelines_and_gauges() {
        let report = build(&demo_trace(), InsightConfig::default(), &cannikin_telemetry::default_fleet_slos());
        assert_eq!(report.decisions, 4);
        assert_eq!(report.jobs.len(), 1);
        let job = &report.jobs[0];
        assert_eq!(job.name, "cifar-0");
        assert_eq!(job.samples.len(), 4);
        assert_eq!(job.peak_granted, 3);
        assert_eq!(job.admissions, 1);
        assert_eq!(segments(&job.samples), vec![(0, 1, 2, 3), (2, 3, 3, 3)]);
        assert_eq!(report.gauges, vec![("fleet_fairness".into(), 0.9), ("fleet_goodput".into(), 12.5)]);
        assert!(report.verdicts_match(), "no online verdicts, none offline");
    }

    #[test]
    fn renderings_are_deterministic_and_self_contained() {
        let rules = cannikin_telemetry::default_fleet_slos();
        let report = build(&demo_trace(), InsightConfig::default(), &rules);
        let text = report.render_text();
        assert!(text.contains("d0-d1: 2/3"), "{text}");
        assert!(text.contains("d2-d3: 3/3"), "{text}");
        assert!(text.contains("SLO compliance"));
        let html = report.render_html();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(!html.contains("http"), "no external assets");
        // Same trace, shifted wall-clock timestamps: byte-identical output.
        let mut shifted = demo_trace();
        for (i, r) in shifted.iter_mut().enumerate() {
            r.ts_ns = 1_000_000 + i as u64 * 31;
        }
        let other = build(&shifted, InsightConfig::default(), &rules);
        assert_eq!(text, other.render_text());
        assert_eq!(html, other.render_html());
    }

    #[test]
    fn verdict_mismatch_is_surfaced() {
        let mut trace = demo_trace();
        // A fabricated online verdict no offline rerun can reproduce.
        trace.push(rec(Event::SloViolation(SloViolation {
            rule: "goodput_floor".into(),
            job: None,
            threshold: 1.0,
            observed: 0.1,
            at: 1,
        })));
        let report = build(&trace, InsightConfig::default(), &cannikin_telemetry::default_fleet_slos());
        assert!(!report.verdicts_match());
        assert!(report.render_text().contains("VERDICT MISMATCH"));
        assert!(report.render_html().contains("MISMATCH"));
    }

    #[test]
    fn job_names_are_escaped_in_html() {
        let trace = vec![sample(0, "a<b&c", 1, 1)];
        let report = build(&trace, InsightConfig::default(), &[]);
        let html = report.render_html();
        assert!(html.contains("a&lt;b&amp;c"));
        assert!(!html.contains("a<b&c"));
    }
}
