//! The *OptPerf* solver (§3.3, §4.2, Algorithm 1).
//!
//! Given per-node linear performance models and the cluster communication
//! constants, the solver answers: *for a total batch size `B`, what local
//! batch split minimizes the synchronized batch processing time, and what
//! is that time?*
//!
//! The paper's three optimality conditions (Appendix A) are all instances
//! of one parametric family indexed by the **bottleneck boundary** `C`:
//! order the nodes so that the first `C` are compute-bottleneck and the
//! rest communication-bottleneck, then solve the linear system
//!
//! ```text
//! cᵢ·bᵢ + dᵢ           = μ        for compute-bottleneck nodes
//! eᵢ·bᵢ + fᵢ + T_o     = μ        for communication-bottleneck nodes
//! Σ bᵢ = B
//! ```
//!
//! where `cᵢ = qᵢ+kᵢ`, `dᵢ = sᵢ+mᵢ` (total compute time) and
//! `eᵢ = qᵢ+γkᵢ`, `fᵢ = sᵢ+γmᵢ` (`syncStart`). `C = n` is the paper's
//! Check 1 (OptPerf = μ + T_u with equal compute times), `C = 0` is Check 2
//! (equal sync starts, OptPerf = syncStart + T_comm), and `0 < C < n` is
//! the mixed case where compute nodes finish their gradient exactly when
//! the communication chain catches up (`t_compute = syncStart' + T_o`).
//!
//! Nodes are ranked by their **transition threshold** `μ*ᵢ` — the makespan
//! at which node `i` flips from communication- to compute-bottleneck —
//! which makes the consistent boundary unique and binary-searchable
//! (the `O(log n)` search of Algorithm 1). A warm-start boundary from the
//! previous solve (§4.5 "overlap state searching") usually reduces the
//! search to a single verification.

mod bootstrap;
mod solver;

pub use bootstrap::{bootstrap_split, ensure_distinct_split, even_split, exploration_split};
pub use solver::{compute_span, predict_batch_time, Bottleneck, OptPerfSolver, Plan};

use hetsim::cluster::ClusterSpec;
use hetsim::job::JobSpec;
use hetsim::timing::{comm_times, node_coefficients};
use serde::{Deserialize, Serialize};

/// One node's learned (or oracle) performance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodePerf {
    /// Per-sample coefficient of `a_i` (load + forward), s/sample.
    pub q: f64,
    /// Fixed part of `a_i`, s.
    pub s: f64,
    /// Per-sample coefficient of `P_i` (backward), s/sample.
    pub k: f64,
    /// Fixed part of `P_i`, s.
    pub m: f64,
    /// Memory cap on the local batch, if known.
    pub max_batch: Option<u64>,
}

impl NodePerf {
    /// Total-compute slope `c = q + k`.
    pub fn compute_slope(&self) -> f64 {
        self.q + self.k
    }

    /// Total-compute intercept `d = s + m`.
    pub fn compute_intercept(&self) -> f64 {
        self.s + self.m
    }

    /// `syncStart` slope `e = q + γk`.
    pub fn sync_slope(&self, gamma: f64) -> f64 {
        self.q + gamma * self.k
    }

    /// `syncStart` intercept `f = s + γm`.
    pub fn sync_intercept(&self, gamma: f64) -> f64 {
        self.s + gamma * self.m
    }

    /// Backpropagation time `P(b) = k·b + m`.
    pub fn p(&self, b: f64) -> f64 {
        self.k * b + self.m
    }

    /// Total compute time `t_compute(b)`.
    pub fn compute(&self, b: f64) -> f64 {
        self.compute_slope() * b + self.compute_intercept()
    }

    /// `syncStart(b) = a(b) + γP(b)`.
    pub fn sync_start(&self, b: f64, gamma: f64) -> f64 {
        self.sync_slope(gamma) * b + self.sync_intercept(gamma)
    }
}

/// Everything the solver needs: per-node models plus cluster constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverInput {
    /// Per-node performance models.
    pub nodes: Vec<NodePerf>,
    /// Overlap ratio γ (cluster-wide constant, §3.2.3).
    pub gamma: f64,
    /// Synchronization time of all buckets except the last, s.
    pub t_o: f64,
    /// Last-bucket synchronization time, s.
    pub t_u: f64,
}

impl SolverInput {
    /// Total gradient-synchronization time `T_comm = T_o + T_u`.
    pub fn t_comm(&self) -> f64 {
        self.t_o + self.t_u
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the input has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Oracle input assembled from the simulator's ground-truth physics —
    /// used by tests and by experiments that isolate the solver from the
    /// measurement layer.
    pub fn from_ground_truth(cluster: &ClusterSpec, job: &JobSpec) -> Self {
        let (_, t_o, t_u) = comm_times(cluster, job);
        let nodes = cluster
            .nodes
            .iter()
            .map(|n| {
                let c = node_coefficients(n, job);
                NodePerf {
                    q: c.q,
                    s: c.s,
                    k: c.k,
                    m: c.m,
                    max_batch: Some(job.max_local_batch(n.effective_memory_bytes())),
                }
            })
            .collect();
        SolverInput { nodes, gamma: job.gamma, t_o, t_u }
    }
}
