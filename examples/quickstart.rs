//! Quickstart: solve OptPerf for the paper's 16-GPU cluster B.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the heterogeneous cluster of Table 4 and the ResNet-50/ImageNet
//! workload of Table 5, then asks the OptPerf solver (Algorithm 1) for the
//! optimal local batch split at several total batch sizes, comparing each
//! against PyTorch DDP's even split.

use cannikin::core::optperf::{even_split, predict_batch_time, OptPerfSolver, SolverInput};
use cannikin::sim::Simulator;
use cannikin::workloads::{clusters, profiles};

fn main() {
    let cluster = clusters::cluster_b();
    let profile = profiles::imagenet_resnet50();
    println!("cluster {} — {} nodes, heterogeneity degree {:.2}", cluster.name, cluster.len(), cluster.heterogeneity_degree());
    println!("workload {} ({} parameters)\n", profile.name(), profile.job.params);

    // Oracle models straight from the simulator's physics. During real
    // training Cannikin learns these online (see the adaptive example).
    let input = SolverInput::from_ground_truth(&cluster, &profile.job);
    let mut solver = OptPerfSolver::new(input.clone());
    let sim = Simulator::new(cluster.clone(), profile.job.clone(), 0).with_noise(0.0, 0.0);

    println!("{:>7}  {:>12}  {:>12}  {:>8}  {:>22}", "B", "OptPerf (s)", "even (s)", "speedup", "split (a100/v100/rtx)");
    for total in [128u64, 512, 2048, 8000] {
        let plan = solver.solve(total).expect("feasible batch size");
        let even = predict_batch_time(&input, &even_split(total, cluster.len()));
        // Cross-check the prediction against the event-driven simulator.
        let simulated = sim.ideal_batch_time(&plan.local_batches);
        assert!((plan.opt_perf - simulated).abs() / simulated < 1e-9);
        println!(
            "{total:>7}  {:>12.4}  {:>12.4}  {:>7.2}x  {:>6}/{:>5}/{:>4}",
            plan.opt_perf,
            even,
            even / plan.opt_perf,
            plan.local_batches[0],
            plan.local_batches[4],
            plan.local_batches[8],
        );
    }
    println!("\nthe A100 nodes receive ~3-4x the RTX6000 share, matching their FP16 speed ratio");
}
