//! Multi-job scheduling over a shared heterogeneous pool (§6).
//!
//! **Deprecated.** The `cannikin-fleet` crate supersedes this module with
//! a real control plane: an admission queue with priority classes, a
//! GNS-demand-driven allocator with FIFO/static baselines, epoch-boundary
//! preemption, and fleet-wide goodput accounting. This module cannot be
//! rewritten as a thin wrapper over the fleet controller because
//! `cannikin-fleet` depends on `cannikin-core` (it drives
//! `CannikinTrainer`s) — wrapping it here would create a circular crate
//! dependency. The types stay compiling, `#[deprecated]`, for downstream
//! code still on the old API; new code should use
//! `cannikin_fleet::FleetController`.
//!
//! Existing dynamic schedulers allocate *homogeneous* slices per job; the
//! paper argues Cannikin unlocks schedulers that hand every job a
//! heterogeneous sub-cluster, because the job-level system absorbs
//! whatever mix it receives. [`MultiJobScheduler`] demonstrates exactly
//! that loop:
//!
//! - each submitted job runs its own [`CannikinTrainer`] on its assigned
//!   nodes (any mix);
//! - jobs advance epoch by epoch on disjoint nodes, each with its own
//!   wall clock;
//! - when a job reaches its target, its nodes are granted to the running
//!   job with the largest estimated remaining wall time, which absorbs
//!   them through the elastic-membership path
//!   ([`CannikinTrainer::on_cluster_change`]) and re-profiles within a
//!   couple of epochs.
//!
//! Handoffs happen at epoch boundaries — an approximation that costs at
//! most one epoch of idleness per freed node, negligible at the epoch
//! horizons the paper studies.

// The deprecated types refer to each other (impls, fields, tests); the
// deprecation is aimed at external callers, not at this module itself.
#![allow(deprecated)]

use crate::engine::{CannikinTrainer, EpochRecord, NoiseModel, TrainerConfig};
use crate::error::CannikinError;

use hetsim::cluster::{ClusterSpec, NodeSpec};
use hetsim::job::JobSpec;
use hetsim::Simulator;

/// A job managed by the scheduler.
#[deprecated(since = "0.1.0", note = "use `cannikin_fleet::FleetController` instead")]
pub struct ScheduledJob {
    /// Job name (for reports).
    pub name: String,
    trainer: CannikinTrainer,
    target_effective_epochs: f64,
    records: Vec<EpochRecord>,
    finished_at: Option<f64>,
}

impl std::fmt::Debug for ScheduledJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ScheduledJob({}, {:.1}/{:.1} eff. epochs)",
            self.name,
            self.trainer.effective_epochs(),
            self.target_effective_epochs
        )
    }
}

impl ScheduledJob {
    /// Wall-clock completion time, once finished.
    pub fn finished_at(&self) -> Option<f64> {
        self.finished_at
    }

    /// Per-epoch records so far.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Current node count.
    pub fn node_count(&mut self) -> usize {
        self.trainer.simulator_mut().cluster().len()
    }

    fn current_time(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.cumulative_time)
    }

    /// Estimated remaining wall time from the recent progress rate.
    fn remaining_estimate(&self) -> f64 {
        let done = self.trainer.effective_epochs();
        let remaining = (self.target_effective_epochs - done).max(0.0);
        let Some(last) = self.records.last() else {
            return f64::INFINITY; // not started: prioritize
        };
        // Effective-epoch gain of the most recent epoch sets the rate.
        let last_eff_gain = if self.records.len() >= 2 {
            last.effective_epochs - self.records[self.records.len() - 2].effective_epochs
        } else {
            last.effective_epochs
        };
        if last_eff_gain <= 0.0 {
            return f64::INFINITY;
        }
        remaining * last.epoch_time / last_eff_gain
    }
}

/// A cooperative multi-job scheduler over disjoint node sets.
#[deprecated(since = "0.1.0", note = "use `cannikin_fleet::FleetController` instead")]
#[derive(Debug, Default)]
pub struct MultiJobScheduler {
    jobs: Vec<ScheduledJob>,
}

/// Completion summary for one job.
#[deprecated(since = "0.1.0", note = "use `cannikin_fleet::FleetReport` instead")]
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Job name.
    pub name: String,
    /// Wall-clock completion time, s.
    pub completion_time: f64,
    /// Epochs run.
    pub epochs: usize,
    /// Node count at completion.
    pub final_nodes: usize,
}

impl MultiJobScheduler {
    /// Create an empty scheduler.
    pub fn new() -> Self {
        MultiJobScheduler { jobs: Vec::new() }
    }

    /// Submit a job onto its initial (possibly heterogeneous) node set.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or the config cannot cover them.
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &mut self,
        name: impl Into<String>,
        job: JobSpec,
        nodes: Vec<NodeSpec>,
        noise: Box<dyn NoiseModel>,
        config: TrainerConfig,
        target_effective_epochs: f64,
        seed: u64,
    ) {
        let name = name.into();
        let cluster = ClusterSpec::new(name.clone(), nodes);
        let sim = Simulator::new(cluster, job, seed);
        let trainer = CannikinTrainer::builder()
            .simulator(sim)
            .noise_boxed(noise)
            .config(config)
            .build()
            .expect("scheduler job config must cover its nodes");
        self.jobs.push(ScheduledJob {
            name,
            trainer,
            target_effective_epochs,
            records: Vec::new(),
            finished_at: None,
        });
    }

    /// The managed jobs.
    pub fn jobs(&self) -> &[ScheduledJob] {
        &self.jobs
    }

    /// Advance every unfinished job by one epoch; when a job crosses its
    /// target, grant its nodes to the running job with the largest
    /// estimated remaining wall time. Returns `true` while any job is
    /// still running.
    ///
    /// # Errors
    ///
    /// Propagates trainer errors (solver infeasibility).
    pub fn run_round(&mut self) -> Result<bool, CannikinError> {
        // Advance the job that is furthest *behind* in wall time first, so
        // per-job clocks stay loosely synchronized.
        let mut order: Vec<usize> = (0..self.jobs.len()).filter(|&i| self.jobs[i].finished_at.is_none()).collect();
        order.sort_by(|&a, &b| self.jobs[a].current_time().total_cmp(&self.jobs[b].current_time()));
        if order.is_empty() {
            return Ok(false);
        }
        for idx in order {
            if self.jobs[idx].finished_at.is_some() {
                continue;
            }
            let record = self.jobs[idx].trainer.run_epoch()?;
            self.jobs[idx].records.push(record);
            let job = &mut self.jobs[idx];
            if job.trainer.effective_epochs() >= job.target_effective_epochs {
                job.finished_at = Some(job.current_time());
                self.redistribute_nodes(idx);
            }
        }
        Ok(self.jobs.iter().any(|j| j.finished_at.is_none()))
    }

    /// Run until every job completes (or `max_rounds`), returning the
    /// summaries in submission order.
    ///
    /// # Errors
    ///
    /// Propagates trainer errors.
    pub fn run_to_completion(&mut self, max_rounds: usize) -> Result<Vec<JobSummary>, CannikinError> {
        for _ in 0..max_rounds {
            if !self.run_round()? {
                break;
            }
        }
        Ok(self
            .jobs
            .iter_mut()
            .map(|j| JobSummary {
                name: j.name.clone(),
                completion_time: j.finished_at.unwrap_or(f64::NAN),
                epochs: j.records.len(),
                final_nodes: j.trainer.simulator_mut().cluster().len(),
            })
            .collect())
    }

    /// Move the finished job's nodes to the neediest running job.
    fn redistribute_nodes(&mut self, donor: usize) {
        let Some(receiver) = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(i, j)| *i != donor && j.finished_at.is_none())
            .max_by(|a, b| a.1.remaining_estimate().total_cmp(&b.1.remaining_estimate()))
            .map(|(i, _)| i)
        else {
            return;
        };
        let donated: Vec<NodeSpec> = self.jobs[donor].trainer.simulator_mut().cluster().nodes.clone();
        let recv = &mut self.jobs[receiver];
        for node in donated {
            recv.trainer.simulator_mut().add_node(node);
        }
        recv.trainer.on_cluster_change();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LinearNoiseGrowth;
    use hetsim::catalog::Gpu;

    fn nodes(gpus: &[(Gpu, usize)]) -> Vec<NodeSpec> {
        let mut out = Vec::new();
        for (gpu, count) in gpus {
            for i in 0..*count {
                out.push(NodeSpec::new(format!("{gpu}-{i}"), *gpu));
            }
        }
        out
    }

    fn noise() -> Box<dyn NoiseModel> {
        Box::new(LinearNoiseGrowth { initial: 400.0, rate: 0.5 })
    }

    #[test]
    fn freed_nodes_accelerate_the_survivor() {
        // Two jobs share a 8-node pool; the short job finishes and donates
        // its 4 nodes. The long job must finish faster than it would on
        // its original 4 nodes alone.
        let short_cfg = TrainerConfig::new(20_000, 64, 512);
        let long_cfg = TrainerConfig::new(80_000, 64, 512);

        let mut shared = MultiJobScheduler::new();
        shared.submit(
            "short",
            JobSpec::resnet18_cifar10(),
            nodes(&[(Gpu::A100, 2), (Gpu::Rtx6000, 2)]),
            noise(),
            short_cfg.clone(),
            4.0,
            1,
        );
        shared.submit(
            "long",
            JobSpec::resnet50_imagenet(),
            nodes(&[(Gpu::V100, 2), (Gpu::Rtx6000, 2)]),
            noise(),
            long_cfg.clone(),
            12.0,
            2,
        );
        let summaries = shared.run_to_completion(4000).expect("completed");
        let short = &summaries[0];
        let long = &summaries[1];
        assert!(short.completion_time.is_finite());
        assert!(long.completion_time.is_finite());
        assert_eq!(long.final_nodes, 8, "the survivor should hold the whole pool");

        // Baseline: the long job alone on its original 4 nodes.
        let mut solo = MultiJobScheduler::new();
        solo.submit(
            "long-solo",
            JobSpec::resnet50_imagenet(),
            nodes(&[(Gpu::V100, 2), (Gpu::Rtx6000, 2)]),
            noise(),
            long_cfg,
            12.0,
            2,
        );
        let solo_summary = &solo.run_to_completion(4000).expect("completed")[0];
        assert!(
            long.completion_time < solo_summary.completion_time * 0.95,
            "donated nodes should help: {} vs solo {}",
            long.completion_time,
            solo_summary.completion_time
        );
    }

    #[test]
    fn rounds_keep_clocks_loosely_synchronized() {
        let mut sched = MultiJobScheduler::new();
        for (i, job) in [JobSpec::resnet18_cifar10(), JobSpec::neumf_movielens()].into_iter().enumerate() {
            sched.submit(
                format!("job{i}"),
                job,
                nodes(&[(Gpu::V100, 2)]),
                noise(),
                TrainerConfig::new(30_000, 64, 256),
                3.0,
                i as u64,
            );
        }
        let mut rounds = 0;
        while sched.run_round().expect("round") && rounds < 2000 {
            rounds += 1;
        }
        for job in sched.jobs() {
            assert!(job.finished_at().is_some(), "{} unfinished after {rounds} rounds", job.name);
        }
    }
}
