//! Typed runtime options consolidating the `CANNIKIN_*` environment knobs.
//!
//! Instead of each layer calling `std::env::var` ad hoc, [`RuntimeOptions::from_env`]
//! parses every knob once into a typed struct:
//!
//! | Variable             | Meaning                                             |
//! |----------------------|-----------------------------------------------------|
//! | `CANNIKIN_TELEMETRY` | export targets, `format:path[,format:path]`         |
//! | `CANNIKIN_THREADS`   | kernel thread budget for the minidnn matmul kernels |
//! | `CANNIKIN_TRANSPORT` | collective backend: `inprocess`, `tcp`, `tcp:ADDR`  |
//!
//! **Precedence is builder > env > default**: a value set explicitly on a
//! trainer builder always wins; an env variable fills in anything the
//! builder left unset; the compiled-in default (in-process transport, auto
//! thread budget, no telemetry export) covers the rest. The engine builders
//! ([`crate::engine::CannikinTrainerBuilder`],
//! [`crate::engine::ParallelTrainerBuilder`]) apply exactly this rule for
//! the transport knob.

use crate::error::CannikinError;
use cannikin_collectives::TransportKind;
use cannikin_telemetry::env::{parse_targets, ExportTarget};

/// Name of the transport-selection environment variable.
pub const TRANSPORT_ENV: &str = "CANNIKIN_TRANSPORT";

/// Name of the kernel-thread-budget environment variable (the same one the
/// minidnn kernels honour directly as their default-of-last-resort).
pub const THREADS_ENV: &str = "CANNIKIN_THREADS";

/// Re-export of the telemetry spec variable name for one-stop lookup.
pub const TELEMETRY_ENV: &str = cannikin_telemetry::env::ENV_VAR;

/// Every `CANNIKIN_*` knob, parsed once.
#[derive(Debug, Clone, Default)]
pub struct RuntimeOptions {
    /// Telemetry export destinations from `CANNIKIN_TELEMETRY` (empty when
    /// unset).
    pub telemetry: Vec<ExportTarget>,
    /// Kernel thread budget from `CANNIKIN_THREADS` (`None` = auto).
    pub threads: Option<usize>,
    /// Collective transport from `CANNIKIN_TRANSPORT` (`None` = unset; the
    /// engines then default to [`TransportKind::InProcess`]).
    pub transport: Option<TransportKind>,
}

impl RuntimeOptions {
    /// Parse every knob from the process environment. Unset variables are
    /// simply absent from the result; *set but malformed* values are hard
    /// errors — a typo'd knob silently falling back to a default is how
    /// benchmarks end up measuring the wrong backend.
    ///
    /// # Errors
    ///
    /// [`CannikinError::InvalidConfig`] naming the offending variable.
    pub fn from_env() -> Result<Self, CannikinError> {
        let mut options = RuntimeOptions::default();
        if let Ok(spec) = std::env::var(TELEMETRY_ENV) {
            options.telemetry = parse_targets(&spec)
                .map_err(|e| CannikinError::InvalidConfig(format!("{TELEMETRY_ENV}: {e}")))?;
        }
        if let Ok(raw) = std::env::var(THREADS_ENV) {
            let trimmed = raw.trim();
            if !trimmed.is_empty() {
                let threads: usize = trimmed.parse().map_err(|_| {
                    CannikinError::InvalidConfig(format!("{THREADS_ENV}: `{raw}` is not a thread count"))
                })?;
                options.threads = Some(threads);
            }
        }
        options.transport = Self::transport_from_env()?;
        Ok(options)
    }

    /// Parse only the `CANNIKIN_TRANSPORT` knob (`None` when unset). The
    /// engine builders use this so that an unrelated malformed variable
    /// (say, a typo'd `CANNIKIN_THREADS`, which the kernels handle with
    /// their own fallback) cannot fail a trainer that never reads it.
    ///
    /// # Errors
    ///
    /// [`CannikinError::InvalidConfig`] when the variable is set but
    /// unparseable.
    pub fn transport_from_env() -> Result<Option<TransportKind>, CannikinError> {
        match std::env::var(TRANSPORT_ENV) {
            Ok(raw) if !raw.trim().is_empty() => raw
                .trim()
                .parse()
                .map(Some)
                .map_err(|e| CannikinError::InvalidConfig(format!("{TRANSPORT_ENV}: {e}"))),
            _ => Ok(None),
        }
    }

    /// The transport to use given an optional builder-level override:
    /// builder > env > [`TransportKind::InProcess`].
    pub fn resolve_transport(&self, builder: Option<TransportKind>) -> TransportKind {
        builder.or_else(|| self.transport.clone()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var tests mutate process-global state; they run under one lock so
    // parallel test threads never observe each other's variables.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_env<T>(vars: &[(&str, Option<&str>)], f: impl FnOnce() -> T) -> T {
        let _guard = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let saved: Vec<(String, Option<String>)> =
            vars.iter().map(|(k, _)| ((*k).to_string(), std::env::var(*k).ok())).collect();
        for (k, v) in vars {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
        let out = f();
        for (k, v) in saved {
            match v {
                Some(v) => std::env::set_var(&k, v),
                None => std::env::remove_var(&k),
            }
        }
        out
    }

    #[test]
    fn unset_environment_yields_defaults() {
        let options = with_env(
            &[(TELEMETRY_ENV, None), (THREADS_ENV, None), (TRANSPORT_ENV, None)],
            RuntimeOptions::from_env,
        )
        .expect("empty env parses");
        assert!(options.telemetry.is_empty());
        assert_eq!(options.threads, None);
        assert_eq!(options.transport, None);
        assert_eq!(options.resolve_transport(None), TransportKind::InProcess);
    }

    #[test]
    fn set_knobs_parse_into_typed_values() {
        let options = with_env(
            &[
                (TELEMETRY_ENV, Some("jsonl:/tmp/run.jsonl")),
                (THREADS_ENV, Some("4")),
                (TRANSPORT_ENV, Some("tcp:127.0.0.1:5000")),
            ],
            RuntimeOptions::from_env,
        )
        .expect("valid env parses");
        assert_eq!(options.telemetry.len(), 1);
        assert_eq!(options.threads, Some(4));
        assert_eq!(
            options.transport,
            Some(TransportKind::Tcp { rendezvous: "127.0.0.1:5000".to_string() })
        );
    }

    #[test]
    fn malformed_knobs_are_hard_errors() {
        for (var, value) in [
            (TRANSPORT_ENV, "carrier-pigeon"),
            (THREADS_ENV, "many"),
            (TELEMETRY_ENV, "csv:/tmp/x"),
        ] {
            let err = with_env(
                &[
                    (TELEMETRY_ENV, (var == TELEMETRY_ENV).then_some(value)),
                    (THREADS_ENV, (var == THREADS_ENV).then_some(value)),
                    (TRANSPORT_ENV, (var == TRANSPORT_ENV).then_some(value)),
                ],
                RuntimeOptions::from_env,
            )
            .expect_err("malformed value must not be ignored");
            assert!(err.to_string().contains(var), "{err} should name {var}");
        }
    }

    #[test]
    fn transport_parse_ignores_unrelated_knobs() {
        // A typo'd CANNIKIN_THREADS must not fail a trainer build that only
        // consults the transport variable (the kernels have their own
        // lenient fallback for the thread budget).
        let transport = with_env(
            &[(THREADS_ENV, Some("garbage")), (TRANSPORT_ENV, Some("tcp"))],
            RuntimeOptions::transport_from_env,
        )
        .expect("unrelated knob must not fail the transport parse");
        assert_eq!(transport, Some(TransportKind::tcp()));
    }

    #[test]
    fn builder_overrides_env_overrides_default() {
        let from_env = RuntimeOptions {
            transport: Some(TransportKind::tcp()),
            ..RuntimeOptions::default()
        };
        // Builder wins.
        assert_eq!(from_env.resolve_transport(Some(TransportKind::InProcess)), TransportKind::InProcess);
        // Env fills in.
        assert_eq!(from_env.resolve_transport(None), TransportKind::tcp());
        // Default covers the rest.
        assert_eq!(RuntimeOptions::default().resolve_transport(None), TransportKind::InProcess);
    }
}
