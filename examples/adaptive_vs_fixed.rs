//! Adaptive batch sizing vs fixed-batch training (the Fig. 6/7 mechanism).
//!
//! ```text
//! cargo run --release --example adaptive_vs_fixed
//! ```
//!
//! Trains the CIFAR-10 profile on cluster B three ways — PyTorch-DDP-style
//! (fixed batch, even split), Cannikin with the batch pinned to B₀ (split
//! adaptation only), and full Cannikin (goodput-adaptive batch + OptPerf
//! splits) — and prints time-to-target for each.

use cannikin::baselines::DdpTrainer;
use cannikin::prelude::*;
use cannikin::workloads::{clusters, profiles};

fn main() {
    let profile = profiles::cifar10_resnet18();
    let cluster = clusters::cluster_b();
    let target = profile.target_effective_epochs();
    println!("{} on cluster {}: target {} = {:.0}%\n", profile.name(), cluster.name, profile.target.name, profile.target.value * 100.0);

    let noise = || Box::new(LinearNoiseGrowth { initial: profile.noise.initial, rate: profile.noise.rate });

    // 1. PyTorch DDP: fixed B = 64, even split.
    let mut ddp = DdpTrainer::new(Simulator::new(cluster.clone(), profile.job.clone(), 5), noise(), profile.dataset_size, 64, 64);
    let ddp_records = ddp.train_until(target, 5000);
    let t_ddp = ddp_records.last().expect("ran").cumulative_time;

    // 2. Cannikin, batch pinned: only the local split adapts.
    let mut fixed = CannikinTrainer::builder()
        .simulator(Simulator::new(cluster.clone(), profile.job.clone(), 5))
        .noise_boxed(noise())
        .dataset_size(profile.dataset_size)
        .batch_range(64, profile.max_batch)
        .adaptive_batch(false)
        .build()
        .expect("valid configuration");
    let fixed_records = fixed.train_until(target, 5000).expect("run");
    let t_fixed = fixed_records.last().expect("ran").cumulative_time;

    // 3. Full Cannikin.
    let mut full = CannikinTrainer::builder()
        .simulator(Simulator::new(cluster.clone(), profile.job.clone(), 5))
        .noise_boxed(noise())
        .dataset_size(profile.dataset_size)
        .batch_range(64, profile.max_batch)
        .build()
        .expect("valid configuration");
    let full_records = full.train_until(target, 5000).expect("run");
    let t_full = full_records.last().expect("ran").cumulative_time;
    let b_final = full_records.last().expect("ran").total_batch;

    println!("{:<38} {:>12} {:>10}", "system", "time to 94%", "vs DDP");
    println!("{:<38} {:>11.0}s {:>10}", "PyTorch DDP (fixed B, even split)", t_ddp, "1.00x");
    println!("{:<38} {:>11.0}s {:>9.2}x", "Cannikin split-only (fixed B)", t_fixed, t_ddp / t_fixed);
    println!("{:<38} {:>11.0}s {:>9.2}x", "Cannikin full (adaptive B)", t_full, t_ddp / t_full);
    println!("\nthe split alone buys the straggler factor; the adaptive batch (final B = {b_final})");
    println!("buys the rest by amortizing communication once the gradient noise allows it");
}
