//! The fleet controller: admission, allocation, epoch-boundary preemption.
//!
//! One [`FleetController`] owns a [`NodePool`] and a stream of
//! [`FleetJobSpec`] submissions. Time is *fleet time*: the simulated
//! seconds accumulated by the jobs' own epoch clocks (`epoch_time` sums —
//! never host wall time, so a schedule is bitwise reproducible). Each job
//! carries a *frontier*, the fleet time at which its last epoch
//! completed; the controller always steps the running job with the
//! earliest frontier, which makes the interleaving of asynchronous
//! per-job epochs deterministic.
//!
//! Every epoch boundary is a decision point:
//!
//! 1. pending submissions whose arrival time has passed join the queue;
//! 2. the allocator ([`crate::alloc::targets`]) recomputes per-job node
//!    targets from GNS-driven demands;
//! 3. shrinks run first (through `Simulator::remove_node` +
//!    `CannikinTrainer::on_cluster_change`, slowest nodes released
//!    first), then grants (`add_node`, fastest free nodes first), then
//!    admissions (a fresh trainer on the granted sub-cluster);
//! 4. a fully evicted job checkpoints its *statistical* progress
//!    (effective epochs, wall clock, epoch count) and re-enters the
//!    queue; on re-admission [`CannikinTrainer::restore_progress`]
//!    resumes the count while the new node set re-profiles through the
//!    Eq. (8) bootstrap. Performance models are deliberately not
//!    checkpointed — they describe the *old* node set.
//!
//! Node crashes from a job's [`FaultPlan`](hetsim::FaultPlan) are
//! reconciled after each epoch: the trainer's fault-aware loop evicts
//! dead nodes from its own simulator mid-epoch, and the controller diffs
//! the simulator's surviving node names against the job's granted pool
//! ids, marking the difference dead in the pool (dead nodes never return
//! to the free list).

use crate::alloc::{self, AllocPolicy, JobDemand};
use crate::demand;
use crate::metrics::{jain_fairness, FleetReport, JobOutcome};
use crate::pool::NodePool;
use crate::spec::FleetJobSpec;

use cannikin_core::engine::{CannikinTrainer, EpochRecord, NoiseModel};
use cannikin_core::error::CannikinError;
use cannikin_telemetry::{
    self as telemetry, Event, FleetDecision, FleetJobSample, JobAdmitted, JobPreempted, NodeGranted, PreemptKind, SloRule,
};
use hetsim::cluster::{ClusterSpec, NodeSpec};
use hetsim::Simulator;

/// A free node replaces a held one only when it is at least this much
/// faster (effective flops ratio): a swap costs the job a bootstrap
/// re-profile, so marginal upgrades are not worth the churn. 1.25 admits
/// every cross-tier move in the Table 1 catalog (V100 → A100 is 2.5×)
/// while rejecting same-tier shuffling.
const UPGRADE_MARGIN: f64 = 1.25;

/// Why a fleet run could not proceed.
#[derive(Debug)]
pub enum FleetError {
    /// A job's trainer failed (solver infeasibility, bad batch range).
    Train(CannikinError),
    /// The submission stream or pool is malformed.
    InvalidSpec(String),
    /// The fleet can make no further progress (jobs stuck in the queue
    /// that no allocation can ever admit, or the epoch budget ran out).
    Stalled {
        /// Human-readable diagnosis.
        detail: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Train(e) => write!(f, "job trainer failed: {e}"),
            FleetError::InvalidSpec(s) => write!(f, "invalid fleet spec: {s}"),
            FleetError::Stalled { detail } => write!(f, "fleet stalled: {detail}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Train(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CannikinError> for FleetError {
    fn from(e: CannikinError) -> Self {
        FleetError::Train(e)
    }
}

/// Lifecycle of one managed job.
enum JobState {
    /// Submitted but not yet arrived.
    Pending,
    /// Arrived, waiting for nodes (fresh or evicted).
    Queued,
    /// Training on its granted sub-cluster.
    Running(Box<CannikinTrainer>),
    /// Reached its target effective epochs.
    Finished,
}

struct ManagedJob {
    spec: FleetJobSpec,
    state: JobState,
    /// Fleet time of the job's last completed epoch.
    frontier: f64,
    /// When the job last entered the queue (arrival or eviction time).
    queued_since: f64,
    /// First node grant (queueing-delay accounting).
    admitted_at: Option<f64>,
    finished_at: f64,
    /// Node-seconds of service received.
    service: f64,
    preemptions: usize,
    /// Granted pool ids, in the job's *simulator node order* — the
    /// controller keeps this list aligned with `sim.cluster().nodes`.
    node_ids: Vec<usize>,
    /// Checkpointed (effective_epochs, cumulative_time, epochs_run)
    /// surviving a full eviction.
    saved: (f64, f64, usize),
    final_effective: f64,
    final_epochs: usize,
    records: Vec<EpochRecord>,
    fifo_rank: usize,
    slice: usize,
    /// Measured time-to-target per node count (entry `k - 1` = `k`
    /// nodes), profiled once on first demand and cached — the realized
    /// scaling knee that caps the job's GNS-driven ask.
    scaling_curve: Option<Vec<f64>>,
}

/// The multi-tenant control plane (see the [module docs](self)).
pub struct FleetController {
    pool: NodePool,
    jobs: Vec<ManagedJob>,
    policy: AllocPolicy,
    clock: f64,
    decisions: u64,
    schedule_log: Vec<String>,
    assignment_history: Vec<Vec<Option<usize>>>,
}

impl FleetController {
    /// Build a controller over a node pool and a submission stream.
    ///
    /// # Errors
    ///
    /// Rejects an empty pool, duplicate job names, non-positive targets,
    /// a `min_nodes` no allocation could ever satisfy, and a `min_nodes`
    /// larger than the job's base batch (every node needs ≥ 1 sample).
    pub fn new(
        nodes: Vec<NodeSpec>,
        specs: Vec<FleetJobSpec>,
        policy: AllocPolicy,
    ) -> Result<Self, FleetError> {
        if nodes.is_empty() {
            return Err(FleetError::InvalidSpec("the pool needs at least one node".into()));
        }
        let pool = NodePool::new(nodes);
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err(FleetError::InvalidSpec("job names must be unique".into()));
        }
        for s in &specs {
            if s.min_nodes > pool.len() {
                return Err(FleetError::InvalidSpec(format!(
                    "job {} needs {} nodes but the pool has {}",
                    s.name,
                    s.min_nodes,
                    pool.len()
                )));
            }
            if s.min_nodes as u64 > s.config.base_batch {
                return Err(FleetError::InvalidSpec(format!(
                    "job {}: min_nodes {} exceeds base batch {}",
                    s.name, s.min_nodes, s.config.base_batch
                )));
            }
            // NaN-safe: only a strictly positive finite target passes.
            if s.target_effective_epochs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(FleetError::InvalidSpec(format!(
                    "job {}: target effective epochs must be positive",
                    s.name
                )));
            }
            // The trainer runs without gradient accumulation, so a job
            // whose base batch cannot fit in the entire pool's memory
            // (at most `max_nodes` nodes of it) can never step.
            let mut caps: Vec<u64> = (0..pool.len())
                .map(|id| s.job.max_local_batch(pool.spec(id).effective_memory_bytes()))
                .collect();
            caps.sort_unstable_by(|a, b| b.cmp(a));
            let reachable: u64 = caps.iter().take(s.max_nodes.min(pool.len())).sum();
            if reachable < s.config.base_batch {
                return Err(FleetError::InvalidSpec(format!(
                    "job {}: base batch {} exceeds the pool's reachable memory capacity {}",
                    s.name, s.config.base_batch, reachable
                )));
            }
        }
        // FIFO ranks by (arrival, name); static slices partition the pool
        // over *all* trace jobs in that order, earliest jobs taking the
        // remainder — fixed for the whole run, the classic baseline.
        let mut order: Vec<usize> = (0..specs.len()).collect();
        order.sort_by(|&a, &b| {
            specs[a]
                .arrival
                .total_cmp(&specs[b].arrival)
                .then_with(|| specs[a].name.cmp(&specs[b].name))
        });
        let mut rank = vec![0usize; specs.len()];
        for (r, &i) in order.iter().enumerate() {
            rank[i] = r;
        }
        let m = specs.len().max(1);
        let (slice_base, slice_extra) = (pool.len() / m, pool.len() % m);
        let jobs = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| ManagedJob {
                queued_since: spec.arrival,
                frontier: spec.arrival,
                spec,
                state: JobState::Pending,
                admitted_at: None,
                finished_at: 0.0,
                service: 0.0,
                preemptions: 0,
                node_ids: Vec::new(),
                saved: (0.0, 0.0, 0),
                final_effective: 0.0,
                final_epochs: 0,
                records: Vec::new(),
                fifo_rank: rank[i],
                slice: slice_base + usize::from(rank[i] < slice_extra),
                scaling_curve: None,
            })
            .collect();
        Ok(FleetController {
            pool,
            jobs,
            policy,
            clock: 0.0,
            decisions: 0,
            schedule_log: Vec::new(),
            assignment_history: Vec::new(),
        })
    }

    /// The allocation policy under which this fleet runs.
    pub fn policy(&self) -> AllocPolicy {
        self.policy
    }

    /// Current fleet time, s.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Allocation decisions taken so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// The shared node pool (inspection/tests).
    pub fn pool(&self) -> &NodePool {
        &self.pool
    }

    /// One line per allocation decision: fleet time plus every job's
    /// granted node names. Bitwise identical across same-seed runs — the
    /// determinism tests compare these logs verbatim.
    pub fn schedule_log(&self) -> &[String] {
        &self.schedule_log
    }

    /// Pool-assignment snapshot (`node id → owning job`) after each
    /// decision, aligned with [`FleetController::schedule_log`].
    pub fn assignment_history(&self) -> &[Vec<Option<usize>>] {
        &self.assignment_history
    }

    /// The epoch records a job has produced so far (across preemptions).
    pub fn job_records(&self, name: &str) -> Option<&[EpochRecord]> {
        self.jobs.iter().find(|j| j.spec.name == name).map(|j| j.records.as_slice())
    }

    /// Every service-level objective the fleet should be judged against:
    /// the fleet-wide defaults followed by each job's own rules, in
    /// submission order. Feed this to `SloMonitor::install` (online) and
    /// `replay_slos` (offline) so both sides see the same rule list.
    pub fn slo_rules(&self) -> Vec<SloRule> {
        let mut rules = cannikin_telemetry::default_fleet_slos();
        for job in &self.jobs {
            rules.extend(job.spec.slos.iter().cloned());
        }
        rules
    }

    /// Advance the fleet by one event: move the clock to the next epoch
    /// boundary (or arrival), re-run the allocator, and execute one epoch
    /// of the earliest-frontier job. Returns `Ok(false)` once every job
    /// has finished.
    ///
    /// # Errors
    ///
    /// [`FleetError::Train`] if a job's trainer fails;
    /// [`FleetError::Stalled`] if queued jobs remain that no allocation
    /// can ever admit.
    pub fn step(&mut self) -> Result<bool, FleetError> {
        if self.jobs.iter().all(|j| matches!(j.state, JobState::Finished)) {
            return Ok(false);
        }
        // The clock jumps to the earliest running frontier; with nothing
        // running, to the next arrival (decisions happen at epoch
        // boundaries, so arrivals are absorbed at the next boundary).
        let next_frontier = self
            .jobs
            .iter()
            .filter(|j| matches!(j.state, JobState::Running(_)))
            .map(|j| j.frontier)
            .min_by(f64::total_cmp);
        match next_frontier {
            Some(t) => self.clock = self.clock.max(t),
            None => {
                if let Some(t) = self
                    .jobs
                    .iter()
                    .filter(|j| matches!(j.state, JobState::Pending))
                    .map(|j| j.spec.arrival)
                    .min_by(f64::total_cmp)
                {
                    self.clock = self.clock.max(t);
                }
            }
        }
        for job in &mut self.jobs {
            if matches!(job.state, JobState::Pending) && job.spec.arrival <= self.clock {
                job.state = JobState::Queued;
                job.queued_since = job.spec.arrival;
            }
        }
        self.decide()?;
        let run_idx = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| matches!(j.state, JobState::Running(_)))
            .min_by(|(ai, a), (bi, b)| a.frontier.total_cmp(&b.frontier).then(ai.cmp(bi)))
            .map(|(i, _)| i);
        let Some(i) = run_idx else {
            if self.jobs.iter().any(|j| matches!(j.state, JobState::Pending)) {
                return Ok(true); // idle until the next arrival
            }
            if self.jobs.iter().any(|j| matches!(j.state, JobState::Queued)) {
                return Err(FleetError::Stalled {
                    detail: format!(
                        "queued jobs cannot be admitted on {} live nodes",
                        self.pool.live()
                    ),
                });
            }
            return Ok(false);
        };
        self.run_one_epoch(i)?;
        Ok(true)
    }

    /// Run the whole stream to completion and return the fleet report.
    ///
    /// # Errors
    ///
    /// As [`FleetController::step`]; additionally stalls if the stream
    /// does not drain within `max_epochs` controller steps.
    pub fn run_to_completion(&mut self, max_epochs: usize) -> Result<FleetReport, FleetError> {
        let mut steps = 0usize;
        while self.step()? {
            steps += 1;
            if steps > max_epochs {
                return Err(FleetError::Stalled {
                    detail: format!("stream did not drain within {max_epochs} steps"),
                });
            }
        }
        Ok(self.report())
    }

    /// The fleet report over the jobs' current state (complete once
    /// [`FleetController::run_to_completion`] returns).
    pub fn report(&self) -> FleetReport {
        let jobs: Vec<JobOutcome> = self
            .jobs
            .iter()
            .map(|j| JobOutcome {
                name: j.spec.name.clone(),
                priority: j.spec.priority.as_str(),
                arrival: j.spec.arrival,
                admitted_at: j.admitted_at.unwrap_or(j.spec.arrival),
                finished_at: j.finished_at,
                effective_epochs: j.final_effective,
                epochs_run: j.final_epochs,
                service: j.service,
                preemptions: j.preemptions,
            })
            .collect();
        let makespan = jobs.iter().map(|j| j.finished_at).fold(0.0, f64::max);
        let useful: f64 = self
            .jobs
            .iter()
            .map(|j| j.final_effective * j.spec.config.dataset_size as f64)
            .sum();
        let mean_queue_delay = if jobs.is_empty() {
            0.0
        } else {
            jobs.iter().map(JobOutcome::queue_delay).sum::<f64>() / jobs.len() as f64
        };
        let weighted: Vec<f64> =
            self.jobs.iter().map(|j| j.service / j.spec.priority.weight()).collect();
        FleetReport {
            policy: self.policy,
            makespan,
            aggregate_goodput: if makespan > 0.0 { useful / makespan } else { 0.0 },
            mean_queue_delay,
            fairness: jain_fairness(&weighted),
            decisions: self.decisions,
            jobs,
        }
    }

    /// One allocation decision: demands → targets → shrinks → grants →
    /// admissions, with telemetry and the schedule-log line.
    fn decide(&mut self) -> Result<(), FleetError> {
        // Node deaths can strand a running job below memory feasibility
        // (surviving caps < base batch — the trainer cannot step). Such
        // a job is checkpointed and requeued; it re-enters when a
        // feasible grant exists.
        for i in 0..self.jobs.len() {
            let job = &self.jobs[i];
            if !matches!(job.state, JobState::Running(_)) {
                continue;
            }
            let cap_sum: u64 = job
                .node_ids
                .iter()
                .map(|&id| job.spec.job.max_local_batch(self.pool.spec(id).effective_memory_bytes()))
                .sum();
            if cap_sum < job.spec.config.base_batch {
                self.shrink(i, 0, PreemptKind::NodeFailure);
            }
        }
        // Reference ranking for the demand profiler: the pool's live
        // nodes fastest-first, independent of current ownership, so a
        // job's demand doesn't wobble with who holds what.
        let ranked: Vec<_> =
            self.pool.ranked_live().into_iter().map(|id| self.pool.spec(id).clone()).collect();
        // Profile each admitted job's realized scaling curve once (only
        // the adaptive policy reads `want`; the baselines skip the cost).
        if self.policy == AllocPolicy::Cannikin {
            for i in 0..self.jobs.len() {
                let job = &self.jobs[i];
                if !matches!(job.state, JobState::Queued | JobState::Running(_))
                    || job.scaling_curve.is_some()
                {
                    continue;
                }
                let cap = job
                    .spec
                    .max_nodes
                    .min(self.pool.len())
                    .min(job.spec.config.base_batch as usize)
                    .max(1);
                let curve = demand::measured_scaling_curve(
                    &job.spec.job,
                    &job.spec.config,
                    job.spec.noise,
                    job.spec.seed,
                    job.spec.target_effective_epochs,
                    &ranked,
                    cap,
                );
                self.jobs[i].scaling_curve = Some(curve);
            }
        }
        let mut demands: Vec<JobDemand> = Vec::new();
        for (i, job) in self.jobs.iter().enumerate() {
            let (phi, held, running) = match &job.state {
                JobState::Queued => (job.spec.noise.noise_scale(job.saved.0), 0, false),
                JobState::Running(t) => (t.noise_scale_now(), job.node_ids.len(), true),
                _ => continue,
            };
            let cap = job
                .spec
                .max_nodes
                .min(self.pool.len())
                .min(job.spec.config.base_batch as usize)
                .max(1);
            // A running job's floor is what it still holds: node deaths
            // below the spec minimum shrink the floor rather than forcing
            // an eviction of the survivors.
            let min_eff = if running {
                job.spec.min_nodes.min(held).max(1).min(cap)
            } else {
                job.spec.min_nodes.min(cap)
            };
            // GNS-justified parallelism, capped by the measured knee:
            // never ask past what the noise scale can absorb, nor past
            // where realized scaling stopped paying.
            let statistical =
                demand::profiled_nodes(&job.spec.job, &job.spec.config, &ranked, phi, min_eff, cap);
            let want = match &job.scaling_curve {
                Some(curve) => statistical.min(demand::scaling_knee(curve, min_eff, cap)),
                None => statistical,
            };
            demands.push(JobDemand {
                job: i,
                weight: job.spec.priority.weight(),
                arrival: job.spec.arrival,
                min_nodes: min_eff,
                max_nodes: cap,
                want,
                held,
                slice: job.slice,
                fifo_rank: job.fifo_rank,
            });
        }
        if demands.is_empty() {
            return Ok(());
        }
        let targets = alloc::targets(self.policy, &demands, &self.pool);

        // Hysteresis: every membership change costs the affected job a
        // bootstrap re-profile (a few epochs of suboptimal splits), so a
        // reallocation has to pay for itself. A running job keeps a small
        // surplus over its target unless a queued admission needs nodes
        // that free capacity (plus deliberate evictions) cannot cover, or
        // the surplus is large enough to be a genuine imbalance. Full
        // evictions (target 0) are deliberate preemptions and stand.
        const RELEASE_SURPLUS: usize = 2;
        let free = self.pool.free_ids().len();
        let queued_need: usize = demands
            .iter()
            .zip(&targets)
            .filter(|(d, &t)| d.held == 0 && t > 0)
            .map(|(_, &t)| t)
            .sum();
        let evicted: usize = demands
            .iter()
            .zip(&targets)
            .filter(|(d, &t)| d.held > 0 && t == 0)
            .map(|(d, _)| d.held)
            .sum();
        let mut deficit = queued_need.saturating_sub(free + evicted);
        let mut adjusted = targets.clone();
        let mut holders: Vec<usize> = (0..demands.len())
            .filter(|&k| demands[k].held > 0 && targets[k] > 0 && targets[k] < demands[k].held)
            .collect();
        // Lightest class releases first; among equals, newest arrival.
        holders.sort_by(|&a, &b| {
            demands[a]
                .weight
                .total_cmp(&demands[b].weight)
                .then(demands[b].arrival.total_cmp(&demands[a].arrival))
                .then(b.cmp(&a))
        });
        for k in holders {
            let surplus = demands[k].held - targets[k];
            if surplus >= RELEASE_SURPLUS {
                deficit = deficit.saturating_sub(surplus);
            } else {
                let give = surplus.min(deficit);
                adjusted[k] = demands[k].held - give;
                deficit -= give;
            }
        }

        let mut reassigned = 0u32;
        // Shrinks first, so freed capacity is available to the grants.
        for (d, &t) in demands.iter().zip(&adjusted) {
            if d.held > 0 && t < d.held {
                // Losing nodes while a heavier job waits in the queue is a
                // priority eviction; otherwise plain fair-share rebalance.
                let for_priority = demands
                    .iter()
                    .zip(&targets)
                    .any(|(o, &ot)| o.held == 0 && ot > 0 && o.weight > d.weight);
                let reason = if for_priority {
                    PreemptKind::PriorityEviction
                } else {
                    PreemptKind::FairShare
                };
                reassigned += (d.held - t) as u32;
                self.shrink(d.job, t, reason);
            }
        }
        // Grants: queued jobs are admitted before running jobs grow (so
        // growth never starves an admission), heaviest class first.
        let mut grant_order: Vec<usize> = (0..demands.len()).collect();
        grant_order.sort_by(|&a, &b| {
            let queued_a = matches!(self.jobs[demands[a].job].state, JobState::Queued);
            let queued_b = matches!(self.jobs[demands[b].job].state, JobState::Queued);
            queued_b
                .cmp(&queued_a)
                .then(demands[b].weight.total_cmp(&demands[a].weight))
                .then(demands[a].arrival.total_cmp(&demands[b].arrival))
                .then(a.cmp(&b))
        });
        for k in grant_order {
            let (d, t) = (&demands[k], adjusted[k]);
            let held = self.jobs[d.job].node_ids.len();
            if matches!(self.jobs[d.job].state, JobState::Running(_)) && t > held {
                reassigned += self.grow(d.job, t) as u32;
            } else if matches!(self.jobs[d.job].state, JobState::Queued) && t > 0 {
                reassigned += self.admit(d.job, t, d.min_nodes)? as u32;
            }
        }

        // Upgrade pass (adaptive policy only): with admissions and grows
        // served, running jobs trade their slowest nodes for strictly
        // faster leftover free nodes — one membership change per job, so
        // a single re-profile buys the whole swap set. This is what keeps
        // a long tail job off a slow node while fast ones sit idle.
        if self.policy == AllocPolicy::Cannikin {
            let mut order: Vec<usize> = (0..self.jobs.len())
                .filter(|&i| matches!(self.jobs[i].state, JobState::Running(_)))
                .collect();
            order.sort_by(|&a, &b| {
                self.jobs[b]
                    .spec
                    .priority
                    .weight()
                    .total_cmp(&self.jobs[a].spec.priority.weight())
                    .then(self.jobs[a].spec.arrival.total_cmp(&self.jobs[b].spec.arrival))
                    .then(a.cmp(&b))
            });
            for i in order {
                reassigned += self.upgrade(i) as u32;
            }
        }

        self.decisions += 1;
        let running = self.jobs.iter().filter(|j| matches!(j.state, JobState::Running(_))).count();
        let queued = self.jobs.iter().filter(|j| matches!(j.state, JobState::Queued)).count();
        telemetry::emit(Event::FleetDecision(FleetDecision {
            decision: self.decisions,
            running: running as u32,
            queued: queued as u32,
            reassigned,
            pool: self.pool.live() as u32,
        }));
        // Mission-control gauges and per-job allocation samples. Every
        // value derives from deterministic fleet state (decision counter,
        // simulated clock, node counts) — never wall time — so same-seed
        // runs export identical series.
        let live = self.pool.live();
        let free_now = self.pool.free_ids().len();
        telemetry::counter(
            "fleet_pool_util",
            if live > 0 { (live - free_now) as f64 / live as f64 } else { 0.0 },
        );
        telemetry::counter("fleet_queue_depth", queued as f64);
        let useful: f64 =
            self.jobs.iter().map(|j| j.final_effective * j.spec.config.dataset_size as f64).sum();
        telemetry::counter("fleet_goodput", if self.clock > 0.0 { useful / self.clock } else { 0.0 });
        let weighted: Vec<f64> =
            self.jobs.iter().map(|j| j.service / j.spec.priority.weight()).collect();
        telemetry::counter("fleet_fairness", jain_fairness(&weighted));
        for d in &demands {
            let job = &self.jobs[d.job];
            telemetry::emit(Event::FleetJobSample(FleetJobSample {
                decision: self.decisions,
                job: job.spec.name.clone(),
                granted: job.node_ids.len() as u32,
                demanded: d.want as u32,
                weighted_service: job.service / job.spec.priority.weight(),
            }));
        }
        let holds: Vec<String> = self
            .jobs
            .iter()
            .map(|j| {
                let names: Vec<&str> =
                    j.node_ids.iter().map(|&id| self.pool.spec(id).name.as_str()).collect();
                format!("{}={names:?}", j.spec.name)
            })
            .collect();
        self.schedule_log.push(format!("d{} t={:.9} {}", self.decisions, self.clock, holds.join(" ")));
        self.assignment_history.push(self.pool.assignments());
        Ok(())
    }

    /// Shrink a running job to `target` nodes (0 = full eviction back to
    /// the queue, with its statistical progress checkpointed).
    fn shrink(&mut self, i: usize, target: usize, reason: PreemptKind) {
        let held = self.jobs[i].node_ids.len();
        let lost = held - target;
        if target == 0 {
            let clock = self.clock;
            let job = &mut self.jobs[i];
            let prev = std::mem::replace(&mut job.state, JobState::Queued);
            if let JobState::Running(trainer) = prev {
                job.saved =
                    (trainer.effective_epochs(), trainer.cumulative_time(), trainer.epochs_run());
            }
            job.queued_since = clock;
            let ids = std::mem::take(&mut job.node_ids);
            for id in ids {
                self.pool.release(id);
            }
        } else {
            // Victims: slowest first (ascending effective FLOPS, name as
            // tie-break) — keep the productive nodes on the job.
            let ids = self.jobs[i].node_ids.clone();
            let mut pos: Vec<usize> = (0..ids.len()).collect();
            pos.sort_by(|&a, &b| {
                self.pool
                    .spec(ids[a])
                    .effective_flops()
                    .total_cmp(&self.pool.spec(ids[b]).effective_flops())
                    .then_with(|| self.pool.spec(ids[a]).name.cmp(&self.pool.spec(ids[b]).name))
            });
            let mut victims: Vec<usize> = pos.into_iter().take(lost).collect();
            // Never shrink past memory feasibility: the kept caps must
            // still cover the base batch (no gradient accumulation).
            // Victims are slowest-first, so popping returns the fastest
            // (largest-memory) victims to the job first.
            {
                let spec = &self.jobs[i].spec;
                let cap_of = |id: usize| {
                    spec.job.max_local_batch(self.pool.spec(id).effective_memory_bytes())
                };
                let total_cap: u64 = ids.iter().map(|&id| cap_of(id)).sum();
                let mut victim_cap: u64 = victims.iter().map(|&p| cap_of(ids[p])).sum();
                while let Some(&p) = victims.last() {
                    if total_cap - victim_cap >= spec.config.base_batch {
                        break;
                    }
                    victim_cap -= cap_of(ids[p]);
                    victims.pop();
                }
            }
            if victims.is_empty() {
                return;
            }
            // Remove by descending simulator position: `remove_node`
            // renumbers everything after the hole.
            victims.sort_unstable_by(|a, b| b.cmp(a));
            let lost = victims.len();
            let job = &mut self.jobs[i];
            if let JobState::Running(trainer) = &mut job.state {
                for &p in &victims {
                    trainer.simulator_mut().remove_node(p);
                    let id = job.node_ids.remove(p);
                    self.pool.release(id);
                }
                trainer.on_cluster_change();
            }
            telemetry::emit(Event::JobPreempted(JobPreempted {
                job: self.jobs[i].spec.name.clone(),
                nodes_lost: lost as u32,
                reason,
            }));
            self.jobs[i].preemptions += 1;
            return;
        }
        telemetry::emit(Event::JobPreempted(JobPreempted {
            job: self.jobs[i].spec.name.clone(),
            nodes_lost: lost as u32,
            reason,
        }));
        self.jobs[i].preemptions += 1;
    }

    /// Grow a running job toward `target` nodes from the free pool.
    /// Returns how many nodes were actually granted.
    fn grow(&mut self, i: usize, target: usize) -> usize {
        let held = self.jobs[i].node_ids.len();
        let take: Vec<usize> = self.pool.free_ids().into_iter().take(target - held).collect();
        if take.is_empty() {
            return 0;
        }
        for &id in &take {
            self.pool.assign(id, i);
        }
        let specs: Vec<NodeSpec> = take.iter().map(|&id| self.pool.spec(id).clone()).collect();
        let job = &mut self.jobs[i];
        if let JobState::Running(trainer) = &mut job.state {
            for (&id, spec) in take.iter().zip(specs) {
                telemetry::emit(Event::NodeGranted(NodeGranted {
                    node: spec.name.clone(),
                    job: job.spec.name.clone(),
                }));
                trainer.simulator_mut().add_node(spec);
                job.node_ids.push(id);
            }
            trainer.on_cluster_change();
        }
        take.len()
    }

    /// Swap a running job's slowest nodes for strictly faster free ones
    /// (each incoming node at least [`UPGRADE_MARGIN`]× the flops of the
    /// node it replaces), as one membership change. Returns the number
    /// of nodes swapped in.
    fn upgrade(&mut self, i: usize) -> usize {
        let free = self.pool.free_ids();
        if free.is_empty() {
            return 0;
        }
        let ids = self.jobs[i].node_ids.clone();
        // Held nodes slowest-first; free nodes are already fastest-first.
        let mut pos: Vec<usize> = (0..ids.len()).collect();
        pos.sort_by(|&a, &b| {
            self.pool
                .spec(ids[a])
                .effective_flops()
                .total_cmp(&self.pool.spec(ids[b]).effective_flops())
                .then_with(|| self.pool.spec(ids[a]).name.cmp(&self.pool.spec(ids[b]).name))
        });
        // Greedy pairing: fastest free against slowest held. Both lists
        // are monotone, so the first failing pair ends the scan.
        let mut swaps: Vec<(usize, usize)> = Vec::new();
        for (&p, &f) in pos.iter().zip(&free) {
            let held_flops = self.pool.spec(ids[p]).effective_flops();
            if self.pool.spec(f).effective_flops() >= UPGRADE_MARGIN * held_flops {
                swaps.push((p, f));
            } else {
                break;
            }
        }
        // Keep the post-swap node set memory-feasible (drop the least
        // beneficial swaps first — the list is best-first).
        {
            let spec = &self.jobs[i].spec;
            let cap_of =
                |id: usize| spec.job.max_local_batch(self.pool.spec(id).effective_memory_bytes());
            loop {
                let out: u64 = swaps.iter().map(|&(p, _)| cap_of(ids[p])).sum();
                let inn: u64 = swaps.iter().map(|&(_, f)| cap_of(f)).sum();
                let total: u64 = ids.iter().map(|&id| cap_of(id)).sum::<u64>() + inn - out;
                if total >= spec.config.base_batch || swaps.is_empty() {
                    break;
                }
                swaps.pop();
            }
        }
        if swaps.is_empty() {
            return 0;
        }
        for &(p, f) in &swaps {
            self.pool.release(ids[p]);
            self.pool.assign(f, i);
            telemetry::emit(Event::NodeGranted(NodeGranted {
                node: self.pool.spec(f).name.clone(),
                job: self.jobs[i].spec.name.clone(),
            }));
        }
        let incoming: Vec<(usize, NodeSpec)> =
            swaps.iter().map(|&(_, f)| (f, self.pool.spec(f).clone())).collect();
        // Remove by descending simulator position (`remove_node`
        // renumbers), then append the replacements.
        let mut victims: Vec<usize> = swaps.iter().map(|&(p, _)| p).collect();
        victims.sort_unstable_by(|a, b| b.cmp(a));
        let count = swaps.len();
        let job = &mut self.jobs[i];
        if let JobState::Running(trainer) = &mut job.state {
            // Add before removing: the simulator refuses to go empty,
            // and appending keeps the victims' positions valid.
            for (f, spec) in incoming {
                trainer.simulator_mut().add_node(spec);
                job.node_ids.push(f);
            }
            for &p in &victims {
                trainer.simulator_mut().remove_node(p);
                job.node_ids.remove(p);
            }
            trainer.on_cluster_change();
        }
        count
    }

    /// Admit a queued job on up to `target` free nodes (at least
    /// `min_needed`, else it stays queued). Returns the grant size.
    fn admit(&mut self, i: usize, target: usize, min_needed: usize) -> Result<usize, FleetError> {
        let free = self.pool.free_ids();
        let mut k = target.min(free.len());
        if k == 0 || k < min_needed {
            return Ok(0);
        }
        // Memory-feasibility pad: the trainer runs without gradient
        // accumulation, so the granted caps must cover the base batch.
        // Extend the grant with further free nodes until they do; if
        // even every free node cannot, the job stays queued.
        {
            let spec = &self.jobs[i].spec;
            let cap_of = |id: usize| spec.job.max_local_batch(self.pool.spec(id).effective_memory_bytes());
            let mut cap_sum: u64 = free[..k].iter().map(|&id| cap_of(id)).sum();
            while cap_sum < spec.config.base_batch && k < free.len().min(spec.max_nodes) {
                cap_sum += cap_of(free[k]);
                k += 1;
            }
            if cap_sum < spec.config.base_batch {
                return Ok(0);
            }
        }
        let take = &free[..k];
        let specs: Vec<NodeSpec> = take.iter().map(|&id| self.pool.spec(id).clone()).collect();
        for &id in take {
            self.pool.assign(id, i);
        }
        let clock = self.clock;
        let job = &mut self.jobs[i];
        let cluster = ClusterSpec::new(format!("fleet-{}", job.spec.name), specs.clone());
        let mut sim = Simulator::new(cluster, job.spec.job.clone(), job.spec.seed);
        if let Some(plan) = job.spec.fault_plan.take() {
            sim = sim.with_fault_plan(plan);
        }
        let mut trainer = CannikinTrainer::builder()
            .simulator(sim)
            .noise(job.spec.noise)
            .config(job.spec.config.clone())
            .policy(job.spec.policy)
            .build()
            .map_err(FleetError::Train)?;
        if job.saved.2 > 0 {
            trainer.restore_progress(job.saved.0, job.saved.1, job.saved.2);
        }
        job.node_ids = take.to_vec();
        job.frontier = clock;
        if job.admitted_at.is_none() {
            job.admitted_at = Some(clock);
        }
        let queued_s = (clock - job.queued_since).max(0.0);
        job.state = JobState::Running(Box::new(trainer));
        telemetry::emit(Event::JobAdmitted(JobAdmitted {
            job: job.spec.name.clone(),
            nodes: k as u32,
            queued_s,
        }));
        for spec in &specs {
            telemetry::emit(Event::NodeGranted(NodeGranted {
                node: spec.name.clone(),
                job: job.spec.name.clone(),
            }));
        }
        Ok(k)
    }

    /// Run one epoch of job `i`, advance its frontier, reconcile node
    /// deaths into the pool, and retire it if it reached its target.
    fn run_one_epoch(&mut self, i: usize) -> Result<(), FleetError> {
        let held = self.jobs[i].node_ids.len();
        let target = self.jobs[i].spec.target_effective_epochs;
        let mut dead_ids: Vec<usize> = Vec::new();
        let done;
        {
            let job = &mut self.jobs[i];
            let JobState::Running(trainer) = &mut job.state else {
                return Ok(());
            };
            let record = trainer.run_epoch().map_err(FleetError::Train)?;
            job.frontier += record.epoch_time;
            job.service += held as f64 * record.epoch_time;
            job.final_effective = trainer.effective_epochs();
            job.final_epochs = trainer.epochs_run();
            done = trainer.effective_epochs() >= target;
            // Death reconciliation: the fault-aware loop may have evicted
            // crashed nodes from the job's simulator mid-epoch; mirror
            // that into the pool by diffing surviving node names.
            let alive: Vec<String> =
                trainer.simulator_mut().cluster().nodes.iter().map(|n| n.name.clone()).collect();
            let mut kept = Vec::with_capacity(job.node_ids.len());
            for &id in &job.node_ids {
                if alive.iter().any(|n| *n == self.pool.spec(id).name) {
                    kept.push(id);
                } else {
                    dead_ids.push(id);
                }
            }
            job.node_ids = kept;
            job.records.push(record);
        }
        if !dead_ids.is_empty() {
            for &id in &dead_ids {
                self.pool.mark_dead(id);
            }
            telemetry::emit(Event::JobPreempted(JobPreempted {
                job: self.jobs[i].spec.name.clone(),
                nodes_lost: dead_ids.len() as u32,
                reason: PreemptKind::NodeFailure,
            }));
            self.jobs[i].preemptions += 1;
        }
        if done {
            let job = &mut self.jobs[i];
            job.finished_at = job.frontier;
            job.state = JobState::Finished;
            let ids = std::mem::take(&mut job.node_ids);
            for id in ids {
                self.pool.release(id);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Priority;
    use cannikin_core::engine::TrainerConfig;
    use hetsim::catalog::Gpu;
    use hetsim::job::JobSpec;

    fn nodes4() -> Vec<NodeSpec> {
        vec![
            NodeSpec::new("a100-0", Gpu::A100),
            NodeSpec::new("a100-1", Gpu::A100),
            NodeSpec::new("v100-0", Gpu::V100),
            NodeSpec::new("rtx-0", Gpu::Rtx6000),
        ]
    }

    fn two_jobs() -> Vec<FleetJobSpec> {
        vec![
            FleetJobSpec::new(
                "cifar",
                JobSpec::resnet18_cifar10(),
                TrainerConfig::new(6_400, 64, 512),
                1.5,
            )
            .priority(Priority::Production)
            .seed(1),
            FleetJobSpec::new(
                "neumf",
                JobSpec::neumf_movielens(),
                TrainerConfig::new(6_400, 64, 512),
                1.0,
            )
            .arrival(20.0)
            .seed(2),
        ]
    }

    #[test]
    fn stream_drains_and_reports() {
        let mut fleet = FleetController::new(nodes4(), two_jobs(), AllocPolicy::Cannikin).unwrap();
        let report = fleet.run_to_completion(2_000).unwrap();
        assert_eq!(report.jobs.len(), 2);
        assert!(report.makespan > 0.0);
        assert!(report.aggregate_goodput > 0.0);
        for job in &report.jobs {
            assert!(job.effective_epochs > 0.0, "{} made progress", job.name);
            assert!(job.finished_at > 0.0, "{} finished", job.name);
            assert!(job.service > 0.0);
        }
        assert!(report.fairness > 0.0 && report.fairness <= 1.0 + 1e-12);
        // All nodes returned to the pool at the end.
        assert!(fleet.pool().assignments().iter().all(Option::is_none));
    }

    #[test]
    fn late_arrival_waits_for_its_clock() {
        let mut fleet = FleetController::new(nodes4(), two_jobs(), AllocPolicy::Cannikin).unwrap();
        let report = fleet.run_to_completion(2_000).unwrap();
        let neumf = report.jobs.iter().find(|j| j.name == "neumf").unwrap();
        assert!(neumf.admitted_at >= 20.0, "admitted at {} >= arrival", neumf.admitted_at);
    }

    #[test]
    fn all_three_policies_drain() {
        for policy in [AllocPolicy::Cannikin, AllocPolicy::Fifo, AllocPolicy::Static] {
            let mut fleet = FleetController::new(nodes4(), two_jobs(), policy).unwrap();
            let report = fleet.run_to_completion(4_000).unwrap();
            assert!(report.jobs.iter().all(|j| j.finished_at > 0.0), "{policy:?} drains");
        }
    }

    #[test]
    fn per_job_adaptation_policies_drain() {
        use cannikin_core::policy::PolicyKind;
        let specs = vec![
            FleetJobSpec::new("opt", JobSpec::resnet18_cifar10(), TrainerConfig::new(6_400, 64, 512), 1.0)
                .seed(1),
            FleetJobSpec::new("even", JobSpec::resnet18_cifar10(), TrainerConfig::new(6_400, 64, 512), 1.0)
                .policy(PolicyKind::Even)
                .seed(2),
            FleetJobSpec::new("rl", JobSpec::neumf_movielens(), TrainerConfig::new(6_400, 64, 512), 1.0)
                .policy(PolicyKind::Rl)
                .seed(3),
        ];
        let mut fleet = FleetController::new(nodes4(), specs, AllocPolicy::Cannikin).unwrap();
        let report = fleet.run_to_completion(4_000).unwrap();
        assert_eq!(report.jobs.len(), 3);
        assert!(report.jobs.iter().all(|j| j.finished_at > 0.0), "all policies drain");
    }

    #[test]
    fn duplicate_names_rejected() {
        let specs = vec![
            FleetJobSpec::new("x", JobSpec::resnet18_cifar10(), TrainerConfig::new(6_400, 64, 512), 1.0),
            FleetJobSpec::new("x", JobSpec::neumf_movielens(), TrainerConfig::new(6_400, 64, 512), 1.0),
        ];
        assert!(matches!(
            FleetController::new(nodes4(), specs, AllocPolicy::Cannikin),
            Err(FleetError::InvalidSpec(_))
        ));
    }

    #[test]
    fn impossible_minimum_rejected() {
        let specs = vec![FleetJobSpec::new(
            "big",
            JobSpec::resnet18_cifar10(),
            TrainerConfig::new(6_400, 64, 512),
            1.0,
        )
        .node_range(9, 9)];
        assert!(matches!(
            FleetController::new(nodes4(), specs, AllocPolicy::Cannikin),
            Err(FleetError::InvalidSpec(_))
        ));
    }
}
