//! Perf regression gate over the `BENCH_perf.json` trajectory.
//!
//! Re-measures the raw-speed triad (SIMD GEMM speedup, codec byte
//! reduction, compute/comm overlap) with the pinned perf seed, writes the
//! fresh report, and fails if any *ratio* regressed more than the allowed
//! fraction against the committed baseline. Ratios — not absolute
//! GFLOP/s or wall seconds — are what gate, so the check is portable
//! across machine generations.
//!
//! ```text
//! perfgate [--baseline PATH] [--out PATH] [--max-regression FRAC] [--write-baseline PATH]
//! ```
//!
//! With `--write-baseline` the fresh report is written to that path and
//! no comparison happens (how the committed baseline is produced).

use cannikin_bench::experiments::{perf_report, PerfReport};
use cannikin_bench::gate::{load_baseline_json, render_all, GateCheck};
use std::process::ExitCode;

struct Args {
    baseline: Option<String>,
    out: Option<String>,
    max_regression: f64,
    write_baseline: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: None,
        out: None,
        max_regression: 0.10,
        write_baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--out" => args.out = Some(value("--out")?),
            "--write-baseline" => args.write_baseline = Some(value("--write-baseline")?),
            "--max-regression" => {
                let raw = value("--max-regression")?;
                let frac: f64 =
                    raw.parse().map_err(|_| format!("--max-regression: `{raw}` is not a number"))?;
                if !(0.0..1.0).contains(&frac) {
                    return Err(format!("--max-regression must be in [0, 1), got {frac}"));
                }
                args.max_regression = frac;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.baseline.is_none() && args.write_baseline.is_none() {
        return Err("need --baseline PATH (gate mode) or --write-baseline PATH".into());
    }
    Ok(args)
}

fn load_baseline(path: &str) -> Result<PerfReport, String> {
    let regen = format!("cargo run --release -p cannikin-bench --bin perfgate -- --write-baseline {path}");
    let json = load_baseline_json(path, &regen)?;
    PerfReport::from_json(&json).map_err(|e| format!("{path}: {e}\n{regen}"))
}

/// The gated ratios. The timing-based overlap ratio gets triple headroom
/// on top of `--max-regression` because it runs on shared CI cores where
/// rank threads timeshare (observed spread ~1.0–1.7x on one box); byte
/// ratios are deterministic and could gate exactly, but share the same
/// tolerance for a uniform contract.
fn gates(fresh: &PerfReport, base: &PerfReport, tol: f64) -> Vec<GateCheck> {
    let mut checks = Vec::new();
    if fresh.avx2 {
        checks.push(GateCheck::floor(
            "simd_speedup",
            fresh.simd_speedup,
            base.simd_speedup,
            (base.simd_speedup * (1.0 - tol)).max(1.5),
            tol,
        ));
    } else {
        checks.push(GateCheck::skipped("simd_speedup", "AVX2 unavailable on this machine"));
    }
    checks.push(GateCheck::floor(
        "bf16_reduction",
        fresh.bf16_reduction,
        base.bf16_reduction,
        (base.bf16_reduction * (1.0 - tol)).max(0.45),
        tol,
    ));
    checks.push(GateCheck::floor(
        "topk_reduction",
        fresh.topk_reduction,
        base.topk_reduction,
        base.topk_reduction * (1.0 - tol),
        tol,
    ));
    checks.push(GateCheck::floor(
        "overlap_speedup",
        fresh.overlap_speedup,
        base.overlap_speedup,
        base.overlap_speedup * (1.0 - 3.0 * tol),
        3.0 * tol,
    ));
    // Error feedback keeps one-shot quantization error bounded; a codec
    // bug that silently destroys precision shows up here, not in bytes.
    checks.push(GateCheck::ceiling(
        "bf16_rel_error",
        fresh.bf16_rel_error,
        base.bf16_rel_error,
        (base.bf16_rel_error * 2.0).max(1e-2),
        1.0,
    ));
    checks
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perfgate: {e}");
            eprintln!("usage: perfgate [--baseline PATH] [--out PATH] [--max-regression FRAC] [--write-baseline PATH]");
            return ExitCode::from(2);
        }
    };

    eprintln!("perfgate: measuring (pinned seed, best-of-N clocks)...");
    let fresh = perf_report();
    let rendered = fresh.to_json().to_string_compact();

    for path in args.write_baseline.iter().chain(args.out.iter()) {
        if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
            eprintln!("perfgate: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("perfgate: wrote {path}");
    }
    if args.write_baseline.is_some() {
        return ExitCode::SUCCESS;
    }

    let base = match load_baseline(args.baseline.as_deref().expect("checked in parse_args")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perfgate: {e}");
            return ExitCode::from(2);
        }
    };

    let checks = gates(&fresh, &base, args.max_regression);
    let (rendered_checks, all_pass) = render_all(&checks);
    print!("{rendered_checks}");
    if all_pass {
        println!("perfgate: all ratios within tolerance");
        ExitCode::SUCCESS
    } else {
        eprintln!("perfgate: performance regressed beyond the allowed fraction");
        ExitCode::FAILURE
    }
}
