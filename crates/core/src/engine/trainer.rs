//! The simulator-driven Cannikin training loop (Fig. 4).

use super::{EpochRecord, NoiseModel};
use crate::error::CannikinError;
use crate::gns::statistical_efficiency;
use crate::optperf::{bootstrap_split, even_split, OptPerfSolver};
use crate::perf::{Analyzer, MeasurementAggregation};
use crate::policy::{EpochObservation, Policy, PolicyContext};

use cannikin_collectives::{CommError, CommGroup, TransportKind};
use cannikin_insight::{HealthReport, Monitor};
use cannikin_telemetry::{
    self as telemetry, AnomalyKind, Event, FaultKind, PolicyDecision, RecoveryAction, RecoveryKind, SplitDecision,
    SplitSource,
};
use hetsim::Simulator;
use std::time::Instant;

/// Configuration of a Cannikin training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerConfig {
    /// Samples per (synthetic) dataset epoch.
    pub dataset_size: usize,
    /// Initial/reference total batch size B₀ (Table 5).
    pub base_batch: u64,
    /// Upper end of the admissible total-batch range.
    pub max_batch: u64,
    /// Measurement aggregation for the cluster constants (IVW vs naive —
    /// the §5.3 ablation).
    pub aggregation: MeasurementAggregation,
    /// Whether the total batch size adapts (false pins it to
    /// `base_batch`, isolating the local-split optimization for the
    /// fixed-batch experiments of §5.2.2).
    pub adaptive_batch: bool,
}

impl TrainerConfig {
    /// A sensible default configuration for a workload.
    pub fn new(dataset_size: usize, base_batch: u64, max_batch: u64) -> Self {
        TrainerConfig {
            dataset_size,
            base_batch,
            max_batch,
            aggregation: MeasurementAggregation::InverseVariance,
            adaptive_batch: true,
        }
    }
}

/// The Cannikin system driving a simulated heterogeneous cluster.
///
/// Epoch 0 splits evenly; epoch 1 uses the Eq. (8) bootstrap (which also
/// guarantees two distinct local batch sizes per node, unlocking the
/// linear model); from epoch 2 the full pipeline runs: learned models →
/// OptPerf solver → goodput-maximizing batch size → `HeteroDataLoader`
/// split.
pub struct CannikinTrainer {
    sim: Simulator,
    analyzer: Analyzer,
    policy: Box<dyn Policy>,
    noise: Box<dyn NoiseModel>,
    config: TrainerConfig,
    epoch: usize,
    effective_epochs: f64,
    cumulative_time: f64,
    last_local: Vec<u64>,
    monitor: Option<Monitor>,
    transport: Option<TransportKind>,
    comm_bytes: u64,
}

impl CannikinTrainer {
    /// A fresh [`CannikinTrainerBuilder`](super::CannikinTrainerBuilder) —
    /// the supported construction path.
    pub fn builder() -> super::CannikinTrainerBuilder {
        super::CannikinTrainerBuilder::new()
    }

    pub(crate) fn from_parts(
        sim: Simulator,
        noise: Box<dyn NoiseModel>,
        config: TrainerConfig,
        transport: Option<TransportKind>,
        policy: Box<dyn Policy>,
    ) -> Self {
        let n = sim.cluster().len();
        assert!(config.base_batch >= n as u64, "base batch must cover every node");
        let caps: Vec<Option<u64>> = (0..n).map(|i| Some(sim.max_local_batch(i))).collect();
        let analyzer = Analyzer::new(n, config.aggregation).with_max_batches(caps);
        CannikinTrainer {
            sim,
            analyzer,
            policy,
            noise,
            config,
            epoch: 0,
            effective_epochs: 0.0,
            cumulative_time: 0.0,
            last_local: Vec::new(),
            monitor: None,
            transport,
            comm_bytes: 0,
        }
    }

    /// Cumulative bytes moved on the wire by the per-epoch cluster-metric
    /// exchange (0 when no transport is configured).
    pub fn comm_bytes(&self) -> u64 {
        self.comm_bytes
    }

    /// Attach an online [`Monitor`]: at the end of every epoch the trainer
    /// drains its fresh anomalies, records a `health_anomalies` counter,
    /// and forces a re-profile of any node the monitor flagged as a
    /// straggler (its compute-law observations are discarded, so the next
    /// epoch falls back to the Eq. (8) bootstrap and re-measures before
    /// the OptPerf model re-engages).
    pub fn attach_monitor(&mut self, monitor: Monitor) {
        self.monitor = Some(monitor);
    }

    /// The attached monitor's current health report, if one is installed.
    pub fn health(&self) -> Option<HealthReport> {
        self.monitor.as_ref().map(|m| m.report())
    }

    /// Warm-start from a checkpointed model (a `SolverInput` saved from a
    /// previous run of the same job on the same cluster): the bootstrap
    /// epochs are skipped and the first epoch already trains on the
    /// OptPerf split.
    pub fn warm_start(&mut self, checkpoint: &crate::optperf::SolverInput) {
        self.analyzer.preload_models(checkpoint);
        self.policy.on_warm_start();
    }

    /// The underlying simulator (e.g. to inject contention mid-run).
    pub fn simulator_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// React to an elastic-scheduler event that changed the cluster
    /// membership (the simulator's nodes were added/removed via
    /// [`Simulator::add_node`] / [`Simulator::remove_node`]): the analyzer
    /// is rebuilt for the new node set, the candidate cache is dropped, and
    /// the next epochs re-profile via the bootstrap path while training
    /// continues.
    pub fn on_cluster_change(&mut self) {
        let n = self.sim.cluster().len();
        let caps: Vec<Option<u64>> = (0..n).map(|i| Some(self.sim.max_local_batch(i))).collect();
        self.analyzer = Analyzer::new(n, self.config.aggregation).with_max_batches(caps);
        self.policy.on_membership_change(n);
        // Re-profile at (roughly) the previous total batch rather than
        // dropping back to B₀: the statistical operating point is a
        // property of the *job*, not of the cluster, and reverting to tiny
        // batches would waste hundreds of large-dataset steps per
        // bootstrap epoch.
        let prev_total: u64 = self.last_local.iter().sum();
        let resume = prev_total.max(self.config.base_batch).max(n as u64);
        self.last_local = even_split(resume, n);
    }

    /// The analyzer's current state (inspection/tests).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Cumulative statistically-effective epochs so far.
    pub fn effective_epochs(&self) -> f64 {
        self.effective_epochs
    }

    /// Cumulative wall time (simulated epoch time plus measured optimizer
    /// overhead) so far, s.
    pub fn cumulative_time(&self) -> f64 {
        self.cumulative_time
    }

    /// Epochs run so far (the next epoch's index).
    pub fn epochs_run(&self) -> usize {
        self.epoch
    }

    /// The noise model's gradient noise scale φ at the current progress —
    /// the demand signal a fleet-level allocator reads to decide whether
    /// this job is starved of statistical efficiency or past its knee.
    pub fn noise_scale_now(&self) -> f64 {
        self.noise.noise_scale(self.effective_epochs)
    }

    /// Restore checkpointed statistical progress after a full preemption:
    /// a re-admitted job resumes its effective-epoch count, wall clock and
    /// epoch index instead of restarting from zero. Performance models are
    /// *not* restored — the new node set re-profiles through the Eq. (8)
    /// bootstrap (or a [`CannikinTrainer::warm_start`], when the membership
    /// is unchanged).
    pub fn restore_progress(&mut self, effective_epochs: f64, cumulative_time: f64, epochs_run: usize) {
        self.effective_epochs = effective_epochs;
        self.cumulative_time = cumulative_time;
        self.epoch = epochs_run;
    }

    /// Run one epoch and return its record.
    ///
    /// # Errors
    ///
    /// Propagates solver infeasibility (misconfigured batch ranges).
    pub fn run_epoch(&mut self) -> Result<EpochRecord, CannikinError> {
        let _epoch_span = telemetry::span("epoch");
        let n = self.sim.cluster().len();
        let phi = self.noise.noise_scale(self.effective_epochs);

        let plan_span = telemetry::span("plan");
        let started = Instant::now();
        // The context is a pure snapshot of the trainer's state: assembling
        // it performs no solver work and emits no telemetry, so routing the
        // plan through the policy reproduces the former inline logic
        // bit for bit (tests/policy.rs goldens).
        let ctx = PolicyContext {
            epoch: self.epoch,
            nodes: n,
            adaptive: self.config.adaptive_batch,
            base_batch: self.config.base_batch,
            max_batch: self.config.max_batch,
            dataset_size: self.config.dataset_size,
            phi: Some(phi),
            last_split: self.last_local.clone(),
            solver_input: self.analyzer.solver_input().ok(),
            per_sample_times: (0..n).map(|i| self.analyzer.per_sample_time(i).unwrap_or(1.0)).collect(),
        };
        let plan = self.policy.ask(&ctx)?;
        let (total, local) = (plan.total, plan.local);
        let (used_model, pattern, accumulation, predicted_t, source) =
            (plan.used_model, plan.pattern, plan.accumulation, plan.predicted_t, plan.source);
        let plan_seconds = started.elapsed().as_secs_f64();
        drop(plan_span);
        if telemetry::enabled() {
            telemetry::emit(Event::SplitDecision(SplitDecision { total, local: local.clone(), predicted_t, source }));
            telemetry::emit(Event::PolicyDecision(PolicyDecision {
                policy: self.policy.name().to_string(),
                epoch: self.epoch as u64,
                total,
            }));
        }

        let steps = (self.config.dataset_size / total as usize).max(1);
        // Model fitting (absorbing batch observations into the analyzer) is
        // real optimizer work and counts toward the Table 6 overhead, even
        // though it happens interleaved with the simulated batches.
        let mut fit_seconds = 0.0;
        // Per-sample times of the epoch's last observed batch, fed back to
        // the policy through `tell` (the LB-BSP rebalance signal).
        let mut tell_per_sample: Vec<f64> = Vec::new();
        let mut observe = |analyzer: &mut Analyzer, batch: &hetsim::trace::BatchTrace, step: usize| {
            if telemetry::enabled() {
                for obs in &batch.observations {
                    telemetry::emit(obs.step_timing(step as u64));
                }
            }
            tell_per_sample = batch
                .observations
                .iter()
                .map(|o| (o.a_time + o.p_time) / o.local_batch.max(1) as f64)
                .collect();
            let fit_started = Instant::now();
            analyzer.observe_batch(batch);
            fit_seconds += fit_started.elapsed().as_secs_f64();
        };
        let mut local = local;
        let mut total = total;
        let mut faults_seen = 0u32;
        let mut recoveries = 0u32;
        let mut replan_seconds = 0.0;
        let sim_span = telemetry::span("simulate");
        let (epoch_time, mean_batch_time) = if self.sim.has_fault_plan() {
            // Fault-aware per-step loop: every batch may surface injected
            // faults, and the engine must react *mid-epoch* — evict crashed
            // or departing nodes, admit joiners, re-solve the split at the
            // same total batch, and retry steps whose gradient exchange was
            // lost. A failed step contributes simulated wall time but no
            // observations and no samples, so nothing is double-counted.
            let mut epoch_time = 0.0;
            let mut completed = 0usize;
            let mut consecutive_failures = 0u32;
            while completed < steps {
                let mut micros = Vec::new();
                if accumulation > 1 {
                    for _ in 0..accumulation - 1 {
                        let micro = self.sim.simulate_microbatch(&local);
                        epoch_time += micro.batch_time;
                        micros.push(micro);
                    }
                }
                let batch = self.sim.simulate_batch(&local);
                epoch_time += batch.batch_time;
                faults_seen += batch.faults.len() as u32;
                for fault in &batch.faults {
                    telemetry::emit(Event::FaultInjected(*fault));
                }
                let failed = batch.is_failed();
                if failed {
                    consecutive_failures += 1;
                    assert!(
                        consecutive_failures < 10_000,
                        "fault plan wedged the run: {consecutive_failures} consecutive failed steps"
                    );
                } else {
                    // Only a completed step feeds the models — a retried
                    // step's micro-batches would otherwise be seen twice.
                    for micro in &micros {
                        observe(&mut self.analyzer, micro, completed);
                    }
                    observe(&mut self.analyzer, &batch, completed);
                    completed += 1;
                    consecutive_failures = 0;
                }
                // Membership changes: crashed nodes (their step already
                // failed) and graceful leavers (their step completed).
                let mut gone: Vec<usize> = batch
                    .faults
                    .iter()
                    .filter(|f| matches!(f.kind, FaultKind::NodeCrash | FaultKind::NodeLeave))
                    .filter_map(|f| f.node.map(|n| n as usize))
                    .collect();
                gone.sort_unstable();
                gone.dedup();
                let mut membership_changed = false;
                for &node in gone.iter().rev() {
                    if self.sim.cluster().len() <= 1 {
                        break; // never evict the last survivor
                    }
                    self.sim.remove_node(node);
                    self.analyzer.remove_node(node);
                    recoveries += 1;
                    telemetry::emit(Event::RecoveryAction(RecoveryAction {
                        kind: RecoveryKind::GroupShrink,
                        node: Some(node as u32),
                        step: completed as u64,
                        attempt: 1,
                        backoff_ns: 0,
                    }));
                    membership_changed = true;
                }
                for spec in self.sim.take_pending_joins() {
                    self.sim.add_node(spec);
                    let new_idx = self.sim.cluster().len() - 1;
                    self.analyzer.add_node(Some(self.sim.max_local_batch(new_idx)));
                    recoveries += 1;
                    telemetry::emit(Event::RecoveryAction(RecoveryAction {
                        kind: RecoveryKind::GroupGrow,
                        node: Some(new_idx as u32),
                        step: completed as u64,
                        attempt: 1,
                        backoff_ns: 0,
                    }));
                    membership_changed = true;
                }
                if membership_changed {
                    let replan_started = Instant::now();
                    local = self.replan_split(total);
                    total = local.iter().sum();
                    replan_seconds += replan_started.elapsed().as_secs_f64();
                    recoveries += 1;
                    telemetry::emit(Event::RecoveryAction(RecoveryAction {
                        kind: RecoveryKind::Replan,
                        node: None,
                        step: completed as u64,
                        attempt: 1,
                        backoff_ns: 0,
                    }));
                    if telemetry::enabled() {
                        telemetry::emit(Event::SplitDecision(SplitDecision {
                            total,
                            local: local.clone(),
                            predicted_t: None,
                            source: SplitSource::Bootstrap,
                        }));
                    }
                } else if failed {
                    // Transient loss of the gradient exchange with the
                    // membership intact: retry the same step.
                    recoveries += 1;
                    telemetry::emit(Event::RecoveryAction(RecoveryAction {
                        kind: RecoveryKind::StepRetry,
                        node: None,
                        step: completed as u64,
                        attempt: consecutive_failures,
                        backoff_ns: 0,
                    }));
                }
            }
            (epoch_time, epoch_time / steps as f64)
        } else if accumulation > 1 {
            // Each optimizer step: (accum − 1) no-sync micro-batches, then
            // one synchronized batch.
            let mut epoch_time = 0.0;
            for step in 0..steps {
                for _ in 0..accumulation - 1 {
                    let micro = self.sim.simulate_microbatch(&local);
                    epoch_time += micro.batch_time;
                    observe(&mut self.analyzer, &micro, step);
                }
                let sync = self.sim.simulate_batch(&local);
                epoch_time += sync.batch_time;
                observe(&mut self.analyzer, &sync, step);
            }
            (epoch_time, epoch_time / steps as f64)
        } else {
            let trace = self.sim.simulate_epoch(&local, steps);
            for (step, batch) in trace.batches.iter().enumerate() {
                observe(&mut self.analyzer, batch, step);
            }
            (trace.epoch_time, trace.mean_batch_time())
        };
        drop(sim_span);
        let overhead_seconds = plan_seconds + fit_seconds + replan_seconds;

        telemetry::counter("epoch_time_s", epoch_time);
        telemetry::counter("overhead_s", overhead_seconds);
        self.exchange_metrics(&local)?;
        self.apply_health(n);

        let efficiency = statistical_efficiency(phi, self.config.base_batch, total);
        let effective = steps as f64 * total as f64 * efficiency / self.config.dataset_size as f64;
        self.effective_epochs += effective;
        self.cumulative_time += epoch_time + overhead_seconds;
        // Close the ask/tell round. The goodput reward is effective epochs
        // gained per *simulated* second — excluding wall-clock optimizer
        // overhead keeps learning policies deterministic under seed.
        self.policy.tell(&EpochObservation {
            epoch: self.epoch,
            total,
            local: local.clone(),
            epoch_time,
            mean_batch_time,
            efficiency,
            goodput: effective / epoch_time,
            phi: Some(phi),
            per_sample_times: tell_per_sample,
        });
        let record = EpochRecord {
            epoch: self.epoch,
            total_batch: total,
            local_batches: local.clone(),
            steps,
            accumulation,
            epoch_time,
            mean_batch_time,
            noise_scale: phi,
            efficiency,
            effective_epochs: self.effective_epochs,
            cumulative_time: self.cumulative_time,
            overhead_seconds,
            pattern,
            used_model,
            faults: faults_seen,
            recoveries,
        };
        self.epoch += 1;
        self.last_local = local;
        Ok(record)
    }

    /// End-of-epoch cluster-metric exchange over a *real* comm group (the
    /// configured [`TransportKind`]): every node all-gathers its local
    /// batch size and fitted per-sample time, exactly the control-plane
    /// traffic the distributed deployment pays each epoch. The
    /// simulator-driven trainer has no gradients to move, so this is the
    /// path that exercises real sockets (and their byte accounting) at
    /// paper scale; a `comm_bytes` counter records the wire traffic.
    fn exchange_metrics(&mut self, local: &[u64]) -> Result<(), CannikinError> {
        let Some(kind) = self.transport.clone() else { return Ok(()) };
        let n = local.len();
        let comms = CommGroup::with_kind(n, &kind, None)?;
        let _comm_span = telemetry::span("metric_exchange");
        let mut handles = Vec::with_capacity(n);
        for (rank, comm) in comms.into_iter().enumerate() {
            let row = vec![local[rank] as f64, self.analyzer.per_sample_time(rank).unwrap_or(0.0)];
            handles.push(std::thread::spawn(move || {
                let gathered = comm.all_gather_vec(&row);
                (comm.bytes_sent(), gathered.len())
            }));
        }
        let mut bytes = 0u64;
        for h in handles {
            let (sent, rows) = h.join().map_err(|_| {
                CannikinError::Comm(CommError::Io { rank: 0, detail: "metric-exchange rank panicked".into() })
            })?;
            if rows != n {
                return Err(CannikinError::Comm(CommError::Io {
                    rank: 0,
                    detail: format!("metric exchange gathered {rows} rows from {n} nodes"),
                }));
            }
            bytes += sent;
        }
        telemetry::counter("comm_bytes", bytes as f64);
        self.comm_bytes += bytes;
        Ok(())
    }

    /// Mid-epoch split re-solve after an elastic membership change: keep
    /// the same total batch (clamped into the new cluster's feasible
    /// range), prefer the surviving nodes' learned models, and fall back
    /// to the Eq. (8) bootstrap when the model set is incomplete (e.g. an
    /// unprofiled joiner). Preserves the GNS/goodput operating point — the
    /// statistical state belongs to the *job*, not the cluster.
    fn replan_split(&mut self, total: u64) -> Vec<u64> {
        let n = self.sim.cluster().len();
        self.policy.on_membership_change(n);
        let cap_sum: u64 = (0..n).map(|i| self.sim.max_local_batch(i)).sum();
        let total = total.clamp(n as u64, cap_sum.max(n as u64));
        if let Ok(input) = self.analyzer.solver_input() {
            if let Ok(plan) = OptPerfSolver::new(input).solve(total) {
                return plan.local_batches;
            }
        }
        let t_samples: Vec<f64> =
            (0..n).map(|i| self.analyzer.per_sample_time(i).unwrap_or(1.0)).collect();
        bootstrap_split(&t_samples, total)
    }

    /// End-of-epoch health pass: flush this thread's telemetry buffer so
    /// the monitor has seen everything the epoch emitted, then act on the
    /// verdicts. A straggler flag means the node's fitted `t = c·b + d`
    /// law no longer matches reality (e.g. the §6 contention scenario), so
    /// trusting the learned model would keep handing it an oversized
    /// share; clearing its observations makes `solver_input()` fail and
    /// routes the next epochs through the bootstrap re-profiling path.
    fn apply_health(&mut self, n: usize) {
        let Some(monitor) = &self.monitor else { return };
        telemetry::flush_thread();
        let fresh = monitor.drain_new();
        if fresh.is_empty() {
            return;
        }
        telemetry::counter("health_anomalies", fresh.len() as f64);
        let mut flagged: Vec<u32> = fresh
            .iter()
            .filter(|a| a.kind == AnomalyKind::Straggler)
            .filter_map(|a| a.node)
            .collect();
        flagged.sort_unstable();
        flagged.dedup();
        for node in flagged {
            if (node as usize) < n {
                self.analyzer.reset_node(node as usize);
            }
        }
    }

    /// Run `n` epochs.
    ///
    /// # Errors
    ///
    /// Stops at the first solver error.
    pub fn run_epochs(&mut self, n: usize) -> Result<Vec<EpochRecord>, CannikinError> {
        (0..n).map(|_| self.run_epoch()).collect()
    }

    /// Run until `target` effective epochs of statistical progress have
    /// accumulated (the convergence experiments) or `max_epochs` elapse.
    ///
    /// # Errors
    ///
    /// Stops at the first solver error.
    pub fn train_until(&mut self, target: f64, max_epochs: usize) -> Result<Vec<EpochRecord>, CannikinError> {
        let mut out = Vec::new();
        while self.effective_epochs < target && out.len() < max_epochs {
            out.push(self.run_epoch()?);
        }
        Ok(out)
    }
}

impl std::fmt::Debug for CannikinTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CannikinTrainer(epoch {}, eff. epochs {:.2}, cluster {})",
            self.epoch,
            self.effective_epochs,
            self.sim.cluster().name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LinearNoiseGrowth;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::job::JobSpec;

    fn cluster() -> ClusterSpec {
        ClusterSpec::new(
            "t",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        )
    }

    fn trainer(adaptive: bool) -> CannikinTrainer {
        let sim = Simulator::new(cluster(), JobSpec::resnet18_cifar10(), 11);
        CannikinTrainer::builder()
            .simulator(sim)
            .noise(LinearNoiseGrowth { initial: 300.0, rate: 1.0 })
            .dataset_size(50_000)
            .batch_range(64, 4096)
            .adaptive_batch(adaptive)
            .transport(TransportKind::InProcess)
            .build()
            .expect("valid config")
    }

    #[test]
    fn first_two_epochs_bootstrap_then_model_kicks_in() {
        let mut t = trainer(true);
        let e0 = t.run_epoch().unwrap();
        assert!(!e0.used_model);
        assert_eq!(e0.local_batches, vec![22, 21, 21]); // even split of 64
        let e1 = t.run_epoch().unwrap();
        assert!(!e1.used_model);
        // Eq. (8): the A100 must get the largest share.
        assert!(e1.local_batches[0] > e1.local_batches[2]);
        let e2 = t.run_epoch().unwrap();
        assert!(e2.used_model, "model should be ready after two distinct splits");
        assert!(e2.pattern.is_some());
    }

    #[test]
    fn adaptive_batch_grows_with_noise() {
        let mut t = trainer(true);
        let records = t.run_epochs(12).unwrap();
        let first_model = records.iter().find(|r| r.used_model).unwrap();
        let last = records.last().unwrap();
        assert!(
            last.total_batch >= first_model.total_batch,
            "batch should not shrink as noise grows: {} -> {}",
            first_model.total_batch,
            last.total_batch
        );
        // Statistical efficiency must be accounted (η ≤ 1 for B ≥ B₀).
        for r in &records {
            assert!(r.efficiency <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn fixed_batch_mode_pins_total() {
        let mut t = trainer(false);
        let records = t.run_epochs(6).unwrap();
        assert!(records.iter().all(|r| r.total_batch == 64));
        // But the split still adapts to heterogeneity once learned.
        let last = records.last().unwrap();
        assert!(last.local_batches[0] > last.local_batches[2]);
    }

    #[test]
    fn model_based_split_beats_even_split_time() {
        // Use the compute-heavy ImageNet job: for the comm-dominated CIFAR
        // job at B=64, rebalancing cannot move the needle much.
        let sim = Simulator::new(cluster(), JobSpec::resnet50_imagenet(), 12);
        let mut t = CannikinTrainer::builder()
            .simulator(sim)
            .dataset_size(20_000)
            .batch_range(128, 1024)
            .adaptive_batch(false)
            .transport(TransportKind::InProcess)
            .build()
            .expect("valid config");
        let records = t.run_epochs(8).unwrap();
        let even_epoch = &records[0]; // even split
        let tuned = records.last().unwrap();
        assert!(
            tuned.mean_batch_time < even_epoch.mean_batch_time * 0.97,
            "tuned {} vs even {}",
            tuned.mean_batch_time,
            even_epoch.mean_batch_time
        );
    }

    #[test]
    fn effective_epochs_accumulate_monotonically() {
        let mut t = trainer(true);
        let records = t.run_epochs(5).unwrap();
        for pair in records.windows(2) {
            assert!(pair[1].effective_epochs > pair[0].effective_epochs);
            assert!(pair[1].cumulative_time > pair[0].cumulative_time);
        }
    }

    #[test]
    fn train_until_reaches_target() {
        let mut t = trainer(true);
        let records = t.train_until(3.0, 100).unwrap();
        assert!(t.effective_epochs() >= 3.0);
        assert!(records.len() >= 3);
    }

    #[test]
    fn overhead_is_small() {
        let mut t = trainer(true);
        let records = t.run_epochs(6).unwrap();
        for r in records.iter().filter(|r| r.used_model) {
            assert!(r.overhead_fraction() < 0.05, "epoch {} overhead {}", r.epoch, r.overhead_fraction());
        }
    }
}

#[cfg(test)]
mod elastic_tests {
    use super::*;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::job::JobSpec;

    #[test]
    fn adding_nodes_mid_run_speeds_up_epochs() {
        let cluster = ClusterSpec::new(
            "grow",
            vec![NodeSpec::new("v100-0", Gpu::V100), NodeSpec::new("rtx-0", Gpu::Rtx6000)],
        );
        let sim = Simulator::new(cluster, JobSpec::resnet50_imagenet(), 13);
        let mut trainer = CannikinTrainer::builder()
            .simulator(sim)
            .dataset_size(12_800)
            .batch_range(128, 128)
            .adaptive_batch(false)
            .transport(TransportKind::InProcess)
            .build()
            .expect("valid config");
        let before = trainer.run_epochs(5).expect("run");
        let t_before = before.last().unwrap().mean_batch_time;

        // The scheduler grants two A100s.
        trainer.simulator_mut().add_node(NodeSpec::new("a100-0", Gpu::A100).with_cpu_factor(1.5));
        trainer.simulator_mut().add_node(NodeSpec::new("a100-1", Gpu::A100).with_cpu_factor(1.5));
        trainer.on_cluster_change();
        let after = trainer.run_epochs(5).expect("run");
        for r in &after {
            assert_eq!(r.local_batches.len(), 4, "epoch {} must cover 4 nodes", r.epoch);
            assert_eq!(r.local_batches.iter().sum::<u64>(), 128);
        }
        let t_after = after.last().unwrap().mean_batch_time;
        assert!(
            t_after < t_before * 0.75,
            "two extra A100s should cut the batch time: {t_before} -> {t_after}"
        );
        // The new fast nodes must end up with the largest shares.
        let last = after.last().unwrap();
        assert!(last.local_batches[2] > last.local_batches[1], "{:?}", last.local_batches);
    }

    #[test]
    fn removing_a_node_keeps_training_consistent() {
        let cluster = ClusterSpec::new(
            "shrink",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        );
        let sim = Simulator::new(cluster, JobSpec::resnet18_cifar10(), 14);
        let mut trainer = CannikinTrainer::builder()
            .simulator(sim)
            .dataset_size(50_000)
            .batch_range(64, 1024)
            .transport(TransportKind::InProcess)
            .build()
            .expect("valid config");
        trainer.run_epochs(4).expect("run");
        trainer.simulator_mut().remove_node(2);
        trainer.on_cluster_change();
        let after = trainer.run_epochs(4).expect("run");
        for r in &after {
            assert_eq!(r.local_batches.len(), 2);
            assert_eq!(r.local_batches.iter().sum::<u64>(), r.total_batch);
        }
        assert!(after.last().unwrap().used_model, "model should re-engage after shrink");
    }
}

#[cfg(test)]
mod fault_recovery_tests {
    use super::*;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::job::JobSpec;
    use hetsim::FaultPlan;

    fn cluster() -> ClusterSpec {
        ClusterSpec::new(
            "chaos",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        )
    }

    fn trainer_with(plan: FaultPlan) -> CannikinTrainer {
        let sim = Simulator::new(cluster(), JobSpec::resnet18_cifar10(), 21).with_fault_plan(plan);
        CannikinTrainer::builder()
            .simulator(sim)
            .dataset_size(6_400)
            .batch_range(64, 512)
            .adaptive_batch(false)
            .transport(TransportKind::InProcess)
            .build()
            .expect("valid config")
    }

    #[test]
    fn crash_mid_epoch_shrinks_and_resplits_at_same_total() {
        // Node 1 dies during epoch 2 (steps are 100/epoch at B=64).
        let mut t = trainer_with(FaultPlan::new(9).crash_at(250, 1));
        let before = t.run_epochs(2).expect("healthy epochs");
        assert!(before.iter().all(|r| r.faults == 0 && r.recoveries == 0));
        let crash_epoch = t.run_epoch().expect("epoch with the crash");
        assert!(crash_epoch.faults >= 1, "the crash must be surfaced");
        assert!(crash_epoch.recoveries >= 2, "eviction + replan: {}", crash_epoch.recoveries);
        assert_eq!(crash_epoch.local_batches.len(), 2, "dead rank evicted");
        assert_eq!(crash_epoch.local_batches.iter().sum::<u64>(), crash_epoch.total_batch);
        assert_eq!(crash_epoch.total_batch, 64, "total batch preserved across the shrink");
        let after = t.run_epochs(2).expect("post-recovery epochs");
        for r in &after {
            assert_eq!(r.local_batches.len(), 2);
            assert_eq!(r.local_batches.iter().sum::<u64>(), 64);
        }
    }

    #[test]
    fn graceful_leave_does_not_lose_the_departing_step() {
        let mut t = trainer_with(FaultPlan::new(10).leave_at(120, 2));
        let records = t.run_epochs(3).expect("run");
        let leave_epoch = &records[1];
        assert!(leave_epoch.faults >= 1);
        assert_eq!(leave_epoch.local_batches.len(), 2);
        // A graceful leave completes its last step: effective progress per
        // epoch never dips to zero.
        for pair in records.windows(2) {
            assert!(pair[1].effective_epochs > pair[0].effective_epochs);
        }
    }

    #[test]
    fn join_mid_epoch_grows_the_group() {
        let plan = FaultPlan::new(11).join_at(150, NodeSpec::new("late-a100", Gpu::A100));
        let mut t = trainer_with(plan);
        let records = t.run_epochs(3).expect("run");
        let join_epoch = &records[1];
        assert_eq!(join_epoch.local_batches.len(), 4, "joiner admitted mid-epoch");
        assert_eq!(join_epoch.local_batches.iter().sum::<u64>(), join_epoch.total_batch);
        assert!(join_epoch.local_batches.iter().all(|&b| b >= 1), "every node trains");
        assert!(join_epoch.recoveries >= 2, "grow + replan");
    }

    #[test]
    fn transient_comm_loss_retries_without_losing_samples() {
        let mut t = trainer_with(FaultPlan::new(12).transient_comm(0.2, 1));
        let records = t.run_epochs(3).expect("run");
        let faulty: u32 = records.iter().map(|r| r.faults).sum();
        let retries: u32 = records.iter().map(|r| r.recoveries).sum();
        assert!(faulty > 0, "with p=0.2 over 300 steps, failures are certain");
        assert!(retries > 0, "every exhausted exchange must be retried");
        // Every epoch still completes its full step budget — no samples
        // lost (failed steps are re-run) and none double-counted (each
        // record's progress uses the planned step count once).
        for r in &records {
            assert_eq!(r.steps, 100);
            assert_eq!(r.local_batches.iter().sum::<u64>(), r.total_batch);
        }
    }

    #[test]
    fn faulty_run_converges_close_to_fault_free() {
        let healthy = {
            let sim = Simulator::new(cluster(), JobSpec::resnet18_cifar10(), 21);
            let mut t = CannikinTrainer::builder()
                .simulator(sim)
                .dataset_size(6_400)
                .batch_range(64, 512)
                .adaptive_batch(false)
                .transport(TransportKind::InProcess)
                .build()
                .expect("valid config");
            t.run_epochs(4).expect("run")
        };
        let faulty = {
            let mut t = trainer_with(FaultPlan::new(13).transient_comm(0.1, 1).burst_at(50, 2, 10, 3.0));
            t.run_epochs(4).expect("run")
        };
        let eff_h = healthy.last().unwrap().effective_epochs;
        let eff_f = faulty.last().unwrap().effective_epochs;
        assert!((eff_f / eff_h - 1.0).abs() < 1e-9, "same statistical progress: {eff_h} vs {eff_f}");
        let t_h = healthy.last().unwrap().cumulative_time;
        let t_f = faulty.last().unwrap().cumulative_time;
        assert!(t_f > t_h, "faults cost wall time");
        assert!(t_f < t_h * 2.0, "but bounded: {t_h} vs {t_f}");
    }
}

#[cfg(test)]
mod warm_start_tests {
    use super::*;
    use crate::optperf::SolverInput;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::job::JobSpec;

    #[test]
    fn checkpoint_skips_bootstrap_epochs() {
        let cluster = ClusterSpec::new(
            "t",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        );
        let job = JobSpec::resnet50_imagenet();
        let checkpoint = SolverInput::from_ground_truth(&cluster, &job);
        let sim = Simulator::new(cluster, job, 19);
        let mut trainer = CannikinTrainer::builder()
            .simulator(sim)
            .dataset_size(12_800)
            .batch_range(128, 128)
            .adaptive_batch(false)
            .warm_start(checkpoint)
            .transport(TransportKind::InProcess)
            .build()
            .expect("valid config");
        let records = trainer.run_epochs(3).expect("run");
        // Epoch 0 already uses the model — no even split, no Eq. (8) epoch.
        assert!(records[0].used_model, "warm start should skip the bootstrap");
        assert!(records[0].local_batches[0] > records[0].local_batches[2]);
        // And the very first epoch is already near the best epoch.
        let best = records.iter().map(|r| r.mean_batch_time).fold(f64::MAX, f64::min);
        assert!(records[0].mean_batch_time < best * 1.05);
    }
}
