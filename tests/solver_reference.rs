//! Optimality cross-check: a greedy coordinate-descent reference
//! optimizer must not beat the analytic OptPerf solver.
//!
//! Coordinate descent moves one sample at a time from the node that
//! currently bounds the batch to the node whose finish time grows least —
//! a strong local-search baseline that converges to a local optimum of
//! Eq. (7). Because Eq. (7) is a maximum of convex (linear) functions,
//! local optima of this neighborhood are global up to integer effects, so
//! agreement within a couple of samples' slack is a sharp check.

use cannikin::core::optperf::{predict_batch_time, even_split, NodePerf, OptPerfSolver, SolverInput};
use cannikin::workloads::{clusters, profiles};

/// One-sample coordinate descent on Eq. (7) from an even start.
fn coordinate_descent(input: &SolverInput, total: u64, max_iters: usize) -> (Vec<u64>, f64) {
    let n = input.len();
    let mut split = even_split(total, n);
    let mut best = predict_batch_time(input, &split);
    for _ in 0..max_iters {
        let mut improved = false;
        // Try every (from, to) single-sample move, take the best.
        let mut best_move: Option<(usize, usize, f64)> = None;
        for from in 0..n {
            if split[from] <= 1 {
                continue;
            }
            for to in 0..n {
                if to == from {
                    continue;
                }
                split[from] -= 1;
                split[to] += 1;
                let t = predict_batch_time(input, &split);
                split[from] += 1;
                split[to] -= 1;
                if t < best && best_move.is_none_or(|(_, _, bt)| t < bt) {
                    best_move = Some((from, to, t));
                }
            }
        }
        if let Some((from, to, t)) = best_move {
            split[from] -= 1;
            split[to] += 1;
            best = t;
            improved = true;
        }
        if !improved {
            break;
        }
    }
    (split, best)
}

#[test]
fn solver_matches_coordinate_descent_on_paper_clusters() {
    for cluster in [clusters::cluster_a(), clusters::cluster_b()] {
        for profile in [profiles::imagenet_resnet50(), profiles::cifar10_resnet18()] {
            let input = SolverInput::from_ground_truth(&cluster, &profile.job);
            let mut solver = OptPerfSolver::new(input.clone());
            let n = cluster.len() as u64;
            // Largest-remainder rounding can land one sample away from the
            // integer optimum; the admissible slack is one sample on the
            // steepest node.
            let slack = input.nodes.iter().map(|nd| nd.compute_slope()).fold(0.0f64, f64::max);
            for total in [4 * n, 16 * n, 64 * n] {
                let plan = solver.solve(total).expect("feasible");
                let (_, reference) = coordinate_descent(&input, total, 4000);
                assert!(
                    plan.opt_perf <= reference + slack + 1e-9,
                    "{}/{} B={total}: solver {} vs coordinate descent {reference}",
                    cluster.name,
                    profile.name(),
                    plan.opt_perf
                );
            }
        }
    }
}

#[test]
fn solver_matches_coordinate_descent_on_synthetic_extremes() {
    // Hand-built pathologies: identical nodes with wildly different fixed
    // costs, and mixed slow-CPU/fast-GPU nodes.
    let cases = vec![
        SolverInput {
            nodes: vec![
                NodePerf { q: 0.2e-3, s: 0.1e-3, k: 0.4e-3, m: 0.1e-3, max_batch: None },
                NodePerf { q: 0.2e-3, s: 20e-3, k: 0.4e-3, m: 10e-3, max_batch: None },
            ],
            gamma: 0.1,
            t_o: 5e-3,
            t_u: 1e-3,
        },
        SolverInput {
            nodes: vec![
                NodePerf { q: 1.0e-3, s: 1e-3, k: 0.2e-3, m: 1e-3, max_batch: None }, // slow CPU, fast GPU
                NodePerf { q: 0.1e-3, s: 1e-3, k: 2.0e-3, m: 1e-3, max_batch: None }, // fast CPU, slow GPU
                NodePerf { q: 0.5e-3, s: 1e-3, k: 0.5e-3, m: 1e-3, max_batch: None },
            ],
            gamma: 0.3,
            t_o: 8e-3,
            t_u: 2e-3,
        },
    ];
    for (case, input) in cases.into_iter().enumerate() {
        let mut solver = OptPerfSolver::new(input.clone());
        let slack = input.nodes.iter().map(|nd| nd.compute_slope()).fold(0.0f64, f64::max);
        for total in [30u64, 120, 600] {
            let plan = solver.solve(total).expect("feasible");
            let (_, reference) = coordinate_descent(&input, total, 4000);
            assert!(
                plan.opt_perf <= reference + slack + 1e-9,
                "case {case} B={total}: solver {} vs reference {reference}",
                plan.opt_perf
            );
        }
    }
}
