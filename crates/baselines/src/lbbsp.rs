//! LB-BSP baseline (semi-dynamic load balancing).

use cannikin_core::engine::{EpochRecord, NoiseModel};
use cannikin_core::gns::statistical_efficiency;
use cannikin_core::policy::{EpochObservation, LbBspIterative, Policy, PolicyContext, LBBSP_DEFAULT_STEP};
use hetsim::Simulator;

/// LB-BSP iteratively rebalances local batch sizes toward equal *compute*
/// times, moving each node at most Δ samples per adjustment round (§5.1;
/// Δ = 5 as in the paper's experiments).
///
/// The tuning rule itself lives in
/// [`cannikin_core::policy::LbBspIterative`]; this baseline wires it to a
/// [`Simulator`] through the same ask/tell protocol the Cannikin engines
/// use, so the comparison differs only in the policy, not the plumbing.
/// The structural gaps versus Cannikin (slow convergence from an even
/// start, overlap-blind balance target) are documented on the policy.
pub struct LbBspTrainer {
    sim: Simulator,
    noise: Box<dyn NoiseModel>,
    dataset_size: usize,
    total_batch: u64,
    base_batch: u64,
    policy: LbBspIterative,
    epoch: usize,
    effective_epochs: f64,
    cumulative_time: f64,
}

impl LbBspTrainer {
    /// Create an LB-BSP run at fixed `total_batch` with the paper's
    /// adjustment step Δ = 5.
    ///
    /// # Panics
    ///
    /// Panics if `total_batch` cannot give every node one sample.
    pub fn new(sim: Simulator, noise: Box<dyn NoiseModel>, dataset_size: usize, total_batch: u64, base_batch: u64) -> Self {
        let n = sim.cluster().len();
        assert!(total_batch >= n as u64, "total batch must cover every node");
        LbBspTrainer {
            sim,
            noise,
            dataset_size,
            total_batch,
            base_batch,
            policy: LbBspIterative::new(LBBSP_DEFAULT_STEP),
            epoch: 0,
            effective_epochs: 0.0,
            cumulative_time: 0.0,
        }
    }

    /// Override the adjustment step Δ (builder style, before training).
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    #[must_use]
    pub fn with_step(mut self, step: u64) -> Self {
        self.policy = LbBspIterative::new(step);
        self
    }

    /// Change the total batch size mid-run (the adaptive-batch experiment
    /// of §5.2.2): LB-BSP rescales its current split proportionally and
    /// then has to re-tune with Δ-bounded steps.
    ///
    /// # Panics
    ///
    /// Panics if the new total cannot cover every node.
    pub fn set_total_batch(&mut self, total: u64) {
        assert!(total >= self.sim.cluster().len() as u64, "total batch must cover every node");
        self.policy.set_total(total);
        self.total_batch = total;
    }

    /// The current local split (test/inspection).
    pub fn local_batches(&self) -> &[u64] {
        self.policy.local_batches()
    }

    /// Run one epoch, then apply one Δ-bounded adjustment round.
    pub fn run_epoch(&mut self) -> EpochRecord {
        let phi = self.noise.noise_scale(self.effective_epochs);
        let steps = (self.dataset_size / self.total_batch as usize).max(1);
        let ctx = PolicyContext {
            epoch: self.epoch,
            nodes: self.sim.cluster().len(),
            adaptive: false,
            base_batch: self.total_batch,
            max_batch: self.total_batch,
            dataset_size: self.dataset_size,
            phi: Some(phi),
            last_split: self.policy.local_batches().to_vec(),
            solver_input: None,
            per_sample_times: Vec::new(),
        };
        let plan = self.policy.ask(&ctx).expect("LB-BSP planning is infallible");
        let local = plan.local;
        let trace = self.sim.simulate_epoch(&local, steps);

        // Observe per-sample compute times from the epoch's last batch.
        let last = trace.batches.last().expect("epoch has batches");
        let per_sample: Vec<f64> = last
            .observations
            .iter()
            .map(|o| (o.a_time + o.p_time) / o.local_batch.max(1) as f64)
            .collect();

        let efficiency = statistical_efficiency(phi, self.base_batch, self.total_batch);
        let gained = steps as f64 * self.total_batch as f64 * efficiency / self.dataset_size as f64;
        self.effective_epochs += gained;
        self.cumulative_time += trace.epoch_time;
        let record = EpochRecord {
            epoch: self.epoch,
            total_batch: self.total_batch,
            local_batches: local.clone(),
            steps,
            accumulation: 1,
            epoch_time: trace.epoch_time,
            mean_batch_time: trace.mean_batch_time(),
            noise_scale: phi,
            efficiency,
            effective_epochs: self.effective_epochs,
            cumulative_time: self.cumulative_time,
            overhead_seconds: 0.0,
            pattern: None,
            used_model: false,
            faults: 0,
            recoveries: 0,
        };
        self.policy.tell(&EpochObservation {
            epoch: self.epoch,
            total: self.total_batch,
            local,
            epoch_time: trace.epoch_time,
            mean_batch_time: record.mean_batch_time,
            efficiency,
            goodput: gained / trace.epoch_time,
            phi: Some(phi),
            per_sample_times: per_sample,
        });
        self.epoch += 1;
        record
    }

    /// Run until `target` effective epochs or `max_epochs`.
    pub fn train_until(&mut self, target: f64, max_epochs: usize) -> Vec<EpochRecord> {
        let mut out = Vec::new();
        while self.effective_epochs < target && out.len() < max_epochs {
            out.push(self.run_epoch());
        }
        out
    }

    /// Run a fixed number of epochs.
    pub fn run_epochs(&mut self, n: usize) -> Vec<EpochRecord> {
        (0..n).map(|_| self.run_epoch()).collect()
    }
}

impl cannikin_core::engine::TrainingSubject for LbBspTrainer {
    fn next_epoch(&mut self) -> Result<EpochRecord, cannikin_core::error::CannikinError> {
        Ok(self.run_epoch())
    }

    fn progress(&self) -> f64 {
        self.effective_epochs
    }
}

impl std::fmt::Debug for LbBspTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LbBspTrainer(B={}, split {:?})", self.total_batch, self.policy.local_batches())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cannikin_core::engine::LinearNoiseGrowth;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::job::JobSpec;

    fn sim() -> Simulator {
        let cluster = ClusterSpec::new(
            "t",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        );
        Simulator::new(cluster, JobSpec::resnet50_imagenet(), 5)
    }

    fn trainer() -> LbBspTrainer {
        let noise = Box::new(LinearNoiseGrowth { initial: 300.0, rate: 1.0 });
        LbBspTrainer::new(sim(), noise, 12_800, 128, 128)
    }

    #[test]
    fn rebalances_gradually() {
        let mut t = trainer();
        let first = t.run_epoch();
        assert_eq!(first.local_batches, vec![43, 43, 42]); // even start
        let mut records = vec![first];
        records.extend(t.run_epochs(14));
        // Sum preserved every epoch; each node moves ≤ Δ per round.
        for pair in records.windows(2) {
            assert_eq!(pair[1].local_batches.iter().sum::<u64>(), 128);
            for (a, b) in pair[0].local_batches.iter().zip(&pair[1].local_batches) {
                assert!(a.abs_diff(*b) <= 6, "{:?} -> {:?}", pair[0].local_batches, pair[1].local_batches);
            }
        }
        // Eventually the A100 carries far more than the RTX.
        let last = records.last().unwrap();
        assert!(last.local_batches[0] > last.local_batches[2] + 20, "{:?}", last.local_batches);
        // And the batch time improves substantially over the even split.
        assert!(
            last.mean_batch_time < records[0].mean_batch_time * 0.90,
            "last {} vs first {}",
            last.mean_batch_time,
            records[0].mean_batch_time
        );
    }

    #[test]
    fn takes_many_epochs_to_converge() {
        // The Fig. 9 shape: LB-BSP from an even start needs > 5 epochs to
        // get within 3% of its best batch time.
        let mut t = trainer();
        let records = t.run_epochs(25);
        let best = records.iter().map(|r| r.mean_batch_time).fold(f64::MAX, f64::min);
        let converged_at = records.iter().position(|r| r.mean_batch_time < best * 1.03).unwrap();
        assert!(converged_at >= 3, "LB-BSP converged suspiciously fast: epoch {converged_at}");
    }

    #[test]
    fn batch_change_triggers_retuning() {
        let mut t = trainer();
        let _ = t.run_epochs(20); // reach the balanced split at B=128
        let balanced = t.local_batches().to_vec();
        t.set_total_batch(192);
        assert_eq!(t.local_batches().iter().sum::<u64>(), 192);
        // The scaled split preserves proportions approximately.
        for (i, &b) in t.local_batches().iter().enumerate() {
            let expected = balanced[i] as f64 * 1.5;
            assert!((b as f64 - expected).abs() <= 2.0, "node {i}: {b} vs {expected}");
        }
    }
}
