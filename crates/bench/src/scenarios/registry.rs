//! Capability-tagged registry of scenarios and subjects.
//!
//! A [`ScenarioSpec`] names a cluster condition and lists the
//! [`Capability`] set a subject must *provide* to run under it; a
//! [`SubjectSpec`] names a trainer and lists what it provides. The
//! evaluation matrix is the filtered cross-product ([`matrix`]):
//! `requires ⊆ provides`, nothing else. Tags do all the filtering — a
//! sim-only scenario requires [`Capability::SimDriven`], which no real
//! trainer declares, so kind mismatches can never pair up.

use cannikin_collectives::{Codec, CommFaultPlan};
use cannikin_core::policy::PolicyKind;
use hetsim::catalog::Gpu;
use hetsim::cluster::NodeSpec;
use hetsim::FaultPlan;

/// One trait a subject may provide and a scenario may demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Capability {
    /// Runs on the [`hetsim::Simulator`] and accepts a [`FaultPlan`].
    SimDriven,
    /// Runs real gradient exchanges over a collectives transport.
    RealComm,
    /// Tolerates *stretching* faults (contention, slowdown bursts): the
    /// subject steps the simulator, so mutated ground truth reaches it.
    FaultInjection,
    /// Survives membership changes — evicts crashed or departing nodes,
    /// admits joiners, and re-plans mid-epoch.
    Elastic,
    /// Retries or discards a failed gradient exchange instead of silently
    /// counting the lost step as statistical progress.
    CommRetry,
    /// Compresses gradients on the wire (codec with error feedback).
    Compression,
    /// Adapts the total batch size to the measured noise scale.
    AdaptiveBatch,
}

impl Capability {
    /// Stable lowercase label (JSON and table output).
    pub fn label(self) -> &'static str {
        match self {
            Capability::SimDriven => "sim-driven",
            Capability::RealComm => "real-comm",
            Capability::FaultInjection => "fault-injection",
            Capability::Elastic => "elastic",
            Capability::CommRetry => "comm-retry",
            Capability::Compression => "compression",
            Capability::AdaptiveBatch => "adaptive-batch",
        }
    }

    /// Every capability, in declaration order (property tests enumerate
    /// subsets of this).
    pub fn all() -> Vec<Capability> {
        vec![
            Capability::SimDriven,
            Capability::RealComm,
            Capability::FaultInjection,
            Capability::Elastic,
            Capability::CommRetry,
            Capability::Compression,
            Capability::AdaptiveBatch,
        ]
    }
}

/// How a scenario drives its cell.
#[derive(Debug, Clone)]
pub enum ScenarioKind {
    /// Simulator-driven: an optional fault plan (seeded per cell), a
    /// target in effective epochs, and an epoch cap.
    Sim {
        /// Constructs the plan from the cell seed; `None` = calm cluster.
        plan: Option<fn(u64) -> FaultPlan>,
        /// Effective epochs to reach.
        target: f64,
        /// Hard cap on epochs (a subject that cannot converge stops here).
        max_epochs: usize,
    },
    /// Real-gradient: an optional injected comm-fault plan and a fixed
    /// epoch count.
    Real {
        /// Constructs the comm-fault plan from the cell seed.
        faults: Option<fn(u64) -> CommFaultPlan>,
        /// Epochs to run (fixed, so byte counts are comparable).
        epochs: usize,
    },
}

/// A named cluster condition plus the capabilities it demands.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Stable id (JSON key, CLI argument).
    pub name: &'static str,
    /// One-line description for `scenarios --list`.
    pub description: &'static str,
    /// Capabilities a subject must provide to enter this scenario.
    pub requires: Vec<Capability>,
    /// How the runner drives the cell.
    pub kind: ScenarioKind,
}

/// Which simulator-driven trainer a subject constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimSystem {
    /// Cannikin with adaptive batch sizing (the paper's full system).
    Cannikin,
    /// Cannikin with the batch pinned (adaptive split, static total).
    CannikinFixed,
    /// AdaptDL/Pollux: adaptive total, homogeneous even split.
    AdaptDl,
    /// PyTorch DDP: fixed total, even split.
    Ddp,
    /// LB-BSP: fixed total, iteratively tuned split.
    LbBsp,
    /// HetPipe: pipelined model parallelism, analytic batch time.
    HetPipe,
    /// The Cannikin engine planning through a named adaptation policy —
    /// the policy-as-subject lens: same mechanism, different `ask`/`tell`
    /// brain ([`cannikin_core::policy`]).
    Policy(PolicyKind),
}

/// How a subject is constructed.
#[derive(Debug, Clone)]
pub enum SubjectKind {
    /// A simulator-driven trainer.
    Sim(SimSystem),
    /// A real [`ParallelTrainer`](cannikin_core::engine::ParallelTrainer):
    /// `tcp` picks the loopback-TCP transport over in-process channels.
    Real {
        /// Loopback TCP instead of in-process channels.
        tcp: bool,
        /// Gradient codec on the wire.
        codec: Codec,
    },
}

/// A trainer under evaluation plus the capabilities it declares.
#[derive(Debug, Clone)]
pub struct SubjectSpec {
    /// Stable id (JSON key, CLI argument).
    pub name: &'static str,
    /// One-line description for `scenarios --list`.
    pub description: &'static str,
    /// Capabilities this subject provides.
    pub provides: Vec<Capability>,
    /// How the runner constructs it.
    pub kind: SubjectKind,
}

use Capability::{AdaptiveBatch, CommRetry, Compression, Elastic, FaultInjection, RealComm, SimDriven};

fn plan_spot_preemption(seed: u64) -> FaultPlan {
    // Node 1 (the V100) is preempted at step 150; a replacement V100
    // arrives 150 steps later — the classic spot-instance life cycle.
    FaultPlan::spot_preemption(seed, 1, 150, 300, NodeSpec::new("v100-replacement", Gpu::V100))
}

fn plan_diurnal_contention(seed: u64) -> FaultPlan {
    // From step 20, node 1 alternates every 40 steps between full speed
    // and half of its compute: the shared-cluster day/night pattern.
    FaultPlan::diurnal_contention(seed, 1, 40, 0.5, 20)
}

fn plan_straggler_onset(seed: u64) -> FaultPlan {
    // Node 2 permanently slows 2.5x at step 100 (thermal throttling).
    FaultPlan::straggler_onset(seed, 2, 100, 2.5)
}

fn plan_flaky_network(seed: u64) -> FaultPlan {
    // 5% of gradient syncs fail, two attempts before the step is lost.
    FaultPlan::flaky_network(seed, 0.05, 2)
}

fn plan_cluster_churn(seed: u64) -> FaultPlan {
    // Node 2 leaves gracefully at step 120; a different machine joins at
    // step 240 — fleet reallocation without any failure.
    FaultPlan::cluster_churn(seed, 2, 120, NodeSpec::new("rtx-join", Gpu::Rtx6000), 240)
}

fn comm_lossy(seed: u64) -> CommFaultPlan {
    // 15% of the first 64 collectives fail once (always recoverable by a
    // single retry) — enough loss to exercise error-feedback state.
    CommFaultPlan::lossy(seed, 64, 0.15)
}

/// Every scenario, in report order.
pub fn registry() -> Vec<ScenarioSpec> {
    let sim_target = 3.0;
    let sim_cap = 60;
    vec![
        ScenarioSpec {
            name: "calm-baseline",
            description: "healthy heterogeneous cluster, no faults",
            requires: vec![SimDriven],
            kind: ScenarioKind::Sim { plan: None, target: sim_target, max_epochs: sim_cap },
        },
        ScenarioSpec {
            name: "diurnal-contention",
            description: "node 1 flaps to half speed every 40 steps",
            requires: vec![SimDriven, FaultInjection],
            kind: ScenarioKind::Sim { plan: Some(plan_diurnal_contention), target: sim_target, max_epochs: sim_cap },
        },
        ScenarioSpec {
            name: "straggler-onset",
            description: "node 2 permanently slows 2.5x at step 100",
            requires: vec![SimDriven, FaultInjection],
            kind: ScenarioKind::Sim { plan: Some(plan_straggler_onset), target: sim_target, max_epochs: sim_cap },
        },
        ScenarioSpec {
            name: "flaky-network",
            description: "5% of gradient syncs fail (2 attempts each)",
            requires: vec![SimDriven, CommRetry],
            kind: ScenarioKind::Sim { plan: Some(plan_flaky_network), target: sim_target, max_epochs: sim_cap },
        },
        ScenarioSpec {
            name: "spot-preemption",
            description: "node 1 preempted at step 150, replacement joins at 300",
            requires: vec![SimDriven, Elastic],
            kind: ScenarioKind::Sim { plan: Some(plan_spot_preemption), target: sim_target, max_epochs: sim_cap },
        },
        ScenarioSpec {
            name: "cluster-churn",
            description: "node 2 leaves at step 120, a new node joins at 240",
            requires: vec![SimDriven, Elastic],
            kind: ScenarioKind::Sim { plan: Some(plan_cluster_churn), target: sim_target, max_epochs: sim_cap },
        },
        ScenarioSpec {
            name: "lan-clean",
            description: "real gradient exchange, clean links",
            requires: vec![RealComm],
            // One epoch exactly: the first epoch plans from the
            // deterministic bootstrap split, while later epochs re-plan
            // from *measured wall times* — which would leak the machine's
            // clock into the loss trajectory and break the byte-identical
            // report contract.
            kind: ScenarioKind::Real { faults: None, epochs: 1 },
        },
        ScenarioSpec {
            name: "codec-under-loss",
            description: "compressed gradients over a lossy link (15% one-shot failures)",
            requires: vec![RealComm, CommRetry, Compression],
            kind: ScenarioKind::Real { faults: Some(comm_lossy), epochs: 1 },
        },
    ]
}

/// Every subject, in report order.
pub fn subjects() -> Vec<SubjectSpec> {
    vec![
        SubjectSpec {
            name: "cannikin",
            description: "full system: adaptive batch + optimal split + elastic recovery",
            provides: vec![SimDriven, FaultInjection, Elastic, CommRetry, AdaptiveBatch],
            kind: SubjectKind::Sim(SimSystem::Cannikin),
        },
        SubjectSpec {
            name: "cannikin-fixed",
            description: "Cannikin with the total batch pinned (static reference)",
            provides: vec![SimDriven, FaultInjection, Elastic, CommRetry],
            kind: SubjectKind::Sim(SimSystem::CannikinFixed),
        },
        SubjectSpec {
            name: "adaptdl",
            description: "AdaptDL/Pollux: adaptive total, even split",
            provides: vec![SimDriven, FaultInjection, AdaptiveBatch],
            kind: SubjectKind::Sim(SimSystem::AdaptDl),
        },
        SubjectSpec {
            name: "ddp",
            description: "PyTorch DDP: fixed total, even split",
            provides: vec![SimDriven, FaultInjection],
            kind: SubjectKind::Sim(SimSystem::Ddp),
        },
        SubjectSpec {
            name: "lbbsp",
            description: "LB-BSP: fixed total, tuned split",
            provides: vec![SimDriven, FaultInjection],
            kind: SubjectKind::Sim(SimSystem::LbBsp),
        },
        SubjectSpec {
            name: "hetpipe",
            description: "HetPipe: pipelined model parallelism (analytic batch time)",
            provides: vec![SimDriven],
            kind: SubjectKind::Sim(SimSystem::HetPipe),
        },
        SubjectSpec {
            name: "policy-optperf",
            description: "Cannikin engine planning through the OptPerf policy (identity check)",
            provides: vec![SimDriven, FaultInjection, AdaptiveBatch],
            kind: SubjectKind::Sim(SimSystem::Policy(PolicyKind::OptPerf)),
        },
        SubjectSpec {
            name: "policy-even",
            description: "Cannikin engine planning through the even-split policy",
            provides: vec![SimDriven, FaultInjection, AdaptiveBatch],
            kind: SubjectKind::Sim(SimSystem::Policy(PolicyKind::Even)),
        },
        SubjectSpec {
            name: "policy-lbbsp",
            description: "Cannikin engine planning through the LB-BSP policy (fixed total)",
            provides: vec![SimDriven, FaultInjection],
            kind: SubjectKind::Sim(SimSystem::Policy(PolicyKind::LbBsp)),
        },
        SubjectSpec {
            name: "policy-rl",
            description: "Cannikin engine planning through the seeded bandit policy",
            provides: vec![SimDriven, FaultInjection, AdaptiveBatch],
            kind: SubjectKind::Sim(SimSystem::Policy(PolicyKind::Rl)),
        },
        SubjectSpec {
            name: "parallel-inproc",
            description: "real trainer, in-process ring, raw f32 gradients",
            provides: vec![RealComm, CommRetry],
            kind: SubjectKind::Real { tcp: false, codec: Codec::None },
        },
        SubjectSpec {
            name: "parallel-tcp",
            description: "real trainer, loopback-TCP ring, raw f32 gradients",
            provides: vec![RealComm, CommRetry],
            kind: SubjectKind::Real { tcp: true, codec: Codec::None },
        },
        SubjectSpec {
            name: "parallel-bf16",
            description: "real trainer, in-process ring, bf16 codec",
            provides: vec![RealComm, CommRetry, Compression],
            kind: SubjectKind::Real { tcp: false, codec: Codec::Bf16 },
        },
        SubjectSpec {
            name: "parallel-topk",
            description: "real trainer, in-process ring, top-10% sparsifier",
            provides: vec![RealComm, CommRetry, Compression],
            kind: SubjectKind::Real { tcp: false, codec: Codec::TopK { permille: 100 } },
        },
    ]
}

/// Whether `subject` may run under `scenario`: every required capability
/// is declared. This is the *only* filter — soundness (a subject is never
/// handed a scenario demanding something it did not declare) follows by
/// construction, and the property test in `tests/scenarios.rs` holds it
/// there.
pub fn compatible(scenario: &ScenarioSpec, subject: &SubjectSpec) -> bool {
    scenario.requires.iter().all(|cap| subject.provides.contains(cap))
}

/// The evaluation matrix: every compatible (scenario, subject) pair, in
/// registry × subject order (deterministic).
pub fn matrix() -> Vec<(ScenarioSpec, SubjectSpec)> {
    let mut cells = Vec::new();
    for scenario in registry() {
        for subject in subjects() {
            if compatible(&scenario, &subject) {
                cells.push((scenario.clone(), subject.clone()));
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        names.extend(subjects().iter().map(|s| s.name));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "scenario/subject names must be unique");
    }

    #[test]
    fn matrix_meets_the_acceptance_floor() {
        let cells = matrix();
        assert!(cells.len() >= 20, "matrix has {} cells, need >= 20", cells.len());
        let mut scenarios: Vec<&str> = cells.iter().map(|(s, _)| s.name).collect();
        scenarios.sort_unstable();
        scenarios.dedup();
        assert!(scenarios.len() >= 5, "{} scenarios produce cells, need >= 5", scenarios.len());
        let mut subs: Vec<&str> = cells.iter().map(|(_, s)| s.name).collect();
        subs.sort_unstable();
        subs.dedup();
        assert!(subs.len() >= 4, "{} subjects produce cells, need >= 4", subs.len());
    }

    #[test]
    fn every_cell_is_sound() {
        for (scenario, subject) in matrix() {
            for cap in &scenario.requires {
                assert!(
                    subject.provides.contains(cap),
                    "{}/{} pairs without providing {:?}",
                    scenario.name,
                    subject.name,
                    cap
                );
            }
        }
    }

    #[test]
    fn kinds_never_cross() {
        // SimDriven/RealComm tags alone must keep sim scenarios off real
        // subjects and vice versa.
        for (scenario, subject) in matrix() {
            match (&scenario.kind, &subject.kind) {
                (ScenarioKind::Sim { .. }, SubjectKind::Sim(_)) => {}
                (ScenarioKind::Real { .. }, SubjectKind::Real { .. }) => {}
                other => panic!("{}/{} crossed kinds: {other:?}", scenario.name, subject.name),
            }
        }
    }

    #[test]
    fn elastic_scenarios_exclude_non_elastic_subjects() {
        let cells = matrix();
        for name in ["spot-preemption", "cluster-churn"] {
            let subs: Vec<&str> =
                cells.iter().filter(|(s, _)| s.name == name).map(|(_, s)| s.name).collect();
            assert_eq!(subs, vec!["cannikin", "cannikin-fixed"], "{name} must only run elastic subjects");
        }
    }

    #[test]
    fn capability_labels_are_unique() {
        let mut labels: Vec<&str> = Capability::all().into_iter().map(Capability::label).collect();
        let total = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), total);
    }
}
