//! Data-parallel fine-tuning of a miniature BERT with real gradients.
//!
//! ```text
//! cargo run --release --example bert_finetune
//! ```
//!
//! The Table 5 SQuAD/BERT workload at laptop scale: a 2-layer transformer
//! encoder (`minidnn::models::MiniBert`) trains on synthetic token
//! sequences across three emulated heterogeneous workers. Each step the
//! workers exchange gradients through the real bucketed ring all-reduce
//! with Eq. (9) batch-ratio weights (their shards are deliberately uneven,
//! mimicking an OptPerf split), estimate the gradient noise scale with
//! Eq. (10) + Theorem 4.1, and apply identical AdamW updates so the
//! replicas stay synchronized.

use cannikin::collectives::CommGroup;
use cannikin::core::gns::{estimate_gns, Aggregation, GnsTracker, GradientSample};
use cannikin::dnn::data::token_sequences;
use cannikin::dnn::layers::{assign_values, flatten_values};
use cannikin::dnn::models::MiniBert;
use cannikin::dnn::optim::{AdamW, Optimizer};
use cannikin::dnn::tensor::Tensor;
use std::sync::Arc;
use std::thread;

const VOCAB: usize = 48;
const SEQ: usize = 10;
const CLASSES: usize = 4;

fn main() {
    let dataset = Arc::new(token_sequences(1536, VOCAB, SEQ, CLASSES, 7));
    // An OptPerf-style uneven split: the "A100" takes half the batch.
    let shards: [u64; 3] = [24, 16, 8];
    let total: u64 = shards.iter().sum();
    println!("mini-BERT (2 layers, dim 16), 3 workers with shards {shards:?} of B={total}\n");

    let reference = MiniBert::new(VOCAB, SEQ, 16, 2, 2, CLASSES, 99);
    let init = flatten_values(&reference.parameters()).into_data();

    let epochs = 4;
    let steps_per_epoch = dataset.len() / total as usize;
    let comms = CommGroup::create(3);
    let handles: Vec<_> = comms
        .into_iter()
        .enumerate()
        .map(|(rank, comm)| {
            let dataset = Arc::clone(&dataset);
            let init = init.clone();
            thread::spawn(move || {
                let mut model = MiniBert::new(VOCAB, SEQ, 16, 2, 2, CLASSES, 99);
                let flat = Tensor::from_vec(init, &[model.parameters().iter().map(|p| p.len()).sum()]).unwrap();
                assign_values(&mut model.parameters_mut(), &flat);
                let mut opt = AdamW::new(4e-3).weight_decay(0.01);
                let mut tracker = GnsTracker::new(0.9);
                let ratio = shards[rank] as f32 / total as f32;
                let mut report = Vec::new();
                for epoch in 0..epochs {
                    let mut loss_sum = 0.0f64;
                    for step in 0..steps_per_epoch {
                        // Deterministic shard: worker `rank` reads its slice
                        // of the step's contiguous index window.
                        let start = step * total as usize
                            + shards[..rank].iter().sum::<u64>() as usize;
                        let idx: Vec<usize> =
                            (start..start + shards[rank] as usize).map(|i| i % dataset.len()).collect();
                        let (seqs, labels) = dataset.batch(&idx);
                        for p in model.parameters_mut() {
                            p.zero_grad();
                        }
                        let loss = model.train_step(&seqs, &labels);
                        loss_sum += f64::from(loss);

                        // Eq. (9) weighted gradient exchange + GNS inputs.
                        let mut g: Vec<f32> = model
                            .parameters()
                            .iter()
                            .flat_map(|p| p.grad.data().iter().copied())
                            .collect();
                        let local_sq: f64 = g.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
                        comm.weighted_all_reduce(&mut g, ratio);
                        let global_sq: f64 = g.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
                        let rows = comm.all_gather_vec(&[shards[rank] as f64, local_sq]);
                        let samples: Vec<GradientSample> = rows
                            .iter()
                            .map(|r| GradientSample { local_batch: r[0] as u64, local_sq_norm: r[1] })
                            .collect();
                        if let Ok(est) = estimate_gns(&samples, global_sq, Aggregation::MinimumVariance) {
                            tracker.observe(est);
                        }
                        let flat_g = Tensor::from_vec(g, &[flat.len()]).unwrap();
                        cannikin::dnn::layers::assign_grads(&mut model.parameters_mut(), &flat_g);
                        opt.step(&mut model.parameters_mut());
                    }
                    // Evaluate on a held-out slice (every rank computes the
                    // same number since replicas are identical).
                    let eval_idx: Vec<usize> = (0..256).collect();
                    let (seqs, labels) = dataset.batch(&eval_idx);
                    let acc = model.accuracy(&seqs, &labels);
                    report.push((epoch, loss_sum / steps_per_epoch as f64, acc, tracker.noise_scale()));
                }
                (rank, report)
            })
        })
        .collect();

    let mut results: Vec<_> = handles.into_iter().map(|h| h.join().expect("worker")).collect();
    results.sort_by_key(|(rank, _)| *rank);
    println!("{:>5}  {:>9}  {:>9}  {:>10}", "epoch", "loss", "accuracy", "GNS");
    for (epoch, loss, acc, gns) in &results[0].1 {
        println!(
            "{epoch:>5}  {loss:>9.4}  {:>8.1}%  {:>10}",
            acc * 100.0,
            gns.map_or("-".to_string(), |p| format!("{p:.1}"))
        );
    }
    // Replicas must agree bit-for-bit on the evaluation accuracy.
    for (rank, report) in &results[1..] {
        assert_eq!(report.last().unwrap().2, results[0].1.last().unwrap().2, "rank {rank} diverged");
    }
    println!("\nall three replicas report identical accuracy — the weighted ring");
    println!("all-reduce kept them synchronized despite the uneven shards");
}
