//! PyTorch DistributedDataParallel baseline.

use cannikin_core::engine::{EpochRecord, NoiseModel};
use cannikin_core::gns::statistical_efficiency;
use cannikin_core::optperf::even_split;
use hetsim::Simulator;

/// Fixed-batch, even-split distributed training — the strongest
/// *non-adaptive homogeneous* baseline (§5.1).
///
/// DDP is unaware of heterogeneity (every rank gets `B/n` samples) and of
/// statistical efficiency (the total batch never changes), so in a
/// heterogeneous cluster every batch waits for the slowest node.
pub struct DdpTrainer {
    sim: Simulator,
    noise: Box<dyn NoiseModel>,
    dataset_size: usize,
    total_batch: u64,
    base_batch: u64,
    epoch: usize,
    effective_epochs: f64,
    cumulative_time: f64,
}

impl DdpTrainer {
    /// Create a DDP run with a fixed `total_batch`. `base_batch` is the
    /// statistical reference B₀ (usually equal to `total_batch`).
    ///
    /// # Panics
    ///
    /// Panics if `total_batch` cannot give every node one sample.
    pub fn new(sim: Simulator, noise: Box<dyn NoiseModel>, dataset_size: usize, total_batch: u64, base_batch: u64) -> Self {
        assert!(total_batch >= sim.cluster().len() as u64, "total batch must cover every node");
        DdpTrainer {
            sim,
            noise,
            dataset_size,
            total_batch,
            base_batch,
            epoch: 0,
            effective_epochs: 0.0,
            cumulative_time: 0.0,
        }
    }

    /// Run one epoch.
    pub fn run_epoch(&mut self) -> EpochRecord {
        let n = self.sim.cluster().len();
        let phi = self.noise.noise_scale(self.effective_epochs);
        let local = even_split(self.total_batch, n);
        let steps = (self.dataset_size / self.total_batch as usize).max(1);
        let trace = self.sim.simulate_epoch(&local, steps);
        let efficiency = statistical_efficiency(phi, self.base_batch, self.total_batch);
        self.effective_epochs += steps as f64 * self.total_batch as f64 * efficiency / self.dataset_size as f64;
        self.cumulative_time += trace.epoch_time;
        let record = EpochRecord {
            epoch: self.epoch,
            total_batch: self.total_batch,
            local_batches: local,
            steps,
            accumulation: 1,
            epoch_time: trace.epoch_time,
            mean_batch_time: trace.mean_batch_time(),
            noise_scale: phi,
            efficiency,
            effective_epochs: self.effective_epochs,
            cumulative_time: self.cumulative_time,
            overhead_seconds: 0.0,
            pattern: None,
            used_model: false,
            faults: 0,
            recoveries: 0,
        };
        self.epoch += 1;
        record
    }

    /// React to `node` crashing partway through an epoch.
    ///
    /// Static DDP cannot shrink a collective in flight: the process group
    /// aborts, the partial epoch is discarded, and the scheduler restarts
    /// the job on the survivors from the last epoch-boundary checkpoint.
    /// `lost_fraction` (clamped to `0..=1`) is how far into the doomed
    /// epoch the crash hit — that wall time is charged with zero
    /// statistical progress — and `restart_overhead` covers detection,
    /// rescheduling, checkpoint reload and process-group re-init.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or it is the last node standing.
    pub fn handle_crash(&mut self, node: usize, lost_fraction: f64, restart_overhead: f64) {
        let n = self.sim.cluster().len();
        assert!(node < n, "node {node} out of range for {n}-node cluster");
        assert!(n > 1, "cannot survive losing the last node");
        let local = even_split(self.total_batch, n);
        let steps = (self.dataset_size / self.total_batch as usize).max(1);
        let lost = self.sim.ideal_batch_time(&local) * steps as f64 * lost_fraction.clamp(0.0, 1.0);
        self.cumulative_time += lost + restart_overhead.max(0.0);
        self.sim.remove_node(node);
    }

    /// Run until `target` effective epochs or `max_epochs`.
    pub fn train_until(&mut self, target: f64, max_epochs: usize) -> Vec<EpochRecord> {
        let mut out = Vec::new();
        while self.effective_epochs < target && out.len() < max_epochs {
            out.push(self.run_epoch());
        }
        out
    }

    /// Run a fixed number of epochs.
    pub fn run_epochs(&mut self, n: usize) -> Vec<EpochRecord> {
        (0..n).map(|_| self.run_epoch()).collect()
    }
}

impl cannikin_core::engine::TrainingSubject for DdpTrainer {
    fn next_epoch(&mut self) -> Result<EpochRecord, cannikin_core::error::CannikinError> {
        Ok(self.run_epoch())
    }

    fn progress(&self) -> f64 {
        self.effective_epochs
    }
}

impl std::fmt::Debug for DdpTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DdpTrainer(B={}, epoch {})", self.total_batch, self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cannikin_core::engine::LinearNoiseGrowth;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::job::JobSpec;

    fn sim() -> Simulator {
        let cluster = ClusterSpec::new(
            "t",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        );
        Simulator::new(cluster, JobSpec::resnet50_imagenet(), 3)
    }

    #[test]
    fn split_is_always_even() {
        let noise = Box::new(LinearNoiseGrowth { initial: 100.0, rate: 0.5 });
        let mut t = DdpTrainer::new(sim(), noise, 10_000, 120, 120);
        for _ in 0..3 {
            let r = t.run_epoch();
            assert_eq!(r.total_batch, 120);
            assert_eq!(r.local_batches, vec![40, 40, 40]);
            assert!((r.efficiency - 1.0).abs() < 1e-12, "B = B0 gives unit efficiency");
        }
    }

    #[test]
    fn crash_costs_wall_time_and_shrinks_the_split() {
        let noise = Box::new(LinearNoiseGrowth { initial: 100.0, rate: 0.5 });
        let mut t = DdpTrainer::new(sim(), noise, 10_000, 120, 120);
        let before = t.run_epoch();
        t.handle_crash(1, 0.5, 30.0);
        let after = t.run_epoch();
        assert_eq!(after.local_batches, vec![60, 60], "even split over the survivors");
        // The lost half-epoch plus the restart round trip showed up as
        // wall time without any effective-epoch progress.
        let wall = after.cumulative_time - before.cumulative_time;
        assert!(wall > after.epoch_time + 30.0 - 1e-9, "wall {wall} must include lost work + restart");
        assert!(after.effective_epochs > before.effective_epochs);
    }

    #[test]
    fn progress_accumulates() {
        let noise = Box::new(LinearNoiseGrowth { initial: 100.0, rate: 0.5 });
        let mut t = DdpTrainer::new(sim(), noise, 10_000, 120, 120);
        let records = t.train_until(2.0, 50);
        assert!(records.last().unwrap().effective_epochs >= 2.0);
    }
}
