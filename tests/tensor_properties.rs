//! Property-based tests for the tensor kernels — the numerical bedrock
//! everything else stands on.

use cannikin::dnn::tensor::{matmul, matmul_a_bt, matmul_at_b, Tensor};
use proptest::prelude::*;

fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(data, &[rows, cols]).expect("shape"))
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.data().iter().zip(b.data()).all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn addition_is_commutative_and_associative(a in tensor(3, 5), b in tensor(3, 5), c in tensor(3, 5)) {
        prop_assert!(close(&a.add(&b), &b.add(&a), 1e-6));
        prop_assert!(close(&a.add(&b).add(&c), &a.add(&b.add(&c)), 1e-5));
    }

    #[test]
    fn matmul_distributes_over_addition(a in tensor(3, 4), b in tensor(4, 2), c in tensor(4, 2)) {
        let left = matmul(&a, &b.add(&c));
        let right = matmul(&a, &b).add(&matmul(&a, &c));
        prop_assert!(close(&left, &right, 1e-4));
    }

    #[test]
    fn transposed_kernels_agree_with_materialized_transpose(a in tensor(4, 3), b in tensor(4, 2)) {
        // Aᵀ B via the fused kernel == via explicit transpose.
        let fused = matmul_at_b(&a, &b);
        let explicit = matmul(&a.transpose2d(), &b);
        prop_assert!(close(&fused, &explicit, 1e-5));
    }

    #[test]
    fn abt_kernel_agrees(a in tensor(3, 5), b in tensor(2, 5)) {
        let fused = matmul_a_bt(&a, &b);
        let explicit = matmul(&a, &b.transpose2d());
        prop_assert!(close(&fused, &explicit, 1e-5));
    }

    #[test]
    fn matmul_transpose_identity(a in tensor(3, 4), b in tensor(4, 2)) {
        // (A B)ᵀ == Bᵀ Aᵀ
        let left = matmul(&a, &b).transpose2d();
        let right = matmul(&b.transpose2d(), &a.transpose2d());
        prop_assert!(close(&left, &right, 1e-5));
    }

    #[test]
    fn scale_is_linear(a in tensor(4, 4), s in -5.0f32..5.0, t in -5.0f32..5.0) {
        let left = a.scale(s).add(&a.scale(t));
        let right = a.scale(s + t);
        prop_assert!(close(&left, &right, 1e-4));
    }

    #[test]
    fn sq_l2_matches_dot(a in tensor(5, 3)) {
        prop_assert!((a.sq_l2() - a.dot(&a)).abs() < 1e-6 * (1.0 + a.sq_l2()));
    }

    #[test]
    fn sum_rows_preserves_total(a in tensor(6, 4)) {
        let by_rows = a.sum_rows().sum();
        prop_assert!((by_rows - a.sum()).abs() < 1e-3);
    }

    #[test]
    fn slice_concat_roundtrip(a in tensor(6, 3), cut in 1usize..5) {
        let top = a.slice_rows(0, cut);
        let bottom = a.slice_rows(cut, 6);
        let back = Tensor::concat_rows(&[&top, &bottom]);
        prop_assert_eq!(back, a);
    }
}

/// Collective properties over random worlds and weights.
mod collectives_props {
    use cannikin::collectives::CommGroup;
    use proptest::prelude::*;
    use std::thread;

    fn run_weighted(world: usize, len: usize, weights: Vec<f32>, values: Vec<f32>) -> Vec<Vec<f32>> {
        let comms = CommGroup::create(world);
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let w = weights[rank];
                let v = values[rank];
                thread::spawn(move || {
                    let mut data = vec![v; len];
                    comm.weighted_all_reduce(&mut data, w);
                    data
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank")).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn weighted_all_reduce_matches_serial_sum(
            world in 2usize..6,
            len in 1usize..80,
            seedish in 0u32..1000,
        ) {
            let weights: Vec<f32> = (0..world).map(|i| ((seedish as usize + i) % 7 + 1) as f32 / 8.0).collect();
            let values: Vec<f32> = (0..world).map(|i| ((seedish as usize * 3 + i * 5) % 11) as f32 - 5.0).collect();
            let expected: f32 = weights.iter().zip(&values).map(|(w, v)| w * v).sum();
            let results = run_weighted(world, len, weights, values);
            for r in results {
                prop_assert_eq!(r.len(), len);
                for v in r {
                    prop_assert!((v - expected).abs() < 1e-4, "{v} vs {expected}");
                }
            }
        }
    }
}
