//! Cluster specifications.

use crate::catalog::Gpu;
use serde::{Deserialize, Serialize};

/// One data-parallel worker (a single GPU — the paper treats every GPU of
/// a multi-GPU server as its own node).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Human-readable name ("a100-0", "rtx-3", …).
    pub name: String,
    /// GPU model installed on this node.
    pub gpu: Gpu,
    /// Fraction of the GPU available to the training job. `1.0` means a
    /// dedicated GPU; values below one model sharing-induced heterogeneity
    /// (§6, cluster C: a dummy co-located workload steals compute).
    pub available_fraction: f64,
    /// Relative host-CPU speed (1.0 = reference). Data loading and
    /// host-side overheads scale with the CPU, not the GPU — Tables 3–4
    /// pair every GPU model with a different Xeon, which is why
    /// equal-compute-time splits (LB-BSP) and OptPerf splits differ.
    pub cpu_factor: f64,
    /// Relative standard deviation of this node's *measurement* noise when
    /// it reports γ and communication-time observations. Heterogeneous
    /// observation quality is what makes inverse-variance weighting (§5.3)
    /// worthwhile.
    pub measurement_sigma: f64,
    /// Relative *systematic* over-estimation of this node's γ and
    /// communication-time observations (a busy straggler cannot separate
    /// queueing delay from transfer time, so its timers read high). Naive
    /// averaging absorbs this bias in full; inverse-variance weighting
    /// suppresses it because biased observers are also the noisy ones.
    pub measurement_bias: f64,
}

impl NodeSpec {
    /// A dedicated node with default measurement noise (2%) and no
    /// systematic measurement bias.
    pub fn new(name: impl Into<String>, gpu: Gpu) -> Self {
        NodeSpec {
            name: name.into(),
            gpu,
            available_fraction: 1.0,
            cpu_factor: 1.0,
            measurement_sigma: 0.02,
            measurement_bias: 0.0,
        }
    }

    /// Set the relative host-CPU speed (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `factor > 0`.
    #[must_use]
    pub fn with_cpu_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "cpu factor must be positive");
        self.cpu_factor = factor;
        self
    }

    /// Set the available compute fraction (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    #[must_use]
    pub fn with_contention(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "available fraction must be in (0, 1]");
        self.available_fraction = fraction;
        self
    }

    /// Set this node's measurement noise (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    #[must_use]
    pub fn with_measurement_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "measurement sigma must be non-negative");
        self.measurement_sigma = sigma;
        self
    }

    /// Set this node's systematic measurement over-estimation (builder
    /// style): observations read `(1 + bias)` times their true value.
    ///
    /// # Panics
    ///
    /// Panics if `bias < 0`.
    #[must_use]
    pub fn with_measurement_bias(mut self, bias: f64) -> Self {
        assert!(bias >= 0.0, "measurement bias must be non-negative");
        self.measurement_bias = bias;
        self
    }

    /// Effective FP16 FLOPS after contention.
    pub fn effective_flops(&self) -> f64 {
        self.gpu.flops() * self.available_fraction
    }

    /// Usable GPU memory in bytes after contention (memory is shared
    /// proportionally in the cluster-C experiment).
    pub fn effective_memory_bytes(&self) -> f64 {
        f64::from(self.gpu.spec().memory_gb) * self.available_fraction * 1024.0 * 1024.0 * 1024.0
    }
}

/// The interconnect between nodes.
///
/// The paper models gradient synchronization time as a learnable constant
/// per job (§3.2.2); the simulator derives that constant from a ring
/// all-reduce over the slowest link, which is how NCCL's ring behaves in a
/// heterogeneous network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Bandwidth of the slowest link in the ring, bytes/second.
    pub bottleneck_bandwidth: f64,
    /// Per-all-reduce-step latency in seconds (ring hops).
    pub link_latency: f64,
}

impl NetworkSpec {
    /// 10 GbE with 25 µs hops — the Chameleon-like default.
    pub fn ten_gbe() -> Self {
        NetworkSpec { bottleneck_bandwidth: 10.0e9 / 8.0, link_latency: 25e-6 }
    }

    /// 25 GbE with 15 µs hops.
    pub fn twenty_five_gbe() -> Self {
        NetworkSpec { bottleneck_bandwidth: 25.0e9 / 8.0, link_latency: 15e-6 }
    }

    /// Time for one ring all-reduce of `bytes` over `n` nodes:
    /// `2(n−1)/n · bytes / bw + 2(n−1) · latency`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn ring_all_reduce_time(&self, bytes: f64, n: usize) -> f64 {
        assert!(n > 0, "ring needs at least one node");
        if n == 1 {
            return 0.0;
        }
        let steps = 2.0 * (n as f64 - 1.0);
        steps / n as f64 * bytes / self.bottleneck_bandwidth + steps * self.link_latency
    }
}

/// A heterogeneous GPU cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Cluster name ("A", "B", "C", …).
    pub name: String,
    /// The data-parallel workers.
    pub nodes: Vec<NodeSpec>,
    /// Interconnect model.
    pub network: NetworkSpec,
}

impl ClusterSpec {
    /// Create a cluster on the default 10 GbE network.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(name: impl Into<String>, nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        ClusterSpec { name: name.into(), nodes, network: NetworkSpec::ten_gbe() }
    }

    /// Replace the network model (builder style).
    #[must_use]
    pub fn with_network(mut self, network: NetworkSpec) -> Self {
        self.network = network;
        self
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ratio of fastest to slowest effective node speed — the paper's
    /// "degree of heterogeneity" (§6).
    pub fn heterogeneity_degree(&self) -> f64 {
        let speeds: Vec<f64> = self.nodes.iter().map(NodeSpec::effective_flops).collect();
        let max = speeds.iter().copied().fold(f64::MIN, f64::max);
        let min = speeds.iter().copied().fold(f64::MAX, f64::min);
        max / min
    }

    /// Whether all nodes are effectively identical.
    pub fn is_homogeneous(&self) -> bool {
        (self.heterogeneity_degree() - 1.0).abs() < 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_time_scales_with_bytes_and_latency() {
        let net = NetworkSpec::ten_gbe();
        let t_small = net.ring_all_reduce_time(1e6, 4);
        let t_big = net.ring_all_reduce_time(1e8, 4);
        assert!(t_big > t_small * 50.0);
        assert_eq!(net.ring_all_reduce_time(1e9, 1), 0.0);
    }

    #[test]
    fn ring_time_approaches_2x_bandwidth_bound() {
        // For large n, time → 2·bytes/bw (plus latency).
        let net = NetworkSpec { bottleneck_bandwidth: 1e9, link_latency: 0.0 };
        let t = net.ring_all_reduce_time(1e9, 1000);
        assert!((t - 2.0).abs() < 0.01, "t = {t}");
    }

    #[test]
    fn contention_reduces_effective_speed() {
        let full = NodeSpec::new("x", Gpu::Rtx6000);
        let half = NodeSpec::new("y", Gpu::Rtx6000).with_contention(0.5);
        assert!((full.effective_flops() / half.effective_flops() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneity_degree_of_mixed_cluster() {
        let c = ClusterSpec::new(
            "t",
            vec![NodeSpec::new("a", Gpu::A100), NodeSpec::new("r", Gpu::Rtx6000)],
        );
        assert!((c.heterogeneity_degree() - 3.42).abs() < 0.02);
        assert!(!c.is_homogeneous());
    }

    #[test]
    fn homogeneous_detection() {
        let c = ClusterSpec::new(
            "t",
            vec![NodeSpec::new("a", Gpu::V100), NodeSpec::new("b", Gpu::V100)],
        );
        assert!(c.is_homogeneous());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        let _ = ClusterSpec::new("empty", vec![]);
    }
}
