//! 2-D convolution via im2col.

use super::{Layer, Param};
use crate::tensor::{gemm, gemm_a_bt, gemm_at_b, scratch, Tensor};

/// 2-D convolution over `[batch, in_c, h, w]` inputs.
///
/// The implementation lowers each sample to an im2col matrix of shape
/// `[in_c·kh·kw, oh·ow]` and uses a single matrix multiplication per sample,
/// which is the standard CPU strategy and keeps the backward pass to two
/// more matmuls plus a col2im scatter. The im2col matrices for the whole
/// batch live in one buffer owned by the layer and reused across steps, and
/// the backward scratch comes from the thread-local arena — steady-state
/// training performs no fresh im2col allocations (see
/// `im2col_buffers_are_reused` below).
///
/// # Examples
///
/// ```
/// use minidnn::layers::{Conv2d, Layer};
/// use minidnn::tensor::Tensor;
///
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, 0);
/// let y = conv.forward(&Tensor::randn(&[2, 3, 8, 8], 1), true);
/// assert_eq!(y.shape(), &[2, 8, 8, 8]);
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cache: Option<ConvCache>,
    /// Whole-batch im2col matrix `[batch · in_c·k·k · oh·ow]`, grown on
    /// demand and reused across forward/backward calls.
    col_buf: Vec<f32>,
}

#[derive(Debug)]
struct ConvCache {
    in_shape: Vec<usize>,
    out_hw: (usize, usize),
}

impl Conv2d {
    /// Create a square-kernel convolution.
    ///
    /// # Panics
    ///
    /// Panics if any of `in_channels`, `out_channels`, `kernel` or `stride`
    /// is zero.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, stride: usize, padding: usize, seed: u64) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0, "conv dimensions must be positive");
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: Param::new(Tensor::kaiming(&[out_channels, fan_in], fan_in, seed), "conv.weight"),
            bias: Param::new(Tensor::zeros(&[out_channels]), "conv.bias"),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cache: None,
            col_buf: Vec::new(),
        }
    }

    /// Output spatial size for an input of the given height/width.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let hp = h + 2 * self.padding;
        let wp = w + 2 * self.padding;
        assert!(hp >= self.kernel && wp >= self.kernel, "input {h}x{w} too small for kernel {}", self.kernel);
        ((hp - self.kernel) / self.stride + 1, (wp - self.kernel) / self.stride + 1)
    }
}

/// Geometry shared by the im2col lowering and the col2im scatter.
#[derive(Debug, Clone, Copy)]
struct ColGeom {
    in_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
}

/// Lower one sample `[in_c, h, w]` to `[in_c·k·k, oh·ow]`, writing every
/// element of `out` (so stale buffer contents are fine).
fn im2col(x: &[f32], g: ColGeom, out: &mut [f32]) {
    let k = g.kernel;
    for c in 0..g.in_channels {
        for ki in 0..k {
            for kj in 0..k {
                let row = (c * k + ki) * k + kj;
                for oi in 0..g.oh {
                    let ii = (oi * g.stride + ki) as isize - g.padding as isize;
                    for oj in 0..g.ow {
                        let jj = (oj * g.stride + kj) as isize - g.padding as isize;
                        let v = if ii >= 0 && jj >= 0 && (ii as usize) < g.h && (jj as usize) < g.w {
                            x[(c * g.h + ii as usize) * g.w + jj as usize]
                        } else {
                            0.0
                        };
                        out[row * (g.oh * g.ow) + oi * g.ow + oj] = v;
                    }
                }
            }
        }
    }
}

/// Scatter a `[in_c·k·k, oh·ow]` gradient back to `[in_c, h, w]`.
fn col2im(col: &[f32], g: ColGeom, out: &mut [f32]) {
    let k = g.kernel;
    for c in 0..g.in_channels {
        for ki in 0..k {
            for kj in 0..k {
                let row = (c * k + ki) * k + kj;
                for oi in 0..g.oh {
                    let ii = (oi * g.stride + ki) as isize - g.padding as isize;
                    for oj in 0..g.ow {
                        let jj = (oj * g.stride + kj) as isize - g.padding as isize;
                        if ii >= 0 && jj >= 0 && (ii as usize) < g.h && (jj as usize) < g.w {
                            out[(c * g.h + ii as usize) * g.w + jj as usize] += col[row * (g.oh * g.ow) + oi * g.ow + oj];
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "conv input must be [batch, c, h, w], got {shape:?}");
        assert_eq!(shape[1], self.in_channels, "conv channel mismatch");
        let (batch, h, w) = (shape[0], shape[2], shape[3]);
        let (oh, ow) = self.output_hw(h, w);
        let geom = ColGeom {
            in_channels: self.in_channels,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            h,
            w,
            oh,
            ow,
        };
        let rows = self.in_channels * self.kernel * self.kernel;
        let spatial = oh * ow;
        let sample = self.in_channels * h * w;
        if self.col_buf.len() != batch * rows * spatial {
            self.col_buf.resize(batch * rows * spatial, 0.0);
        }
        let mut out = vec![0.0f32; batch * self.out_channels * spatial];
        for b in 0..batch {
            let col = &mut self.col_buf[b * rows * spatial..][..rows * spatial];
            im2col(&x.data()[b * sample..][..sample], geom, col);
            let y = &mut out[b * self.out_channels * spatial..][..self.out_channels * spatial];
            gemm(self.out_channels, spatial, rows, self.weight.value.data(), col, y, false);
            for (oc, y_oc) in y.chunks_exact_mut(spatial).enumerate() {
                let bias = self.bias.value.data()[oc];
                for v in y_oc {
                    *v += bias;
                }
            }
        }
        self.cache = Some(ConvCache { in_shape: shape.to_vec(), out_hw: (oh, ow) });
        Tensor::from_vec(out, &[batch, self.out_channels, oh, ow]).expect("conv output shape")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let (oh, ow) = cache.out_hw;
        let in_shape = cache.in_shape.clone();
        let batch = in_shape[0];
        let (h, w) = (in_shape[2], in_shape[3]);
        assert_eq!(grad_out.shape(), &[batch, self.out_channels, oh, ow], "conv backward shape mismatch");
        let geom = ColGeom {
            in_channels: self.in_channels,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            h,
            w,
            oh,
            ow,
        };
        let rows = self.in_channels * self.kernel * self.kernel;
        let spatial = oh * ow;
        let sample = self.in_channels * h * w;
        let mut dx = vec![0.0f32; batch * sample];
        let mut dcol = scratch::take(rows * spatial);
        for b in 0..batch {
            let g = &grad_out.data()[b * self.out_channels * spatial..][..self.out_channels * spatial];
            let col = &self.col_buf[b * rows * spatial..][..rows * spatial];
            // dW += g colᵀ ; db += Σ_spatial g ; dcol = Wᵀ g
            gemm_a_bt(self.out_channels, rows, spatial, g, col, self.weight.grad.data_mut(), true);
            for (oc, g_oc) in g.chunks_exact(spatial).enumerate() {
                self.bias.grad.data_mut()[oc] += g_oc.iter().sum::<f32>();
            }
            gemm_at_b(rows, spatial, self.out_channels, self.weight.value.data(), g, dcol.as_mut_slice(), false);
            col2im(dcol.as_slice(), geom, &mut dx[b * sample..][..sample]);
        }
        Tensor::from_vec(dx, &in_shape).expect("conv dx shape")
    }

    fn parameters(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_with_padding() {
        let conv = Conv2d::new(1, 4, 3, 1, 1, 0);
        assert_eq!(conv.output_hw(5, 5), (5, 5));
        let conv = Conv2d::new(1, 4, 3, 2, 0, 0);
        assert_eq!(conv.output_hw(7, 7), (3, 3));
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel with weight 1 and bias 0 is the identity.
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, 0);
        conv.weight.value.data_mut()[0] = 1.0;
        let x = Tensor::randn(&[1, 1, 4, 4], 13);
        let y = conv.forward(&x, true);
        assert_eq!(y, x);
    }

    #[test]
    fn known_3x3_convolution() {
        // All-ones 3x3 kernel over an all-ones 3x3 input, no padding: single
        // output = 9.
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, 0);
        conv.weight.value.data_mut().fill(1.0);
        let y = conv.forward(&Tensor::ones(&[1, 1, 3, 3]), true);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 9.0);
    }

    #[test]
    fn gradient_check_weight_and_input() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 17);
        let x = Tensor::randn(&[2, 2, 4, 4], 18);
        let y = conv.forward(&x, true);
        let gx = conv.backward(&Tensor::ones(y.shape()));
        let eps = 1e-2f32;

        // Weight gradient (spot-check a handful of indices).
        let analytic = conv.weight.grad.clone();
        for idx in [0usize, 5, 11, 17] {
            let orig = conv.weight.value.data()[idx];
            conv.weight.value.data_mut()[idx] = orig + eps;
            let plus = conv.forward(&x, true).sum();
            conv.weight.value.data_mut()[idx] = orig - eps;
            let minus = conv.forward(&x, true).sum();
            conv.weight.value.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((numeric - analytic.data()[idx]).abs() < 0.05, "w[{idx}]: {numeric} vs {}", analytic.data()[idx]);
        }

        // Input gradient (spot-check).
        for idx in [0usize, 7, 20, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let numeric = (conv.forward(&xp, true).sum() - conv.forward(&xm, true).sum()) / (2.0 * eps);
            assert!((numeric - gx.data()[idx]).abs() < 0.05, "x[{idx}]: {numeric} vs {}", gx.data()[idx]);
        }
    }

    #[test]
    fn bias_gradient_counts_positions() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, 19);
        let x = Tensor::randn(&[3, 1, 4, 4], 20);
        let y = conv.forward(&x, true);
        conv.backward(&Tensor::ones(y.shape()));
        // Each output channel sees batch * oh * ow unit gradients.
        for &g in conv.bias.grad.data() {
            assert_eq!(g, (3 * 4 * 4) as f32);
        }
    }

    #[test]
    fn im2col_buffers_are_reused() {
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, 23);
        let x = Tensor::randn(&[2, 2, 6, 6], 24);
        // Warm-up step: the col buffer and any arena scratch get sized.
        let y = conv.forward(&x, true);
        conv.backward(&Tensor::ones(y.shape()));
        let col_ptr = conv.col_buf.as_ptr();
        let col_len = conv.col_buf.len();
        let arena_before = crate::tensor::scratch::stats();
        for _ in 0..3 {
            let y = conv.forward(&x, true);
            conv.backward(&Tensor::ones(y.shape()));
        }
        assert_eq!(conv.col_buf.as_ptr(), col_ptr, "im2col batch buffer must be reused, not reallocated");
        assert_eq!(conv.col_buf.len(), col_len);
        let arena_after = crate::tensor::scratch::stats();
        assert_eq!(
            arena_after.allocations, arena_before.allocations,
            "warm conv steps must not allocate new scratch buffers"
        );
        assert!(arena_after.reuses > arena_before.reuses, "backward scratch should come from the arena");
    }

    #[test]
    fn reused_buffers_do_not_change_results() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, 29);
        let x = Tensor::randn(&[1, 1, 5, 5], 30);
        let y1 = conv.forward(&x, true);
        // A different-shaped pass in between must not corrupt later results.
        let big = Tensor::randn(&[2, 1, 8, 8], 31);
        let _ = conv.forward(&big, true);
        let y2 = conv.forward(&x, true);
        assert_eq!(y1, y2);
    }
}
