//! Elementwise activation layers.

use super::{Layer, Param};
use crate::tensor::Tensor;

macro_rules! stateless_activation {
    ($(#[$meta:meta])* $name:ident, $fwd:expr, $bwd:expr) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        pub struct $name {
            input: Option<Tensor>,
        }

        impl $name {
            /// Create the activation layer.
            pub fn new() -> Self {
                Self { input: None }
            }
        }

        impl Layer for $name {
            fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
                self.input = Some(x.clone());
                x.map($fwd)
            }

            fn backward(&mut self, grad_out: &Tensor) -> Tensor {
                let x = self.input.as_ref().expect("backward called before forward");
                let local: fn(f32) -> f32 = $bwd;
                grad_out.mul(&x.map(local))
            }

            fn parameters(&self) -> Vec<&Param> {
                Vec::new()
            }
        }
    };
}

stateless_activation!(
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    |x| x.max(0.0),
    |x| if x > 0.0 { 1.0 } else { 0.0 }
);

stateless_activation!(
    /// Hyperbolic tangent.
    Tanh,
    f32::tanh,
    |x| 1.0 - x.tanh() * x.tanh()
);

stateless_activation!(
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    |x| 1.0 / (1.0 + (-x).exp()),
    |x| {
        let s = 1.0 / (1.0 + (-x).exp());
        s * (1.0 - s)
    }
);

stateless_activation!(
    /// Gaussian error linear unit (tanh approximation, as used by BERT).
    Gelu,
    gelu_forward,
    gelu_derivative
);

fn gelu_forward(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

fn gelu_derivative(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044_715 * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad<L: Layer>(layer: &mut L, x: &Tensor, idx: usize) -> f32 {
        let eps = 1e-3;
        let mut xp = x.clone();
        xp.data_mut()[idx] += eps;
        let mut xm = x.clone();
        xm.data_mut()[idx] -= eps;
        (layer.forward(&xp, true).sum() - layer.forward(&xm, true).sum()) / (2.0 * eps)
    }

    fn check_layer<L: Layer>(mut layer: L, tolerance: f32) {
        let x = Tensor::randn(&[3, 4], 21).scale(2.0);
        let y = layer.forward(&x, true);
        let gx = layer.backward(&Tensor::ones(y.shape()));
        for idx in 0..x.len() {
            // Re-run forward on the perturbed input last so the cached input
            // corresponds to the analytic gradient computed above.
            let n = numeric_grad(&mut layer, &x, idx);
            assert!((n - gx.data()[idx]).abs() < tolerance, "idx {idx}: numeric {n} vs analytic {}", gx.data()[idx]);
        }
    }

    #[test]
    fn relu_gradcheck() {
        check_layer(Relu::new(), 5e-2); // kink at zero makes fd noisy
    }

    #[test]
    fn tanh_gradcheck() {
        check_layer(Tanh::new(), 1e-2);
    }

    #[test]
    fn sigmoid_gradcheck() {
        check_layer(Sigmoid::new(), 1e-2);
    }

    #[test]
    fn gelu_gradcheck() {
        check_layer(Gelu::new(), 1e-2);
    }

    #[test]
    fn relu_known_values() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::from_slice(&[-1.0, 0.0, 2.0]), true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn gelu_known_values() {
        // GELU(0) = 0, GELU(large) ≈ identity, GELU(-large) ≈ 0.
        assert_eq!(gelu_forward(0.0), 0.0);
        assert!((gelu_forward(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu_forward(-10.0).abs() < 1e-3);
    }

    #[test]
    fn sigmoid_bounds() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::from_slice(&[-50.0, 0.0, 50.0]), true);
        assert!(y.data()[0] < 1e-6);
        assert_eq!(y.data()[1], 0.5);
        assert!(y.data()[2] > 1.0 - 1e-6);
    }
}
