//! Property-based tests for split planning under elastic membership
//! change (ISSUE 4 satellite): after a node is removed or added, a
//! re-solve at the same total must still cover the batch exactly over the
//! *new* membership — Σ b_i = B, every live node gets ≥ 1 sample, no
//! share is assigned to a dead rank, and memory caps stay respected. The
//! same contracts are checked for the Eq. (8) bootstrap fallback the
//! engine uses when the survivors' models are incomplete.

use cannikin::core::optperf::{bootstrap_split, NodePerf, OptPerfSolver, SolverInput};
use proptest::prelude::*;

/// Random heterogeneous solver input (same envelope as the solver
/// property suite): n nodes with slopes spanning up to ~6x.
fn arbitrary_input() -> impl Strategy<Value = SolverInput> {
    (3usize..8, 0.05f64..0.5)
        .prop_flat_map(|(n, gamma)| {
            let node = (0.05e-3f64..1.0e-3, 0.1e-3f64..4e-3, 0.1e-3f64..2e-3, 0.1e-3f64..4e-3).prop_map(
                |(q, s, k, m)| NodePerf { q, s, k, m, max_batch: None },
            );
            (
                proptest::collection::vec(node, n),
                Just(gamma),
                1e-3f64..80e-3,
                0.2e-3f64..8e-3,
            )
        })
        .prop_map(|(nodes, gamma, t_o, t_u)| SolverInput { nodes, gamma, t_o, t_u })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn resolve_after_removal_covers_the_survivors(
        input in arbitrary_input(),
        victim_seed in 0usize..64,
        total_mult in 2u64..120,
    ) {
        let n = input.len();
        let total = n as u64 * total_mult;
        let victim = victim_seed % n;
        let mut survivors = input;
        survivors.nodes.remove(victim);
        let plan = OptPerfSolver::new(survivors).solve(total).expect("still feasible without caps");
        // The dead rank gets nothing — the split has exactly n-1 entries.
        prop_assert_eq!(plan.local_batches.len(), n - 1);
        prop_assert_eq!(plan.local_batches.iter().sum::<u64>(), total, "same total after the shrink");
        prop_assert!(plan.local_batches.iter().all(|&b| b >= 1), "every survivor works");
        prop_assert!(plan.opt_perf.is_finite() && plan.opt_perf > 0.0);
    }

    #[test]
    fn resolve_after_removal_respects_memory_caps(
        input in arbitrary_input(),
        victim_seed in 0usize..64,
        caps in proptest::collection::vec(4u64..200, 8),
        total_mult in 2u64..120,
    ) {
        let n = input.len();
        let victim = victim_seed % n;
        let mut survivors = input;
        for (node, &cap) in survivors.nodes.iter_mut().zip(&caps) {
            node.max_batch = Some(cap);
        }
        survivors.nodes.remove(victim);
        // Mirror the engine's replan clamp: the old total may exceed the
        // shrunken cluster's capacity, in which case it is clamped into
        // the feasible range before solving.
        let cap_sum: u64 = survivors.nodes.iter().map(|nd| nd.max_batch.unwrap()).sum();
        let total = (n as u64 * total_mult).clamp(n as u64 - 1, cap_sum);
        let plan = OptPerfSolver::new(survivors.clone()).solve(total).expect("clamped total is feasible");
        prop_assert_eq!(plan.local_batches.iter().sum::<u64>(), total);
        for (nd, &b) in survivors.nodes.iter().zip(&plan.local_batches) {
            prop_assert!(b >= 1);
            prop_assert!(b <= nd.max_batch.unwrap(), "share {} breaks cap {:?}", b, nd.max_batch);
        }
    }

    #[test]
    fn resolve_after_join_covers_the_newcomer(
        input in arbitrary_input(),
        q in 0.05e-3f64..1.0e-3,
        s in 0.1e-3f64..4e-3,
        k in 0.1e-3f64..2e-3,
        m in 0.1e-3f64..4e-3,
        total_mult in 2u64..120,
    ) {
        let n = input.len();
        let total = n as u64 * total_mult;
        let mut grown = input;
        grown.nodes.push(NodePerf { q, s, k, m, max_batch: None });
        let plan = OptPerfSolver::new(grown).solve(total).expect("feasible");
        prop_assert_eq!(plan.local_batches.len(), n + 1);
        prop_assert_eq!(plan.local_batches.iter().sum::<u64>(), total, "same total after the grow");
        prop_assert!(plan.local_batches.iter().all(|&b| b >= 1), "the joiner must be put to work");
    }

    #[test]
    fn bootstrap_fallback_survives_membership_change(
        t_samples in proptest::collection::vec(1e-5f64..1e-2, 3..9),
        victim_seed in 0usize..64,
        total_mult in 1u64..200,
    ) {
        // The engine falls back to the Eq. (8) bootstrap when a survivor
        // or joiner has no fitted model yet; the fallback must keep the
        // same covering contract.
        let n = t_samples.len();
        let victim = victim_seed % n;
        let mut survivors = t_samples;
        survivors.remove(victim);
        let total = (n as u64 - 1) * total_mult.max(1);
        let split = bootstrap_split(&survivors, total);
        prop_assert_eq!(split.len(), n - 1);
        prop_assert_eq!(split.iter().sum::<u64>(), total);
        prop_assert!(split.iter().all(|&b| b >= 1));
    }
}
