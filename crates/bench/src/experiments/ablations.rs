//! Ablations beyond the paper's figures (DESIGN.md §5): what each design
//! choice buys.

use crate::runners::noiseless_sim;
use crate::{fmt, row};
use cannikin_core::engine::{CannikinTrainer, TrainerConfig};
use cannikin_core::optperf::{bootstrap_split, even_split, OptPerfSolver, SolverInput};
use cannikin_workloads::{clusters, profiles};
use hetsim::catalog::Gpu;
use hetsim::cluster::{NetworkSpec, NodeSpec};
use hetsim::Simulator;

/// Ablation: the compute/communication-overlap model (§3.2.3).
///
/// Compares three split policies on cluster B across batch sizes and
/// network speeds: the full OptPerf split, an *overlap-blind* split that
/// only equalizes total compute time (what LB-BSP converges to), and the
/// even split. The overlap model matters exactly in the mixed/
/// communication-bound regime, and more on slower networks.
pub fn ablation_overlap() -> String {
    let mut out = String::from("Ablation — overlap-aware vs overlap-blind splits (ResNet-50, cluster B)\n");
    let widths = [10, 9, 14, 14, 10];
    out += &row(
        &["network".into(), "B".into(), "blind/opt".into(), "even/opt".into(), "pattern".into()],
        &widths,
    );
    out.push('\n');
    for (label, network) in [("10GbE", NetworkSpec::ten_gbe()), ("25GbE", NetworkSpec::twenty_five_gbe())] {
        let profile = profiles::imagenet_resnet50();
        let cluster = clusters::cluster_b().with_network(network);
        let sim = Simulator::new(cluster.clone(), profile.job.clone(), 0).with_noise(0.0, 0.0);
        let mut solver = OptPerfSolver::new(SolverInput::from_ground_truth(&cluster, &profile.job));
        for total in [128u64, 512, 768, 1024, 1280, 1536, 2048, 8000] {
            let Ok(plan) = solver.solve(total) else { continue };
            let opt = sim.ideal_batch_time(&plan.local_batches);
            let blind = sim.ideal_batch_time(&equal_compute_split(&sim, total));
            let even = sim.ideal_batch_time(&even_split(total, cluster.len()));
            let computes = plan.pattern.iter().filter(|p| format!("{p:?}") == "Compute").count();
            out += &row(
                &[
                    label.into(),
                    total.to_string(),
                    fmt(blind / opt),
                    fmt(even / opt),
                    format!("{computes}/16 comp"),
                ],
                &widths,
            );
            out.push('\n');
        }
    }
    out += "\n(blind/opt > 1 only in mixed/communication-bound regimes — the overlap\n model's contribution, peaking near the bottleneck transition; at large B\n both policies coincide, as §5.2.2 notes. In this substrate the penalty is\n small in absolute terms because T_comm dominates exactly where the splits\n differ — see EXPERIMENTS.md deviation note 2.)\n";
    out
}

/// The overlap-blind fixed point: equalize per-sample *total compute* only.
fn equal_compute_split(sim: &Simulator, total: u64) -> Vec<u64> {
    let n = sim.cluster().len();
    let mut split = even_split(total, n);
    for _ in 0..12 {
        let t: Vec<f64> = (0..n)
            .map(|i| {
                let c = sim.true_coefficients(i);
                c.compute(split[i].max(1) as f64) / split[i].max(1) as f64
            })
            .collect();
        split = bootstrap_split(&t, total);
    }
    split
}

/// Ablation: warm-started overlap-state search (§4.5).
///
/// Counts linear-system solves for a full 30-candidate sweep with the
/// warm-start chain versus solving every candidate cold.
pub fn ablation_warm_start() -> String {
    let profile = profiles::imagenet_resnet50();
    let cluster = clusters::cluster_b();
    let input = SolverInput::from_ground_truth(&cluster, &profile.job);
    let candidates: Vec<u64> = (0..30).map(|i| 128 + i * 256).collect();

    let mut warm = OptPerfSolver::new(input.clone());
    let warm_solves: usize = candidates.iter().map(|&b| warm.solve(b).expect("feasible").solves).sum();
    let cold_solves: usize = candidates
        .iter()
        .map(|&b| OptPerfSolver::new(input.clone()).solve(b).expect("feasible").solves)
        .sum();

    let mut out = String::from("Ablation — warm-started boundary search (30-candidate sweep, 16 nodes)\n");
    out += &format!("  warm-start chain: {warm_solves} linear solves\n");
    out += &format!("  cold per candidate: {cold_solves} linear solves\n");
    out += &format!("  reduction: {:.0}%\n", (1.0 - warm_solves as f64 / cold_solves as f64) * 100.0);
    out
}

/// Elastic scheduling (§6): the scheduler grants two A100s to a running
/// 2-node job; Cannikin re-profiles and recovers within a few epochs.
pub fn elastic() -> String {
    let profile = profiles::imagenet_resnet50();
    let cluster = hetsim::cluster::ClusterSpec::new(
        "elastic",
        vec![NodeSpec::new("v100-0", Gpu::V100), NodeSpec::new("rtx-0", Gpu::Rtx6000).with_cpu_factor(0.7)],
    );
    let sim = Simulator::new(cluster, profile.job.clone(), 17);
    let mut config = TrainerConfig::new(12_800, 128, 128);
    config.adaptive_batch = false;
    let mut trainer = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(Box::new(profile.noise))
        .config(config)
        .build()
        .expect("valid config");

    let mut out = String::from("§6 — elastic cluster membership (fixed B=128, ImageNet)\n");
    let widths = [6, 7, 16, 24];
    out += &row(&["epoch".into(), "nodes".into(), "batch time (s)".into(), "split".into()], &widths);
    out.push('\n');
    for epoch in 0..12 {
        if epoch == 6 {
            trainer.simulator_mut().add_node(NodeSpec::new("a100-0", Gpu::A100).with_cpu_factor(1.5));
            trainer.simulator_mut().add_node(NodeSpec::new("a100-1", Gpu::A100).with_cpu_factor(1.5));
            trainer.on_cluster_change();
            out += "--- scheduler grants 2x A100 ---\n";
        }
        let r = trainer.run_epoch().expect("epoch");
        out += &row(
            &[
                r.epoch.to_string(),
                r.local_batches.len().to_string(),
                fmt(r.mean_batch_time),
                format!("{:?}", r.local_batches),
            ],
            &widths,
        );
        out.push('\n');
    }
    // Oracle on the final 4-node cluster.
    let final_cluster = trainer.simulator_mut().cluster().clone();
    let mut oracle = OptPerfSolver::new(SolverInput::from_ground_truth(&final_cluster, &profile.job));
    let oracle_time = noiseless_sim(&final_cluster, &profile.job)
        .ideal_batch_time(&oracle.solve(128).expect("feasible").local_batches);
    out += &format!("post-grant OptPerf (oracle): {}s\n", fmt(oracle_time));
    out
}

/// Extension: gradient accumulation beyond GPU memory. On a memory-capped
/// cluster the goodput engine escalates to no-sync micro-batches once the
/// gradient noise scale justifies batches the GPUs cannot hold at once.
pub fn accumulation() -> String {
    let cluster = hetsim::cluster::ClusterSpec::new(
        "tight",
        vec![
            NodeSpec::new("a100", Gpu::A100),
            NodeSpec::new("v100", Gpu::V100),
            NodeSpec::new("rtx", Gpu::Rtx6000),
        ],
    );
    let profile = profiles::imagenet_resnet50();
    let mut input = SolverInput::from_ground_truth(&cluster, &profile.job);
    for node in input.nodes.iter_mut() {
        node.max_batch = Some(100); // pretend each GPU fits only 100 samples
    }
    let mut solver = OptPerfSolver::new(input);
    let mut engine = cannikin_core::goodput::GoodputEngine::new(64, 64, 2048).with_accumulation(8);

    let mut out = String::from("Extension — gradient accumulation beyond memory (caps: 100/GPU, range to 2048)
");
    let widths = [12, 12, 8, 14, 16];
    out += &row(
        &["phi".into(), "B(effective)".into(), "accum".into(), "micro split".into(), "step time (s)".into()],
        &widths,
    );
    out.push('\n');
    for phi in [100.0f64, 1_000.0, 10_000.0, 100_000.0] {
        let sel = engine.select(&mut solver, phi).expect("feasible");
        let span = sel.plan.opt_perf
            + (sel.accumulation - 1) as f64
                * cannikin_core::optperf::compute_span(solver.input(), &sel.plan.local_batches);
        out += &row(
            &[
                format!("{phi:.0}"),
                sel.total.to_string(),
                sel.accumulation.to_string(),
                format!("{:?}", sel.plan.local_batches),
                fmt(span),
            ],
            &widths,
        );
        out.push('\n');
    }
    out += "
(the adaptive range extends past the 300-sample memory wall once phi makes
 large batches statistically worthwhile)
";
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_blind_never_beats_optperf() {
        let profile = profiles::imagenet_resnet50();
        let cluster = clusters::cluster_b().with_network(NetworkSpec::ten_gbe());
        let sim = Simulator::new(cluster.clone(), profile.job.clone(), 0).with_noise(0.0, 0.0);
        let mut solver = OptPerfSolver::new(SolverInput::from_ground_truth(&cluster, &profile.job));
        let mut saw_gap = false;
        for total in [128u64, 256, 512, 768, 1024, 1280, 1536, 2048] {
            let plan = solver.solve(total).expect("feasible");
            let opt = sim.ideal_batch_time(&plan.local_batches);
            let blind = sim.ideal_batch_time(&equal_compute_split(&sim, total));
            assert!(blind >= opt * 0.999, "B={total}: blind {blind} vs opt {opt}");
            if blind > opt * 1.005 {
                saw_gap = true;
            }
        }
        assert!(saw_gap, "the overlap model should matter somewhere in the sweep");
    }

    #[test]
    fn warm_start_saves_solves() {
        let text = ablation_warm_start();
        let reduction: f64 = text
            .lines()
            .find(|l| l.contains("reduction"))
            .and_then(|l| l.split(&[' ', '%'][..]).filter_map(|t| t.parse().ok()).next())
            .expect("reduction line");
        assert!(reduction > 20.0, "warm start should cut solves: {text}");
    }
}

/// Extension: multi-job scheduling over a shared heterogeneous pool
/// (§6's "adapt to schedulers" discussion), now on the `cannikin-fleet`
/// control plane. A short CIFAR job and a long production ImageNet job
/// share an 8-GPU pool; the fleet allocator re-divides the pool at every
/// epoch boundary as GNS-driven demands shift, so the short job's exit
/// flows straight into the survivor. The same trace under a static
/// partition shows what adaptive reallocation buys.
pub fn multi_job() -> String {
    use cannikin_core::engine::TrainerConfig;
    use cannikin_fleet::{AllocPolicy, FleetController, FleetJobSpec, Priority};
    use hetsim::job::JobSpec;

    let pool = || -> Vec<NodeSpec> {
        let mut out = Vec::new();
        for (gpu, count) in [(Gpu::A100, 2), (Gpu::V100, 2), (Gpu::Rtx6000, 4)] {
            for i in 0..count {
                out.push(NodeSpec::new(format!("{gpu}-{i}"), gpu));
            }
        }
        out
    };
    let trace = || {
        vec![
            FleetJobSpec::new("cifar (short)", JobSpec::resnet18_cifar10(), TrainerConfig::new(6_400, 64, 512), 3.0)
                .noise(400.0, 0.5)
                .seed(1),
            FleetJobSpec::new(
                "imagenet (long)",
                JobSpec::resnet50_imagenet(),
                TrainerConfig::new(12_800, 128, 1_024),
                5.0,
            )
            .priority(Priority::Production)
            .noise(400.0, 0.8)
            .seed(2),
        ]
    };

    let run = |policy: AllocPolicy| {
        FleetController::new(pool(), trace(), policy)
            .expect("valid fleet")
            .run_to_completion(10_000)
            .expect("stream drains")
    };
    let adaptive = run(AllocPolicy::Cannikin);
    let fixed = run(AllocPolicy::Static);

    let mut out = String::from("§6 — multi-tenant fleet over a shared heterogeneous pool\n");
    let widths = [10, 18, 16, 8, 13];
    out += &row(
        &["policy".into(), "job".into(), "completion (s)".into(), "epochs".into(), "preemptions".into()],
        &widths,
    );
    out.push('\n');
    for (policy, report) in [("cannikin", &adaptive), ("static", &fixed)] {
        for j in &report.jobs {
            out += &row(
                &[
                    policy.into(),
                    j.name.clone(),
                    fmt(j.finished_at),
                    j.epochs_run.to_string(),
                    j.preemptions.to_string(),
                ],
                &widths,
            );
            out.push('\n');
        }
    }
    out += &format!(
        "\nadaptive reallocation: makespan {} vs static {} ({:.0}% faster), aggregate\ngoodput {:.0} vs {:.0} samples/s\n",
        fmt(adaptive.makespan),
        fmt(fixed.makespan),
        (1.0 - adaptive.makespan / fixed.makespan) * 100.0,
        adaptive.aggregate_goodput,
        fixed.aggregate_goodput,
    );
    out
}
