//! Naive scalar matmul kernels — the correctness baseline.
//!
//! These are the seed implementations the blocked kernels in
//! `super::blocked` replaced (minus the old `== 0.0` sparsity skip, whose
//! branchy inner loops blocked vectorization without winning on dense
//! workloads). They remain the ground truth for the equivalence proptests
//! and the baseline the `matmul` criterion bench measures speedups against.
//! Production code should call [`super::matmul`] and friends instead.

use crate::tensor::Tensor;

/// `C = A × B` for 2-D tensors `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics if operands are not 2-D or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = super::dims2(a, "matmul lhs");
    let (k2, n) = super::dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    // i-k-j loop order: the inner loop walks both B and C contiguously.
    for i in 0..m {
        for kk in 0..k {
            let aik = ad[i * k + kk];
            let brow = &bd[kk * n..(kk + 1) * n];
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow) {
                *c += aik * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("matmul output shape")
}

/// `C = Aᵀ × B` for `A: [k, m]`, `B: [k, n]` — used for weight gradients.
///
/// # Panics
///
/// Panics if operands are not 2-D or the leading dimensions disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = super::dims2(a, "matmul_at_b lhs");
    let (k2, n) = super::dims2(b, "matmul_at_b rhs");
    assert_eq!(k, k2, "matmul_at_b leading dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for kk in 0..k {
        let arow = &ad[kk * m..(kk + 1) * m];
        let brow = &bd[kk * n..(kk + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow) {
                *c += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("matmul_at_b output shape")
}

/// `C = A × Bᵀ` for `A: [m, k]`, `B: [n, k]` — used for input gradients.
///
/// # Panics
///
/// Panics if operands are not 2-D or the trailing dimensions disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = super::dims2(a, "matmul_a_bt lhs");
    let (n, k2) = super::dims2(b, "matmul_a_bt rhs");
    assert_eq!(k, k2, "matmul_a_bt trailing dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("matmul_a_bt output shape")
}
