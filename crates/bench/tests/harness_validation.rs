//! End-to-end validation of the experiment harness: the generated outputs
//! must carry the paper's qualitative claims, so a regression anywhere in
//! the stack (simulator physics, measurement, solver, engines) trips one
//! of these before it corrupts `EXPERIMENTS.md`.

use cannikin_bench::experiments;

fn parse_table_rows(text: &str, skip_header_lines: usize) -> Vec<Vec<String>> {
    text.lines()
        .skip(skip_header_lines)
        .map(|l| l.split_whitespace().map(str::to_string).collect::<Vec<_>>())
        // Data rows start with a number; prose and blank lines do not.
        .filter(|cells: &Vec<String>| cells.first().is_some_and(|c| c.parse::<f64>().is_ok()))
        .collect()
}

#[test]
fn hetero_sweep_matches_the_theoretical_bound() {
    let text = experiments::hetero_sweep();
    let rows = parse_table_rows(&text, 2);
    assert_eq!(rows.len(), 7);
    for row in rows {
        let measured: f64 = row[1].parse().expect("measured column");
        let bound: f64 = row[2].parse().expect("bound column");
        assert!(measured >= bound - 1e-6, "{row:?}");
        assert!(measured - bound < 0.02, "{row:?}");
    }
}

#[test]
fn prediction_table_keeps_the_ivw_bands() {
    let text = experiments::table_prediction();
    // Task rows carry two percentage columns.
    let rows: Vec<Vec<String>> = text
        .lines()
        .map(|l| l.split_whitespace().map(str::to_string).collect::<Vec<_>>())
        .filter(|cells: &Vec<String>| cells.iter().filter(|c| c.ends_with('%')).count() == 2)
        .collect();
    assert_eq!(rows.len(), 5, "five Table-5 tasks: {text}");
    for row in rows {
        let ivw: f64 = row[row.len() - 2].trim_end_matches('%').parse().expect("ivw column");
        let naive: f64 = row[row.len() - 1].trim_end_matches('%').parse().expect("naive column");
        assert!(ivw <= 7.0, "IVW error above the paper's 7% band: {row:?}");
        assert!(naive > ivw, "naive should be worse: {row:?}");
        assert!(naive <= 25.0, "naive error implausibly large: {row:?}");
    }
}

#[test]
fn warm_start_ablation_reports_a_real_reduction() {
    let text = experiments::ablation_warm_start();
    let reduction: f64 = text
        .lines()
        .find(|l| l.contains("reduction"))
        .and_then(|l| l.split(&[' ', '%'][..]).filter_map(|t| t.parse().ok()).next())
        .expect("reduction line");
    assert!((20.0..=95.0).contains(&reduction), "{text}");
}

#[test]
fn elastic_experiment_recovers_near_oracle() {
    let text = experiments::elastic();
    // Last epoch's batch time must be within 5% of the printed oracle.
    let oracle: f64 = text
        .lines()
        .find(|l| l.contains("post-grant OptPerf"))
        .and_then(|l| l.split(&[' ', 's'][..]).filter_map(|t| t.parse().ok()).next())
        .expect("oracle line");
    let last_epoch_time: f64 = text
        .lines()
        .filter(|l| l.trim_start().starts_with("11"))
        .filter_map(|l| l.split_whitespace().nth(2).and_then(|t| t.parse().ok()))
        .next()
        .expect("epoch 11 row");
    assert!(
        (last_epoch_time / oracle - 1.0).abs() < 0.05,
        "final epoch {last_epoch_time} vs oracle {oracle}\n{text}"
    );
}

#[test]
fn accumulation_extension_escalates_with_noise() {
    let text = experiments::accumulation();
    let rows = parse_table_rows(&text, 2);
    let accums: Vec<u64> = rows
        .iter()
        .map(|r| r[2].parse().expect("accum column"))
        .collect();
    assert!(accums.first() == Some(&1), "low noise should not accumulate: {accums:?}");
    assert!(*accums.last().unwrap() > 1, "high noise should accumulate: {accums:?}");
    for pair in accums.windows(2) {
        assert!(pair[1] >= pair[0], "accumulation should be monotone in phi: {accums:?}");
    }
}

#[test]
fn experiment_registry_is_complete_and_consistent() {
    let ids = experiments::ids();
    assert!(ids.len() >= 14, "registry shrank: {ids:?}");
    for id in &ids {
        assert!(experiments::by_id(id).is_some(), "id {id} not dispatchable");
    }
    assert!(experiments::by_id("nonsense").is_none());
}
