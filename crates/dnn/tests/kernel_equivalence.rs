//! Property tests: the blocked (and threaded) matmul kernels are
//! numerically equivalent to the naive reference kernels, and the scratch
//! arena honours its sizing contract.
//!
//! Shapes are drawn from ranges that deliberately include the degenerate
//! and awkward cases — `m = 1`, `k = 1`, dimensions that are not multiples
//! of the register tile or cache block — because those exercise the
//! zero-padded panel edges of the packed kernels.

use minidnn::tensor::simd::{self, with_kernel, Kernel};
use minidnn::tensor::threads::with_threads;
use minidnn::tensor::{reference, scratch, Tensor};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Maximum relative error tolerated between the blocked kernels and the
/// naive reference. Both sum in f32, but blocked kernels reassociate the
/// k-loop across panels, so results differ by a few ulps at these sizes.
const REL_TOL: f32 = 1e-4;

/// `|x - y|` bounded by `REL_TOL` relative to magnitude (with an absolute
/// floor so near-zero sums compare sanely).
fn close(x: f32, y: f32) -> bool {
    let scale = x.abs().max(y.abs()).max(1.0);
    (x - y).abs() <= REL_TOL * scale
}

fn assert_all_close(got: &Tensor, want: &Tensor) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.shape(), want.shape());
    for (i, (&g, &w)) in got.data().iter().zip(want.data()).enumerate() {
        prop_assert!(close(g, w), "element {}: {} vs {}", i, g, w);
    }
    Ok(())
}

/// Shape strategy spanning tile-aligned and unaligned dimensions, with the
/// degenerate edges pinned in explicitly so every run covers them.
fn dims() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2usize), Just(3usize), 1usize..80]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matmul_matches_reference(m in dims(), k in dims(), n in dims(), seed in 0u64..1024) {
        let a = Tensor::randn(&[m, k], seed);
        let b = Tensor::randn(&[k, n], seed.wrapping_add(1));
        assert_all_close(&minidnn::tensor::matmul(&a, &b), &reference::matmul(&a, &b))?;
    }

    #[test]
    fn blocked_matmul_at_b_matches_reference(m in dims(), k in dims(), n in dims(), seed in 0u64..1024) {
        let a = Tensor::randn(&[k, m], seed);
        let b = Tensor::randn(&[k, n], seed.wrapping_add(2));
        assert_all_close(&minidnn::tensor::matmul_at_b(&a, &b), &reference::matmul_at_b(&a, &b))?;
    }

    #[test]
    fn blocked_matmul_a_bt_matches_reference(m in dims(), k in dims(), n in dims(), seed in 0u64..1024) {
        let a = Tensor::randn(&[m, k], seed);
        let b = Tensor::randn(&[n, k], seed.wrapping_add(3));
        assert_all_close(&minidnn::tensor::matmul_a_bt(&a, &b), &reference::matmul_a_bt(&a, &b))?;
    }

    #[test]
    fn threaded_matmul_matches_reference(m in dims(), k in dims(), n in dims(), seed in 0u64..1024) {
        let a = Tensor::randn(&[m, k], seed);
        let b = Tensor::randn(&[k, n], seed.wrapping_add(4));
        let threaded = with_threads(4, || minidnn::tensor::matmul(&a, &b));
        assert_all_close(&threaded, &reference::matmul(&a, &b))?;
    }

    #[test]
    fn gemm_accumulation_adds_exactly_one_product(m in dims(), k in dims(), n in dims(), seed in 0u64..1024) {
        // c = A·B (fresh) followed by c += A·B must equal 2 · (A·B).
        let a = Tensor::randn(&[m, k], seed);
        let b = Tensor::randn(&[k, n], seed.wrapping_add(5));
        let mut c = vec![0.0f32; m * n];
        minidnn::tensor::gemm(m, n, k, a.data(), b.data(), &mut c, false);
        let once = c.clone();
        minidnn::tensor::gemm(m, n, k, a.data(), b.data(), &mut c, true);
        for (i, (&twice, &one)) in c.iter().zip(&once).enumerate() {
            prop_assert!(close(twice, 2.0 * one), "element {}: {} vs {}", i, twice, 2.0 * one);
        }
    }

    #[test]
    fn forced_avx2_matmul_matches_reference(m in dims(), k in dims(), n in dims(), seed in 0u64..1024) {
        // Shapes drawn here straddle the SMALL_WORK dispatch boundary: tiny
        // products stay on the scalar small-matrix path even when the AVX2
        // kernel is forced, so this covers both sides of the dispatch tree.
        if !simd::avx2_available() {
            return Ok(());
        }
        let a = Tensor::randn(&[m, k], seed);
        let b = Tensor::randn(&[k, n], seed.wrapping_add(6));
        let got = with_kernel(Kernel::Avx2, || minidnn::tensor::matmul(&a, &b));
        assert_all_close(&got, &reference::matmul(&a, &b))?;
    }

    #[test]
    fn forced_avx2_transposed_kernels_match_reference(m in dims(), k in dims(), n in dims(), seed in 0u64..1024) {
        if !simd::avx2_available() {
            return Ok(());
        }
        let at = Tensor::randn(&[k, m], seed);
        let b = Tensor::randn(&[k, n], seed.wrapping_add(7));
        let got = with_kernel(Kernel::Avx2, || minidnn::tensor::matmul_at_b(&at, &b));
        assert_all_close(&got, &reference::matmul_at_b(&at, &b))?;

        let a = Tensor::randn(&[m, k], seed.wrapping_add(8));
        let bt = Tensor::randn(&[n, k], seed.wrapping_add(9));
        let got = with_kernel(Kernel::Avx2, || minidnn::tensor::matmul_a_bt(&a, &bt));
        assert_all_close(&got, &reference::matmul_a_bt(&a, &bt))?;
    }

    #[test]
    fn forced_scalar_is_bitwise_stable_across_dispatch(m in dims(), k in dims(), n in dims(), seed in 0u64..1024) {
        // Forcing the scalar kernel must reproduce the default path exactly
        // on machines without AVX2, and stay self-consistent everywhere:
        // the override changes *which* kernel runs, never the blocking
        // schedule, so repeated forced-scalar runs are bitwise identical.
        let a = Tensor::randn(&[m, k], seed);
        let b = Tensor::randn(&[k, n], seed.wrapping_add(10));
        let first = with_kernel(Kernel::Scalar, || minidnn::tensor::matmul(&a, &b));
        let second = with_kernel(Kernel::Scalar, || minidnn::tensor::matmul(&a, &b));
        prop_assert_eq!(first.data(), second.data());
        assert_all_close(&first, &reference::matmul(&a, &b))?;
    }

    #[test]
    fn forced_avx2_threaded_matches_reference(m in dims(), k in dims(), n in dims(), seed in 0u64..1024) {
        if !simd::avx2_available() {
            return Ok(());
        }
        let a = Tensor::randn(&[m, k], seed);
        let b = Tensor::randn(&[k, n], seed.wrapping_add(11));
        let got = with_kernel(Kernel::Avx2, || with_threads(4, || minidnn::tensor::matmul(&a, &b)));
        assert_all_close(&got, &reference::matmul(&a, &b))?;
    }

    #[test]
    fn scratch_take_is_exactly_sized_and_fully_writable(len in 1usize..20_000) {
        let mut buf = scratch::take(len);
        prop_assert_eq!(buf.as_slice().len(), len);
        // Contents may be stale by contract; every element must be writable
        // and hold its value.
        for (i, v) in buf.as_mut_slice().iter_mut().enumerate() {
            *v = i as f32;
        }
        for (i, &v) in buf.as_slice().iter().enumerate() {
            prop_assert_eq!(v, i as f32);
        }
    }

    #[test]
    fn scratch_take_zeroed_is_zero(len in 1usize..20_000) {
        // Dirty the arena first so reuse paths are exercised.
        {
            let mut dirty = scratch::take(len);
            dirty.as_mut_slice().fill(f32::NAN);
        }
        let buf = scratch::take_zeroed(len);
        prop_assert_eq!(buf.as_slice().len(), len);
        prop_assert!(buf.as_slice().iter().all(|&v| v == 0.0));
    }
}

/// Reuse is observable: after a warm-up call, repeating the same request on
/// the same thread is served from the free list, not a fresh allocation.
#[test]
fn scratch_reuses_buffers_across_calls() {
    {
        let _warm = scratch::take(4096);
    }
    let before = scratch::stats();
    for _ in 0..8 {
        let buf = scratch::take(4096);
        assert_eq!(buf.as_slice().len(), 4096);
    }
    let after = scratch::stats();
    assert_eq!(after.allocations, before.allocations, "steady state must not allocate");
    assert!(after.reuses >= before.reuses + 8, "every take should be a reuse");
}
