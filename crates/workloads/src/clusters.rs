//! The evaluation clusters (Tables 3–4 and §6).

use hetsim::catalog::Gpu;
use hetsim::cluster::{ClusterSpec, NetworkSpec, NodeSpec};

/// Cluster A (Table 3): three workstation GPUs — RTX A5000, RTX A4000 and
/// Quadro P4000, one per node.
pub fn cluster_a() -> ClusterSpec {
    // Measurement quality differs per node (slower hosts time their
    // kernels less precisely) — this is what makes the §5.3
    // inverse-variance-weighting ablation meaningful.
    ClusterSpec::new(
        "A",
        vec![
            // CPUs per Table 3: i9-10980XE, Xeon W-2255, Xeon W-2102.
            NodeSpec::new("a5000", Gpu::RtxA5000).with_cpu_factor(1.2).with_measurement_sigma(0.01),
            NodeSpec::new("a4000", Gpu::RtxA4000)
                .with_cpu_factor(1.0)
                .with_measurement_sigma(0.05)
                .with_measurement_bias(0.08),
            NodeSpec::new("p4000", Gpu::QuadroP4000)
                .with_cpu_factor(0.5)
                .with_measurement_sigma(0.30)
                .with_measurement_bias(0.45),
        ],
    )
    .with_network(NetworkSpec::ten_gbe())
}

/// Cluster B (Table 4): 16 GPUs across 10 servers — one 4×A100 server,
/// one 4×V100 server and eight single-RTX6000 servers. Every GPU is a
/// data-parallel node.
pub fn cluster_b() -> ClusterSpec {
    // CPUs per Table 4: Platinum 8380 (A100 server), Gold 6230 (V100
    // server), Gold 6126 (RTX6000 hosts). Multi-GPU servers share their
    // CPUs across 4 workers, so per-worker CPU headroom is comparable.
    let mut nodes = Vec::with_capacity(16);
    for i in 0..4 {
        nodes.push(NodeSpec::new(format!("a100-{i}"), Gpu::A100).with_cpu_factor(2.0).with_measurement_sigma(0.01));
    }
    for i in 0..4 {
        nodes.push(NodeSpec::new(format!("v100-{i}"), Gpu::V100).with_cpu_factor(1.2).with_measurement_sigma(0.02));
    }
    for i in 0..8 {
        nodes.push(NodeSpec::new(format!("rtx-{i}"), Gpu::Rtx6000).with_cpu_factor(0.7).with_measurement_sigma(0.08));
    }
    ClusterSpec::new("B", nodes).with_network(NetworkSpec::twenty_five_gbe())
}

/// Cluster C (§6): 16 physically identical RTX6000 nodes on Chameleon
/// whose heterogeneity comes from GPU *sharing* — a dummy co-located
/// workload consumes part of each GPU. `fractions[i]` is the share left
/// for training on node `i`.
///
/// # Panics
///
/// Panics if `fractions` is empty or any value is outside `(0, 1]`.
pub fn cluster_c(fractions: &[f64]) -> ClusterSpec {
    assert!(!fractions.is_empty(), "cluster C needs at least one node");
    let nodes = fractions
        .iter()
        .enumerate()
        .map(|(i, &f)| NodeSpec::new(format!("rtx-{i}"), Gpu::Rtx6000).with_contention(f))
        .collect();
    ClusterSpec::new("C", nodes).with_network(NetworkSpec::ten_gbe())
}

/// The default cluster-C contention pattern used in the reproduction: 16
/// nodes whose available fractions step from 100% down to 30%, spanning
/// the same ~3.4× heterogeneity degree as cluster B.
pub fn cluster_c_default() -> ClusterSpec {
    let fractions: Vec<f64> = (0..16).map(|i| 1.0 - 0.7 * (i as f64 / 15.0)).collect();
    cluster_c(&fractions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_a_matches_table3() {
        let c = cluster_a();
        assert_eq!(c.len(), 3);
        assert_eq!(c.nodes[0].gpu, Gpu::RtxA5000);
        assert_eq!(c.nodes[2].gpu, Gpu::QuadroP4000);
        assert!(c.heterogeneity_degree() > 3.0, "A5000 vs P4000 gap");
    }

    #[test]
    fn cluster_b_matches_table4() {
        let c = cluster_b();
        assert_eq!(c.len(), 16);
        assert_eq!(c.nodes.iter().filter(|n| n.gpu == Gpu::A100).count(), 4);
        assert_eq!(c.nodes.iter().filter(|n| n.gpu == Gpu::V100).count(), 4);
        assert_eq!(c.nodes.iter().filter(|n| n.gpu == Gpu::Rtx6000).count(), 8);
        assert!((c.heterogeneity_degree() - 3.42).abs() < 0.02);
    }

    #[test]
    fn cluster_c_heterogeneity_from_sharing() {
        let c = cluster_c_default();
        assert_eq!(c.len(), 16);
        assert!(c.nodes.iter().all(|n| n.gpu == Gpu::Rtx6000), "same physical GPU everywhere");
        assert!((c.heterogeneity_degree() - 1.0 / 0.3).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "available fraction")]
    fn cluster_c_rejects_bad_fraction() {
        let _ = cluster_c(&[1.0, 0.0]);
    }
}
