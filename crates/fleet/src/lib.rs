//! # cannikin-fleet — a multi-tenant control plane over Cannikin jobs
//!
//! The paper's §6 argument is that Cannikin-style jobs absorb *any*
//! heterogeneous node mix, so a cluster scheduler no longer has to carve
//! out homogeneous slices: it can hand every job whatever nodes are
//! spare and let the job-level system (OptPerf split + GNS-driven batch
//! sizing) make the mix productive. This crate is that scheduler:
//!
//! - [`FleetJobSpec`] describes one submission in a *stream* of jobs —
//!   workload, trainer configuration, priority class, arrival time, node
//!   range and an optional fault plan;
//! - [`FleetController`] admits arrivals into a queue, runs each admitted
//!   job's own [`CannikinTrainer`](cannikin_core::engine::CannikinTrainer)
//!   on its granted nodes, and at every epoch boundary re-runs the fleet
//!   allocator ([`AllocPolicy`]) — generalizing OptPerf's "split B over n
//!   GPUs" to "split the pool's nodes over m jobs";
//! - demand is GNS-driven ([`demand`]): a job whose gradient noise scale
//!   has grown wants a larger total batch and therefore more nodes, a job
//!   past its statistical knee (or near its target) shrinks back, and the
//!   weighted fair-share allocator arbitrates under priority weights;
//! - preemption and grants flow through the existing elastic-membership
//!   path (`Simulator::{add_node,remove_node}` +
//!   `CannikinTrainer::on_cluster_change`), so a reallocation costs the
//!   affected job a bootstrap re-profile, never a restart;
//! - everything is deterministic: same pool, same specs, same policy →
//!   bitwise-identical schedules ([`FleetController::schedule_log`]),
//!   down to fault-plan-driven node crashes surviving via the chaos
//!   machinery.
//!
//! ```
//! use cannikin_fleet::{AllocPolicy, FleetController, FleetJobSpec, Priority};
//! use cannikin_core::engine::TrainerConfig;
//! use hetsim::catalog::Gpu;
//! use hetsim::cluster::NodeSpec;
//! use hetsim::job::JobSpec;
//!
//! let pool = vec![
//!     NodeSpec::new("a100-0", Gpu::A100),
//!     NodeSpec::new("v100-0", Gpu::V100),
//!     NodeSpec::new("rtx-0", Gpu::Rtx6000),
//! ];
//! let jobs = vec![
//!     FleetJobSpec::new("cifar", JobSpec::resnet18_cifar10(), TrainerConfig::new(6_400, 64, 512), 2.0)
//!         .priority(Priority::Production)
//!         .seed(1),
//!     FleetJobSpec::new("neumf", JobSpec::neumf_movielens(), TrainerConfig::new(6_400, 64, 512), 1.0)
//!         .arrival(5.0)
//!         .seed(2),
//! ];
//! let mut fleet = FleetController::new(pool, jobs, AllocPolicy::Cannikin).expect("valid fleet");
//! let report = fleet.run_to_completion(2_000).expect("stream drains");
//! assert_eq!(report.jobs.len(), 2);
//! assert!(report.makespan > 0.0);
//! ```

pub mod alloc;
pub mod controller;
pub mod demand;
pub mod metrics;
pub mod pool;
pub mod spec;

pub use alloc::{AllocPolicy, JobDemand};
pub use controller::{FleetController, FleetError};
pub use metrics::{jain_fairness, FleetReport, JobOutcome};
pub use pool::NodePool;
pub use spec::{synthetic_trace, FleetJobSpec, Priority};
