//! Deterministic random-number helpers.
//!
//! Everything in the reproduction is seeded so that experiments are exactly
//! repeatable. `rand`'s `StdRng` is used as the base generator; Gaussian
//! samples are produced with the Box–Muller transform so that no external
//! distribution crate is required.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Create a deterministic RNG from a seed.
///
/// # Examples
///
/// ```
/// let mut a = minidnn::rng::seeded(7);
/// let mut b = minidnn::rng::seeded(7);
/// assert_eq!(minidnn::rng::normal(&mut a), minidnn::rng::normal(&mut b));
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draw a standard-normal sample using the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let mag = (-2.0 * u1.ln()).sqrt();
    (mag * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Draw a normal sample with the given mean and standard deviation.
pub fn normal_with<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * f64::from(normal(rng))
}

/// Draw a log-normal sample whose *median* is 1.0 and whose log-space
/// standard deviation is `sigma`.
///
/// This is the multiplicative noise model used by the cluster simulator for
/// per-batch timing jitter: the returned factor multiplies a deterministic
/// duration.
pub fn lognormal_factor<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    (sigma * f64::from(normal(rng))).exp()
}

/// Fisher–Yates shuffle of a slice of indices.
pub fn shuffle<R: Rng + ?Sized, T>(rng: &mut R, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = seeded(99);
        let mut b = seeded(99);
        for _ in 0..32 {
            assert_eq!(normal(&mut a), normal(&mut b));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| f64::from(normal(&mut rng))).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_is_positive_and_centered() {
        let mut rng = seeded(2);
        let n = 10_000;
        let mut above = 0;
        for _ in 0..n {
            let f = lognormal_factor(&mut rng, 0.05);
            assert!(f > 0.0);
            if f > 1.0 {
                above += 1;
            }
        }
        // Median 1.0 => roughly half the samples above 1.0.
        assert!((above as f64 / n as f64 - 0.5).abs() < 0.03);
    }

    #[test]
    fn lognormal_zero_sigma_is_identity() {
        let mut rng = seeded(3);
        assert_eq!(lognormal_factor(&mut rng, 0.0), 1.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = seeded(4);
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "100 elements should not shuffle to identity");
    }
}
