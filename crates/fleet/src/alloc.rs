//! The fleet allocator: split the pool's nodes over the admitted jobs.
//!
//! This is OptPerf's shape one level up. OptPerf answers "given a total
//! batch B and n heterogeneous GPUs, what per-GPU split equalizes
//! finish times?"; the fleet allocator answers "given a pool of nodes
//! and m jobs with GNS-driven node demands, what per-job node counts
//! maximize aggregate goodput subject to weighted fairness?". Because a
//! Cannikin job absorbs any node mix, the allocator only has to pick
//! *counts* — the per-job OptPerf solver makes whatever nodes it is
//! handed productive.
//!
//! Three policies, all deterministic:
//!
//! - [`AllocPolicy::Cannikin`] — weighted max-min fair share over the
//!   jobs' GNS-driven demands: every admissible job first gets its
//!   minimum (highest weight first), then spare nodes water-fill toward
//!   demand, each unit going to the job whose `allocation/weight` is
//!   lowest. Demand-capped, so a job past its statistical knee releases
//!   nodes for others.
//! - [`AllocPolicy::Fifo`] — strict head-of-line: jobs in arrival order
//!   each take up to their `max_nodes`; a job whose minimum cannot be
//!   met blocks everything behind it.
//! - [`AllocPolicy::Static`] — the pool is carved into fixed equal
//!   slices, one per job in the trace, up front; a job only ever runs in
//!   its own slice.

use crate::pool::NodePool;

/// How the fleet divides nodes among jobs at each epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Weighted max-min fair share over GNS-driven demands (the paper's
    /// §6 direction; the policy under test).
    Cannikin,
    /// Head-of-line arrival order (baseline).
    Fifo,
    /// Fixed equal partition of the pool (baseline).
    Static,
}

impl AllocPolicy {
    /// Stable string tag (reports and logs).
    pub fn as_str(self) -> &'static str {
        match self {
            AllocPolicy::Cannikin => "cannikin",
            AllocPolicy::Fifo => "fifo",
            AllocPolicy::Static => "static",
        }
    }
}

/// One admitted (queued or running) job's view, as the allocator sees it.
#[derive(Debug, Clone)]
pub struct JobDemand {
    /// Index into the controller's job list (stable identity).
    pub job: usize,
    /// Fair-share weight (priority class).
    pub weight: f64,
    /// Arrival time — FIFO order and deterministic tie-break.
    pub arrival: f64,
    /// Fewest nodes the job will run on. For a *running* job this is
    /// `min(spec.min_nodes, held)` so node deaths below the spec minimum
    /// shrink the floor instead of forcing an eviction.
    pub min_nodes: usize,
    /// Hard cap from the spec (already clamped to pool and base batch).
    pub max_nodes: usize,
    /// GNS-driven desired node count, in `[min_nodes, max_nodes]`.
    pub want: usize,
    /// Nodes currently held (0 for queued jobs).
    pub held: usize,
    /// The job's static slice size (used by [`AllocPolicy::Static`]).
    pub slice: usize,
    /// Submission rank by `(arrival, name)` (used by [`AllocPolicy::Fifo`]).
    pub fifo_rank: usize,
}

/// Compute per-job node targets for this epoch boundary. The result is
/// index-aligned with `demands`; entries are final node counts (0 = the
/// job stays queued / is fully evicted).
///
/// Only counts are decided here — the controller maps counts to concrete
/// node ids (shrink slowest-first, grant fastest-first).
pub fn targets(policy: AllocPolicy, demands: &[JobDemand], pool: &NodePool) -> Vec<usize> {
    let free = pool.free_ids().len();
    let budget = free + demands.iter().map(|d| d.held).sum::<usize>();
    match policy {
        AllocPolicy::Cannikin => weighted_max_min(demands, budget),
        AllocPolicy::Fifo => fifo(demands, budget),
        AllocPolicy::Static => demands.iter().map(|d| d.slice.min(d.max_nodes)).collect(),
    }
}

/// Weighted max-min: minimums first (weight desc, arrival, index), then
/// water-fill single nodes toward demand, lowest `target/weight` first.
fn weighted_max_min(demands: &[JobDemand], mut budget: usize) -> Vec<usize> {
    let mut target = vec![0usize; demands.len()];

    // Pass 1: grant every job its minimum while budget lasts, highest
    // weight first so low-priority jobs are the ones left queued under
    // contention. Jobs whose minimum does not fit stay at 0 (queued).
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&a, &b| {
        demands[b]
            .weight
            .total_cmp(&demands[a].weight)
            .then(demands[a].arrival.total_cmp(&demands[b].arrival))
            .then(a.cmp(&b))
    });
    for &i in &order {
        let need = demands[i].min_nodes;
        if need > 0 && need <= budget {
            target[i] = need;
            budget -= need;
        }
    }

    // Pass 2: water-fill. Each spare node goes to the admitted job with
    // the lowest weighted allocation that still wants more. Ties break
    // by (weight desc, arrival, index) — fully deterministic.
    loop {
        if budget == 0 {
            break;
        }
        let next = order
            .iter()
            .copied()
            .filter(|&i| target[i] > 0 || demands[i].min_nodes == 0)
            .filter(|&i| target[i] < demands[i].want.min(demands[i].max_nodes))
            .min_by(|&a, &b| {
                let fa = target[a] as f64 / demands[a].weight;
                let fb = target[b] as f64 / demands[b].weight;
                fa.total_cmp(&fb)
                    .then(demands[b].weight.total_cmp(&demands[a].weight))
                    .then(demands[a].arrival.total_cmp(&demands[b].arrival))
                    .then(a.cmp(&b))
            });
        match next {
            Some(i) => {
                target[i] += 1;
                budget -= 1;
            }
            None => break,
        }
    }
    target
}

/// Strict FIFO: in submission order, each job takes up to `max_nodes`
/// (at least `min_nodes`); the first job that cannot get its minimum
/// blocks the line. No demand awareness — the classic baseline the
/// paper's adaptive scheduler is measured against.
fn fifo(demands: &[JobDemand], mut budget: usize) -> Vec<usize> {
    let mut target = vec![0usize; demands.len()];
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by_key(|&i| demands[i].fifo_rank);
    for &i in &order {
        if demands[i].min_nodes > budget {
            break; // head-of-line blocking
        }
        let take = demands[i].max_nodes.min(budget);
        target[i] = take;
        budget -= take;
    }
    target
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::NodeSpec;

    fn demand(job: usize, weight: f64, want: usize) -> JobDemand {
        JobDemand {
            job,
            weight,
            arrival: job as f64,
            min_nodes: 1,
            max_nodes: 16,
            want,
            held: 0,
            slice: 2,
            fifo_rank: job,
        }
    }

    fn pool(n: usize) -> NodePool {
        NodePool::new((0..n).map(|i| NodeSpec::new(format!("n{i}"), Gpu::A100)).collect())
    }

    #[test]
    fn weighted_max_min_respects_weights() {
        // 8 nodes, three jobs all wanting everything, weights 4/2/1.
        let demands =
            vec![demand(0, 4.0, 16), demand(1, 2.0, 16), demand(2, 1.0, 16)];
        let t = targets(AllocPolicy::Cannikin, &demands, &pool(8));
        assert_eq!(t.iter().sum::<usize>(), 8, "all nodes handed out");
        assert!(t[0] > t[1] && t[1] >= t[2], "allocation follows weight: {t:?}");
    }

    #[test]
    fn cannikin_is_demand_capped() {
        // A job past its knee (want = 1) leaves nodes for the others.
        let demands = vec![demand(0, 4.0, 1), demand(1, 1.0, 16)];
        let t = targets(AllocPolicy::Cannikin, &demands, &pool(6));
        assert_eq!(t[0], 1, "no overfeeding past demand");
        assert_eq!(t[1], 5, "spare capacity flows to whoever wants it");
    }

    #[test]
    fn fifo_blocks_behind_unmet_minimum() {
        let mut d0 = demand(0, 1.0, 4);
        d0.min_nodes = 4;
        d0.max_nodes = 4;
        let mut d1 = demand(1, 4.0, 1);
        d1.min_nodes = 3;
        let t = targets(AllocPolicy::Fifo, &[d0, d1], &pool(4));
        assert_eq!(t, vec![4, 0], "head-of-line job takes all, next blocks");
    }

    #[test]
    fn static_ignores_demand() {
        let demands = vec![demand(0, 1.0, 16), demand(1, 4.0, 1)];
        let t = targets(AllocPolicy::Static, &demands, &pool(8));
        assert_eq!(t, vec![2, 2], "fixed slices regardless of want");
    }

    #[test]
    fn minimums_served_by_weight_under_contention() {
        // 3 nodes, three jobs each with min 2: only the heaviest fits.
        let mut ds = vec![demand(0, 1.0, 4), demand(1, 4.0, 4), demand(2, 2.0, 4)];
        for d in &mut ds {
            d.min_nodes = 2;
        }
        let t = targets(AllocPolicy::Cannikin, &ds, &pool(3));
        assert_eq!(t[1], 3, "production job admitted and water-filled");
        assert_eq!(t[0], 0);
        assert_eq!(t[2], 0);
    }
}
